"""Benchmark + reproduction check for paper artifact fig8."""

from conftest import run_experiment_benchmark


def test_fig8(benchmark):
    """Regenerate fig8 and assert its paper-shape checks hold."""
    run_experiment_benchmark(benchmark, "fig8")
