"""Benchmark: the cache-effect sweep (repro.cache end to end).

Delegates to the registered ``cache_effect`` experiment: Zipf exponent
× per-node cache capacity × churn cells over both stacks, reporting
hop/latency reduction vs the paired uncached baseline and the
owner-load-concentration metric.  Fails if any shape check diverges —
in particular the >=20% headline latency-reduction gate.  The same
document is written as ``BENCH_cache.json`` by
``python -m repro.experiments cache-bench``.
"""

from conftest import run_experiment_benchmark


def test_cache_effect(benchmark):
    """Zipf sweep: latency reduction, hit rates, hotspot spreading."""
    run_experiment_benchmark(benchmark, "cache_effect")
