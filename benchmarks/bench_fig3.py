"""Benchmark + reproduction check for paper artifact fig3."""

from conftest import run_experiment_benchmark


def test_fig3(benchmark):
    """Regenerate fig3 and assert its paper-shape checks hold."""
    run_experiment_benchmark(benchmark, "fig3")
