"""Benchmark: durability under churn (repro.replication end to end).

Delegates to the registered ``durability`` experiment: replication
factor × churn × {chain, quorum} × {successor, ring_scoped} cells over
both stacks, replaying the two-wave crash/rejoin scenario against a
:class:`~repro.replication.store.ReplicatedStore` per cell.  Fails if
any shape check diverges — replication must eliminate the replicas=0
loss, quorum must out-survive chain under the same faults, hinted
handoff must cut loss vs handoff-disabled, and HIERAS ring-scoped
placement must write cheaper without hurting durability.  The same
document is written as ``BENCH_durability.json`` by
``python -m repro.experiments durability-bench``.
"""

from conftest import run_experiment_benchmark


def test_durability(benchmark):
    """Churn sweep: loss probability, staleness, handoff traffic."""
    run_experiment_benchmark(benchmark, "durability")
