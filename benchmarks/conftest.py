"""Benchmark helpers.

Every paper table/figure has one benchmark module
(``bench_table1.py`` … ``bench_fig9.py``) that runs the corresponding
registered experiment end to end, records its wall time via
pytest-benchmark, prints the paper-style rows, and asserts the shape
checks passed.  ``bench_micro.py`` additionally benchmarks the hot
primitives (routing, topology generation, binning).

Scale: reduced by default; run with ``REPRO_FULL=1`` for the paper's
10000-node / 100000-request parameters.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import is_full_scale
from repro.experiments.figures import get_experiment


def run_experiment_benchmark(benchmark, experiment_id: str, *, seed: int = 42):
    """Run one registered experiment under the benchmark timer."""
    exp = get_experiment(experiment_id)
    full = is_full_scale()

    result = benchmark.pedantic(
        exp.run, args=(full, seed), rounds=1, iterations=1, warmup_rounds=0
    )
    print()
    print(result.text)
    assert "[DIVERGES]" not in result.text, f"{experiment_id} diverged from the paper"
    return result


@pytest.fixture(scope="session")
def midsize_bundle():
    """A 2000-peer TS deployment shared by the micro-benchmarks."""
    from repro.experiments.config import SimConfig
    from repro.experiments.runner import build_bundle

    return build_bundle(SimConfig(n_peers=2000, seed=42))
