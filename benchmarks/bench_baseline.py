"""Benchmark: the perf-baseline pipeline (repro.metrics end to end).

Delegates to the registered ``perf_baseline`` experiment, which times
each pipeline phase (build, trace, traced routing on both stacks, a
protocol-stack smoke with the simulator registry attached) and checks
the seed-deterministic metrics section — so this bench both measures
the observability overhead path and gates on the §4.3 low-layer-hop
claim as seen by the span layer.
"""

from conftest import run_experiment_benchmark


def test_perf_baseline(benchmark):
    """Phase wall times + deterministic hop/latency metrics, both stacks."""
    run_experiment_benchmark(benchmark, "perf_baseline")
