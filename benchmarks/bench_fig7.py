"""Benchmark + reproduction check for paper artifact fig7."""

from conftest import run_experiment_benchmark


def test_fig7(benchmark):
    """Regenerate fig7 and assert its paper-shape checks hold."""
    run_experiment_benchmark(benchmark, "fig7")
