"""Benchmark + reproduction check for paper artifact fig5."""

from conftest import run_experiment_benchmark


def test_fig5(benchmark):
    """Regenerate fig5 and assert its paper-shape checks hold."""
    run_experiment_benchmark(benchmark, "fig5")
