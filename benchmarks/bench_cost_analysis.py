"""Benchmark + check for the quantified §3.4 cost analysis."""

from conftest import run_experiment_benchmark


def test_cost_analysis(benchmark):
    """State and maintenance overheads per hierarchy depth."""
    run_experiment_benchmark(benchmark, "cost_analysis")
