"""Benchmark: serving-layer saturation (repro.serve + repro.loadgen).

Delegates to the registered ``saturation`` experiment: an open-loop
offered-load sweep over both stacks behind a
:class:`~repro.serve.service.DHTService` front door, plus the
flash-crowd admission pair, the coalescing pair at the knee, and the
membership-churn cell.  Fails if any shape check diverges — achieved
throughput must track offered load to the cost-model knee and plateau,
batch coalescing must move the knee vs per-request dispatch, admission
control must bound the flash-crowd queue-wait tail, and HIERAS must
serve the shared capacity at a lower end-to-end p99 than Chord.  The
same document is written as ``BENCH_serve.json`` by
``python -m repro.experiments serve-bench``.
"""

from conftest import run_experiment_benchmark


def test_saturation(benchmark):
    """Offered vs achieved throughput, knee location, tail bounds."""
    run_experiment_benchmark(benchmark, "saturation")
