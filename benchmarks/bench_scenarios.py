"""Benchmark: the failure-campaign scenario suite (repro.scenarios).

Delegates to the registered ``scenarios`` experiment: six named
campaigns — graceful vs abrupt mass departure, the correlated regional
(whole lowest-ring) failure, a flash join, Weibull session churn,
rolling landmark outages — each compiled once and replayed against
both stacks with availability, route-stretch, recovery-time and
durability measurements.  Fails if any claim diverges — the regional
campaign must exercise whole-ring loss and sustainably recover, the
graceful/abrupt pair must separate on stretch, the rebalance pass must
repair the flash-join dip, and the pinned regression gates must hold.
The same document is written as ``BENCH_scenarios.json`` by
``python -m repro.experiments scenario-bench``.
"""

from conftest import run_experiment_benchmark


def test_scenarios(benchmark):
    """Scenario sweep: availability, stretch, recovery, durability."""
    run_experiment_benchmark(benchmark, "scenarios")
