"""Benchmark + reproduction check for paper artifact fig2."""

from conftest import run_experiment_benchmark


def test_fig2(benchmark):
    """Regenerate fig2 and assert its paper-shape checks hold."""
    run_experiment_benchmark(benchmark, "fig2")
