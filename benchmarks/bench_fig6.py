"""Benchmark + reproduction check for paper artifact fig6."""

from conftest import run_experiment_benchmark


def test_fig6(benchmark):
    """Regenerate fig6 and assert its paper-shape checks hold."""
    run_experiment_benchmark(benchmark, "fig6")
