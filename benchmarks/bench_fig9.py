"""Benchmark + reproduction check for paper artifact fig9."""

from conftest import run_experiment_benchmark


def test_fig9(benchmark):
    """Regenerate fig9 and assert its paper-shape checks hold."""
    run_experiment_benchmark(benchmark, "fig9")
