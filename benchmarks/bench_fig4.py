"""Benchmark + reproduction check for paper artifact fig4."""

from conftest import run_experiment_benchmark


def test_fig4(benchmark):
    """Regenerate fig4 and assert its paper-shape checks hold."""
    run_experiment_benchmark(benchmark, "fig4")
