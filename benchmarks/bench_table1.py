"""Benchmark + reproduction check for paper artifact table1."""

from conftest import run_experiment_benchmark


def test_table1(benchmark):
    """Regenerate table1 and assert its paper-shape checks hold."""
    run_experiment_benchmark(benchmark, "table1")
