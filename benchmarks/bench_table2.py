"""Benchmark + reproduction check for paper artifact table2."""

from conftest import run_experiment_benchmark


def test_table2(benchmark):
    """Regenerate table2 and assert its paper-shape checks hold."""
    run_experiment_benchmark(benchmark, "table2")
