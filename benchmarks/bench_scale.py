"""Benchmark: million-peer scale-out at smoke size.

Delegates to the registered ``scale`` experiment, which builds
deployments through :mod:`repro.scale` (streaming latency models,
bounded transit-stub blocks), drives membership waves through the
incremental splice path, checks the spliced state bit-identical to a
full rebuild, and streams seeded lookups through both stacks in
bounded chunks.  The committed ``BENCH_scale.json`` holds the
N=1,000,000 / 10⁷-lookup acceptance evidence; this benchmark keeps the
same code paths timed at CI-friendly sizes.
"""

from conftest import run_experiment_benchmark


def test_scale(benchmark):
    """Build + waves + streamed lookups with all scale contracts gated."""
    run_experiment_benchmark(benchmark, "scale")
