"""Benchmarks for the ablation experiments (DESIGN.md §4).

Each ablation isolates one design choice the paper relies on: the
binning scheme itself, the successor-list acceleration, the CAN
transplant, the Pastry comparison and measurement-noise robustness.
"""

from conftest import run_experiment_benchmark


def test_ablation_binning(benchmark):
    """Random rings vs distributed binning (§2.2 is essential)."""
    run_experiment_benchmark(benchmark, "ablation_binning")


def test_ablation_succlist(benchmark):
    """Successor-list policies trade hops for top-ring shortcuts."""
    run_experiment_benchmark(benchmark, "ablation_succlist")


def test_ablation_can(benchmark):
    """HIERAS over CAN vs flat CAN (§3.2 generality)."""
    run_experiment_benchmark(benchmark, "ablation_can")


def test_ablation_pastry(benchmark):
    """Pastry (PNS) vs Chord vs HIERAS (§6 future work)."""
    run_experiment_benchmark(benchmark, "ablation_pastry")


def test_ablation_noise(benchmark):
    """Binning under noisy ping measurement (§2.2 robustness)."""
    run_experiment_benchmark(benchmark, "ablation_noise")


def test_ablation_landmark_failure(benchmark):
    """Landmark failures degrade gracefully (§2.3)."""
    run_experiment_benchmark(benchmark, "ablation_landmark_failure")
