"""Benchmark: the vectorized batch routing engine vs the scalar loop.

Delegates to the registered ``batch_route`` experiment, which routes
the same seeded trace through both trace-driven stacks with both
engines, gates on the deterministic engines-agree bits (exact hop and
bit-identical latency equality), and reports lookups/sec plus the
batch-over-scalar speedup per (stack, N) cell.
"""

from conftest import run_experiment_benchmark


def test_batch_route(benchmark):
    """Scalar vs batch wall time + exact-equivalence gate, both stacks."""
    run_experiment_benchmark(benchmark, "batch_route")
