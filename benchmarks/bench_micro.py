"""Micro-benchmarks of the hot primitives.

These are classic pytest-benchmark timings (many rounds) of the
operations that dominate experiment wall time: single-lookup routing on
each stack, topology generation, latency-model construction and the
binning pass.  They track performance regressions that the figure-level
benches (one timed round each) would hide.
"""

import numpy as np
import pytest

from repro.core.binning import BinningScheme
from repro.topology.latency import TransitStubLatencyModel
from repro.topology.transit_stub import TransitStubParams, generate_transit_stub


@pytest.fixture(scope="module")
def request_batch(midsize_bundle):
    rng = np.random.default_rng(0)
    n = midsize_bundle.config.n_peers
    sources = rng.integers(0, n, 200)
    keys = rng.integers(0, midsize_bundle.space.size, 200)
    return list(zip(sources.tolist(), keys.tolist()))


def test_chord_route_batch(benchmark, midsize_bundle, request_batch):
    """200 Chord lookups on a 2000-peer network."""

    def run():
        total = 0
        for s, k in request_batch:
            total += midsize_bundle.chord.route(s, k).hops
        return total

    total = benchmark(run)
    assert total > 0


def test_hieras_route_batch(benchmark, midsize_bundle, request_batch):
    """200 HIERAS lookups on a 2000-peer network."""

    def run():
        total = 0
        for s, k in request_batch:
            total += midsize_bundle.hieras.route(s, k).hops
        return total

    total = benchmark(run)
    assert total > 0


def test_topology_generation(benchmark):
    """Generate a ~2500-router transit-stub internetwork."""
    params = TransitStubParams.for_size(2500)
    topo = benchmark(generate_transit_stub, params, seed=1)
    assert topo.n_routers == params.n_routers


def test_latency_model_build(benchmark):
    """Build the exact hierarchical latency model (per-stub APSPs)."""
    topo = generate_transit_stub(TransitStubParams.for_size(2500), seed=1)
    model = benchmark(TransitStubLatencyModel, topo)
    assert model.pair(0, 0) == 0.0


def test_latency_queries(benchmark, midsize_bundle):
    """100k vectorised pairwise latency queries."""
    rng = np.random.default_rng(1)
    n = midsize_bundle.config.n_peers
    us = rng.integers(0, n, 100_000)
    vs = rng.integers(0, n, 100_000)
    out = benchmark(midsize_bundle.peer_latency.pairs, us, vs)
    assert len(out) == 100_000


def test_binning_pass(benchmark, midsize_bundle):
    """Quantise 2000 nodes x 4 landmarks into depth-4 orders."""
    distances = midsize_bundle.orders.distances
    scheme = BinningScheme.default_for_depth(4)
    orders = benchmark(scheme.orders, distances)
    assert orders.n_nodes == distances.shape[0]


def test_hieras_network_build(benchmark, midsize_bundle):
    """Construct all rings + directory from ids and orders."""
    from repro.core.hieras import HierasNetwork

    net = benchmark(
        HierasNetwork,
        midsize_bundle.space,
        midsize_bundle.node_ids,
        landmark_orders=midsize_bundle.orders,
        depth=2,
    )
    assert net.n_peers == midsize_bundle.config.n_peers


def test_pastry_table_construction(benchmark, midsize_bundle):
    """Build PNS routing tables for 2000 peers (Pastry baseline)."""
    from repro.dht.pastry import PastryNetwork

    net = benchmark.pedantic(
        PastryNetwork,
        args=(midsize_bundle.space, midsize_bundle.node_ids),
        kwargs={"latency": midsize_bundle.peer_latency, "seed": 1},
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    assert net.n_peers == midsize_bundle.config.n_peers


def test_storage_put_get(benchmark, midsize_bundle):
    """1000 puts + 1000 replicated gets through the KV layer."""
    from repro.dht.storage import DHTStore

    store = DHTStore(midsize_bundle.chord, replicas=2)

    def run():
        for i in range(1000):
            store.put(f"file-{i}", i)
        hits = 0
        for i in range(1000):
            value, _ = store.get(i % midsize_bundle.config.n_peers, f"file-{i}")
            hits += value is not None
        return hits

    hits = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    assert hits == 1000


def test_can_construction(benchmark):
    """Build a 1024-member CAN (zone tree + neighbour sets)."""
    import numpy as np

    from repro.dht.can import CanNetwork

    net = benchmark.pedantic(
        CanNetwork, args=(np.arange(1024),), kwargs={"seed": 1},
        rounds=1, iterations=1, warmup_rounds=0,
    )
    assert net.n_peers == 1024
