"""Benchmark: fault-injection resilience sweep (quantifying §3.3).

Delegates to the registered ``resilience`` experiment, which sweeps
failed-node fraction x message-loss rate over both static stacks with
failure-aware ``route_lossy`` lookups, then drives the discrete-event
protocol stack through the same fault plan shape.
"""

from conftest import run_experiment_benchmark


def test_resilience_sweep(benchmark):
    """Lookup success and timeout-penalised latency under crashes + loss."""
    run_experiment_benchmark(benchmark, "resilience")
