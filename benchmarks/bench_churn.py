"""Benchmark: protocol-stack churn (quantifying §3.3–§3.4).

Delegates to the registered ``churn`` experiment, which replays a
Poisson churn schedule on the message-level HIERAS protocol and checks
lookup correctness against the surviving membership — with and without
injected message loss.
"""

from conftest import run_experiment_benchmark


def test_churn_protocol(benchmark):
    """HIERAS protocol under churn: lookups stay correct, upkeep bounded."""
    run_experiment_benchmark(benchmark, "churn")
