"""Convenience facade: build a ready-to-route HIERAS network in one call.

Most users start with :func:`quick_network`; it wires together a
transit-stub topology, overlay attachment, landmark placement, binning
and a two-layer HIERAS network, returning everything as a
:class:`NetworkBundle`.  Everything the facade does can be done (and is
documented) piecewise in the underlying packages — this is sugar, not
the only entry point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.util.rng import RngFactory

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.hieras import HierasNetwork
    from repro.dht.base import RouteResult
    from repro.dht.chord import ChordNetwork
    from repro.topology.attach import OverlayAttachment, PeerLatencyView
    from repro.topology.base import Topology

__all__ = ["NetworkBundle", "quick_network"]


@dataclass
class NetworkBundle:
    """A fully wired simulation: topology, overlay and both DHTs.

    Attributes
    ----------
    topology / attachment / peer_latency:
        The substrate: router graph, peer→router placement, and the
        peer-indexed latency view.
    chord:
        Flat Chord network over the same peers (the paper's baseline).
    hieras:
        The HIERAS network (the paper's contribution).
    """

    topology: "Topology"
    attachment: "OverlayAttachment"
    peer_latency: "PeerLatencyView"
    chord: "ChordNetwork"
    hieras: "HierasNetwork"

    def route(self, source: int, key: int) -> "RouteResult":
        """Route ``key`` from ``source`` through HIERAS."""
        return self.hieras.route(source, key)

    def route_chord(self, source: int, key: int) -> "RouteResult":
        """Route ``key`` from ``source`` through flat Chord."""
        return self.chord.route(source, key)


def quick_network(
    n_peers: int = 256,
    *,
    n_landmarks: int = 4,
    depth: int = 2,
    seed: int = 0,
    bits: int = 32,
    model: str = "ts",
) -> NetworkBundle:
    """Build a small HIERAS network ready for routing.

    Parameters mirror the paper's defaults: 4 landmark nodes, a
    two-layer hierarchy, and the transit-stub topology (§4.1); ``model``
    selects ``"ts"``, ``"inet"`` or ``"brite"`` (Inet requires
    ``n_peers * 1.25 >= 3000``, the generator's floor).

    Examples
    --------
    >>> bundle = quick_network(n_peers=128, seed=3)
    >>> r = bundle.route(source=5, key=99)
    >>> r.latency_ms <= bundle.route_chord(source=5, key=99).latency_ms * 3
    True
    """
    # Imported here so `import repro` stays light and the facade module
    # can be imported while the heavier packages are being built/tested.
    from repro.core.binning import BinningScheme
    from repro.core.hieras import HierasNetwork
    from repro.dht.chord import ChordNetwork
    from repro.topology.attach import OverlayAttachment, attach_overlay, place_landmarks
    from repro.topology.brite import BriteParams, generate_brite
    from repro.topology.inet import InetParams, generate_inet
    from repro.topology.latency import latency_model_for
    from repro.topology.transit_stub import TransitStubParams, generate_transit_stub
    from repro.util.ids import IdSpace
    from repro.util.validation import require

    require(model in ("ts", "inet", "brite"), f"unknown model {model!r}")
    rngs = RngFactory(seed)
    n_routers = max(64, int(n_peers * 1.25))
    if model == "ts":
        params = TransitStubParams.for_size(n_routers)
        topology = generate_transit_stub(params, seed=rngs.get("topology"))
    elif model == "inet":
        topology = generate_inet(InetParams(n_nodes=n_routers), seed=rngs.get("topology"))
    else:
        topology = generate_brite(BriteParams(n_nodes=n_routers), seed=rngs.get("topology"))
    model = latency_model_for(topology)
    routers = attach_overlay(topology, n_peers, seed=rngs.get("attach"))
    landmarks = place_landmarks(topology, model, n_landmarks, seed=rngs.get("landmarks"))
    attachment = OverlayAttachment(topology, routers, landmarks)
    peer_latency = attachment.peer_latency(model)

    space = IdSpace(bits=bits)
    node_ids = space.sample_unique_ids(n_peers, rngs.get("node-ids"))
    chord = ChordNetwork(space, node_ids, latency=peer_latency)

    distances = attachment.landmark_distances(model)
    binning = BinningScheme.default_for_depth(depth)
    orders = binning.orders(distances)
    hieras = HierasNetwork(
        space, node_ids, latency=peer_latency, landmark_orders=orders, depth=depth
    )
    return NetworkBundle(
        topology=topology,
        attachment=attachment,
        peer_latency=peer_latency,
        chord=chord,
        hieras=hieras,
    )
