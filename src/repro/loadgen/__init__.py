"""Deterministic open-loop load generation and SLO reporting.

Three pieces (DESIGN.md §12):

* :mod:`repro.loadgen.schedule` — arrival schedules (constant-rate,
  diurnal sinusoid, flash crowd, linear ramp) turned into arrival
  instants via time-rescaling of a seeded unit-rate process;
* :mod:`repro.loadgen.workload` — a locust-style user mix (3:1
  read:write over a Zipf key catalogue) stamping each arrival into a
  :class:`~repro.serve.request.Request`;
* :mod:`repro.loadgen.slo` — the SLO reporter condensing a serve run's
  metrics into offered/achieved throughput and p50/p99/p999 per phase.

Everything is a pure function of its seed — same inputs, same bytes.
"""

from repro.loadgen.schedule import Schedule, constant_rate, diurnal, flash_crowd, ramp
from repro.loadgen.slo import PHASES, SLOReport, phase_stats
from repro.loadgen.workload import WorkloadMix, catalog_names, generate

__all__ = [
    "PHASES",
    "SLOReport",
    "Schedule",
    "WorkloadMix",
    "catalog_names",
    "constant_rate",
    "diurnal",
    "flash_crowd",
    "generate",
    "phase_stats",
    "ramp",
]
