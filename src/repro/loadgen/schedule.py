"""Deterministic open-loop arrival schedules.

An open-loop generator decides arrival times *independently of
completions* — the service never gets breathing room by being slow,
which is what makes saturation observable (closed-loop generators
self-throttle and hide the knee).  A :class:`Schedule` describes an
offered-rate curve ``r(t)`` over a finite window; arrival times come
from the standard time-rescaling construction: draw a unit-rate
arrival process (Poisson via seeded exponential gaps, or the
deterministic fluid limit), then map it through the inverse of the
cumulative rate ``Λ(t) = ∫ r``.  Everything is a pure function of
``(schedule, seed)``: the same inputs reproduce the same arrival
array byte for byte, on any machine.

Four canonical shapes cover the serving experiments:

* ``constant_rate`` — the saturation-sweep workhorse;
* ``diurnal`` — a sinusoidal day/night swing around a base rate;
* ``flash_crowd`` — a rectangular ``spike_factor×`` burst dropped into
  an otherwise constant stream (the admission-control stress test);
* ``ramp`` — a linear sweep from one rate to another (knee hunting in
  a single run).

``Λ`` is integrated by the midpoint rule over a knot grid that
includes every rate discontinuity, so it is *exact* for the constant,
flash-crowd, and ramp shapes and accurate to O(dt²) for the diurnal
sinusoid.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
import numpy.typing as npt

from repro.util.rng import make_rng
from repro.util.validation import require

__all__ = [
    "Schedule",
    "constant_rate",
    "diurnal",
    "flash_crowd",
    "ramp",
]

#: Grid cells used to integrate smooth (diurnal) rate curves.
_SMOOTH_CELLS = 4096

_KINDS = ("constant", "diurnal", "flash", "ramp")


@dataclass(frozen=True)
class Schedule:
    """An offered-rate curve over ``[0, duration_ms)``.

    ``rate_per_s`` is the base rate; the shape-specific fields modulate
    it.  Use the module-level constructors rather than building one by
    hand — they validate the shape-relevant fields.
    """

    kind: str
    duration_ms: float
    rate_per_s: float
    #: Diurnal: fractional swing (rate varies ±amplitude around base).
    amplitude: float = 0.0
    #: Diurnal: period of the sinusoid.
    period_ms: float = 86_400_000.0
    #: Flash crowd: burst start / length / rate multiplier.
    spike_at_ms: float = 0.0
    spike_duration_ms: float = 0.0
    spike_factor: float = 1.0
    #: Ramp: rate at the end of the window (linear from rate_per_s).
    end_rate_per_s: float = 0.0

    def __post_init__(self) -> None:
        require(self.kind in _KINDS, f"unknown schedule kind {self.kind!r}")
        require(self.duration_ms > 0, f"duration_ms must be > 0, got {self.duration_ms}")
        require(self.rate_per_s >= 0, f"rate_per_s must be >= 0, got {self.rate_per_s}")

    # ------------------------------------------------------------------
    def rates_at(self, t_ms: npt.NDArray[np.float64]) -> npt.NDArray[np.float64]:
        """Offered rate (requests/second) at each time in ``t_ms``."""
        t = np.asarray(t_ms, dtype=np.float64)
        if self.kind == "constant":
            r = np.full(t.shape, self.rate_per_s)
        elif self.kind == "diurnal":
            phase = 2.0 * math.pi * t / self.period_ms
            r = self.rate_per_s * (1.0 + self.amplitude * np.sin(phase))
        elif self.kind == "flash":
            in_spike = (t >= self.spike_at_ms) & (t < self.spike_at_ms + self.spike_duration_ms)
            r = np.where(in_spike, self.rate_per_s * self.spike_factor, self.rate_per_s)
        else:  # ramp
            frac = np.clip(t / self.duration_ms, 0.0, 1.0)
            r = self.rate_per_s + (self.end_rate_per_s - self.rate_per_s) * frac
        return np.maximum(np.asarray(r, dtype=np.float64), 0.0)

    def _knots(self) -> npt.NDArray[np.float64]:
        """Integration grid: every rate discontinuity is a knot."""
        if self.kind == "constant":
            pts = [0.0, self.duration_ms]
        elif self.kind == "flash":
            pts = [0.0, self.duration_ms]
            for edge in (self.spike_at_ms, self.spike_at_ms + self.spike_duration_ms):
                if 0.0 < edge < self.duration_ms:
                    pts.append(edge)
        elif self.kind == "ramp":
            pts = [0.0, self.duration_ms]
        else:  # diurnal: smooth — dense grid
            return np.linspace(0.0, self.duration_ms, _SMOOTH_CELLS + 1)
        return np.unique(np.asarray(sorted(pts), dtype=np.float64))

    def cumulative(self) -> tuple[npt.NDArray[np.float64], npt.NDArray[np.float64]]:
        """``(t_knots, Λ(t_knots))`` — the integrated rate curve.

        Midpoint-rule integration per cell: exact for piecewise-linear
        rates (constant, flash, ramp), O(dt²) for the sinusoid.
        ``Λ`` is in expected *arrivals* (rate is per second, time per
        millisecond — the 1000 factor is applied here).
        """
        t = self._knots()
        dt = np.diff(t)
        mid_rates = self.rates_at((t[:-1] + t[1:]) / 2.0)
        lam = np.concatenate([[0.0], np.cumsum(mid_rates * dt / 1000.0)])
        return t, lam

    @property
    def expected_arrivals(self) -> float:
        """Expected request count over the whole window."""
        return float(self.cumulative()[1][-1])

    # ------------------------------------------------------------------
    def arrival_times(
        self,
        seed: int | np.random.Generator = 0,
        *,
        jitter: str = "poisson",
    ) -> npt.NDArray[np.float64]:
        """Arrival instants (ms, sorted) over ``[0, duration_ms)``.

        ``jitter="poisson"`` draws a seeded unit-rate Poisson process
        and rescales it through ``Λ⁻¹`` — an inhomogeneous Poisson
        process with intensity ``r(t)``.  ``jitter="none"`` is the
        deterministic fluid limit: the k-th arrival lands where
        ``Λ(t) = k - ½``.  Both are byte-reproducible functions of
        ``(schedule, seed)``.
        """
        require(jitter in ("poisson", "none"), f"unknown jitter {jitter!r}")
        t_knots, lam = self.cumulative()
        total = float(lam[-1])
        if total <= 0.0:
            return np.empty(0, dtype=np.float64)
        if jitter == "none":
            marks = np.arange(0.5, total, 1.0, dtype=np.float64)
        else:
            rng = make_rng(seed)
            gaps: list[npt.NDArray[np.float64]] = []
            running = 0.0
            # Draw in chunks until the unit-rate process passes Λ(T).
            chunk = int(total + 10.0 * math.sqrt(total) + 16.0)
            while running <= total:
                draw = rng.exponential(1.0, size=chunk)
                gaps.append(draw)
                running += float(draw.sum())
            unit = np.cumsum(np.concatenate(gaps))
            marks = unit[unit <= total]
        return np.interp(marks, lam, t_knots)


def constant_rate(rate_per_s: float, duration_ms: float) -> Schedule:
    """A flat offered-load window (the saturation-sweep cell shape)."""
    return Schedule(kind="constant", duration_ms=duration_ms, rate_per_s=rate_per_s)


def diurnal(
    base_rate_per_s: float,
    duration_ms: float,
    *,
    amplitude: float = 0.5,
    period_ms: float = 86_400_000.0,
) -> Schedule:
    """A sinusoidal day/night swing: ``base × (1 + amplitude·sin)``."""
    require(0.0 <= amplitude <= 1.0, f"amplitude must be in [0, 1], got {amplitude}")
    require(period_ms > 0, f"period_ms must be > 0, got {period_ms}")
    return Schedule(
        kind="diurnal", duration_ms=duration_ms, rate_per_s=base_rate_per_s,
        amplitude=amplitude, period_ms=period_ms,
    )


def flash_crowd(
    base_rate_per_s: float,
    duration_ms: float,
    *,
    spike_at_ms: float,
    spike_duration_ms: float,
    spike_factor: float = 8.0,
) -> Schedule:
    """A rectangular burst: ``spike_factor×`` base inside the window."""
    require(spike_at_ms >= 0, f"spike_at_ms must be >= 0, got {spike_at_ms}")
    require(spike_duration_ms > 0, f"spike_duration_ms must be > 0, got {spike_duration_ms}")
    require(spike_factor >= 1, f"spike_factor must be >= 1, got {spike_factor}")
    return Schedule(
        kind="flash", duration_ms=duration_ms, rate_per_s=base_rate_per_s,
        spike_at_ms=spike_at_ms, spike_duration_ms=spike_duration_ms,
        spike_factor=spike_factor,
    )


def ramp(
    start_rate_per_s: float,
    end_rate_per_s: float,
    duration_ms: float,
) -> Schedule:
    """A linear offered-rate sweep from start to end over the window."""
    require(end_rate_per_s >= 0, f"end_rate_per_s must be >= 0, got {end_rate_per_s}")
    return Schedule(
        kind="ramp", duration_ms=duration_ms, rate_per_s=start_rate_per_s,
        end_rate_per_s=end_rate_per_s,
    )
