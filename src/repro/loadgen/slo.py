"""SLO reporting: turn a serve run into throughput + tail-latency facts.

:class:`SLOReport` reads the ``serve.*`` counters and phase histograms
a :class:`~repro.serve.service.DHTService` run recorded and condenses
them into the numbers an operator would put on a dashboard: offered vs
achieved throughput, outcome counts, and per-phase latency quantiles
(p50/p99/p999) with the queue-wait / dispatch / route / replica-fan-out
breakdown.  Quantiles come from the deterministic log-bucketed
histograms in :mod:`repro.metrics` (~one log-bucket relative error),
so the whole report — :meth:`SLOReport.as_dict` included — is
byte-reproducible for a fixed run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.metrics.registry import Histogram
from repro.serve.service import ServeResult

__all__ = ["PHASES", "SLOReport", "phase_stats"]

#: Latency phases reported per run: metric suffix -> histogram name.
PHASES = {
    "total": "serve.total_ms",
    "queue_wait": "serve.queue_wait_ms",
    "service": "serve.service_ms",
    "route": "serve.route_ms",
    "fanout": "serve.fanout_ms",
    "get_total": "serve.get.total_ms",
    "put_total": "serve.put.total_ms",
}

#: Quantiles every phase reports.
_QUANTILES = (("p50", 0.50), ("p99", 0.99), ("p999", 0.999))


def phase_stats(hist: Histogram | None) -> dict[str, float]:
    """One phase's dashboard row (zeros for a phase never observed)."""
    if hist is None or hist.count == 0:
        return {"count": 0.0, "mean": 0.0, "p50": 0.0, "p99": 0.0, "p999": 0.0, "max": 0.0}
    row = {"count": float(hist.count), "mean": hist.mean, "max": hist.max}
    for label, q in _QUANTILES:
        row[label] = hist.quantile(q)
    return row


@dataclass(frozen=True)
class SLOReport:
    """Throughput and tail-latency summary of one serve run."""

    offered_per_s: float
    duration_ms: float
    arrivals: int
    served: int
    rejected: int
    shed: int
    failed: int
    achieved_per_s: float
    makespan_ms: float
    max_queue_depth: int
    mean_batch_size: float
    phases: dict[str, dict[str, float]]

    @classmethod
    def from_result(
        cls,
        result: ServeResult,
        *,
        offered_per_s: float,
        duration_ms: float,
    ) -> "SLOReport":
        """Condense a :class:`ServeResult` into SLO numbers.

        ``offered_per_s``/``duration_ms`` describe the *schedule* (what
        the generator tried to impose); everything else is measured
        from the run's registry and completion counts.
        """
        reg = result.registry
        batch_hist = reg.histograms.get("serve.batch_size")
        phases = {
            label: phase_stats(reg.histograms.get(metric))
            for label, metric in PHASES.items()
        }
        return cls(
            offered_per_s=float(offered_per_s),
            duration_ms=float(duration_ms),
            arrivals=len(result.completions),
            served=result.served,
            rejected=result.rejected,
            shed=result.counts.get("deadline", 0),
            failed=result.counts.get("failed", 0),
            achieved_per_s=result.throughput_per_s,
            makespan_ms=result.makespan_ms,
            max_queue_depth=result.max_queue_depth,
            mean_batch_size=batch_hist.mean if batch_hist is not None else 0.0,
            phases=phases,
        )

    @property
    def goodput_fraction(self) -> float:
        """Served arrivals as a fraction of all arrivals (1.0 when idle)."""
        return self.served / self.arrivals if self.arrivals else 1.0

    def as_dict(self) -> dict[str, object]:
        """Stable JSON-safe dump (insertion order is deterministic)."""
        return {
            "offered_per_s": self.offered_per_s,
            "duration_ms": self.duration_ms,
            "arrivals": self.arrivals,
            "served": self.served,
            "rejected": self.rejected,
            "shed": self.shed,
            "failed": self.failed,
            "achieved_per_s": self.achieved_per_s,
            "goodput_fraction": self.goodput_fraction,
            "makespan_ms": self.makespan_ms,
            "max_queue_depth": self.max_queue_depth,
            "mean_batch_size": self.mean_batch_size,
            "phases": {k: dict(v) for k, v in sorted(self.phases.items())},
        }
