"""User-mix workload generation over an arrival schedule.

A :class:`WorkloadMix` describes *what* each arrival does — locust
style: a read-heavy ``get``/``put`` mix (3:1 by default) over a
Zipf-popular key catalogue, issued from sources drawn uniformly from a
peer pool.  :func:`generate` marries a mix with the arrival instants
produced by :class:`~repro.loadgen.schedule.Schedule` and emits the
sorted :class:`~repro.serve.request.Request` list the service
consumes.  All randomness flows through one ``make_rng(seed)``
generator in a fixed draw order, so the same ``(mix, arrivals, pool,
seed)`` reproduce the same request list byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import numpy.typing as npt

from repro.serve.request import Request
from repro.util.rng import make_rng
from repro.util.validation import require
from repro.workloads.requests import zipf_weights

__all__ = ["WorkloadMix", "catalog_names", "generate"]


@dataclass(frozen=True)
class WorkloadMix:
    """What the request stream is made of.

    ``read_fraction`` of arrivals are ``get``s, the rest ``put``s; both
    pick keys by Zipf popularity rank over a ``catalog_size`` catalogue
    (rank 1 is hottest), matching the cache-effect workload model from
    :mod:`repro.workloads`.
    """

    read_fraction: float = 0.75
    catalog_size: int = 512
    zipf_exponent: float = 0.95
    name_prefix: str = "key"

    def __post_init__(self) -> None:
        require(
            0.0 <= self.read_fraction <= 1.0,
            f"read_fraction must be in [0, 1], got {self.read_fraction}",
        )
        require(self.catalog_size >= 1, f"catalog_size must be >= 1, got {self.catalog_size}")
        require(self.zipf_exponent > 0, f"zipf_exponent must be > 0, got {self.zipf_exponent}")


def catalog_names(mix: WorkloadMix) -> list[str]:
    """The key catalogue, hottest first (rank order matches Zipf weights)."""
    return [f"{mix.name_prefix}-{rank}" for rank in range(1, mix.catalog_size + 1)]


def generate(
    mix: WorkloadMix,
    arrivals_ms: npt.NDArray[np.float64],
    source_pool: npt.NDArray[np.int64],
    seed: int | np.random.Generator = 0,
) -> list[Request]:
    """Turn arrival instants into a sorted, serviceable request list.

    Draw order is fixed (ops, then key ranks, then sources — one
    vectorized draw each), so output is a pure function of the inputs.
    ``put`` values are ``"v<seq>"`` — unique per request, which lets
    tests distinguish write versions end to end.
    """
    arrivals = np.sort(np.asarray(arrivals_ms, dtype=np.float64))
    pool = np.asarray(source_pool, dtype=np.int64)
    require(pool.size > 0, "source_pool must be non-empty")
    n = int(arrivals.size)
    if n == 0:
        return []
    rng = make_rng(seed)
    is_get = rng.random(n) < mix.read_fraction
    ranks = rng.choice(
        mix.catalog_size, size=n, p=zipf_weights(mix.catalog_size, mix.zipf_exponent)
    )
    sources = pool[rng.integers(0, pool.size, size=n)]
    requests: list[Request] = []
    for i in range(n):
        name = f"{mix.name_prefix}-{int(ranks[i]) + 1}"
        if is_get[i]:
            requests.append(
                Request(op="get", at_ms=float(arrivals[i]), source=int(sources[i]), name=name)
            )
        else:
            requests.append(
                Request(
                    op="put", at_ms=float(arrivals[i]), source=int(sources[i]),
                    name=name, value=f"v{i}",
                )
            )
    return requests
