"""Cache-aware routing over either trace-driven stack (DESIGN.md §9).

:class:`CachedNetwork` wraps a flat :class:`~repro.dht.chord.ChordNetwork`
or a :class:`~repro.core.hieras.HierasNetwork` and serves lookups
CFS-style: a completed lookup installs its answer in the cache of every
node along the path it took, so later requests for the same (hot) key
terminate at the first cache holder they meet — or jump straight to the
owner via a cached routing shortcut — instead of walking the full
finger-table path to the owner every time.  Hot-key load spreads from
the key's owner across the cache holders, and mean hop/latency drops
with the workload's skew (the ``cache_effect`` experiment quantifies
both).

Correctness under staleness is explicit, never assumed:

* plain :meth:`CachedNetwork.route_cached` verifies a cached shortcut
  against current membership — a removed or no-longer-responsible
  owner is evicted and the lookup continues by real routing;
* :meth:`CachedNetwork.route_cached_lossy` works under a
  :class:`~repro.faults.injector.FaultInjector`: contacting a cached
  owner that has silently crashed times out (paying the retry policy's
  penalty), the entry is evicted, and the lookup falls back to the
  failure-aware ``route_lossy`` path.

Determinism: caches are plain dicts in insertion order, the cache clock
(:attr:`CachedNetwork.now_ms`) only moves via :meth:`advance_to`, and
no RNG is involved — a replayed trace reproduces hits, evictions and
load counts exactly.  Observability follows the §7 contract: with no
recorder attached a cached lookup pays ``is None`` checks only; with
one attached, spans carry per-hop cache annotations and the registry
counts ``cache.*`` events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro.cache.policy import CachePolicy
from repro.cache.store import CacheEntry, NodeCache
from repro.dht.base import DHTNetwork, RouteResult
from repro.faults.injector import FaultInjector, LossyContext
from repro.topology.base import LatencyModel
from repro.util.ids import IdSpace
from repro.util.validation import require

__all__ = ["CacheableNetwork", "CachedNetwork", "CacheStats"]


class CacheableNetwork(Protocol):
    """Surface the cache layer needs from an inner routing stack.

    Both trace-driven stacks (:class:`~repro.dht.chord.ChordNetwork`,
    :class:`~repro.core.hieras.HierasNetwork`) satisfy this
    structurally; anything else that does can be cached too.
    """

    space: IdSpace
    latency: LatencyModel

    @property
    def n_peers(self) -> int: ...

    def owner_of(self, key: int) -> int: ...

    def is_alive(self, peer: int) -> bool: ...

    def route(self, source: int, key: int) -> RouteResult: ...

    def route_lossy(
        self, source: int, key: int, *, injector: FaultInjector
    ) -> RouteResult: ...

    def hop_layer_info(self, result: RouteResult) -> tuple[list[int], list[str]]: ...


@dataclass
class CacheStats:
    """Aggregate cache-event counters (always on — plain integer adds).

    ``hits == value_hits + shortcut_hits``; ``lookups == hits + misses``
    (stale fallbacks count as misses: the full path was paid).
    """

    lookups: int = 0
    value_hits: int = 0
    shortcut_hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    expirations: int = 0
    stale_evictions: int = 0

    @property
    def hits(self) -> int:
        return self.value_hits + self.shortcut_hits

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from some cache (0 when idle)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict[str, float]:
        """Stable JSON-safe dump (sorted keys; used by BENCH_cache)."""
        return {
            "lookups": float(self.lookups),
            "hits": float(self.hits),
            "value_hits": float(self.value_hits),
            "shortcut_hits": float(self.shortcut_hits),
            "misses": float(self.misses),
            "hit_rate": self.hit_rate,
            "insertions": float(self.insertions),
            "evictions": float(self.evictions),
            "expirations": float(self.expirations),
            "stale_evictions": float(self.stale_evictions),
        }


class CachedNetwork(DHTNetwork):
    """A caching layer over one inner routing stack.

    Parameters
    ----------
    inner:
        The network being cached.  Attach span recorders to *this*
        wrapper (not to ``inner``) — cached lookups are recorded once,
        with cache annotations, under :attr:`label`.
    policy:
        Cache sizing/eviction knobs; ``capacity=0`` makes the wrapper a
        transparent pass-through (useful as the uncached baseline with
        identical accounting).
    label:
        Span/metric label; defaults to ``cached-chord`` /
        ``cached-hieras`` from the inner network's type.

    Notes
    -----
    ``route`` delegates to :meth:`route_cached`, so the wrapper is a
    drop-in :class:`~repro.dht.base.DHTNetwork` — ``collect_routes``,
    the analysis layer and the experiment harness all work unchanged.
    ``RouteResult.owner`` is the peer that *served* the request (always
    ``path[-1]``): the key's owner on a miss or shortcut, a cache
    holder on a value hit.
    """

    def __init__(
        self,
        inner: CacheableNetwork,
        policy: CachePolicy | None = None,
        *,
        label: str | None = None,
    ) -> None:
        self.inner = inner
        self.policy = policy if policy is not None else CachePolicy()
        self.space = inner.space
        self.latency = inner.latency
        if label is None:
            name = type(inner).__name__.lower()
            if "hieras" in name:
                label = "cached-hieras"
            elif "chord" in name:
                label = "cached-chord"
            else:
                label = "cached"
        self.label = label
        #: Simulated cache clock (ms); advanced only by :meth:`advance_to`.
        self.now_ms = 0.0
        self._caches: dict[int, NodeCache] = {}
        self._served: dict[int, int] = {}
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    # clock & plumbing
    # ------------------------------------------------------------------
    def advance_to(self, t_ms: float) -> None:
        """Move the cache clock forward (drives TTL expiry)."""
        require(t_ms >= self.now_ms, "the cache clock cannot run backwards")
        self.now_ms = t_ms

    def cache_of(self, peer: int) -> NodeCache:
        """The (lazily created) cache of one peer."""
        cache = self._caches.get(peer)
        if cache is None:
            cache = self._caches[peer] = NodeCache(self.policy)
        return cache

    @property
    def n_peers(self) -> int:
        return self.inner.n_peers

    def owner_of(self, key: int) -> int:
        return self.inner.owner_of(key)

    def route(self, source: int, key: int) -> RouteResult:
        """Cache-aware routing (the :meth:`route_cached` entry point)."""
        return self.route_cached(source, key)

    # ------------------------------------------------------------------
    # load accounting
    # ------------------------------------------------------------------
    def served_counts(self) -> dict[int, int]:
        """Requests terminally served per peer (sorted by peer index)."""
        return {p: self._served[p] for p in sorted(self._served)}

    def load_summary(self) -> dict[str, float]:
        """Owner-load concentration: max/mean requests served per node.

        ``concentration`` is ``max_served / (total / n_peers)`` — 1.0
        would be a perfectly even spread; hot-key workloads without
        caching concentrate load on the hot keys' owners.
        """
        total = sum(self._served.values())
        peak = max(self._served.values()) if self._served else 0
        n = self.inner.n_peers
        mean = total / n if n else 0.0
        return {
            "total_served": float(total),
            "max_served": float(peak),
            "mean_served": mean,
            "concentration": peak / mean if mean else 0.0,
        }

    # ------------------------------------------------------------------
    # cache-aware routing
    # ------------------------------------------------------------------
    def route_cached(self, source: int, key: int) -> RouteResult:
        """Route ``key`` from ``source``, consulting caches on the way.

        Order of checks (all deterministic):

        1. ``source``'s own cache — a value hit serves locally (0
           hops); a *verified* shortcut jumps straight to the owner
           (1 hop).  A stale shortcut (owner removed, or no longer the
           key's successor after membership change) is evicted and the
           lookup proceeds by real routing — from the ex-owner if it is
           still a member (it forwards), from scratch otherwise (the
           wasted probe is charged as one timeout's retry latency).
        2. The inner network's path toward the owner, truncated at the
           first node holding a cached value (it serves) or a verified
           shortcut (it forwards directly to the owner).
        3. On a full miss the path runs to the owner, CFS-style path
           population installs the answer along it.
        """
        key = self.space.wrap(int(key))
        now = self.now_ms
        self.stats.lookups += 1
        src_cache = self.cache_of(source)
        entry, expired = src_cache.get(key, now)
        if expired:
            self.stats.expirations += 1
            self._count("cache.expirations")
        if entry is not None and entry.has_value:
            return self._finish_hit(source, key, [source], "value-hit")
        if entry is not None:
            owner = entry.owner
            if self.inner.is_alive(owner) and self.inner.owner_of(key) == owner:
                return self._finish_hit(source, key, [source, owner], "shortcut")
            # Stale shortcut: the cached owner is gone or demoted.
            src_cache.evict(key)
            self.stats.stale_evictions += 1
            self._count("cache.stale_evictions")
            if self.inner.is_alive(owner):
                # The ex-owner is still a member: it forwards the
                # request onward, so the probe hop is part of the path.
                cont = self.inner.route(owner, key)
                layers, rings = self.inner.hop_layer_info(cont)
                return self._routed(
                    source,
                    key,
                    [source, *cont.path],
                    [1, *layers],
                    ["global", *rings],
                    ["stale", *([""] * (len(cont.path) - 1))],
                    timeouts=0,
                    retry_latency_ms=0.0,
                )
            # The cached owner left the overlay entirely: the probe
            # times out and the lookup restarts from the source.
            penalty = float(self.latency.pair(source, owner))
            return self._route_miss(source, key, timeouts=1, retry_latency_ms=penalty)
        return self._route_miss(source, key)

    def _route_miss(
        self, source: int, key: int, *, timeouts: int = 0, retry_latency_ms: float = 0.0
    ) -> RouteResult:
        """Real routing with path-cache consultation and population."""
        inner_res = self.inner.route(source, key)
        path = inner_res.path
        layers, rings = self.inner.hop_layer_info(inner_res)
        now = self.now_ms
        for i in range(1, len(path) - 1):
            node = path[i]
            entry, expired = self.cache_of(node).get(key, now)
            if expired:
                self.stats.expirations += 1
                self._count("cache.expirations")
            if entry is None:
                continue
            if entry.has_value:
                # The request terminates here: this node serves the
                # cached answer instead of forwarding further.
                return self._finish_hit(
                    source,
                    key,
                    path[: i + 1],
                    "value-hit",
                    layers=layers[:i],
                    rings=rings[:i],
                    owner_hint=entry.owner,
                    timeouts=timeouts,
                    retry_latency_ms=retry_latency_ms,
                )
            if self.inner.is_alive(entry.owner) and entry.owner == path[-1]:
                # Routing shortcut: forward straight to the owner.
                return self._finish_hit(
                    source,
                    key,
                    [*path[: i + 1], path[-1]],
                    "shortcut",
                    layers=layers[:i],
                    rings=rings[:i],
                    timeouts=timeouts,
                    retry_latency_ms=retry_latency_ms,
                )
            self.cache_of(node).evict(key)
            self.stats.stale_evictions += 1
            self._count("cache.stale_evictions")
        self.stats.misses += 1
        self._count("cache.misses")
        return self._routed(
            source,
            key,
            path,
            layers,
            rings,
            [""] * (len(path) - 1),
            timeouts=timeouts,
            retry_latency_ms=retry_latency_ms,
        )

    # ------------------------------------------------------------------
    # failure-aware cache routing
    # ------------------------------------------------------------------
    def route_cached_lossy(
        self, source: int, key: int, *, injector: FaultInjector
    ) -> RouteResult:
        """Cache-aware routing under an active fault injector.

        A locally cached value is served without any network contact (a
        crashed owner cannot invalidate copies already spread — the
        staleness tradeoff DESIGN.md §9 discusses).  A cached routing
        shortcut must *contact* the cached owner: if that contact times
        out (silent crash, partition, loss), the entry is evicted, the
        timeout penalty is charged, and the lookup falls back to the
        failure-aware ``route_lossy`` path over the inner network.
        Fallback and miss lookups still populate path caches on
        success, so the cache keeps adapting to the post-fault world.
        """
        key = self.space.wrap(int(key))
        now = self.now_ms
        self.stats.lookups += 1
        src_cache = self.cache_of(source)
        entry, expired = src_cache.get(key, now)
        if expired:
            self.stats.expirations += 1
            self._count("cache.expirations")
        if entry is not None and entry.has_value:
            return self._finish_hit(source, key, [source], "value-hit")
        ctx = LossyContext()
        if entry is not None:
            if injector.contact(source, entry.owner, ctx):
                return self._finish_hit(
                    source,
                    key,
                    [source, entry.owner],
                    "shortcut",
                    timeouts=ctx.timeouts,
                    retry_latency_ms=ctx.retry_latency_ms,
                )
            # The cached owner is unreachable (crashed, partitioned or
            # lossy): detected by the failed contact, evicted, and the
            # lookup falls back to failure-aware routing.
            src_cache.evict(key)
            self.stats.stale_evictions += 1
            self._count("cache.stale_evictions")
        result = self.inner.route_lossy(source, key, injector=injector)
        self.stats.misses += 1
        self._count("cache.misses")
        layers, rings = self.inner.hop_layer_info(result)
        merged = RouteResult(
            source=result.source,
            key=result.key,
            owner=result.owner,
            path=result.path,
            latency_ms=result.latency_ms,
            hops_per_layer=result.hops_per_layer,
            success=result.success,
            timeouts=result.timeouts + ctx.timeouts,
            retry_latency_ms=result.retry_latency_ms + ctx.retry_latency_ms,
        )
        if merged.success:
            self._serve(merged.path[-1])
            self._populate(key, merged.path, merged.path[-1])
        if self.metrics is not None:
            self.record_route(
                self.label, merged, layers=layers, rings=rings,
                cache=[""] * (len(merged.path) - 1),
            )
        return merged

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _count(self, name: str, n: int = 1) -> None:
        """Registry-side cache counter (no-op without a recorder)."""
        if self.metrics is not None:
            self.metrics.registry.inc(name, n)

    def _serve(self, peer: int) -> None:
        self._served[peer] = self._served.get(peer, 0) + 1

    def _populate(self, key: int, path: list[int], server: int) -> None:
        """Install the answer along the path (CFS-style, §3.2)."""
        if not self.policy.enabled:
            return
        owner = path[-1]
        targets = path[:-1] if self.policy.populate_path else path[:1]
        for node in targets:
            if node == server:
                continue
            evicted = self.cache_of(node).put(
                key,
                CacheEntry(  # lint: allow-loop-alloc -- cache entries ARE the cache's storage; built once per miss along the path, not per peer
                    owner=owner, has_value=self.policy.cache_values,
                    inserted_ms=self.now_ms,
                ),
            )
            self.stats.insertions += 1
            if evicted:
                self.stats.evictions += evicted
                self._count("cache.evictions", evicted)

    def _layer_counts(self, layers: list[int]) -> list[int]:
        """Per-hop layer labels -> the ``hops_per_layer`` list shape."""
        depth = int(getattr(self.inner, "depth", 1))
        counts = [0] * depth
        for layer in layers:
            counts[depth - layer] += 1
        return counts

    def _finish_hit(
        self,
        source: int,
        key: int,
        path: list[int],
        mode: str,
        *,
        layers: list[int] | None = None,
        rings: list[str] | None = None,
        owner_hint: int | None = None,
        timeouts: int = 0,
        retry_latency_ms: float = 0.0,
    ) -> RouteResult:
        """Account one cache-served lookup and build its result.

        ``layers``/``rings`` cover the *routed* prefix of ``path``; the
        terminal cache hop (shortcut jump) is labelled layer 1/global.
        ``owner_hint`` is the owner to advertise when populating after
        an intermediate value hit (the serving node's cached owner).
        """
        if mode == "value-hit":
            self.stats.value_hits += 1
            self._count("cache.value_hits")
        else:
            self.stats.shortcut_hits += 1
            self._count("cache.shortcut_hits")
        self._count("cache.hits")
        n_hops = len(path) - 1
        hop_layers = list(layers) if layers is not None else []
        hop_rings = list(rings) if rings is not None else []
        while len(hop_layers) < n_hops:  # terminal shortcut hop(s)
            hop_layers.append(1)
            hop_rings.append("global")
        cache_ann = [""] * n_hops
        if n_hops:
            cache_ann[-1] = mode
        server = path[-1]
        self._serve(server)
        if owner_hint is not None and self.policy.populate_path:
            # Spread the answer down the prefix that walked to the hit.
            self._populate(key, [*path[:-1], owner_hint], server)
        result = RouteResult(
            source=source,
            key=key,
            owner=server,
            path=path,
            latency_ms=self.route_latency(self.latency, path),
            hops_per_layer=self._layer_counts(hop_layers),
            timeouts=timeouts,
            retry_latency_ms=retry_latency_ms,
        )
        if self.metrics is not None:
            self.record_route(
                self.label, result, layers=hop_layers, rings=hop_rings,
                cache=cache_ann,
            )
        return result

    def _routed(
        self,
        source: int,
        key: int,
        path: list[int],
        layers: list[int],
        rings: list[str],
        cache_ann: list[str],
        *,
        timeouts: int,
        retry_latency_ms: float,
    ) -> RouteResult:
        """Account one fully routed lookup (miss or stale forward)."""
        server = path[-1]
        self._serve(server)
        self._populate(key, path, server)
        result = RouteResult(
            source=source,
            key=key,
            owner=server,
            path=path,
            latency_ms=self.route_latency(self.latency, path),
            hops_per_layer=self._layer_counts(layers),
            timeouts=timeouts,
            retry_latency_ms=retry_latency_ms,
        )
        if self.metrics is not None:
            self.record_route(
                self.label, result, layers=layers, rings=rings, cache=cache_ann,
            )
        return result
