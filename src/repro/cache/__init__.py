"""Path caching & hotspot mitigation (DESIGN.md §9).

The paper motivates HIERAS with file-sharing workloads where a small
set of hot keys dominates (§1: Napster/Gnutella/KaZaA), and its §3.2
storage discipline inherits the CFS/Chord practice of caching lookup
results along the routing path.  This package supplies that layer for
the trace-driven stacks:

* :class:`CachePolicy` — capacity / eviction / TTL / population knobs;
* :class:`NodeCache` — one node's deterministic LRU (or TTL+LRU) cache
  of ``key -> (owner, value)`` lookup answers;
* :class:`CachedNetwork` — a :class:`~repro.dht.base.DHTNetwork`
  wrapper over flat Chord or HIERAS whose ``route_cached`` serves hot
  keys from caches populated along earlier lookup paths, spreading the
  owner's load across the cache holders.

Everything is deterministic: caches hold no randomness, eviction order
is a pure function of the request sequence, and the simulated cache
clock advances only when the caller says so — the same trace replayed
twice produces byte-identical cache metrics.
"""

from repro.cache.network import CachedNetwork, CacheStats
from repro.cache.policy import CachePolicy
from repro.cache.store import CacheEntry, NodeCache

__all__ = [
    "CachePolicy",
    "CacheEntry",
    "NodeCache",
    "CachedNetwork",
    "CacheStats",
]
