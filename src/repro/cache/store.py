"""One node's lookup cache: deterministic LRU / TTL+LRU over a dict.

Python dicts iterate in insertion order, so maintaining recency by
re-inserting on every hit gives an exact LRU whose eviction order is a
pure function of the access sequence — no hashing artefacts, no RNG,
nothing for reprolint's determinism rules to object to.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.policy import CachePolicy

__all__ = ["CacheEntry", "NodeCache"]


@dataclass
class CacheEntry:
    """One cached lookup answer.

    ``owner`` is the peer index the key resolved to when the entry was
    installed — a routing shortcut at minimum; when ``has_value`` is
    True the node also holds the answer itself (the CFS-style cached
    copy) and can serve a request without forwarding it.
    """

    owner: int
    has_value: bool
    inserted_ms: float


class NodeCache:
    """Bounded per-node cache of ``key -> CacheEntry``.

    The dict's insertion order *is* the recency order: :meth:`get`
    re-inserts on every hit, so the first key in iteration order is
    always the least recently used and eviction pops exactly that.
    """

    __slots__ = ("policy", "_entries")

    def __init__(self, policy: CachePolicy) -> None:
        self.policy = policy
        self._entries: dict[int, CacheEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: int) -> bool:
        return key in self._entries

    # ------------------------------------------------------------------
    def get(self, key: int, now_ms: float) -> tuple[CacheEntry | None, bool]:
        """Look up ``key``; returns ``(entry, expired)``.

        A fresh hit refreshes the entry's recency.  Under ``ttl-lru``
        an entry older than ``ttl_ms`` is removed and reported as
        ``(None, True)`` — the caller counts the expiry.
        """
        entry = self._entries.get(key)
        if entry is None:
            return None, False
        if self.policy.expires and now_ms - entry.inserted_ms > self.policy.ttl_ms:
            del self._entries[key]
            return None, True
        del self._entries[key]  # re-insert: most recently used goes last
        self._entries[key] = entry
        return entry, False

    def put(self, key: int, entry: CacheEntry) -> int:
        """Install/refresh ``key``; returns how many entries were evicted.

        Re-inserting an existing key refreshes both its payload and its
        recency without evicting.  At capacity the least recently used
        entry (the dict's first key) makes room.
        """
        if not self.policy.enabled:
            return 0
        evicted = 0
        if key in self._entries:
            del self._entries[key]
        elif len(self._entries) >= self.policy.capacity:
            oldest = next(iter(self._entries))
            del self._entries[oldest]
            evicted = 1
        self._entries[key] = entry
        return evicted

    def evict(self, key: int) -> bool:
        """Drop ``key`` if present (staleness invalidation); True if dropped."""
        if key in self._entries:
            del self._entries[key]
            return True
        return False

    # ------------------------------------------------------------------
    def keys(self) -> list[int]:
        """Cached keys, least recently used first (deterministic order)."""
        return list(self._entries)
