"""Cache configuration: one frozen policy object per deployment.

The policy is deliberately tiny — everything the cache subsystem does
is a pure function of these knobs plus the request sequence, which is
what keeps cached runs bit-reproducible (DESIGN.md §9).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import require

__all__ = ["CachePolicy"]

#: Eviction disciplines understood by :class:`~repro.cache.store.NodeCache`.
EVICTION_MODES = ("lru", "ttl-lru")


@dataclass(frozen=True)
class CachePolicy:
    """Knobs of the per-node lookup cache.

    Attributes
    ----------
    capacity:
        Entries each node may hold; 0 disables caching entirely (every
        lookup pays the full inner-network path).
    eviction:
        ``"lru"`` evicts the least-recently-used entry at capacity;
        ``"ttl-lru"`` additionally expires entries older than
        ``ttl_ms`` on access (the staleness/maintenance tradeoff knob —
        short TTLs bound how long a crashed owner can be advertised).
    ttl_ms:
        Age ceiling for ``"ttl-lru"`` (simulated milliseconds on the
        :attr:`CachedNetwork.now_ms <repro.cache.network.CachedNetwork>`
        clock); ignored under plain ``"lru"``.
    cache_values:
        When True (CFS-style), nodes cache the lookup *answer* itself
        and can serve a request terminally — the hotspot-spreading
        mode.  When False they cache only the ``key -> owner`` routing
        shortcut: lookups still end at the owner, just in fewer hops.
    populate_path:
        When True (default, §3.2/CFS), a completed lookup installs its
        answer in every node along the path it took; when False only
        the originator caches it (client-side caching only).
    """

    capacity: int = 64
    eviction: str = "lru"
    ttl_ms: float = 0.0
    cache_values: bool = True
    populate_path: bool = True

    def __post_init__(self) -> None:
        require(self.capacity >= 0, f"capacity must be >= 0, got {self.capacity}")
        require(
            self.eviction in EVICTION_MODES,
            f"unknown eviction mode {self.eviction!r}; expected one of {EVICTION_MODES}",
        )
        if self.eviction == "ttl-lru":
            require(self.ttl_ms > 0.0, "ttl-lru eviction needs ttl_ms > 0")

    @property
    def enabled(self) -> bool:
        """Whether this policy caches anything at all."""
        return self.capacity > 0

    @property
    def expires(self) -> bool:
        """Whether entries age out (TTL discipline active)."""
        return self.eviction == "ttl-lru"
