"""Fixed-width and markdown table rendering for experiment output.

The experiment harness prints the same rows and series the paper's
tables and figures report; these helpers keep that output aligned and
diff-friendly (EXPERIMENTS.md embeds them verbatim).
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

from repro.util.validation import require

__all__ = ["format_table", "render_series"]


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000 or (value != 0 and abs(value) < 0.01):
            return f"{value:.4g}"
        return f"{value:.4g}" if abs(value) < 10 else f"{value:.1f}"
    return str(value)


def format_table(
    rows: Sequence[dict[str, Any]],
    *,
    headers: Sequence[str] | None = None,
    markdown: bool = False,
) -> str:
    """Render dict rows as an aligned text (or markdown) table.

    Column order follows ``headers`` when given, else the first row's
    key order.  Missing cells render empty.
    """
    require(len(rows) >= 1, "cannot format an empty table")
    cols = list(headers) if headers is not None else list(rows[0].keys())
    cells = [[_fmt(row.get(c, "")) for c in cols] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in cells)) for i, col in enumerate(cols)
    ]
    if markdown:
        lines = [
            "| " + " | ".join(c.ljust(w) for c, w in zip(cols, widths)) + " |",
            "|" + "|".join("-" * (w + 2) for w in widths) + "|",
        ]
        lines += [
            "| " + " | ".join(v.ljust(w) for v, w in zip(r, widths)) + " |" for r in cells
        ]
    else:
        lines = ["  ".join(c.rjust(w) for c, w in zip(cols, widths))]
        lines.append("  ".join("-" * w for w in widths))
        lines += ["  ".join(v.rjust(w) for v, w in zip(r, widths)) for r in cells]
    return "\n".join(lines)


def render_series(
    x_label: str,
    xs: Sequence[Any],
    series: dict[str, Sequence[Any]],
    *,
    markdown: bool = False,
) -> str:
    """Render figure-style series as a table with one row per x value."""
    require(len(xs) >= 1, "series need at least one x value")
    for name, ys in series.items():
        require(len(ys) == len(xs), f"series {name!r} length mismatch")
    rows = [
        {x_label: x, **{name: series[name][i] for name in series}}
        for i, x in enumerate(xs)
    ]
    return format_table(rows, headers=[x_label, *series.keys()], markdown=markdown)
