"""Analysis toolkit: statistics and paper-style table rendering.

* :mod:`repro.analysis.stats` — summaries, hop-count PDFs (Figure 4),
  latency CDFs (Figure 5), and comparison helpers.
* :mod:`repro.analysis.tables` — fixed-width / markdown table printers
  used by the experiment harness to emit the same rows and series the
  paper reports.
* :mod:`repro.analysis.plots` — terminal renderings (bar charts, line
  plots, sparklines) so the distribution figures keep their shape in
  text output.
* :mod:`repro.analysis.compare` — bootstrap confidence intervals and
  paired A/B comparisons (the error bars the paper omits).
"""

from repro.analysis.compare import (
    CiResult,
    bootstrap_ci,
    bootstrap_ratio_ci,
    compare_means,
)
from repro.analysis.plots import bar_chart, line_plot, sparkline
from repro.analysis.stats import (
    RouteSample,
    cdf,
    collect_routes,
    hop_pdf,
    layer_breakdown,
    ratio_percent,
    summarize,
)
from repro.analysis.tables import format_table, render_series

__all__ = [
    "RouteSample",
    "collect_routes",
    "summarize",
    "hop_pdf",
    "cdf",
    "ratio_percent",
    "layer_breakdown",
    "format_table",
    "render_series",
    "bar_chart",
    "line_plot",
    "sparkline",
    "CiResult",
    "bootstrap_ci",
    "bootstrap_ratio_ci",
    "compare_means",
]
