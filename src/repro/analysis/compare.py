"""Statistical comparison utilities: confidence intervals, multi-seed runs.

The paper reports single-run point estimates.  For a reproduction it is
worth knowing how much of an observed gap is seed noise, so this module
adds the error bars:

* :func:`bootstrap_ci` — percentile-bootstrap confidence interval for
  the mean of a metric vector.
* :func:`bootstrap_ratio_ci` — CI for the ratio of two paired-mean
  metrics (e.g. HIERAS/Chord latency on the *same* request trace, which
  is a paired design — resample request indices jointly).
* :func:`compare_means` — a compact A/B verdict with effect size.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import make_rng
from repro.util.validation import require

__all__ = ["CiResult", "bootstrap_ci", "bootstrap_ratio_ci", "compare_means"]


@dataclass(frozen=True)
class CiResult:
    """A point estimate with a confidence interval."""

    estimate: float
    low: float
    high: float
    confidence: float

    def __contains__(self, value: float) -> bool:
        return self.low <= value <= self.high

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.estimate:.4g} [{self.low:.4g}, {self.high:.4g}] @{self.confidence:.0%}"


def bootstrap_ci(
    values: np.ndarray,
    *,
    confidence: float = 0.95,
    n_boot: int = 2000,
    seed: int | np.random.Generator = 0,
) -> CiResult:
    """Percentile bootstrap CI for the mean of ``values``."""
    values = np.asarray(values, dtype=np.float64)
    require(len(values) >= 2, "need at least two observations")
    require(0.5 < confidence < 1.0, "confidence must be in (0.5, 1)")
    rng = make_rng(seed)
    idx = rng.integers(0, len(values), size=(n_boot, len(values)))
    means = values[idx].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    return CiResult(
        estimate=float(values.mean()),
        low=float(np.quantile(means, alpha)),
        high=float(np.quantile(means, 1.0 - alpha)),
        confidence=confidence,
    )


def bootstrap_ratio_ci(
    numerator: np.ndarray,
    denominator: np.ndarray,
    *,
    confidence: float = 0.95,
    n_boot: int = 2000,
    seed: int | np.random.Generator = 0,
) -> CiResult:
    """CI for ``mean(numerator) / mean(denominator)`` with paired samples.

    Both vectors must come from the same request trace (index ``i`` is
    the same lookup through two systems); resampling indices jointly
    preserves the pairing, which typically tightens the interval a lot
    relative to independent resampling.
    """
    numerator = np.asarray(numerator, dtype=np.float64)
    denominator = np.asarray(denominator, dtype=np.float64)
    require(len(numerator) == len(denominator), "paired vectors must align")
    require(len(numerator) >= 2, "need at least two observations")
    require(float(denominator.mean()) != 0.0, "denominator mean is zero")
    rng = make_rng(seed)
    idx = rng.integers(0, len(numerator), size=(n_boot, len(numerator)))
    num_means = numerator[idx].mean(axis=1)
    den_means = denominator[idx].mean(axis=1)
    ratios = num_means / den_means
    alpha = (1.0 - confidence) / 2.0
    return CiResult(
        estimate=float(numerator.mean() / denominator.mean()),
        low=float(np.quantile(ratios, alpha)),
        high=float(np.quantile(ratios, 1.0 - alpha)),
        confidence=confidence,
    )


def compare_means(
    a: np.ndarray,
    b: np.ndarray,
    *,
    confidence: float = 0.95,
    n_boot: int = 2000,
    seed: int | np.random.Generator = 0,
) -> dict[str, float | bool]:
    """Paired A-vs-B comparison of means.

    Returns the mean difference ``a - b`` with its bootstrap CI and a
    ``significant`` flag (CI excludes zero), plus Cohen's d on the
    paired differences as an effect size.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    require(len(a) == len(b), "paired vectors must align")
    diff = a - b
    ci = bootstrap_ci(diff, confidence=confidence, n_boot=n_boot, seed=seed)
    sd = float(diff.std(ddof=1)) if len(diff) > 1 else 0.0
    return {
        "mean_diff": ci.estimate,
        "ci_low": ci.low,
        "ci_high": ci.high,
        "significant": not (ci.low <= 0.0 <= ci.high),
        "cohens_d": ci.estimate / sd if sd > 0 else 0.0,
    }
