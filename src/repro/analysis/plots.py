"""Terminal plots: ASCII histograms, CDF curves and sparklines.

The experiment harness is terminal-first (no plotting dependency), but
figures 4 and 5 are *distributions* — a table of numbers hides their
shape.  These renderers draw the shapes directly in monospace text:

* :func:`bar_chart` — horizontal bars for a PDF (Figure 4).
* :func:`line_plot` — multi-series dot plot for CDFs (Figure 5) or any
  x→y series (Figures 2/3/6–9).
* :func:`sparkline` — a one-line trend, for compact summaries.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.util.validation import require

__all__ = ["bar_chart", "line_plot", "sparkline"]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"
_MARKERS = "ox+*#@"


def bar_chart(
    labels: Sequence[object],
    values: Sequence[float],
    *,
    width: int = 50,
    title: str | None = None,
    value_format: str = "{:.4f}",
) -> str:
    """Horizontal bar chart; bars scale to the maximum value."""
    require(len(labels) == len(values), "labels and values must align")
    require(len(values) >= 1, "need at least one bar")
    require(width >= 4, "width must be >= 4")
    vmax = max(max(values), 1e-12)
    label_w = max(len(str(lab)) for lab in labels)
    lines = [title] if title else []
    for lab, val in zip(labels, values):
        bar = "█" * max(int(round(width * val / vmax)), 1 if val > 0 else 0)
        lines.append(
            f"{str(lab).rjust(label_w)} |{bar.ljust(width)} {value_format.format(val)}"
        )
    return "\n".join(lines)


def line_plot(
    xs: Sequence[float],
    series: dict[str, Sequence[float]],
    *,
    width: int = 64,
    height: int = 16,
    x_label: str = "x",
    title: str | None = None,
) -> str:
    """Multi-series scatter/line plot on a character grid.

    Each series gets a marker (``o x + * # @`` in order); overlapping
    points show the later series' marker.  Axes are annotated with min
    and max values.
    """
    require(len(xs) >= 2, "need at least two x values")
    require(1 <= len(series) <= len(_MARKERS), f"1..{len(_MARKERS)} series supported")
    for name, ys in series.items():
        require(len(ys) == len(xs), f"series {name!r} length mismatch")
    xs_arr = np.asarray(xs, dtype=np.float64)
    all_y = np.concatenate([np.asarray(ys, dtype=np.float64) for ys in series.values()])
    x_lo, x_hi = float(xs_arr.min()), float(xs_arr.max())
    y_lo, y_hi = float(all_y.min()), float(all_y.max())
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for (name, ys), marker in zip(series.items(), _MARKERS):
        for x, y in zip(xs_arr, np.asarray(ys, dtype=np.float64)):
            col = int(round((x - x_lo) / (x_hi - x_lo) * (width - 1)))
            row = int(round((y - y_lo) / (y_hi - y_lo) * (height - 1)))
            grid[height - 1 - row][col] = marker

    lines = [title] if title else []
    legend = "  ".join(
        f"{marker}={name}" for (name, _), marker in zip(series.items(), _MARKERS)
    )
    lines.append(legend)
    y_hi_lab = f"{y_hi:.4g}"
    y_lo_lab = f"{y_lo:.4g}"
    pad = max(len(y_hi_lab), len(y_lo_lab))
    for r, row in enumerate(grid):
        label = y_hi_lab if r == 0 else (y_lo_lab if r == height - 1 else "")
        lines.append(f"{label.rjust(pad)} |{''.join(row)}")
    lines.append(f"{' ' * pad} +{'-' * width}")
    x_axis = f"{x_lo:.4g}".ljust(width - 8) + f"{x_hi:.4g}"
    lines.append(f"{' ' * pad}  {x_axis}  ({x_label})")
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """One-line trend of a numeric series (8 intensity levels)."""
    require(len(values) >= 1, "need at least one value")
    arr = np.asarray(values, dtype=np.float64)
    lo, hi = float(arr.min()), float(arr.max())
    if hi == lo:
        return _SPARK_LEVELS[0] * len(arr)
    scaled = (arr - lo) / (hi - lo) * (len(_SPARK_LEVELS) - 1)
    return "".join(_SPARK_LEVELS[int(round(v))] for v in scaled)
