"""Routing-result statistics: summaries, PDFs, CDFs.

These are the measurement tools behind every figure: Figure 4 is a
hop-count PDF (:func:`hop_pdf`), Figure 5 a latency CDF (:func:`cdf`),
and Figures 2/3/6–9 are means over :class:`RouteSample` batches.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dht.base import DHTNetwork
from repro.util.validation import require
from repro.workloads.requests import RequestTrace

__all__ = [
    "RouteSample",
    "collect_routes",
    "summarize",
    "hop_pdf",
    "cdf",
    "ratio_percent",
    "layer_breakdown",
]


@dataclass
class RouteSample:
    """Vectorised outcome of running one trace through one network.

    Attributes
    ----------
    hops / latency_ms:
        Per-request totals.
    low_layer_hops / top_layer_hops:
        Hierarchical split (zeros / equal to ``hops`` for flat DHTs).
    low_layer_latency_ms:
        Latency accumulated on hops below the global ring.
    """

    hops: np.ndarray
    latency_ms: np.ndarray
    low_layer_hops: np.ndarray
    top_layer_hops: np.ndarray
    low_layer_latency_ms: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.low_layer_latency_ms is None:
            self.low_layer_latency_ms = np.zeros_like(self.latency_ms)

    def __len__(self) -> int:
        return len(self.hops)

    @property
    def mean_hops(self) -> float:
        """Average number of routing hops (paper's Figure 2 metric)."""
        return float(self.hops.mean())

    @property
    def mean_latency_ms(self) -> float:
        """Average routing latency (paper's Figure 3 metric)."""
        return float(self.latency_ms.mean())

    @property
    def low_layer_hop_share(self) -> float:
        """Fraction of hops taken below the global ring (§4.3)."""
        total = self.hops.sum()
        return float(self.low_layer_hops.sum() / total) if total else 0.0

    @property
    def low_layer_latency_share(self) -> float:
        """Fraction of latency spent below the global ring (§4.3)."""
        total = self.latency_ms.sum()
        return float(self.low_layer_latency_ms.sum() / total) if total else 0.0

    @property
    def mean_top_layer_hops(self) -> float:
        """Average hops taken in the global ring per request."""
        return float(self.top_layer_hops.mean())

    def mean_link_delay(self, *, layer: str = "all") -> float:
        """Average per-hop delay over ``"all"``, ``"low"`` or ``"top"`` hops."""
        require(layer in ("all", "low", "top"), f"unknown layer {layer!r}")
        if layer == "all":
            hops, lat = self.hops.sum(), self.latency_ms.sum()
        elif layer == "low":
            hops, lat = self.low_layer_hops.sum(), self.low_layer_latency_ms.sum()
        else:
            hops = self.top_layer_hops.sum()
            lat = self.latency_ms.sum() - self.low_layer_latency_ms.sum()
        return float(lat / hops) if hops else 0.0


def collect_routes(
    network: DHTNetwork, trace: RequestTrace, *, engine: str = "batch"
) -> RouteSample:
    """Run every request of ``trace`` through ``network``.

    Per-hop latencies are recomputed from each path so the low-layer
    latency split is exact.

    ``engine="batch"`` (default) routes the whole trace through the
    vectorized frontier engine (:mod:`repro.engine`) whenever the
    network supports it and no span tracing is attached; the sample is
    bit-identical to the scalar loop (same hop counts, exact float
    equality on latencies), just much faster.  ``engine="scalar"``
    forces the per-request loop.
    """
    from repro.engine import batch_route, supports_batch

    require(engine in ("batch", "scalar"), f"unknown engine {engine!r}")
    if engine == "batch" and supports_batch(network):
        result = batch_route(network, trace.sources, trace.keys)
        return RouteSample(
            hops=result.hops,
            latency_ms=result.latency_ms,
            low_layer_hops=result.low_layer_hops,
            top_layer_hops=result.top_layer_hops,
            low_layer_latency_ms=result.low_layer_latency_ms(),
        )
    n = len(trace)
    hops = np.zeros(n, dtype=np.int64)
    latency = np.zeros(n, dtype=np.float64)
    low_hops = np.zeros(n, dtype=np.int64)
    top_hops = np.zeros(n, dtype=np.int64)
    low_latency = np.zeros(n, dtype=np.float64)
    lat_model = getattr(network, "latency", None)
    for i, (source, key) in enumerate(trace):
        result = network.route(int(source), int(key))
        hops[i] = result.hops
        latency[i] = result.latency_ms
        low_hops[i] = result.low_layer_hops
        top_hops[i] = result.top_layer_hops
        if lat_model is not None and result.low_layer_hops and len(result.path) > 1:
            path = np.asarray(result.path[: result.low_layer_hops + 1], dtype=np.int64)
            low_latency[i] = float(lat_model.pairs(path[:-1], path[1:]).sum())
    return RouteSample(
        hops=hops,
        latency_ms=latency,
        low_layer_hops=low_hops,
        top_layer_hops=top_hops,
        low_layer_latency_ms=low_latency,
    )


def summarize(values: np.ndarray) -> dict[str, float]:
    """Mean / median / tail percentiles of a metric vector."""
    values = np.asarray(values, dtype=np.float64)
    require(len(values) >= 1, "cannot summarize an empty vector")
    return {
        "mean": float(values.mean()),
        "median": float(np.median(values)),
        "p90": float(np.percentile(values, 90)),
        "p99": float(np.percentile(values, 99)),
        "min": float(values.min()),
        "max": float(values.max()),
    }


def hop_pdf(hops: np.ndarray, *, max_hops: int | None = None) -> tuple[np.ndarray, np.ndarray]:
    """Probability density of integer hop counts (Figure 4).

    Returns ``(hop_values, probability)`` with one entry per hop count
    from 0 to ``max_hops`` (default: observed maximum).
    """
    hops = np.asarray(hops, dtype=np.int64)
    top = int(hops.max()) if max_hops is None else int(max_hops)
    counts = np.bincount(hops, minlength=top + 1)[: top + 1]
    return np.arange(top + 1), counts / max(len(hops), 1)


def cdf(values: np.ndarray, *, points: int = 200) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF sampled at ``points`` positions (Figure 5).

    Returns ``(x, F)`` where ``F[i]`` is the fraction of values
    ``<= x[i]``; ``x`` spans the observed range.
    """
    values = np.sort(np.asarray(values, dtype=np.float64))
    require(len(values) >= 1, "cannot build a CDF from an empty vector")
    xs = np.linspace(values[0], values[-1], points)
    fs = np.searchsorted(values, xs, side="right") / len(values)
    return xs, fs


def ratio_percent(a: float, b: float) -> float:
    """``100 * a / b`` with a guard for zero denominators."""
    return 100.0 * a / b if b else float("nan")


def layer_breakdown(sample: RouteSample) -> list[dict[str, float]]:
    """Two-row lower-vs-global breakdown of hops and latency (§4.3).

    The paper's headline distribution claim — "71.38% of hops … only
    47.24% of latency" — as a ready-to-print table: one row for the
    lower layers combined, one for the global ring.
    """
    total_hops = float(sample.hops.sum())
    total_lat = float(sample.latency_ms.sum())
    low_hops = float(sample.low_layer_hops.sum())
    low_lat = float(sample.low_layer_latency_ms.sum())
    rows = []
    for name, hops, lat in (
        ("lower_rings", low_hops, low_lat),
        ("global_ring", total_hops - low_hops, total_lat - low_lat),
    ):
        rows.append(
            {
                "layer": name,
                "hops_per_request": hops / max(len(sample), 1),
                "hop_share_pct": 100.0 * hops / total_hops if total_hops else 0.0,
                "latency_share_pct": 100.0 * lat / total_lat if total_lat else 0.0,
                "mean_link_delay_ms": lat / hops if hops else 0.0,
            }
        )
    return rows
