"""Frozen serving-layer configuration (DESIGN.md §12).

The knobs split into three groups:

* **capacity** — ``workers`` concurrent dispatch slots and the
  ``max_batch`` coalescing window (1 = per-request scalar dispatch);
* **admission** — ``queue_limit`` bounds the pending queue (arrivals
  beyond the bound are rejected immediately — load shedding at the
  door) and ``deadline_ms`` sheds requests whose queue wait already
  exceeds their budget at dispatch time;
* **cost model** — how long one dispatch occupies a worker, in
  *simulated* milliseconds.  ``dispatch_overhead_ms`` is paid once per
  dispatch call and amortizes across a coalesced batch — the reason
  batching moves the saturation knee — while ``per_lookup_ms`` /
  ``per_write_ms`` / ``per_membership_ms`` are the marginal per-request
  costs.  Network time (routing, replica fan-out) is *not* worker
  occupancy: the service is modelled as an async front-end that issues
  messages and yields, so only CPU-shaped dispatch work holds a slot.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import require

__all__ = ["ServiceConfig"]


@dataclass(frozen=True)
class ServiceConfig:
    """Immutable configuration for one :class:`~repro.serve.DHTService`."""

    #: Concurrent dispatch slots (the ``c`` of the queueing system).
    workers: int = 4
    #: Max pending requests before arrivals are rejected (None = unbounded).
    queue_limit: int | None = None
    #: Coalescing window: lookups dispatched per batch-route call.
    max_batch: int = 32
    #: Queue-wait budget; requests older than this are shed at dispatch.
    deadline_ms: float | None = None
    #: Fixed cost of one dispatch call (amortized across a batch).
    dispatch_overhead_ms: float = 5.0
    #: Marginal cost per coalesced lookup.
    per_lookup_ms: float = 0.5
    #: Marginal cost per replicated write.
    per_write_ms: float = 2.0
    #: Marginal cost per membership wave (join/leave rebuild work).
    per_membership_ms: float = 25.0

    def __post_init__(self) -> None:
        require(self.workers >= 1, f"workers must be >= 1, got {self.workers}")
        require(self.max_batch >= 1, f"max_batch must be >= 1, got {self.max_batch}")
        require(
            self.queue_limit is None or self.queue_limit >= 1,
            f"queue_limit must be >= 1 or None, got {self.queue_limit}",
        )
        require(
            self.deadline_ms is None or self.deadline_ms > 0,
            f"deadline_ms must be > 0 or None, got {self.deadline_ms}",
        )
        require(
            self.dispatch_overhead_ms >= 0
            and self.per_lookup_ms >= 0
            and self.per_write_ms >= 0
            and self.per_membership_ms >= 0,
            "cost-model parameters must be >= 0",
        )

    @property
    def lookup_capacity_per_s(self) -> float:
        """Ideal lookups/sec at full coalescing (the knee's upper bound)."""
        per_lookup = self.dispatch_overhead_ms / self.max_batch + self.per_lookup_ms
        if per_lookup == 0.0:
            return float("inf")
        return 1000.0 * self.workers / per_lookup

    @property
    def scalar_lookup_capacity_per_s(self) -> float:
        """Ideal lookups/sec at per-request dispatch (no coalescing)."""
        per_lookup = self.dispatch_overhead_ms + self.per_lookup_ms
        if per_lookup == 0.0:
            return float("inf")
        return 1000.0 * self.workers / per_lookup
