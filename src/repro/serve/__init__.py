"""The serving layer: a request-queue front-end over the DHT stacks.

``repro.serve`` turns the routing library into something that serves
(DESIGN.md §12): a :class:`DHTService` accepts ``get``/``put``/
``join``/``leave`` requests across an explicit bounded-queue boundary,
dispatches them with configurable worker concurrency on a
deterministic simulated clock, coalesces queued lookups into
:mod:`repro.engine` batch-route calls, fans writes out through
:class:`~repro.replication.store.ReplicatedStore`, and records a
queue-wait / service / route / replica-fan-out latency breakdown into
:mod:`repro.metrics` histograms.  Pair it with :mod:`repro.loadgen`
for open-loop load generation and SLO reporting.
"""

from repro.serve.config import ServiceConfig
from repro.serve.request import OPS, Completion, Request
from repro.serve.service import DHTService, ServeResult

__all__ = [
    "OPS",
    "Completion",
    "DHTService",
    "Request",
    "ServeResult",
    "ServiceConfig",
]
