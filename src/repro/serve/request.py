"""Request/completion records crossing the serving-layer queue boundary.

A :class:`Request` is what a client submits: an operation, its arrival
time on the simulated clock, and the operands (``get``/``put`` carry a
source peer and a key name; ``join``/``leave`` carry a membership
wave).  A :class:`Completion` is the service's account of what happened
to it — admission outcome, the dispatch batch it rode in, and the
per-phase latency breakdown (queue wait → dispatch service → route →
replica fan-out) the SLO reporter aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.util.validation import require

__all__ = ["OPS", "Completion", "Request"]

#: Operations the service accepts, in dispatch-priority-free FIFO order.
OPS = ("get", "put", "join", "leave")


@dataclass(frozen=True)
class Request:
    """One client request entering the service queue.

    ``get``/``put`` require ``source`` and ``name`` (``put`` also
    carries ``value``); ``join``/``leave`` carry the ``peers`` of a
    membership wave instead.
    """

    op: str
    at_ms: float
    source: int = -1
    name: str = ""
    value: Any = None
    peers: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        require(self.op in OPS, f"unknown op {self.op!r}; expected one of {OPS}")
        require(self.at_ms >= 0.0, f"at_ms must be >= 0, got {self.at_ms}")
        if self.op in ("get", "put"):
            require(self.source >= 0, f"{self.op} requests need a source peer")
            require(bool(self.name), f"{self.op} requests need a key name")
        else:
            require(len(self.peers) > 0, f"{self.op} requests need a peer wave")


@dataclass(frozen=True)
class Completion:
    """The service's record of one request's fate.

    ``outcome`` is one of ``"ok"`` (served), ``"rejected"`` (admission
    control turned it away at arrival), ``"deadline"`` (shed at
    dispatch after its queue wait exceeded the budget), or ``"failed"``
    (dispatched but unservable — e.g. a departed source peer or a
    failed replicated write).  Latency phases are 0 for requests that
    never reached the corresponding stage; ``total_ms`` is always the
    user-visible wait from arrival to the service's last action on the
    request.
    """

    seq: int
    op: str
    outcome: str
    arrival_ms: float
    dispatch_ms: float = 0.0
    finish_ms: float = 0.0
    queue_wait_ms: float = 0.0
    service_ms: float = 0.0
    route_ms: float = 0.0
    fanout_ms: float = 0.0
    batch_size: int = 0
    owner: int = -1
    value: Any = None
    extra: dict[str, float] = field(default_factory=dict)

    @property
    def served(self) -> bool:
        """Whether the request completed successfully."""
        return self.outcome == "ok"

    @property
    def total_ms(self) -> float:
        """User-visible wait: queue + dispatch service + network phases."""
        return self.queue_wait_ms + self.service_ms + self.route_ms + self.fanout_ms
