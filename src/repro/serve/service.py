"""`DHTService`: a request-queue front-end over the trace-driven stacks.

The service closes the gap between "a routing library" and "a thing
that serves": clients submit :class:`~repro.serve.request.Request`
records (``get``/``put``/``join``/``leave``) which cross an explicit
queue boundary and are dispatched by a pool of ``workers`` slots on a
**deterministic simulated clock** — no wall time is consulted anywhere
(reprolint DET002 covers this package), so a run is a pure function of
the request sequence and the network state.

Queueing model
--------------
Arrivals are open-loop (the load generator decides times; completions
never gate them).  Admission control happens at the door: when
``queue_limit`` is set and the pending queue is full, the arrival is
rejected immediately (load shedding).  Dispatch is work-conserving
FIFO with **read coalescing**: when the oldest pending request is a
``get``, the dispatcher collects up to ``max_batch`` pending gets into
one :func:`repro.engine.batch_route` call — the serving path is where
batching pays off, because the per-dispatch overhead amortizes across
the batch.  Writes dispatch one at a time when they reach the head and
fan out through :class:`~repro.replication.store.ReplicatedStore`;
membership waves apply the network's batch mutation primitives.

A worker slot is occupied for the *dispatch cost* only
(``dispatch_overhead_ms`` + marginal per-request cost): the front-end
is modelled async, so network time — routing hops, replica fan-out —
runs off-worker and lands in the request's latency, not the service's
capacity.  Saturation therefore arrives when offered load exceeds
``workers / mean_dispatch_cost``, and coalescing moves that knee by
shrinking the mean cost per lookup.

Every completed request records a four-phase latency breakdown (queue
wait → dispatch service → route → replica fan-out) into the service's
:class:`~repro.metrics.registry.MetricsRegistry` — the registry *is*
the product here (the SLO reporter reads it), so it is always on.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.engine import batch_route
from repro.metrics.registry import MetricsRegistry
from repro.replication.store import ReplicatedStore
from repro.serve.config import ServiceConfig
from repro.serve.request import Completion, Request
from repro.util.validation import require

__all__ = ["DHTService", "ServeResult"]


@dataclass
class ServeResult:
    """Everything one :meth:`DHTService.run` produced.

    ``completions`` is ordered by request sequence number (arrival
    order), regardless of the order requests finished in.
    ``makespan_ms`` is the simulated instant the last dispatch
    completed (the workers went idle) — the denominator for achieved
    throughput, so a backlog that drains long after the offered window
    closes is charged for its drain time.  Responses may still be in
    flight at that instant; their network time is the *request's*
    latency, not the service's capacity.
    """

    config: ServiceConfig
    completions: list[Completion]
    registry: MetricsRegistry
    makespan_ms: float
    max_queue_depth: int
    counts: dict[str, int] = field(default_factory=dict)

    @property
    def served(self) -> int:
        """Requests that completed successfully."""
        return self.counts.get("ok", 0)

    @property
    def rejected(self) -> int:
        """Arrivals turned away by admission control."""
        return self.counts.get("rejected", 0)

    @property
    def throughput_per_s(self) -> float:
        """Achieved throughput over the makespan (requests/second)."""
        if self.makespan_ms <= 0.0:
            return 0.0
        return 1000.0 * self.served / self.makespan_ms


#: A queued entry: (sequence number, request).
_Entry = tuple[int, Request]


class DHTService:
    """Serve ``get``/``put``/``join``/``leave`` over a DHT stack.

    Parameters
    ----------
    network:
        A :class:`~repro.dht.chord.ChordNetwork` or
        :class:`~repro.core.hieras.HierasNetwork` (anything the batch
        engine routes over, with ``is_alive`` / batch membership).
    config:
        Frozen :class:`~repro.serve.config.ServiceConfig`.
    store:
        Optional :class:`~repro.replication.store.ReplicatedStore`;
        when present, ``put`` fans out through it and ``get`` returns
        the owner's local copy.  Without one, both ops are pure owner
        lookups (the service still charges write-shaped dispatch cost
        for puts).  Attach the store to the network
        (``network.attach_store``) if membership waves should drop
        disks / replay hints.
    registry:
        Metrics sink; a fresh :class:`MetricsRegistry` by default.  The
        serving layer is the measurement plane, so recording is always
        on (``serve.*`` counters and phase histograms).
    """

    def __init__(
        self,
        network: Any,
        *,
        config: ServiceConfig | None = None,
        store: ReplicatedStore | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.network = network
        self.config = config if config is not None else ServiceConfig()
        self.store = store
        self.registry = registry if registry is not None else MetricsRegistry()
        #: Key-name → wrapped id cache (Zipf workloads reuse names heavily).
        self._key_cache: dict[str, int] = {}

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _key_of(self, name: str) -> int:
        key = self._key_cache.get(name)
        if key is None:
            key = self._key_cache[name] = int(self.network.space.hash_key(name))
        return key

    def _occupancy_ms(self, op: str, n_routed: int) -> float:
        """Worker time one dispatch call consumes (the cost model)."""
        cfg = self.config
        if n_routed == 0:
            return 0.0
        if op == "get":
            return cfg.dispatch_overhead_ms + n_routed * cfg.per_lookup_ms
        if op == "put":
            return cfg.dispatch_overhead_ms + cfg.per_write_ms
        return cfg.dispatch_overhead_ms + cfg.per_membership_ms

    def _record(self, completion: Completion) -> None:
        reg = self.registry
        reg.inc("serve.arrivals")
        reg.inc(f"serve.{completion.op}.arrivals")
        reg.inc(f"serve.{completion.outcome}")
        if completion.outcome == "rejected":
            return
        if completion.outcome == "deadline":
            reg.observe("serve.shed_wait_ms", completion.queue_wait_ms)
            return
        reg.observe("serve.total_ms", completion.total_ms)
        reg.observe("serve.queue_wait_ms", completion.queue_wait_ms)
        reg.observe("serve.service_ms", completion.service_ms)
        reg.observe("serve.route_ms", completion.route_ms)
        reg.observe("serve.fanout_ms", completion.fanout_ms)
        reg.observe(f"serve.{completion.op}.total_ms", completion.total_ms)

    # ------------------------------------------------------------------
    # the event loop
    # ------------------------------------------------------------------
    def run(self, requests: list[Request]) -> ServeResult:
        """Serve an arrival-ordered request sequence to completion.

        Requests must be sorted by ``at_ms``.  The loop interleaves
        arrivals with dispatches in simulated-time order: before each
        arrival every worker that frees up earlier gets to drain the
        queue, then admission control sees the true queue depth at the
        arrival instant.  After the last arrival the backlog drains.
        """
        cfg = self.config
        heap: list[tuple[float, int]] = [(0.0, w) for w in range(cfg.workers)]
        gets: deque[_Entry] = deque()
        others: deque[_Entry] = deque()
        out: list[Completion] = []
        max_depth = 0
        last_at = 0.0
        for seq, req in enumerate(requests):
            require(req.at_ms >= last_at, "requests must be sorted by at_ms")
            last_at = req.at_ms
            self._drain(heap, gets, others, req.at_ms, out)
            depth = len(gets) + len(others)
            if cfg.queue_limit is not None and depth >= cfg.queue_limit:
                completion = Completion(
                    seq=seq, op=req.op, outcome="rejected",
                    arrival_ms=req.at_ms, finish_ms=req.at_ms,
                )
                out.append(completion)
                self._record(completion)
                continue
            (gets if req.op == "get" else others).append((seq, req))
            if depth + 1 > max_depth:
                max_depth = depth + 1
            self._drain(heap, gets, others, req.at_ms, out)
        self._drain(heap, gets, others, math.inf, out)
        makespan = max([last_at] + [busy_until for busy_until, _ in heap])
        out.sort(key=lambda c: c.seq)
        counts: dict[str, int] = {}
        for c in out:
            counts[c.outcome] = counts.get(c.outcome, 0) + 1
        self.registry.set_gauge("serve.max_queue_depth", float(max_depth))
        self.registry.set_gauge("serve.makespan_ms", makespan)
        return ServeResult(
            config=cfg,
            completions=out,
            registry=self.registry,
            makespan_ms=makespan,
            max_queue_depth=max_depth,
            counts=counts,
        )

    def _drain(
        self,
        heap: list[tuple[float, int]],
        gets: deque[_Entry],
        others: deque[_Entry],
        until: float,
        out: list[Completion],
    ) -> None:
        """Dispatch until the queue is empty or no worker frees by ``until``."""
        while (gets or others) and heap[0][0] <= until:
            free_at, worker = heapq.heappop(heap)
            busy_until = self._dispatch_one(free_at, gets, others, out)
            heapq.heappush(heap, (busy_until, worker))

    @staticmethod
    def _head_is_get(gets: deque[_Entry], others: deque[_Entry]) -> bool:
        if not others:
            return True
        if not gets:
            return False
        return gets[0][0] < others[0][0]

    def _shed(self, seq: int, req: Request, now: float, out: list[Completion]) -> None:
        completion = Completion(
            seq=seq, op=req.op, outcome="deadline",
            arrival_ms=req.at_ms, dispatch_ms=now, finish_ms=now,
            queue_wait_ms=now - req.at_ms,
        )
        out.append(completion)
        self._record(completion)

    def _take(
        self,
        free_at: float,
        gets: deque[_Entry],
        others: deque[_Entry],
        out: list[Completion],
    ) -> list[_Entry]:
        """Form the next dispatch batch, shedding expired requests.

        Returns the (non-empty) batch, or ``[]`` when shedding emptied
        the queue.  A get at the head coalesces up to ``max_batch``
        pending gets (oldest first); any other op dispatches alone.
        """
        deadline = self.config.deadline_ms
        while gets or others:
            if self._head_is_get(gets, others):
                batch: list[_Entry] = []
                while gets and len(batch) < self.config.max_batch:
                    seq, req = gets.popleft()
                    if deadline is not None and max(free_at, req.at_ms) - req.at_ms > deadline:
                        self._shed(seq, req, max(free_at, req.at_ms), out)
                        continue
                    batch.append((seq, req))
                if batch:
                    return batch
                continue
            seq, req = others.popleft()
            if deadline is not None and max(free_at, req.at_ms) - req.at_ms > deadline:
                self._shed(seq, req, max(free_at, req.at_ms), out)
                continue
            return [(seq, req)]
        return []

    def _dispatch_one(
        self,
        free_at: float,
        gets: deque[_Entry],
        others: deque[_Entry],
        out: list[Completion],
    ) -> float:
        """Dispatch one batch (or single op); returns the worker's busy-until."""
        batch = self._take(free_at, gets, others, out)
        if not batch:
            return free_at
        now = max(free_at, batch[0][1].at_ms)
        op = batch[0][1].op
        if op == "get":
            return self._dispatch_gets(now, batch, out)
        if op == "put":
            return self._dispatch_put(now, batch[0], out)
        return self._dispatch_membership(now, batch[0], out)

    # -- get: coalesced batch routing ----------------------------------
    def _dispatch_gets(self, now: float, batch: list[_Entry], out: list[Completion]) -> float:
        live: list[_Entry] = []
        for seq, req in batch:
            if self.network.is_alive(req.source):
                live.append((seq, req))
            else:
                completion = Completion(
                    seq=seq, op=req.op, outcome="failed",
                    arrival_ms=req.at_ms, dispatch_ms=now, finish_ms=now,
                    queue_wait_ms=now - req.at_ms,
                )
                out.append(completion)
                self._record(completion)
        occupancy = self._occupancy_ms("get", len(live))
        if not live:
            return now
        sources = [req.source for _, req in live]
        keys = [self._key_of(req.name) for _, req in live]
        result = batch_route(self.network, sources, keys)
        self.registry.inc("serve.batches")
        self.registry.inc("serve.batched_lookups", len(live))
        self.registry.observe("serve.batch_size", float(len(live)))
        for lane, (seq, req) in enumerate(live):
            owner = int(result.owner[lane])
            route_ms = float(result.latency_ms[lane])
            value = None
            if self.store is not None:
                value = self.store.read_at(owner, req.name)
            completion = Completion(
                seq=seq, op=req.op, outcome="ok",
                arrival_ms=req.at_ms, dispatch_ms=now,
                finish_ms=now + occupancy + route_ms,
                queue_wait_ms=now - req.at_ms,
                service_ms=occupancy, route_ms=route_ms,
                batch_size=len(live), owner=owner, value=value,
            )
            out.append(completion)
            self._record(completion)
        return now + occupancy

    # -- put: replicated write fan-out ---------------------------------
    def _dispatch_put(self, now: float, entry: _Entry, out: list[Completion]) -> float:
        seq, req = entry
        if not self.network.is_alive(req.source):
            completion = Completion(
                seq=seq, op=req.op, outcome="failed",
                arrival_ms=req.at_ms, dispatch_ms=now, finish_ms=now,
                queue_wait_ms=now - req.at_ms,
            )
            out.append(completion)
            self._record(completion)
            return now
        occupancy = self._occupancy_ms("put", 1)
        if self.store is not None:
            put = self.store.put(req.source, req.name, req.value)
            route = put.route
            route_ms = (
                route.latency_ms + route.retry_latency_ms if route is not None else 0.0
            )
            fanout_ms = put.total_latency_ms - route_ms
            outcome = "ok" if put.success else "failed"
            owner = int(route.owner) if route is not None else -1
        else:
            result = batch_route(self.network, [req.source], [self._key_of(req.name)])
            route_ms = float(result.latency_ms[0])
            fanout_ms = 0.0
            outcome = "ok"
            owner = int(result.owner[0])
        completion = Completion(
            seq=seq, op=req.op, outcome=outcome,
            arrival_ms=req.at_ms, dispatch_ms=now,
            finish_ms=now + occupancy + route_ms + fanout_ms,
            queue_wait_ms=now - req.at_ms,
            service_ms=occupancy, route_ms=route_ms, fanout_ms=fanout_ms,
            batch_size=1, owner=owner,
        )
        out.append(completion)
        self._record(completion)
        return now + occupancy

    # -- join/leave: batch membership waves ----------------------------
    def _dispatch_membership(self, now: float, entry: _Entry, out: list[Completion]) -> float:
        seq, req = entry
        if req.op == "leave":
            wave = [int(p) for p in req.peers if self.network.is_alive(int(p))]
            # Never let a wave empty the overlay: keep at least one peer.
            alive = int(self.network.n_peers)
            if len(wave) >= alive:
                wave = wave[: max(0, alive - 1)]
            if wave:
                self.network.remove_peers(wave)
        else:
            wave = [int(p) for p in req.peers if not self.network.is_alive(int(p))]
            if wave:
                self.network.revive_peers(wave)
        occupancy = self._occupancy_ms(req.op, len(wave)) if wave else 0.0
        self.registry.inc(f"serve.{req.op}.peers", len(wave))
        completion = Completion(
            seq=seq, op=req.op, outcome="ok",
            arrival_ms=req.at_ms, dispatch_ms=now, finish_ms=now + occupancy,
            queue_wait_ms=now - req.at_ms, service_ms=occupancy,
            batch_size=len(wave),
        )
        out.append(completion)
        self._record(completion)
        return now + occupancy
