"""Fault-aware replication with chain/quorum consistency (DESIGN.md §11).

PR 1 made *lookups* survive faults; this package makes *data* survive
them.  A frozen :class:`ReplicationPolicy` (replication factor,
``consistency="chain"|"quorum"``, ``placement="successor"|"ring_scoped"``,
hinted handoff) drives a :class:`ReplicatedStore` whose puts and gets
route per-replica via ``route_lossy`` under a
:class:`~repro.faults.injector.FaultInjector` — chain writes abort on
broken links, quorum reads repair stale replicas, and hinted handoff
replays missed writes when crashed replicas rejoin.  The ``durability``
experiment measures probability of data loss and read-staleness vs
replication factor × churn × consistency mode on both stacks.
"""

from repro.replication.placement import global_successors, replica_group
from repro.replication.policy import ReplicationPolicy
from repro.replication.store import (
    GetResult,
    PutResult,
    ReplicaContact,
    ReplicatedStore,
    ReplicationStats,
)

__all__ = [
    "GetResult",
    "PutResult",
    "ReplicaContact",
    "ReplicatedStore",
    "ReplicationPolicy",
    "ReplicationStats",
    "global_successors",
    "replica_group",
]
