"""Replica placement: who holds the copies of one key.

The replica group of a key is an **ordered, duplicate-free** list of
peers, owner first.  Order matters twice over: chain writes propagate
along it head→tail, and quorum reads contact peers in it until enough
respond — so the group must be a pure function of (network membership,
key, policy) for runs to replay deterministically.

Two placements are supported (policy knob ``placement``):

``"successor"``
    Owner + its ``replicas`` nearest **global-ring** successors — the
    classic Chord/CFS discipline the paper inherits "for free" (§3.2).
``"ring_scoped"``
    Owner + successors drawn from the owner's **lowest-layer HIERAS
    ring** first (nodes the binning scheme judged nearby), padded from
    the global successor list when the ring is smaller than the group.
    This is the HIERAS-specific question the ROADMAP poses: replicas on
    topologically-close nodes are cheap to write to — but a correlated
    regional failure can take out the whole ring, so locality cuts both
    ways.  The durability experiment measures which effect wins.
"""

from __future__ import annotations

from typing import Any

from repro.replication.policy import ReplicationPolicy

__all__ = ["global_successors", "replica_group"]


def global_successors(network: Any, peer: int, r: int) -> list[int]:
    """``peer``'s ``r`` nearest global-ring successors on either stack.

    Flat Chord exposes :meth:`~repro.dht.chord.ChordNetwork.successor_list`
    directly; HIERAS is asked through its global ring (layer 1), the
    ring every member is on.
    """
    if r <= 0:
        return []
    if hasattr(network, "successor_list"):
        return list(network.successor_list(peer, r))
    ring = network.global_ring
    pos = ring.pos_of_id(network.id_of(peer))
    return [int(ring.peers[p]) for p in ring.successor_list(pos, r)]


def replica_group(network: Any, key: int, policy: ReplicationPolicy) -> list[int]:
    """The ordered replica group of ``key`` under ``policy``.

    Always starts with the key's owner (the believed global successor
    of the key).  Duplicates are dropped while preserving order — on
    tiny rings the successor walk wraps and would otherwise re-include
    the owner — so the group may be shorter than ``policy.group_size``
    when the network itself is smaller.
    """
    owner = int(network.owner_of(key))
    group = [owner]
    if policy.replicas <= 0:
        return group
    if policy.placement == "ring_scoped":
        candidates = list(network.ring_successor_list(owner, policy.replicas))
        # The owner's low-layer ring may be smaller than the group; pad
        # with global successors so the replication factor is honoured.
        if len(candidates) < policy.replicas:
            candidates += global_successors(network, owner, policy.replicas + len(candidates))
    else:
        candidates = global_successors(network, owner, policy.replicas)
    for peer in candidates:
        peer = int(peer)
        if peer not in group:
            group.append(peer)
        if len(group) == policy.group_size:
            break
    return group
