"""Fault-aware replicated storage over either trace-driven stack.

:class:`ReplicatedStore` replaces :class:`~repro.dht.storage.DHTStore`'s
fault-blind discipline: every operation *routes* — ``put``/``get`` reach
the key's owner via the network's failure-aware ``route_lossy`` under a
:class:`~repro.faults.injector.FaultInjector` (paying hops, timeouts and
retry penalties), and then fan out to the replica group one modelled
contact at a time, each charged through the same injector.  Without an
injector the store degrades gracefully to the plain ``route`` path with
always-successful contacts (the deterministic fault-free baseline).

The consistency discipline comes from the frozen
:class:`~repro.replication.policy.ReplicationPolicy`:

* **chain** — writes propagate owner→successors along the placement
  order and abort on the first broken link; reads contact the chain
  tail (an unreachable tail fails the read).
* **quorum** — writes succeed on ``W`` acks, reads on ``R`` responses;
  reads return the freshest version seen, detect staleness (responses
  disagreeing on version) and repair stale replicas in place.

Writes are **versioned** by a store-wide monotonic clock, which is what
makes staleness observable: a replica that missed an update holds an
older version, a read comparing versions can both count and fix it.
**Hinted handoff** (policy knob) queues the ``(key, value, version)``
a crashed replica missed and replays the queue when the peer rejoins —
either through a fault-plan ``revive`` event (seen by
:meth:`ReplicatedStore.advance_to`) or a membership-level
``revive_peers`` wave (delivered by the network when the store is
attached via :meth:`~repro.dht.base.DHTNetwork.attach_store`).

Everything is seed-deterministic: contact randomness lives in the
injector's seeded stream, iteration over store state is sorted, and no
wall clock is consulted.  Observability follows the DESIGN.md §7
contract — with no recorder attached every operation pays ``is None``
checks only; with one attached the routing layer emits spans as usual
and the store counts guarded ``replication.*`` registry events, while
the per-op :class:`ReplicaContact` records are always returned on the
result objects (plain dataclass appends, no registry involved).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.dht.base import RouteResult
from repro.faults.injector import FaultInjector, LossyContext
from repro.metrics.spans import SpanRecorder
from repro.replication.placement import replica_group
from repro.replication.policy import ReplicationPolicy

__all__ = [
    "GetResult",
    "PutResult",
    "ReplicaContact",
    "ReplicatedStore",
    "ReplicationStats",
]


@dataclass(frozen=True)
class ReplicaContact:
    """One modelled contact of a replica during a put/get.

    ``role`` is ``"chain"`` / ``"write"`` / ``"read"`` / ``"tail"``;
    local writes/reads at the coordinator itself appear with
    ``peer == src`` and zero cost (no message crossed the network).
    """

    src: int
    peer: int
    role: str
    ok: bool
    timeouts: int
    retry_latency_ms: float
    link_latency_ms: float


@dataclass
class ReplicationStats:
    """Always-on operation counters (plain integer adds)."""

    puts: int = 0
    put_successes: int = 0
    routed_put_failures: int = 0
    chain_aborts: int = 0
    gets: int = 0
    get_successes: int = 0
    routed_get_failures: int = 0
    stale_reads: int = 0
    read_repairs: int = 0
    lost_reads: int = 0
    replicas_written: int = 0
    replica_contacts: int = 0
    contact_failures: int = 0
    hints_queued: int = 0
    hints_replayed: int = 0
    graceful_handoffs: int = 0
    rebalanced: int = 0

    def as_dict(self) -> dict[str, float]:
        """Stable JSON-safe dump (used by BENCH_durability)."""
        return {
            "puts": float(self.puts),
            "put_successes": float(self.put_successes),
            "routed_put_failures": float(self.routed_put_failures),
            "chain_aborts": float(self.chain_aborts),
            "gets": float(self.gets),
            "get_successes": float(self.get_successes),
            "routed_get_failures": float(self.routed_get_failures),
            "stale_reads": float(self.stale_reads),
            "read_repairs": float(self.read_repairs),
            "lost_reads": float(self.lost_reads),
            "replicas_written": float(self.replicas_written),
            "replica_contacts": float(self.replica_contacts),
            "contact_failures": float(self.contact_failures),
            "hints_queued": float(self.hints_queued),
            "hints_replayed": float(self.hints_replayed),
            "graceful_handoffs": float(self.graceful_handoffs),
            "rebalanced": float(self.rebalanced),
        }


@dataclass
class PutResult:
    """Outcome of one replicated write."""

    key: int
    version: int
    success: bool
    aborted: bool = False
    acks: int = 0
    route: RouteResult | None = None
    contacts: list[ReplicaContact] = field(default_factory=list)

    @property
    def hops(self) -> int:
        """Routing hops plus successful replica-fan-out messages."""
        routed = self.route.hops if self.route is not None else 0
        return routed + sum(1 for c in self.contacts if c.ok and c.peer != c.src)

    @property
    def latency_ms(self) -> float:
        """Link delays: the routed path plus each replica contact."""
        routed = self.route.latency_ms if self.route is not None else 0.0
        return routed + sum(c.link_latency_ms for c in self.contacts)

    @property
    def retry_latency_ms(self) -> float:
        routed = self.route.retry_latency_ms if self.route is not None else 0.0
        return routed + sum(c.retry_latency_ms for c in self.contacts)

    @property
    def timeouts(self) -> int:
        routed = self.route.timeouts if self.route is not None else 0
        return routed + sum(c.timeouts for c in self.contacts)

    @property
    def total_latency_ms(self) -> float:
        """Link delays plus timeout penalties — the user-visible wait."""
        return self.latency_ms + self.retry_latency_ms


@dataclass
class GetResult:
    """Outcome of one replicated read."""

    key: int
    value: Any
    success: bool
    version: int = -1
    stale: bool = False
    repaired: int = 0
    lost: bool = False
    route: RouteResult | None = None
    contacts: list[ReplicaContact] = field(default_factory=list)

    @property
    def hops(self) -> int:
        routed = self.route.hops if self.route is not None else 0
        return routed + sum(1 for c in self.contacts if c.ok and c.peer != c.src)

    @property
    def latency_ms(self) -> float:
        routed = self.route.latency_ms if self.route is not None else 0.0
        return routed + sum(c.link_latency_ms for c in self.contacts)

    @property
    def retry_latency_ms(self) -> float:
        routed = self.route.retry_latency_ms if self.route is not None else 0.0
        return routed + sum(c.retry_latency_ms for c in self.contacts)

    @property
    def timeouts(self) -> int:
        routed = self.route.timeouts if self.route is not None else 0
        return routed + sum(c.timeouts for c in self.contacts)

    @property
    def total_latency_ms(self) -> float:
        return self.latency_ms + self.retry_latency_ms


class ReplicatedStore:
    """Replicated KV storage with explicit fault handling.

    Parameters
    ----------
    network:
        A :class:`~repro.dht.chord.ChordNetwork` or
        :class:`~repro.core.hieras.HierasNetwork` (anything with
        ``owner_of``/``route``/``route_lossy``/``ring_successor_list``
        and stable peer indices).
    policy:
        Frozen :class:`~repro.replication.policy.ReplicationPolicy`.
    injector:
        Optional :class:`~repro.faults.injector.FaultInjector`; when
        set, routing uses ``route_lossy`` and every replica contact may
        time out.  ``None`` is the fault-free deterministic baseline.

    Attach the store to its network
    (``network.attach_store(store)``) to have membership waves mirrored
    automatically: ``remove_peers`` drops departed disks,
    ``revive_peers`` replays hinted-handoff queues.
    """

    def __init__(
        self,
        network: Any,
        policy: ReplicationPolicy,
        *,
        injector: FaultInjector | None = None,
    ) -> None:
        self.network = network
        self.policy = policy
        self.injector = injector
        #: Per-peer disk: peer -> {key -> (value, version)}.
        self._stored: dict[int, dict[int, tuple[Any, int]]] = {}
        #: Latest published value / version per key (audit ground truth).
        self._catalog: dict[int, Any] = {}
        self._latest: dict[int, int] = {}
        #: Hinted handoff: crashed target -> missed (key, value, version).
        self._hints: dict[int, list[tuple[int, Any, int]]] = {}
        self._version_clock = 0
        self.stats = ReplicationStats()
        self.metrics: SpanRecorder | None = None

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def enable_tracing(self, recorder: SpanRecorder) -> SpanRecorder:
        """Attach a recorder: ``replication.*`` registry counters fire."""
        self.metrics = recorder
        return recorder

    def disable_tracing(self) -> None:
        """Detach the recorder — back to the zero-cost path."""
        self.metrics = None

    def _count(self, name: str, n: int = 1) -> None:
        """Registry-side counter (no-op without a recorder)."""
        if self.metrics is not None:
            self.metrics.registry.inc(name, n)

    # ------------------------------------------------------------------
    # clock / membership
    # ------------------------------------------------------------------
    def advance_to(self, t_ms: float) -> None:
        """Advance the fault clock; revive events replay hint queues."""
        if self.injector is None:
            return
        for event in self.injector.advance_to(t_ms):
            if event.kind == "revive":
                self.on_revive([int(p) for p in event.peers])

    def on_revive(self, peers: list[int]) -> None:
        """Replay hinted-handoff queues for rejoined peers.

        Hints are delivered in the order they were queued; a hint never
        clobbers a newer version the peer already holds (the version
        check in the local write).  Replays are background transfers —
        they charge no routed hops or timeouts.
        """
        for peer in peers:
            for key, value, version in self._hints.pop(int(peer), []):
                self._write_local(int(peer), key, value, version)
                self.stats.hints_replayed += 1
                self._count("replication.hints_replayed")

    def on_graceful_leave(self, peers: list[int]) -> None:
        """Hand departing peers' keys off to their current owners.

        Delivered by ``remove_peers(..., graceful=True)`` after the
        membership flip but *before* the disks drop: every key a
        departing peer holds is copied (value + version) to the key's
        post-departure replica group, so an announced leave loses no
        data the departing node was the last holder of.  Handoffs are
        background transfers — no routed hops, no charged contacts —
        and never clobber newer versions (the local-write version
        check).  The walk is sorted (peers, then keys) for determinism.
        """
        for peer in sorted(int(p) for p in peers):
            disk = self._stored.get(peer)
            if not disk:
                continue
            for key in sorted(disk):
                value, version = disk[key]
                for target in replica_group(self.network, key, self.policy):
                    if int(target) != peer:
                        self._write_local(int(target), key, value, version)
                self.stats.graceful_handoffs += 1
                self._count("replication.graceful_handoffs")

    def rebalance(self) -> int:
        """Re-home every key onto its *current* replica group.

        Membership waves move ownership: after a flash join, a key's
        replica group may name fresh peers that hold nothing, while the
        copies sit on peers no longer responsible.  One rebalance pass
        walks the catalogue (sorted — deterministic), finds the
        freshest copy on any live holder, and writes it to each group
        member that is missing it or holds an older version.  Copies
        are background transfers (no routed hops or charged contacts).
        Returns the number of replica writes performed.
        """
        moved = 0
        disks = sorted(self._stored.items())
        for key in sorted(self._catalog):
            best: tuple[Any, int] | None = None
            for peer, disk in disks:
                if not self._peer_live(peer):
                    continue
                held = disk.get(key)
                if held is not None and (best is None or held[1] > best[1]):
                    best = held
            if best is None:
                continue
            value, version = best
            for target in replica_group(self.network, key, self.policy):
                held = self._read_local(int(target), key)
                if held is None or held[1] < version:
                    self._write_local(int(target), key, value, version)
                    moved += 1
        self.stats.rebalanced += moved
        if moved:
            self._count("replication.rebalanced", moved)
        return moved

    def drop_peer_state(self, peer: int) -> None:
        """Forget a departed peer's disk (its storage is gone).

        Hints queued *for* the peer survive on purpose: they are held by
        other nodes on its behalf (Dynamo-style), so losing its disk
        doesn't destroy them — they replay if the peer ever rejoins.
        """
        self._stored.pop(peer, None)

    def _peer_live(self, peer: int) -> bool:
        """Ground-truth liveness: a member and not currently crashed."""
        if not bool(self.network.is_alive(peer)):
            return False
        return self.injector is None or not self.injector.state.is_dead(peer)

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _route(self, source: int, key: int) -> RouteResult:
        if self.injector is None:
            result: RouteResult = self.network.route(source, key)
            return result
        lossy: RouteResult = self.network.route_lossy(
            source, key, injector=self.injector
        )
        return lossy

    def _link_ms(self, u: int, v: int) -> float:
        delay = float(self.network.latency.pair(u, v))
        if self.injector is not None:
            delay *= self.injector.state.delay_factor
        return delay

    def _contact(self, src: int, dst: int, ctx: LossyContext) -> bool:
        """One modelled replica contact (always succeeds fault-free)."""
        self.stats.replica_contacts += 1
        if self.injector is None:
            return True
        return self.injector.contact(src, dst, ctx)

    def _write_local(self, peer: int, key: int, value: Any, version: int) -> None:
        """Apply a write at one replica unless it already holds newer."""
        disk = self._stored.setdefault(peer, {})
        held = disk.get(key)
        if held is None or held[1] <= version:
            disk[key] = (value, version)
            self.stats.replicas_written += 1

    def _read_local(self, peer: int, key: int) -> tuple[Any, int] | None:
        return self._stored.get(peer, {}).get(key)

    def _queue_hint(self, peer: int, key: int, value: Any, version: int) -> None:
        if not self.policy.hinted_handoff:
            return
        self._hints.setdefault(peer, []).append((key, value, version))
        self.stats.hints_queued += 1
        self._count("replication.hints_queued")

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def put(self, source: int, name: str, value: Any) -> PutResult:
        """Replicated write of ``value`` under ``name`` from ``source``.

        Routes to the key's owner first (failure-aware under an
        injector); the live peer that answered the lookup coordinates
        the fan-out prescribed by the policy's consistency mode.  The
        result carries the route, a per-replica contact record, and the
        version the write stamped.
        """
        key = int(self.network.space.hash_key(name))
        self._version_clock += 1
        version = self._version_clock
        self._catalog[key] = value
        self._latest[key] = version
        self.stats.puts += 1
        self._count("replication.puts")
        route = self._route(source, key)
        if not route.success:
            self.stats.routed_put_failures += 1
            self._count("replication.routed_put_failures")
            return PutResult(key=key, version=version, success=False, route=route)
        group = replica_group(self.network, key, self.policy)
        coordinator = int(route.owner)
        if self.policy.consistency == "chain":
            result = self._chain_write(coordinator, group, key, value, version, route)
        else:
            result = self._quorum_write(coordinator, group, key, value, version, route)
        if result.success:
            self.stats.put_successes += 1
        return result

    def _chain_write(
        self,
        coordinator: int,
        group: list[int],
        key: int,
        value: Any,
        version: int,
        route: RouteResult,
    ) -> PutResult:
        """Head→tail propagation; the first broken link aborts the write."""
        contacts: list[ReplicaContact] = []
        prev = coordinator
        acks = 0
        aborted = False
        for peer in group:
            if peer == prev:
                self._write_local(peer, key, value, version)
                acks += 1
                contacts.append(
                    ReplicaContact(prev, peer, "chain", True, 0, 0.0, 0.0)
                )
                continue
            ctx = LossyContext()
            ok = self._contact(prev, peer, ctx)
            contacts.append(
                ReplicaContact(
                    prev, peer, "chain", ok, ctx.timeouts, ctx.retry_latency_ms,
                    self._link_ms(prev, peer) if ok else 0.0,
                )
            )
            if not ok:
                aborted = True
                self.stats.contact_failures += 1
                self.stats.chain_aborts += 1
                self._count("replication.chain_aborts")
                self._queue_hint(peer, key, value, version)
                break
            self._write_local(peer, key, value, version)
            acks += 1
            prev = peer
        return PutResult(
            key=key, version=version, success=not aborted, aborted=aborted,
            acks=acks, route=route, contacts=contacts,
        )

    def _quorum_write(
        self,
        coordinator: int,
        group: list[int],
        key: int,
        value: Any,
        version: int,
        route: RouteResult,
    ) -> PutResult:
        """Coordinator fan-out; succeeds on ``W`` acks, hints the rest."""
        contacts: list[ReplicaContact] = []
        acks = 0
        for peer in group:
            if peer == coordinator:
                self._write_local(peer, key, value, version)
                acks += 1
                contacts.append(
                    ReplicaContact(coordinator, peer, "write", True, 0, 0.0, 0.0)
                )
                continue
            ctx = LossyContext()
            ok = self._contact(coordinator, peer, ctx)
            contacts.append(
                ReplicaContact(
                    coordinator, peer, "write", ok, ctx.timeouts,
                    ctx.retry_latency_ms,
                    self._link_ms(coordinator, peer) if ok else 0.0,
                )
            )
            if ok:
                self._write_local(peer, key, value, version)
                acks += 1
            else:
                self.stats.contact_failures += 1
                self._queue_hint(peer, key, value, version)
        return PutResult(
            key=key, version=version,
            success=acks >= self.policy.effective_write_quorum,
            acks=acks, route=route, contacts=contacts,
        )

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def get(self, source: int, name: str) -> GetResult:
        """Replicated read of ``name`` from ``source``.

        Chain mode contacts the chain tail (the one node guaranteed to
        hold every committed write); quorum mode gathers ``R``
        responses, returns the freshest, and **repairs** stale or
        missing copies among the responders.  ``lost`` is set when the
        read completed but no contacted replica held a key the store
        has published — observable data loss.
        """
        key = int(self.network.space.hash_key(name))
        self.stats.gets += 1
        self._count("replication.gets")
        route = self._route(source, key)
        if not route.success:
            self.stats.routed_get_failures += 1
            self._count("replication.routed_get_failures")
            return GetResult(key=key, value=None, success=False, route=route)
        group = replica_group(self.network, key, self.policy)
        coordinator = int(route.owner)
        if self.policy.consistency == "chain":
            result = self._chain_read(coordinator, group, key, route)
        else:
            result = self._quorum_read(coordinator, group, key, route)
        if result.success:
            self.stats.get_successes += 1
            if result.value is None and key in self._catalog:
                result.lost = True
                self.stats.lost_reads += 1
                self._count("replication.lost_reads")
        return result

    def _chain_read(
        self, coordinator: int, group: list[int], key: int, route: RouteResult
    ) -> GetResult:
        """Read at the chain tail; an unreachable tail fails the read."""
        tail = group[-1]
        contacts: list[ReplicaContact] = []
        if tail == coordinator:
            held = self._read_local(tail, key)
            contacts.append(ReplicaContact(coordinator, tail, "tail", True, 0, 0.0, 0.0))
        else:
            ctx = LossyContext()
            ok = self._contact(coordinator, tail, ctx)
            contacts.append(
                ReplicaContact(
                    coordinator, tail, "tail", ok, ctx.timeouts,
                    ctx.retry_latency_ms,
                    self._link_ms(coordinator, tail) if ok else 0.0,
                )
            )
            if not ok:
                self.stats.contact_failures += 1
                return GetResult(
                    key=key, value=None, success=False, route=route,
                    contacts=contacts,
                )
            held = self._read_local(tail, key)
        value, version = held if held is not None else (None, -1)
        return GetResult(
            key=key, value=value, success=True, version=version,
            route=route, contacts=contacts,
        )

    def _quorum_read(
        self, coordinator: int, group: list[int], key: int, route: RouteResult
    ) -> GetResult:
        """Gather ``R`` responses; return the freshest, repair the stale."""
        needed = self.policy.effective_read_quorum
        contacts: list[ReplicaContact] = []
        responses: list[tuple[int, tuple[Any, int] | None]] = []
        for peer in group:
            if len(responses) >= needed:
                break
            if peer == coordinator:
                responses.append((peer, self._read_local(peer, key)))
                contacts.append(
                    ReplicaContact(coordinator, peer, "read", True, 0, 0.0, 0.0)
                )
                continue
            ctx = LossyContext()
            ok = self._contact(coordinator, peer, ctx)
            contacts.append(
                ReplicaContact(
                    coordinator, peer, "read", ok, ctx.timeouts,
                    ctx.retry_latency_ms,
                    self._link_ms(coordinator, peer) if ok else 0.0,
                )
            )
            if ok:
                responses.append((peer, self._read_local(peer, key)))
            else:
                self.stats.contact_failures += 1
        if len(responses) < needed:
            return GetResult(
                key=key, value=None, success=False, route=route, contacts=contacts,
            )
        freshest: tuple[Any, int] | None = None
        for _, held in responses:
            if held is not None and (freshest is None or held[1] > freshest[1]):
                freshest = held
        stale = False
        repaired = 0
        if freshest is not None:
            value, version = freshest
            for peer, held in responses:
                if held is None or held[1] < version:
                    stale = True
                    self._write_local(peer, key, value, version)
                    repaired += 1
                    self.stats.read_repairs += 1
                    self._count("replication.read_repairs")
            if stale:
                self.stats.stale_reads += 1
                self._count("replication.stale_reads")
        else:
            value, version = None, -1
        return GetResult(
            key=key, value=value, success=True, version=version, stale=stale,
            repaired=repaired, route=route, contacts=contacts,
        )

    # ------------------------------------------------------------------
    # audit
    # ------------------------------------------------------------------
    def loss_audit(self) -> dict[str, float]:
        """Ground-truth durability census over the whole catalogue.

        A key is **lost** when no live peer holds any version of it,
        **stale-only** when live copies exist but none carries the
        latest published version, and **intact** otherwise.  The walk
        is sorted (keys, then peers) so the audit is deterministic.
        """
        lost = stale_only = intact = 0
        disks = sorted(self._stored.items())
        for key in sorted(self._catalog):
            latest = self._latest[key]
            best = -1
            for peer, disk in disks:
                if not self._peer_live(peer):
                    continue
                held = disk.get(key)
                if held is not None and held[1] > best:
                    best = held[1]
            if best < 0:
                lost += 1
            elif best < latest:
                stale_only += 1
            else:
                intact += 1
        n = len(self._catalog)
        return {
            "keys": float(n),
            "lost": float(lost),
            "stale_only": float(stale_only),
            "intact": float(intact),
            "loss_probability": lost / n if n else 0.0,
            "stale_probability": stale_only / n if n else 0.0,
        }

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def read_at(self, peer: int, name: str) -> Any:
        """The copy of ``name`` held locally by ``peer`` (None if absent).

        A zero-cost local read — no routing, no charged contact — for
        callers that already reached ``peer`` by other means (the
        serving layer's coalesced lookups resolve owners through the
        batch engine and then read the owner's disk in place).
        """
        key = int(self.network.space.hash_key(name))
        held = self._read_local(int(peer), key)
        return held[0] if held is not None else None

    def seed_key(self, name: str, value: Any) -> int:
        """Pre-load ``name`` onto its replica group without routing.

        A bootstrap helper for serving experiments: stamps a version,
        updates the audit catalogue, and writes the replica group's
        disks directly (no routed hops, no charged contacts; only
        ``replicas_written`` ticks).  Returns the version stamped.
        """
        key = int(self.network.space.hash_key(name))
        self._version_clock += 1
        version = self._version_clock
        self._catalog[key] = value
        self._latest[key] = version
        for peer in replica_group(self.network, key, self.policy):
            self._write_local(int(peer), key, value, version)
        return version

    def holder_count(self, name: str) -> int:
        """How many peers (live or not) currently hold ``name``."""
        key = int(self.network.space.hash_key(name))
        return sum(1 for disk in self._stored.values() if key in disk)

    def stored_keys(self, peer: int) -> set[int]:
        """Keys currently held by ``peer``."""
        return set(self._stored.get(peer, {}))

    def pending_hints(self, peer: int) -> int:
        """Hinted writes queued for a currently-unreachable ``peer``."""
        return len(self._hints.get(peer, []))

    def version_of(self, name: str) -> int:
        """Latest published version of ``name`` (-1 if never put)."""
        key = int(self.network.space.hash_key(name))
        return self._latest.get(key, -1)

    def __len__(self) -> int:
        return len(self._catalog)
