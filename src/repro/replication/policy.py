"""Replication policy: the frozen knob set of ``repro.replication``.

One :class:`ReplicationPolicy` fixes everything about how a
:class:`~repro.replication.store.ReplicatedStore` places and maintains
copies — how many replicas beyond the owner, which consistency
discipline writes and reads follow, where replicas live, and whether
writes for crashed replicas are queued as hints.  The knob set mirrors
the Conchord node configuration (SNIPPETS.md Snippet 1:
``replication_factor`` + ``consistency="chain"``) with the
HIERAS-specific addition of ring-scoped placement.

Consistency modes
-----------------
``"chain"``
    Writes propagate head→tail along the replica chain (owner first,
    successors in placement order) and **abort on the first broken
    link** — a crashed or partitioned chain member stops propagation
    and fails the write.  Reads contact the chain *tail* (the only node
    guaranteed to hold every committed write); an unreachable tail
    fails the read.
``"quorum"``
    The coordinator writes all replicas in parallel and succeeds once
    ``write_quorum`` acks arrive; reads gather ``read_quorum``
    responses, return the freshest version seen, and repair stale
    replicas in place.  Defaults are majority quorums over the group of
    ``replicas + 1`` copies.

Placement modes
---------------
``"successor"``
    The classic Chord/CFS discipline: replicas on the key owner's
    global-ring successors.
``"ring_scoped"``
    Replicas stay inside the owner's **lowest-layer HIERAS ring**
    (nearby nodes by landmark order), padded from the global successor
    list when the ring is too small.  On flat Chord the single global
    ring makes this identical to ``"successor"`` — the durability
    experiment exploits exactly that to isolate the placement effect.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import require

__all__ = ["ReplicationPolicy"]

CONSISTENCY_MODES = ("chain", "quorum")
PLACEMENT_MODES = ("successor", "ring_scoped")


@dataclass(frozen=True)
class ReplicationPolicy:
    """Frozen replication configuration (hashable; safe to share).

    Attributes
    ----------
    replicas:
        Copies beyond the owner; the replica group holds
        ``replicas + 1`` copies in total.  ``0`` means owner-only
        storage (the durability experiment's loss baseline).
    consistency:
        ``"chain"`` or ``"quorum"`` (see module docstring).
    write_quorum, read_quorum:
        Ack counts quorum mode needs for a write/read to succeed.
        ``None`` (default) selects a majority of the replica group.
        Ignored by chain mode, which is all-or-abort by construction.
    placement:
        ``"successor"`` or ``"ring_scoped"`` (see module docstring).
    hinted_handoff:
        When True, a write that cannot reach a replica queues a *hint*
        — the missed ``(key, value, version)`` — and replays it when
        the target rejoins, instead of silently dropping the copy.
    """

    replicas: int = 2
    consistency: str = "chain"
    write_quorum: int | None = None
    read_quorum: int | None = None
    placement: str = "successor"
    hinted_handoff: bool = True

    def __post_init__(self) -> None:
        require(self.replicas >= 0, "replicas must be >= 0")
        require(
            self.consistency in CONSISTENCY_MODES,
            f"consistency must be one of {CONSISTENCY_MODES}, got {self.consistency!r}",
        )
        require(
            self.placement in PLACEMENT_MODES,
            f"placement must be one of {PLACEMENT_MODES}, got {self.placement!r}",
        )
        for name, quorum in (("write_quorum", self.write_quorum),
                             ("read_quorum", self.read_quorum)):
            if quorum is not None:
                require(
                    1 <= quorum <= self.group_size,
                    f"{name} must be in [1, {self.group_size}], got {quorum}",
                )

    @property
    def group_size(self) -> int:
        """Total copies of every key (owner + replicas)."""
        return self.replicas + 1

    @property
    def effective_write_quorum(self) -> int:
        """Acks a quorum write needs (majority unless pinned)."""
        if self.write_quorum is not None:
            return self.write_quorum
        return self.group_size // 2 + 1

    @property
    def effective_read_quorum(self) -> int:
        """Responses a quorum read needs (majority unless pinned)."""
        if self.read_quorum is not None:
            return self.read_quorum
        return self.group_size // 2 + 1

    def describe(self) -> str:
        """One-line label used by experiment tables and benchmarks."""
        quorums = (
            f" W={self.effective_write_quorum}/R={self.effective_read_quorum}"
            if self.consistency == "quorum"
            else ""
        )
        handoff = "+handoff" if self.hinted_handoff else ""
        return (
            f"r={self.replicas} {self.consistency}{quorums} "
            f"{self.placement}{handoff}"
        )
