"""Million-peer scale-out: substrate sizing and memory-bounded builds.

The standard experiment runner (:mod:`repro.experiments.runner`) is
tuned for paper-scale deployments — a few thousand peers, eager latency
models, a substrate cache.  This package provides the scale variant:

* :func:`scale_ts_params` — transit-stub sizing that keeps per-stub
  APSP blocks small (≈1 MB) no matter how large the internetwork
  grows, so the streaming latency model's working set stays bounded;
* :func:`build_scale_bundle` — the same seeded build pipeline as
  ``build_bundle`` (identical RNG labels, so small configs reproduce
  the standard substrates) but uncached and wired to the streaming
  latency models past the memory threshold;
* :func:`hot_state_bytes` — the struct-of-arrays memory audit of both
  routing stacks, reported by ``BENCH_scale.json``.

The routing state itself needs no scale twin: the incremental
membership layer (``SortedRing.splice`` waves) and interned ring-name
codes live in the ordinary :mod:`repro.dht` / :mod:`repro.core`
classes, used by every experiment at every size.
"""

from repro.scale.bundle import build_scale_bundle, hot_state_bytes, scale_ts_params

__all__ = ["build_scale_bundle", "hot_state_bytes", "scale_ts_params"]
