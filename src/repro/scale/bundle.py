"""Substrate sizing and deployment builds for million-peer networks.

Everything here is seed-deterministic through the same
:class:`~repro.util.rng.RngFactory` labels the standard runner uses
(``"topology"``, ``"attach"``, ``"landmarks"``, ``"node-ids"``), so a
scale build at a small N is byte-for-byte the standard build — the
scale path changes only *where state lives*, never what it contains.
"""

from __future__ import annotations

import numpy as np

from repro.core.binning import BinningScheme
from repro.core.hieras import HierasNetwork
from repro.dht.chord import ChordNetwork
from repro.experiments.config import SimConfig
from repro.experiments.runner import SimulationBundle
from repro.topology.attach import OverlayAttachment, attach_overlay, place_landmarks
from repro.topology.base import Topology
from repro.topology.brite import BriteParams, generate_brite
from repro.topology.inet import InetParams, generate_inet
from repro.topology.latency import latency_model_for
from repro.topology.transit_stub import TransitStubParams, generate_transit_stub
from repro.util.ids import IdSpace
from repro.util.rng import RngFactory
from repro.util.validation import require

__all__ = ["build_scale_bundle", "hot_state_bytes", "scale_ts_params"]

#: Past this eager-model footprint, builds switch to streaming latency.
DEFAULT_STREAMING_THRESHOLD_BYTES = 1 << 30

#: Hard ceiling on a streaming model's resident blocks (LRU budget).
DEFAULT_STREAMING_CACHE_BYTES = 4 << 30


def scale_ts_params(n_routers: int) -> TransitStubParams:
    """Transit-stub parameters sized for very large internetworks.

    Below 100 000 routers this defers to
    :meth:`~repro.topology.transit_stub.TransitStubParams.for_size`, so
    every existing config keeps its exact topology.  Above, the transit
    tier grows with the network while stub domains are pinned near 512
    routers: per-stub APSP blocks stay ≈1 MB (``512² × 4`` bytes), the
    unit of work both the streaming latency cache and the exact border
    decomposition operate on.  At 1.25 M routers that yields 38 transit
    domains × 8 routers, 2 432 stubs of 514 — a core APSP under 1 MB
    and a bounded block working set, instead of one monolithic
    quadratic matrix.
    """
    require(n_routers >= 16, f"transit-stub networks need >= 16 routers, got {n_routers}")
    if n_routers < 100_000:
        return TransitStubParams.for_size(n_routers)
    per_domain = 8
    stubs_per = 8
    target_stub = 512
    n_domains = max(
        4, round(n_routers / (per_domain * (1 + stubs_per * target_stub)))
    )
    n_transit = n_domains * per_domain
    stub_size = max(2, round((n_routers / n_transit - 1) / stubs_per))
    return TransitStubParams(
        n_transit_domains=n_domains,
        transit_nodes_per_domain=per_domain,
        stubs_per_transit_node=stubs_per,
        stub_domain_size=stub_size,
        stub_edge_prob=min(0.5, 1.5 / stub_size),
    )


def _scale_topology(config: SimConfig, seed: np.random.Generator) -> Topology:
    if config.model == "ts":
        return generate_transit_stub(scale_ts_params(config.n_routers), seed=seed)
    if config.model == "inet":
        require(
            config.n_routers >= 3000,
            f"Inet topologies need >= 3000 routers (got {config.n_routers})",
        )
        return generate_inet(InetParams(n_nodes=config.n_routers), seed=seed)
    return generate_brite(BriteParams(n_nodes=config.n_routers), seed=seed)


def build_scale_bundle(
    config: SimConfig,
    *,
    streaming_threshold_bytes: int = DEFAULT_STREAMING_THRESHOLD_BYTES,
    streaming_cache_bytes: int = DEFAULT_STREAMING_CACHE_BYTES,
) -> SimulationBundle:
    """Build a deployment sized for millions of peers.

    Same pipeline and seeding as
    :func:`repro.experiments.runner.build_bundle` — topology → latency
    → attachment → landmarks → binning → both stacks — with three scale
    adaptations: no process-wide substrate cache (a million-peer
    substrate is not something to keep two of), transit-stub sizing via
    :func:`scale_ts_params`, and latency models that stream blocks once
    their eager form would cross ``streaming_threshold_bytes``.
    """
    rngs = RngFactory(config.seed)
    topology = _scale_topology(config, rngs.get("topology"))
    model = latency_model_for(
        topology,
        streaming_threshold_bytes=streaming_threshold_bytes,
        streaming_cache_bytes=streaming_cache_bytes,
    )
    routers = attach_overlay(topology, config.n_peers, seed=rngs.get("attach"))
    landmarks = place_landmarks(
        topology,
        model,
        config.n_landmarks,
        seed=rngs.get("landmarks"),
        strategy=config.resolved_landmark_strategy,
    )
    attachment = OverlayAttachment(topology, routers, landmarks)
    space = IdSpace(config.bits)
    node_ids = space.sample_unique_ids(config.n_peers, rngs.get("node-ids"))
    peer_latency = attachment.peer_latency(model)
    chord = ChordNetwork(space, node_ids, latency=peer_latency)
    scheme = BinningScheme.default_for_depth(config.depth)
    orders = scheme.orders(attachment.landmark_distances(model))
    hieras = HierasNetwork(
        space,
        node_ids,
        latency=peer_latency,
        landmark_orders=orders,
        depth=config.depth,
        successor_list_r=config.successor_list_r,
        successor_list_policy=config.successor_list_policy,
    )
    return SimulationBundle(
        config=config,
        topology=topology,
        attachment=attachment,
        peer_latency=peer_latency,
        space=space,
        node_ids=node_ids,
        orders=orders,
        chord=chord,
        hieras=hieras,
    )


def hot_state_bytes(bundle: SimulationBundle) -> dict[str, int]:
    """Byte counts of the struct-of-arrays routing state of both stacks.

    Seed-deterministic (array shapes and dtypes only), so the numbers
    are safe for a bench document's byte-compared ``metrics`` — and
    they are the receipts for the "no per-peer Python objects on the
    hot path" claim: every entry is a numpy buffer, with ring-name
    strings interned once per *ring*, not per peer.
    """
    chord = bundle.chord
    hieras = bundle.hieras
    chord_total = (
        chord.ring.ids.nbytes
        + chord.ring.peers.nbytes
        + chord._id_of_peer.nbytes
        + chord._alive.nbytes
    )
    hieras_rings = sum(
        ring.ids.nbytes + ring.peers.nbytes
        for layer in hieras._rings
        for ring in layer
    )
    hieras_total = (
        hieras.global_ring.ids.nbytes
        + hieras.global_ring.peers.nbytes
        + hieras_rings
        + hieras._id_of_peer.nbytes
        + hieras._alive.nbytes
        + hieras._ring_of_peer.nbytes
        + hieras._pos_in_ring.nbytes
        + sum(codes.nbytes for codes in hieras._name_codes)
    )
    return {
        "chord_bytes": int(chord_total),
        "hieras_bytes": int(hieras_total),
        "hieras_ring_name_pool_entries": int(
            sum(len(pool) for pool in hieras._name_pool)
        ),
    }
