"""Declarative, seeded failure-campaign suite (scenario benchmarks).

The fault layer (:mod:`repro.faults`) gives primitive events; this
package composes them into *named campaigns* — graceful mass departure,
abrupt crash waves, a whole lowest-layer HIERAS ring dying at once,
flash joins, long-running heavy-tailed session churn, rolling landmark
outages — each compiled to a concrete :class:`CompiledScenario`
(fault plan + membership waves + client-load schedule) and replayed
identically against both execution stacks.  Per scenario the runner
measures availability over time, route stretch versus a fault-free
twin, sustained recovery time, and data durability.  Compilation and
replay are pure functions of ``(config, params)``.
"""

from repro.scenarios.library import SCENARIOS, scenario_names
from repro.scenarios.runner import run_scenario_cell
from repro.scenarios.spec import (
    WAVE_KINDS,
    CompiledScenario,
    MembershipWave,
    ScenarioParams,
)
from repro.scenarios.timeline import recovery_time_ms, series_summary

__all__ = [
    "CompiledScenario",
    "MembershipWave",
    "SCENARIOS",
    "ScenarioParams",
    "WAVE_KINDS",
    "recovery_time_ms",
    "run_scenario_cell",
    "scenario_names",
    "series_summary",
]
