"""Scenario data model: parameters, membership waves, compiled campaigns.

A *scenario* is a named, seeded failure campaign.  Declaring one
produces a :class:`CompiledScenario` — the fully concrete form the
runner replays: a :class:`~repro.faults.plan.FaultPlan` (crashes,
revives, landmark outages applied through the injector), a time-sorted
tuple of :class:`MembershipWave` records (announced leaves, stabilize
purges, join/revive waves, rebalance passes — the overlay-level changes
the injector deliberately does not perform), one
:class:`~repro.loadgen.schedule.Schedule` driving the client op
stream, and the peers held out of the initial membership.

Compilation is deterministic: every random choice (who leaves, which
ring dies, who joins when) is drawn from
:class:`~repro.util.rng.RngFactory` streams keyed by the scenario seed
and a per-decision name, so the same ``(bundle, params)`` always
compiles to the same campaign — the repo-wide determinism contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.faults.plan import FaultPlan
from repro.loadgen.schedule import Schedule
from repro.util.validation import require

__all__ = ["MembershipWave", "CompiledScenario", "ScenarioParams", "WAVE_KINDS"]

#: Overlay-level wave kinds the runner knows how to apply.
#:
#: * ``leave_graceful`` — announced departure: ``remove_peers(...,
#:   graceful=True)``; attached stores hand keys off before disks drop.
#: * ``remove`` — silent departure: plain ``remove_peers`` (disks gone).
#: * ``stabilize`` — purge *crashed* peers from the rings, modelling a
#:   stabilization round: only peers still injector-dead and
#:   net-alive when the wave fires are removed.
#: * ``revive`` — previously-removed peers rejoin under their old ring
#:   names (the injector revives crashed ones separately, via the plan).
#: * ``rebind_revive`` — rejoin under *new* lower-ring names (degraded
#:   landmark measurements); flat stacks treat this as ``revive``.
#: * ``rebalance`` — one storage rebalance pass: every key is re-homed
#:   onto its current replica group.
WAVE_KINDS = (
    "leave_graceful",
    "remove",
    "stabilize",
    "revive",
    "rebind_revive",
    "rebalance",
)


@dataclass(frozen=True)
class MembershipWave:
    """One overlay-level membership action at a point in scenario time."""

    time_ms: float
    kind: str
    peers: tuple[int, ...] = ()
    #: ``rebind_revive`` only: one ring-name tuple (layer 2 first) per
    #: peer, in ``peers`` order.
    ring_names: tuple[tuple[str, ...], ...] = ()

    def __post_init__(self) -> None:
        require(self.time_ms >= 0.0, "wave time_ms must be >= 0")
        require(self.kind in WAVE_KINDS, f"unknown wave kind {self.kind!r}")
        if self.kind == "rebind_revive":
            require(
                len(self.ring_names) == len(self.peers),
                "rebind_revive needs one ring-name tuple per peer",
            )


@dataclass
class CompiledScenario:
    """A concrete, replayable failure campaign.

    ``fault_start_ms`` marks the beginning of the campaign's main
    damage window — recovery time is measured from here.  ``notes``
    carries compile-time evidence about what the campaign actually
    does (which ring died and how big it was, how many churn events
    were compiled, …); values must be JSON-safe.
    """

    name: str
    duration_ms: float
    plan: FaultPlan
    waves: tuple[MembershipWave, ...]
    schedule: Schedule
    initial_offline: tuple[int, ...] = ()
    fault_start_ms: float = 0.0
    notes: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        require(self.duration_ms > 0.0, "duration_ms must be > 0")
        times = [w.time_ms for w in self.waves]
        require(times == sorted(times), "waves must be time-sorted")


@dataclass(frozen=True)
class ScenarioParams:
    """Shared knobs every scenario compiles against.

    One frozen parameter set covers the whole suite so a sweep is a
    pure function of ``(config, params)``; individual scenarios read
    the fields they care about and ignore the rest.
    """

    seed: int = 42
    duration_ms: float = 3000.0
    #: Probe cohorts fire every ``probe_interval_ms`` (the availability
    #: time-series resolution — and the wave-application granularity).
    probe_interval_ms: float = 150.0
    n_probes: int = 24
    #: Client op stream base rate (requests/second).
    rate_per_s: float = 40.0
    #: Time of the main fault wave for single-wave scenarios.
    fault_at_ms: float = 1000.0
    #: Delay from a crash wave to the stabilize purge that repairs
    #: routing state (the recovery mechanism on the static stack).
    stabilize_delay_ms: float = 600.0
    #: A scenario has "recovered" once probe availability stays at or
    #: above this rate for the rest of the run.
    recovery_threshold: float = 0.9
    #: Fraction departing in the graceful/abrupt departure scenarios.
    leave_fraction: float = 0.25
    #: Fraction of the universe held out and flash-joined later.
    join_fraction: float = 0.4
    #: Weibull-churn session shape/means (heavy-tailed below shape 1).
    mean_session_ms: float = 1500.0
    mean_offline_ms: float = 1200.0
    weibull_shape: float = 0.6
    fail_fraction: float = 0.5
    #: Message-loss rate of the burst that accompanies the regional
    #: crash (correlated network damage) until stabilization completes.
    loss_rate: float = 0.35
    #: Rolling landmark-outage count.
    n_outages: int = 2
    #: Client workload mix.
    catalog_size: int = 64
    read_fraction: float = 0.75
    replicas: int = 2

    def __post_init__(self) -> None:
        require(self.duration_ms > 0.0, "duration_ms must be > 0")
        require(self.probe_interval_ms > 0.0, "probe_interval_ms must be > 0")
        require(self.n_probes >= 1, "n_probes must be >= 1")
        require(self.rate_per_s >= 0.0, "rate_per_s must be >= 0")
        require(
            0.0 <= self.fault_at_ms < self.duration_ms,
            "fault_at_ms must fall inside the run",
        )
        require(self.stabilize_delay_ms > 0.0, "stabilize_delay_ms must be > 0")
        require(
            0.0 < self.recovery_threshold <= 1.0,
            "recovery_threshold must be in (0, 1]",
        )
        require(0.0 < self.leave_fraction < 1.0, "leave_fraction must be in (0, 1)")
        require(0.0 < self.join_fraction < 1.0, "join_fraction must be in (0, 1)")
        require(self.weibull_shape > 0.0, "weibull_shape must be > 0")
        require(0.0 <= self.fail_fraction <= 1.0, "fail_fraction must be in [0, 1]")
        require(0.0 <= self.loss_rate < 1.0, "loss_rate must be in [0, 1)")
        require(self.n_outages >= 1, "n_outages must be >= 1")
        require(self.catalog_size >= 1, "catalog_size must be >= 1")
        require(self.replicas >= 0, "replicas must be >= 0")
