"""Replay one compiled scenario against one stack and measure it.

The runner owns the scenario clock.  Time advances in probe-interval
ticks; each tick, in order:

1. the fault clock advances (:meth:`ReplicatedStore.advance_to` —
   injector crashes/revives/outages fire, hint queues replay);
2. due membership waves apply (graceful leaves, stabilize purges,
   join/revive waves, rebalance passes), filtered against ground truth
   so a peer that rejoined early is not purged by a stale wave;
3. the client ops that arrived since the last tick execute against the
   replicated store (loadgen-generated
   :class:`~repro.serve.request.Request` records — the same stream the
   serving layer consumes);
4. a probe cohort routes ``n_probes`` seeded lookups through
   ``route_lossy`` — the availability sample — and each success is
   priced against the same lookup on a pristine fault-free twin of the
   network (built from the identical config), giving route stretch.

Everything is a pure function of ``(config, scenario, stack,
params)``: networks are built fresh per cell, all randomness flows
through named :class:`~repro.util.rng.RngFactory` streams, and the
returned metrics are byte-reproducible across runs.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.config import SimConfig
from repro.experiments.runner import build_bundle
from repro.faults.injector import FaultInjector
from repro.loadgen.workload import WorkloadMix, catalog_names, generate
from repro.replication.policy import ReplicationPolicy
from repro.replication.store import ReplicatedStore
from repro.scenarios.library import SCENARIOS
from repro.scenarios.spec import CompiledScenario, ScenarioParams
from repro.scenarios.timeline import recovery_time_ms, series_summary
from repro.util.rng import RngFactory
from repro.util.validation import require

__all__ = ["run_scenario_cell"]


def _apply_wave(net, store: ReplicatedStore, injector: FaultInjector, wave) -> None:
    """Apply one membership wave, filtered against current ground truth."""
    if wave.kind == "rebalance":
        store.rebalance()
        return
    if wave.kind == "leave_graceful":
        live = [p for p in wave.peers if net.is_alive(p)]
        if live:
            net.remove_peers(live, graceful=True)
    elif wave.kind == "remove":
        live = [p for p in wave.peers if net.is_alive(p)]
        if live:
            net.remove_peers(live)
    elif wave.kind == "stabilize":
        # Purge only peers still crashed: one that rejoined before the
        # stabilization round reached it must not be evicted.
        dead = [p for p in wave.peers if net.is_alive(p) and injector.state.is_dead(p)]
        if dead:
            net.remove_peers(dead)
    elif wave.kind == "revive":
        offline = [p for p in wave.peers if not net.is_alive(p)]
        if offline:
            net.revive_peers(offline)
    elif wave.kind == "rebind_revive":
        pairs = [
            (p, list(names))
            for p, names in zip(wave.peers, wave.ring_names)
            if not net.is_alive(p)
        ]
        if pairs:
            peers = [p for p, _ in pairs]
            if hasattr(net, "rebind_peers"):
                net.rebind_peers(peers, [names for _, names in pairs])
            net.revive_peers(peers)
    else:  # pragma: no cover - spec validation guarantees known kinds
        raise ValueError(f"unknown wave kind {wave.kind!r}")


def run_scenario_cell(
    config: SimConfig,
    scenario: str,
    stack: str,
    params: ScenarioParams,
) -> dict[str, object]:
    """One (scenario, stack) cell; returns deterministic metrics.

    ``stack`` selects ``"chord"`` or ``"hieras"``.  The campaign is
    compiled against a pristine bundle of ``config`` (so both stacks
    replay identical peer sets), then replayed tick by tick as the
    module docstring describes.
    """
    require(scenario in SCENARIOS, f"unknown scenario {scenario!r}")
    require(stack in ("chord", "hieras"), f"unknown stack {stack!r}")
    # Two independent builds of the same config: the live network (and
    # the compile-time view) mutates; the twin stays pristine and
    # prices the fault-free baseline paths for route stretch.
    bundle = build_bundle(config)
    baseline = build_bundle(config)
    compiled: CompiledScenario = SCENARIOS[scenario](bundle, params)
    net = bundle.chord if stack == "chord" else bundle.hieras
    base_net = baseline.chord if stack == "chord" else baseline.hieras
    universe = config.n_peers

    injector = FaultInjector(compiled.plan, universe)
    policy = ReplicationPolicy(
        replicas=params.replicas, consistency="quorum", placement="ring_scoped"
    )
    store = ReplicatedStore(net, policy, injector=injector)
    net.attach_store(store)
    if compiled.initial_offline:
        net.remove_peers(list(compiled.initial_offline))

    # Seed the catalogue on the initial membership so reads have data
    # from t=0; versions stamped here are the durability ground truth.
    mix = WorkloadMix(
        read_fraction=params.read_fraction,
        catalog_size=params.catalog_size,
        name_prefix="sk",
    )
    for name in catalog_names(mix):
        store.seed_key(name, f"seed-{name}")

    rngs = RngFactory(params.seed)
    arrivals = compiled.schedule.arrival_times(rngs.get(f"scenario-{scenario}-arrivals"))
    pool = np.asarray(
        sorted(set(range(universe)) - set(compiled.initial_offline)), dtype=np.int64
    )
    requests = generate(mix, arrivals, pool, rngs.get(f"scenario-{scenario}-ops"))

    n_ticks = int(compiled.duration_ms // params.probe_interval_ms)
    probe_src = rngs.get(f"scenario-{scenario}-probe-src").integers(
        0, universe, size=(n_ticks, params.n_probes)
    )
    probe_key = rngs.get(f"scenario-{scenario}-probe-key").integers(
        0, bundle.space.size, size=(n_ticks, params.n_probes), dtype=np.uint64
    )

    def resolve_live(peer: int) -> int:
        """Deterministic walk to the next live, non-crashed peer."""
        p = int(peer) % universe
        while not (net.is_alive(p) and not injector.state.is_dead(p)):
            p = (p + 1) % universe
        return p

    times: list[float] = []
    availability: list[float] = []
    stretch_timeline: list[float] = []
    gets_total_tl: list[float] = []
    gets_ok_tl: list[float] = []
    stretch_sum = 0.0
    stretch_max = 0.0
    stretch_n = 0
    puts_ok = puts_total = gets_ok = gets_total = lost_gets = 0
    wave_i = 0
    req_i = 0
    for tick in range(1, n_ticks + 1):
        t = tick * params.probe_interval_ms
        store.advance_to(t)
        while wave_i < len(compiled.waves) and compiled.waves[wave_i].time_ms <= t:
            _apply_wave(net, store, injector, compiled.waves[wave_i])
            wave_i += 1
        tick_gets = tick_gets_ok = 0
        while req_i < len(requests) and requests[req_i].at_ms <= t:
            req = requests[req_i]
            req_i += 1
            src = resolve_live(req.source)
            if req.op == "get":
                got = store.get(src, req.name)
                gets_total += 1
                tick_gets += 1
                if got.lost:
                    lost_gets += 1
                if got.success and not got.lost:
                    gets_ok += 1
                    tick_gets_ok += 1
            else:
                put = store.put(src, req.name, req.value)
                puts_total += 1
                if put.success:
                    puts_ok += 1
        ok = 0
        tick_stretch_sum = 0.0
        tick_stretch_n = 0
        for j in range(params.n_probes):
            src = resolve_live(int(probe_src[tick - 1, j]))
            key = int(probe_key[tick - 1, j])
            result = net.route_lossy(src, key, injector=injector)
            if not result.success:
                continue
            ok += 1
            base = base_net.route(src, key)
            if base.latency_ms > 0.0:
                ratio = result.total_latency_ms / base.latency_ms
                tick_stretch_sum += ratio
                tick_stretch_n += 1
                stretch_sum += ratio
                stretch_n += 1
                if ratio > stretch_max:
                    stretch_max = ratio
        times.append(t)
        availability.append(ok / params.n_probes)
        stretch_timeline.append(
            tick_stretch_sum / tick_stretch_n if tick_stretch_n else -1.0
        )
        gets_total_tl.append(float(tick_gets))
        gets_ok_tl.append(float(tick_gets_ok))

    audit = store.loss_audit()
    stats = store.stats
    summary = series_summary(availability)
    recovery_ms, recovered = recovery_time_ms(
        times,
        availability,
        fault_start_ms=compiled.fault_start_ms,
        threshold=params.recovery_threshold,
    )
    return {
        "scenario": scenario,
        "stack": stack,
        "n_peers": float(universe),
        "initial_live": float(universe - len(compiled.initial_offline)),
        "ticks": float(n_ticks),
        "probes_per_tick": float(params.n_probes),
        "availability": availability,
        "availability_mean": summary["mean"],
        "availability_min": summary["min"],
        "availability_final": summary["final"],
        "recovery_ms": recovery_ms,
        "recovered": float(recovered),
        "stretch_timeline": stretch_timeline,
        "stretch_mean": stretch_sum / stretch_n if stretch_n else -1.0,
        "stretch_max": stretch_max,
        "stretch_samples": float(stretch_n),
        "gets_total_timeline": gets_total_tl,
        "gets_ok_timeline": gets_ok_tl,
        "puts": float(puts_total),
        "put_success_rate": puts_ok / puts_total if puts_total else 1.0,
        "gets": float(gets_total),
        "get_success_rate": gets_ok / gets_total if gets_total else 1.0,
        "lost_get_rate": lost_gets / gets_total if gets_total else 0.0,
        "graceful_handoffs": float(stats.graceful_handoffs),
        "hints_queued": float(stats.hints_queued),
        "hints_replayed": float(stats.hints_replayed),
        "rebalanced": float(stats.rebalanced),
        "crashed_final": float(int(injector.state.dead.sum())),
        "live_final": float(net.n_peers),
        "loss_probability": audit["loss_probability"],
        "stale_probability": audit["stale_probability"],
        "keys": audit["keys"],
        "lost": audit["lost"],
        "intact": audit["intact"],
        "notes": dict(compiled.notes),
    }
