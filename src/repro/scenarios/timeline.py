"""Availability time-series analysis: recovery time and summaries.

The runner produces one probe-availability sample per tick; these
helpers turn that series into the scenario-level numbers the suite
reports.  Recovery uses the *sustained* definition: the system has
recovered at the earliest tick from which availability never again
drops below the threshold — a single good cohort during a flapping
phase does not count.
"""

from __future__ import annotations

__all__ = ["recovery_time_ms", "series_summary"]


def recovery_time_ms(
    times_ms: list[float],
    rates: list[float],
    *,
    fault_start_ms: float,
    threshold: float,
) -> tuple[float, bool]:
    """Sustained-recovery time after a fault window opens.

    Returns ``(recovery_ms, recovered)``: the delay from
    ``fault_start_ms`` to the earliest tick at or after it from which
    every remaining sample stays at or above ``threshold``; ``(-1.0,
    False)`` when the series never sustains the threshold (censored —
    the campaign outlived the observation window).  A scenario whose
    availability never dips recovers at the first post-fault tick,
    i.e. within one probe interval.
    """
    candidate: float | None = None
    for t, rate in zip(times_ms, rates):
        if t < fault_start_ms:
            continue
        if rate >= threshold:
            if candidate is None:
                candidate = t
        else:
            candidate = None
    if candidate is None:
        return -1.0, False
    return max(candidate - fault_start_ms, 0.0), True


def series_summary(rates: list[float]) -> dict[str, float]:
    """Mean / min / final of one availability series (empty-safe)."""
    if not rates:
        return {"mean": 0.0, "min": 0.0, "final": 0.0}
    return {
        "mean": sum(rates) / len(rates),
        "min": min(rates),
        "final": rates[-1],
    }
