"""The named scenario library: six adversarial / realistic campaigns.

Each entry is a compiler ``(bundle, params) -> CompiledScenario``; the
:data:`SCENARIOS` registry maps names to compilers.  All member
resolution happens against the *pristine* bundle (full initial
membership), so the same campaign — the identical peer sets, times and
waves — replays against both the flat Chord baseline and HIERAS for a
head-to-head comparison.

The suite (motivations in DESIGN.md's Scenarios section):

``graceful_leave`` / ``abrupt_crash``
    The same 25% of peers depart at the same instant — announced
    (handoff to successors, rings rebuilt atomically) vs silently
    killed (stale finger tables until a stabilize purge).  The pair
    isolates what *announcing* a departure is worth.
``regional_failure``
    The paper's adversarial case: HIERAS's topology-aware rings mean a
    regional outage kills an entire lowest-layer ring in one wave.
    The largest such ring is resolved from the pristine HIERAS overlay
    and crashed wholesale (via :meth:`FaultPlan.crash_ring`) — the
    identical peer set crashes under flat Chord for comparison.
``flash_join``
    A large held-out cohort joins in one wave under live load;
    ownership shifts away from the peers holding the data until a
    rebalance pass re-homes it.
``weibull_churn``
    Continuous heavy-tailed session churn (measurement-study peer
    behavior): joins, graceful leaves and silent failures interleave
    for the whole run, with stabilize purges trailing each failure.
``landmark_outage_rolling``
    Landmarks die one by one while held-out peers trickle back in;
    joiners measure blinded coordinates and land in the wrong
    low-layer rings (degraded binning, §2.3).  Flat Chord ignores
    landmarks entirely — the damage is HIERAS-specific route stretch.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.core.binning import BinningScheme
from repro.experiments.runner import SimulationBundle
from repro.faults.plan import FaultPlan
from repro.loadgen.schedule import constant_rate, flash_crowd
from repro.scenarios.spec import CompiledScenario, MembershipWave, ScenarioParams
from repro.util.rng import RngFactory
from repro.workloads.churn import generate_churn

__all__ = ["SCENARIOS", "scenario_names"]


def _departure_peers(bundle: SimulationBundle, params: ScenarioParams) -> list[int]:
    """The shared leave/crash cohort of the departure pair.

    Drawn from one stream keyed only by the scenario seed so the
    graceful and abrupt variants hit the *same* peers — the comparison
    is announcement vs silence, nothing else.
    """
    n = bundle.config.n_peers
    count = int(round(params.leave_fraction * n))
    rng = RngFactory(params.seed).get("scenario-departure-peers")
    chosen = rng.choice(n, size=min(count, n - 1), replace=False)
    return sorted(int(p) for p in chosen)


def compile_graceful_leave(
    bundle: SimulationBundle, params: ScenarioParams
) -> CompiledScenario:
    """Announced mass departure: handoff first, one atomic rebuild."""
    peers = _departure_peers(bundle, params)
    waves = (
        MembershipWave(params.fault_at_ms, "leave_graceful", peers=tuple(peers)),
    )
    return CompiledScenario(
        name="graceful_leave",
        duration_ms=params.duration_ms,
        plan=FaultPlan(seed=params.seed),
        waves=waves,
        schedule=constant_rate(params.rate_per_s, params.duration_ms),
        fault_start_ms=params.fault_at_ms,
        notes={"departed": len(peers), "mode": "graceful"},
    )


def compile_abrupt_crash(
    bundle: SimulationBundle, params: ScenarioParams
) -> CompiledScenario:
    """Silent mass failure: stale fingers until the stabilize purge."""
    peers = _departure_peers(bundle, params)
    plan = FaultPlan(seed=params.seed).crash_peers(
        at_ms=params.fault_at_ms, peers=peers
    )
    waves = (
        MembershipWave(
            params.fault_at_ms + params.stabilize_delay_ms,
            "stabilize",
            peers=tuple(peers),
        ),
    )
    return CompiledScenario(
        name="abrupt_crash",
        duration_ms=params.duration_ms,
        plan=plan,
        waves=waves,
        schedule=constant_rate(params.rate_per_s, params.duration_ms),
        fault_start_ms=params.fault_at_ms,
        notes={"departed": len(peers), "mode": "abrupt"},
    )


def compile_regional_failure(
    bundle: SimulationBundle, params: ScenarioParams
) -> CompiledScenario:
    """Correlated regional outage: the largest lowest-layer ring dies.

    Ring membership is resolved from the pristine HIERAS overlay (ties
    broken by ring name), so the whole-ring loss is exercised by
    construction; the identical peers crash under flat Chord.
    """
    hieras = bundle.hieras
    rings = hieras.rings_at_layer(hieras.depth)
    name = max(sorted(rings), key=lambda r: (len(rings[r]), r))
    members = sorted(int(p) for p in rings[name].peers)
    plan = FaultPlan(seed=params.seed).crash_ring(
        at_ms=params.fault_at_ms, network=hieras, name=name
    )
    if params.loss_rate > 0.0:
        # The regional outage is correlated network damage, not just
        # dead hosts: survivors see a message-loss burst until the
        # stabilize purge repairs routing state.
        plan.loss_burst(
            at_ms=params.fault_at_ms,
            rate=params.loss_rate,
            duration_ms=params.stabilize_delay_ms,
        )
    waves = (
        MembershipWave(
            params.fault_at_ms + params.stabilize_delay_ms,
            "stabilize",
            peers=tuple(members),
        ),
    )
    return CompiledScenario(
        name="regional_failure",
        duration_ms=params.duration_ms,
        plan=plan,
        waves=waves,
        schedule=constant_rate(params.rate_per_s, params.duration_ms),
        fault_start_ms=params.fault_at_ms,
        notes={
            "ring_name": name,
            "ring_size": len(members),
            "ring_fraction": len(members) / bundle.config.n_peers,
            "loss_rate": params.loss_rate,
        },
    )


def compile_flash_join(
    bundle: SimulationBundle, params: ScenarioParams
) -> CompiledScenario:
    """A held-out cohort joins in one wave under a flash crowd.

    Ownership shifts to the joiners, who hold nothing until the
    trailing rebalance pass re-homes every key onto its current
    replica group — the data-availability dip in between is the
    scenario's signature.
    """
    n = bundle.config.n_peers
    held_out = tuple(range(n - int(round(params.join_fraction * n)), n))
    rebalance_at = params.fault_at_ms + (params.duration_ms - params.fault_at_ms) / 2.0
    waves = (
        MembershipWave(params.fault_at_ms, "revive", peers=held_out),
        MembershipWave(rebalance_at, "rebalance"),
    )
    schedule = flash_crowd(
        params.rate_per_s,
        params.duration_ms,
        spike_at_ms=params.fault_at_ms,
        spike_duration_ms=4.0 * params.probe_interval_ms,
        spike_factor=4.0,
    )
    return CompiledScenario(
        name="flash_join",
        duration_ms=params.duration_ms,
        plan=FaultPlan(seed=params.seed),
        waves=waves,
        schedule=schedule,
        initial_offline=held_out,
        fault_start_ms=params.fault_at_ms,
        notes={"joined": len(held_out), "rebalance_at_ms": rebalance_at},
    )


def compile_weibull_churn(
    bundle: SimulationBundle, params: ScenarioParams
) -> CompiledScenario:
    """Continuous heavy-tailed session churn for the whole run.

    A :func:`~repro.workloads.churn.generate_churn` schedule with
    Weibull sessions drives a per-peer state machine: graceful leaves
    become announced ``remove_peers`` waves, failures become injector
    crashes followed by trailing stabilize purges, rejoins revive the
    peer at both levels.  Everything is compiled up front — the runner
    replays a fixed timeline.
    """
    n = bundle.config.n_peers
    initial = int(round(0.8 * n))
    schedule = generate_churn(
        universe=n,
        initial=initial,
        duration_ms=params.duration_ms,
        mean_session_ms=params.mean_session_ms,
        mean_offline_ms=params.mean_offline_ms,
        fail_fraction=params.fail_fraction,
        seed=RngFactory(params.seed).get("scenario-weibull-churn"),
        session_model="weibull",
        weibull_shape=params.weibull_shape,
    )
    plan = FaultPlan(seed=params.seed)
    waves: list[MembershipWave] = []
    # Per-peer state: "online" | "left" (net-removed) | "crashed"
    # (injector-dead; net-removed once its stabilize purge fires).
    state = {p: "online" for p in range(initial)}
    state.update({p: "left" for p in range(initial, n)})
    leaves = fails = joins = 0
    for event in schedule.events:
        p, t = event.peer, event.time_ms
        if event.action == "join" and state[p] != "online":
            if state[p] == "crashed":
                plan.revive_peers(at_ms=t, peers=[p])
            # The revive wave is filtered at apply time: a crashed peer
            # whose stabilize purge has not fired yet is still
            # net-alive, and only net-removed peers re-enter the rings.
            waves.append(MembershipWave(t, "revive", peers=(p,)))
            state[p] = "online"
            joins += 1
        elif event.action == "leave" and state[p] == "online":
            waves.append(MembershipWave(t, "leave_graceful", peers=(p,)))
            state[p] = "left"
            leaves += 1
        elif event.action == "fail" and state[p] == "online":
            plan.crash_peers(at_ms=t, peers=[p])
            waves.append(
                MembershipWave(t + params.stabilize_delay_ms, "stabilize", peers=(p,))
            )
            state[p] = "crashed"
            fails += 1
    waves.sort(key=lambda w: w.time_ms)
    return CompiledScenario(
        name="weibull_churn",
        duration_ms=params.duration_ms,
        plan=plan,
        waves=tuple(w for w in waves if w.time_ms < params.duration_ms),
        schedule=constant_rate(params.rate_per_s, params.duration_ms),
        initial_offline=tuple(range(initial, n)),
        fault_start_ms=0.0,
        notes={
            "session_model": "weibull",
            "weibull_shape": params.weibull_shape,
            "joins": joins,
            "graceful_leaves": leaves,
            "failures": fails,
        },
    )


def compile_landmark_outage_rolling(
    bundle: SimulationBundle, params: ScenarioParams
) -> CompiledScenario:
    """Rolling landmark outages degrade the binning of rejoining peers.

    Landmarks go down one at a time; between outages, slices of a
    held-out cohort rejoin.  Each slice's landmark orders are
    recomputed with every dead landmark's distance column saturated —
    the §2.3 blinded-measurement model — and applied through a
    ``rebind_revive`` wave, so on HIERAS the joiners land in the wrong
    low-layer rings (flat Chord just sees ordinary rejoins).
    """
    n = bundle.config.n_peers
    n_landmarks = bundle.config.n_landmarks
    n_outages = min(params.n_outages, n_landmarks - 1)
    depth = bundle.config.depth
    held = int(round(0.15 * n))
    held_out = list(range(n - held, n))
    # One rejoin slice per outage window, landing mid-window.
    slices = np.array_split(np.asarray(held_out, dtype=np.int64), n_outages)
    window = (params.duration_ms - params.fault_at_ms) / n_outages
    distances = bundle.attachment.landmark_distances(bundle.peer_latency.model)
    saturate = float(distances.max()) * 4.0 + 100.0
    scheme = BinningScheme.default_for_depth(depth)
    plan = FaultPlan(seed=params.seed)
    waves: list[MembershipWave] = []
    dead: list[int] = []
    for i in range(n_outages):
        outage_at = params.fault_at_ms + i * window
        plan.landmark_outage(at_ms=outage_at, landmark=i)
        dead.append(i)
        joiners = [int(p) for p in slices[i]]
        if not joiners:
            continue
        rows = distances[joiners].copy()
        rows[:, dead] = saturate
        orders = scheme.orders(rows)
        ring_names = tuple(
            tuple(str(orders.names_per_layer[k][j]) for k in range(depth - 1))
            for j in range(len(joiners))
        )
        waves.append(
            MembershipWave(
                outage_at + window / 2.0,
                "rebind_revive",
                peers=tuple(joiners),
                ring_names=ring_names,
            )
        )
    waves.sort(key=lambda w: w.time_ms)
    return CompiledScenario(
        name="landmark_outage_rolling",
        duration_ms=params.duration_ms,
        plan=plan,
        waves=tuple(waves),
        schedule=constant_rate(params.rate_per_s, params.duration_ms),
        initial_offline=tuple(held_out),
        fault_start_ms=params.fault_at_ms,
        notes={
            "outages": n_outages,
            "rejoined_degraded": len(held_out),
        },
    )


SCENARIOS: dict[
    str, Callable[[SimulationBundle, ScenarioParams], CompiledScenario]
] = {
    "graceful_leave": compile_graceful_leave,
    "abrupt_crash": compile_abrupt_crash,
    "regional_failure": compile_regional_failure,
    "flash_join": compile_flash_join,
    "weibull_churn": compile_weibull_churn,
    "landmark_outage_rolling": compile_landmark_outage_rolling,
}


def scenario_names() -> list[str]:
    """Registry keys in their canonical (suite) order."""
    return list(SCENARIOS)
