"""SARIF 2.1.0 output for ``reprolint`` (``--sarif PATH``).

Emits one run with the full rule catalog in ``tool.driver.rules`` (so
code-scanning UIs can show rule help without a round trip) and one
``result`` per finding, carrying the engine's stable fingerprint under
``partialFingerprints`` — the key GitHub code scanning uses to track a
finding across commits even as line numbers shift.

The document targets the OASIS 2.1.0 schema
(``sarif-schema-2.1.0.json``); ``tests/test_lint_toolchain.py``
validates the emitted shape against the subset of the schema the
toolchain relies on.
"""

from __future__ import annotations

import json
from pathlib import Path
from collections.abc import Sequence

from repro.lint.engine import Checker, Finding
from repro.lint.explain import ENGINE_RULES, first_line

__all__ = ["to_sarif", "write_sarif", "SARIF_VERSION", "SARIF_SCHEMA_URI"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _relative_uri(path: str, root: Path | None) -> str:
    p = Path(path)
    if root is not None:
        try:
            p = p.resolve().relative_to(root.resolve())
        except ValueError:
            pass
    return p.as_posix()


def _rule_entries(checkers: Sequence[Checker]) -> list[dict]:
    entries = []
    for checker in checkers:
        doc = (checker.__doc__ or checker.rule).strip()
        entries.append(
            {
                "id": checker.rule,
                "name": type(checker).__name__,
                "shortDescription": {"text": first_line(doc)},
                "fullDescription": {"text": doc},
                "defaultConfiguration": {"level": "error"},
                "properties": {"pragmaAlias": checker.alias},
            }
        )
    for rule_id, doc in sorted(ENGINE_RULES.items()):
        entries.append(
            {
                "id": rule_id,
                "name": rule_id,
                "shortDescription": {"text": first_line(doc)},
                "fullDescription": {"text": doc.strip()},
                "defaultConfiguration": {"level": "error"},
            }
        )
    return entries


def to_sarif(
    findings: Sequence[Finding],
    checkers: Sequence[Checker],
    root: Path | None = None,
) -> dict:
    """Build the SARIF 2.1.0 document for one lint run."""
    rules = _rule_entries(checkers)
    rule_index = {entry["id"]: i for i, entry in enumerate(rules)}
    results = []
    for f in findings:
        result = {
            "ruleId": f.rule,
            "level": "error",
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": _relative_uri(f.path, root),
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": f.line,
                            "startColumn": f.col,
                            "endLine": max(f.end_line, f.line),
                        },
                    }
                }
            ],
        }
        if f.rule in rule_index:
            result["ruleIndex"] = rule_index[f.rule]
        if f.fingerprint:
            result["partialFingerprints"] = {
                "reprolintFingerprint/v1": f.fingerprint
            }
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "informationUri": "DESIGN.md",
                        "rules": rules,
                    }
                },
                "originalUriBaseIds": {
                    "SRCROOT": {"uri": (root or Path.cwd()).resolve().as_uri() + "/"}
                },
                "results": results,
                "columnKind": "unicodeCodePoints",
            }
        ],
    }


def write_sarif(
    path: Path | str,
    findings: Sequence[Finding],
    checkers: Sequence[Checker],
    root: Path | None = None,
) -> None:
    doc = to_sarif(findings, checkers, root)
    Path(path).write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
