"""Hot-path performance contracts: PERF001, PERF002, PERF003.

The ROADMAP's million-peer scale-out rests on three structural
invariants of the hot packages (the facts manifest: ``repro.dht``,
``repro.engine``, ``repro.cache``, ``repro.core``):

* routing state is struct-of-arrays, so per-peer work must not allocate
  a Python object per element (**PERF001**);
* membership churn is amortised — one rebuild per wave, never one per
  peer (**PERF002**);
* SoA arrays carry explicit narrow dtypes, so numpy constructors must
  not silently widen to the platform default ``int64``/``float64``
  (**PERF003**).

All three rules scope themselves through
:class:`~repro.lint.facts.ProjectFacts` — hotness comes from the
manifest, per-peer record types from the project dataclass registry,
and rebuild reachability from the transitive caller closure — so they
stay accurate as the codebase grows without per-rule module lists.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator

from repro.lint.engine import Checker, Finding, LintContext, dotted_name

__all__ = ["LoopAllocationChecker", "ChurnRebuildChecker", "DtypeWideningChecker"]

_CAMEL = re.compile(r"^[A-Z][A-Za-z0-9]*$")
_EXC_SUFFIXES = ("Error", "Exception", "Warning")

_LOOPY = (ast.For, ast.AsyncFor, ast.While)
_COMPS = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)


def _leaf_name(func: ast.AST) -> str:
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _walk_no_nested_scopes(root: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` that stops at nested function/class definitions."""
    stack = [root]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if not isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda),
            ):
                stack.append(child)


class LoopAllocationChecker(Checker):
    """PERF001: no per-element Python object allocation on hot paths.

    Flags construction of a *project record type* — a class the facts
    pass saw defined with ``@dataclass`` anywhere in the linted tree —
    inside a ``for``/``while`` loop or comprehension in a hot-manifest
    module.  One object per peer is exactly the allocation pattern the
    struct-of-arrays refactor removed; per-peer state belongs in the
    SoA columns, with record objects reserved for inspection APIs and
    traced (cold) paths, which carry reasoned pragmas.

    Exception classes and anything raised are exempt (error paths are
    cold by definition), as are calls inside nested function
    definitions (they get their own pass when called).

    When no project scan ran (single-file fixtures), any CamelCase
    callable counts as a record type.
    """

    rule = "PERF001"
    alias = "loop-alloc"

    def applies(self, ctx: LintContext) -> bool:
        return ctx.hot and not ctx.relaxed

    def _is_record_type(self, ctx: LintContext, leaf: str) -> bool:
        if not leaf or not _CAMEL.match(leaf) or leaf.endswith(_EXC_SUFFIXES):
            return False
        registry = ctx.facts.dataclass_names
        return leaf in registry if registry else True

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        raised: set[int] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Raise):
                for sub in ast.walk(node):
                    raised.add(id(sub))
        seen: set[int] = set()
        for loop in ast.walk(ctx.tree):
            if not isinstance(loop, _LOOPY + _COMPS):
                continue
            roots: list[ast.AST]
            if isinstance(loop, _LOOPY):
                roots = list(loop.body)
            else:
                roots = [loop.elt] if not isinstance(loop, ast.DictComp) else [
                    loop.key, loop.value,
                ]
            for root in roots:
                for sub in _walk_no_nested_scopes(root):
                    if (
                        isinstance(sub, ast.Call)
                        and id(sub) not in seen
                        and id(sub) not in raised
                        and self._is_record_type(ctx, _leaf_name(sub.func))
                    ):
                        seen.add(id(sub))
                        yield ctx.finding(
                            sub, self.rule,
                            f"`{_leaf_name(sub.func)}(...)` allocates a record "
                            "object per iteration on a hot path; keep per-peer "
                            "state in SoA arrays and hoist object creation off "
                            "the loop (ROADMAP scale-out)",
                        )


class ChurnRebuildChecker(Checker):
    """PERF002: membership churn must amortise routing-state rebuilds.

    The facts pass computes the transitive closure of callables whose
    bodies reach a ``_rebuild``/``rebuild``/``rebuild_all`` call.  A
    loop that calls a *singular* member of that closure (``remove_peer``
    — any ``*_peer`` name, or a rebuild itself) once per iteration
    re-sorts the full ring O(n) times per churn wave; the batch
    variants (``add_peers``/``remove_peers``) exist precisely to
    rebuild once.  Plural batch calls inside loops stay silent — one
    rebuild per wave is the amortised pattern.
    """

    rule = "PERF002"
    alias = "churn-rebuild"

    def applies(self, ctx: LintContext) -> bool:
        return (ctx.hot or ctx.in_package("repro.faults")) and not ctx.relaxed

    @staticmethod
    def _singular(leaf: str) -> bool:
        return leaf.endswith("_peer") or leaf in ("_rebuild", "rebuild", "rebuild_all")

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        rebuilders = ctx.facts.rebuild_callers
        for loop in ast.walk(ctx.tree):
            if not isinstance(loop, _LOOPY):
                continue
            enclosing = next(
                (
                    a.name for a in ctx.ancestors(loop)
                    if isinstance(a, (ast.FunctionDef, ast.AsyncFunctionDef))
                ),
                None,
            )
            for root in loop.body:
                for sub in _walk_no_nested_scopes(root):
                    if not isinstance(sub, ast.Call):
                        continue
                    leaf = _leaf_name(sub.func)
                    if (
                        leaf in rebuilders
                        and self._singular(leaf)
                        and leaf != enclosing  # the rebuilder's own loop
                    ):
                        yield ctx.finding(
                            sub, self.rule,
                            f"`{leaf}(...)` rebuilds full routing state once "
                            "per loop iteration; use the batch variant "
                            "(e.g. `remove_peers`) or rebuild once after the "
                            "loop",
                        )


#: numpy constructors → index of their positional ``dtype`` argument.
_NP_CONSTRUCTORS = {
    "array": 1, "asarray": 1, "zeros": 1, "ones": 1, "empty": 1,
    "fromiter": 1, "full": 2,
}


class DtypeWideningChecker(Checker):
    """PERF003: numpy constructors on hot paths take an explicit dtype.

    ``np.asarray([...])`` defaults to platform ``int64``/``float64``;
    mixing that into the ``uint32``/``uint64`` SoA state declared by
    the ring and zone tables silently widens every downstream
    arithmetic op (and doubles memory at the million-peer target).
    Every ``np.array``/``asarray``/``zeros``/``ones``/``empty``/
    ``fromiter``/``full`` call in a hot-manifest module must pass
    ``dtype=`` (or the positional dtype argument).

    ``np.arange`` is deliberately out of scope: position/index vectors
    legitimately live in the default integer dtype.
    """

    rule = "PERF003"
    alias = "dtype"

    def applies(self, ctx: LintContext) -> bool:
        return ctx.hot and not ctx.relaxed

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func) or ""
            prefix, _, leaf = dotted.rpartition(".")
            if prefix not in ("np", "numpy") or leaf not in _NP_CONSTRUCTORS:
                continue
            if any(kw.arg == "dtype" for kw in node.keywords):
                continue
            if len(node.args) > _NP_CONSTRUCTORS[leaf]:
                continue  # positional dtype present
            yield ctx.finding(
                node, self.rule,
                f"dtype-less `{dotted}(...)` widens to the platform default "
                "(int64/float64); pass an explicit dtype to match the "
                "declared SoA state",
            )
