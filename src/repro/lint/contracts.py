"""Contract checkers: MET001 (metrics guards) and INT001 (interval math).

MET001 keeps observability off the hot path: DESIGN.md §7 promises that
an uninstrumented lookup pays exactly one ``is None`` check, which only
holds if every registry/span call in ``repro.dht``/``repro.sim``/
``repro.cache``/``repro.replication`` sits behind a guard on its
receiver.

INT001 keeps modular arithmetic out of inline comparisons: a chained
``a < x <= b`` on ring identifiers is wrong whenever the arc wraps zero,
which is why :mod:`repro.util.intervals` exists.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.engine import Checker, Finding, LintContext, dotted_name

__all__ = ["MetricsGuardChecker", "IntervalChecker"]


class MetricsGuardChecker(Checker):
    """MET001: metrics calls on hot paths must be guarded.

    A *metrics receiver* is any ``<expr>.metrics`` attribute, or a local
    alias assigned from one (``m = self.metrics``).  Every method call
    on such a receiver must be dominated by a guard that mentions it:

    * an enclosing ``if``/``while``/ternary whose test references the
      receiver (``if self.metrics is not None:``, ``if m:``), or
    * an earlier early-exit guard in the same function
      (``if self.metrics is None: return``).

    Plain loads/assignments (``self.metrics = recorder``) are exempt —
    only calls do per-lookup work.
    """

    rule = "MET001"
    alias = "metrics-guard"

    def applies(self, ctx: LintContext) -> bool:
        return ctx.in_package(
            "repro.dht", "repro.sim", "repro.cache", "repro.engine",
            "repro.replication", "repro.serve", "repro.loadgen",
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _is_metrics_attr(node: ast.AST) -> bool:
        return isinstance(node, ast.Attribute) and node.attr == "metrics"

    def _aliases(self, func: ast.AST) -> set[str]:
        """Local names bound from a ``*.metrics`` attribute."""
        out: set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name) and self._is_metrics_attr(node.value):
                    out.add(target.id)
        return out

    def _mentions(self, test: ast.AST, receiver_key: str) -> bool:
        for node in ast.walk(test):
            if isinstance(node, (ast.Attribute, ast.Name)):
                if dotted_name(node) == receiver_key:
                    return True
        return False

    def _guarded(self, ctx: LintContext, call: ast.Call, receiver_key: str) -> bool:
        # Enclosing conditional that mentions the receiver.
        child: ast.AST = call
        for ancestor in ctx.ancestors(call):
            if isinstance(ancestor, (ast.If, ast.While, ast.IfExp)):
                if self._mentions(ancestor.test, receiver_key):
                    return True
            if isinstance(ancestor, ast.BoolOp) and child in ancestor.values:
                # ``m is not None and m.inc(...)``: guards are the
                # operands short-circuiting *before* the call's branch.
                idx = ancestor.values.index(child)
                if any(self._mentions(v, receiver_key) for v in ancestor.values[:idx]):
                    return True
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # Earlier early-exit guard: ``if <recv> is None: return``.
                for node in ast.walk(ancestor):
                    if (
                        isinstance(node, ast.If)
                        and node.lineno < call.lineno
                        and self._mentions(node.test, receiver_key)
                        and any(
                            isinstance(s, (ast.Return, ast.Raise, ast.Continue))
                            for s in node.body
                        )
                    ):
                        return True
                return False
            child = ancestor
        return False

    # ------------------------------------------------------------------
    def check(self, ctx: LintContext) -> Iterator[Finding]:
        funcs = [
            n for n in ast.walk(ctx.tree)
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        alias_by_func = {id(f): self._aliases(f) for f in funcs}
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
                continue
            receiver = node.func.value
            receiver_key: str | None = None
            if self._is_metrics_attr(receiver):
                receiver_key = dotted_name(receiver)
            elif isinstance(receiver, ast.Name):
                enclosing = next(
                    (
                        a for a in ctx.ancestors(node)
                        if isinstance(a, (ast.FunctionDef, ast.AsyncFunctionDef))
                    ),
                    None,
                )
                if enclosing is not None and receiver.id in alias_by_func.get(
                    id(enclosing), set()
                ):
                    receiver_key = receiver.id
            if receiver_key is None:
                continue
            if not self._guarded(ctx, node, receiver_key):
                yield ctx.finding(
                    node, self.rule,
                    f"metrics call on `{receiver_key}` without an "
                    f"`if {receiver_key} ...` guard (hot-path contract, DESIGN.md §7)",
                )


_CHAIN_OPS = (ast.Lt, ast.LtE, ast.Gt, ast.GtE)


def _innocent_endpoint(node: ast.AST) -> bool:
    """Endpoints that mark a plain range check, not ring arithmetic."""
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
        return True
    if (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, ast.USub)
        and isinstance(node.operand, ast.Constant)
    ):
        return True
    if isinstance(node, ast.Call) and dotted_name(node.func) == "len":
        return True
    return False


class IntervalChecker(Checker):
    """INT001: use ``repro.util.intervals`` for arcs on the ring.

    Flags chained relational comparisons (``a < x <= b``) between three
    non-constant operands inside ``repro.core``/``repro.dht``.  Bounds
    checks against literals or ``len(...)`` (``0 <= i < len(xs)``) stay
    silent — those are index math, not ring arcs.
    """

    rule = "INT001"
    alias = "interval"

    def applies(self, ctx: LintContext) -> bool:
        return ctx.in_package("repro.core", "repro.dht")

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare) or len(node.ops) < 2:
                continue
            if not all(isinstance(op, _CHAIN_OPS) for op in node.ops):
                continue
            endpoints = [node.left, *node.comparators]
            if any(_innocent_endpoint(e) for e in endpoints):
                continue
            yield ctx.finding(
                node, self.rule,
                "raw chained comparison on ring values ignores wrap-around; "
                "use in_interval/in_interval_open/in_interval_closed "
                "from repro.util.intervals",
            )
