"""Determinism checkers: DET001 (rng), DET002 (wallclock), DET003 (unsorted).

These enforce the reproducibility contract of DESIGN.md §8: a run is a
pure function of its seed, so nothing in the simulation core may draw
entropy from the OS, read the wall clock, or let an unordered
container's iteration order reach a result.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.dataflow.cfg import ForBind, TestExpr, WithBind
from repro.lint.dataflow.taint import CAPTURED, SET_ORDER, VIEW_ORDER
from repro.lint.engine import Checker, Finding, LintContext, dotted_name

__all__ = ["RngChecker", "WallClockChecker", "UnsortedIterationChecker"]


class RngChecker(Checker):
    """DET001: all randomness flows through ``repro.util.rng``.

    In library code (``repro.*`` outside ``repro/util/rng.py``) any
    direct RNG construction or global seeding is banned — components
    take a ``Generator`` (or an int passed to ``make_rng``) so sibling
    streams stay independent.  Test-grade code (``tests``/
    ``benchmarks``/``examples``) may construct *seeded* generators for
    fixture data, but unseeded construction, global seeding, and the
    stdlib ``random`` module are banned everywhere.
    """

    rule = "DET001"
    alias = "rng"

    def applies(self, ctx: LintContext) -> bool:
        return (ctx.in_package("repro") and ctx.module != "repro.util.rng") or ctx.relaxed

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        strict = not ctx.relaxed
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for name in node.names:
                    if name.name == "random" or name.name.startswith("random."):
                        yield ctx.finding(
                            node, self.rule,
                            "stdlib `random` is banned; use repro.util.rng.make_rng",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    yield ctx.finding(
                        node, self.rule,
                        "stdlib `random` is banned; use repro.util.rng.make_rng",
                    )
            elif isinstance(node, ast.Call):
                dotted = dotted_name(node.func)
                if dotted is None:
                    continue
                if dotted in ("np.random.seed", "numpy.random.seed"):
                    yield ctx.finding(
                        node, self.rule,
                        "global `np.random.seed` is banned; seed a Generator via make_rng",
                    )
                elif dotted in ("np.random.default_rng", "numpy.random.default_rng"):
                    if strict:
                        yield ctx.finding(
                            node, self.rule,
                            "direct `np.random.default_rng` outside repro/util/rng.py; "
                            "use make_rng/spawn_rngs",
                        )
                    elif not node.args and not node.keywords:
                        yield ctx.finding(
                            node, self.rule,
                            "unseeded `np.random.default_rng()` draws OS entropy; "
                            "pass an explicit seed",
                        )
                elif strict and dotted.startswith(("np.random.", "numpy.random.")):
                    # Legacy global-state API (np.random.rand & friends).
                    yield ctx.finding(
                        node, self.rule,
                        f"legacy global-state `{dotted}` is banned; use make_rng",
                    )


#: Call chains that read the wall clock (monotonic counters included —
#: their *values* are nondeterministic even if their ordering is not).
_WALLCLOCK_CALLS = frozenset(
    {
        "time.time", "time.time_ns",
        "time.perf_counter", "time.perf_counter_ns",
        "time.monotonic", "time.monotonic_ns",
        "time.process_time", "time.process_time_ns",
        "datetime.now", "datetime.utcnow", "datetime.today",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
        "date.today",
    }
)


class WallClockChecker(Checker):
    """DET002: no wall-clock reads inside the deterministic stacks.

    Simulated time is :attr:`Simulator.now`; real time inside
    ``repro.sim``/``core``/``dht``/``faults`` would leak host speed into
    results.  ``repro.experiments`` is also scanned — its phase timing
    is legitimate but must carry an ``allow-wallclock`` pragma so each
    site documents that its output lands in a nondeterministic artifact
    section.
    """

    rule = "DET002"
    alias = "wallclock"

    def applies(self, ctx: LintContext) -> bool:
        return ctx.in_package(
            "repro.sim", "repro.core", "repro.dht", "repro.faults",
            "repro.experiments", "repro.cache", "repro.engine",
            "repro.replication", "repro.serve", "repro.loadgen",
        )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                dotted = dotted_name(node.func)
                if dotted in _WALLCLOCK_CALLS:
                    yield ctx.finding(
                        node, self.rule,
                        f"wall-clock read `{dotted}` in deterministic module; "
                        "use simulated time (or pragma phase timing)",
                    )


_ORDER_INSENSITIVE_SINKS = frozenset(
    {
        "sorted", "sum", "min", "max", "len", "any", "all",
        "set", "frozenset", "dict", "Counter", "collections.Counter",
    }
)
_MATERIALIZERS = frozenset(
    {"list", "tuple", "np.fromiter", "numpy.fromiter", "np.asarray",
     "numpy.asarray", "np.array", "numpy.array"}
)
_RNG_CONSUMERS = frozenset({"choice", "shuffle", "permutation"})
_SERIALIZERS = frozenset({"json.dump", "json.dumps"})


class UnsortedIterationChecker(Checker):
    """DET003: unordered iteration must not reach results or artifacts.

    Flow-sensitive since v2: each function (and the module top level)
    gets a taint analysis over its CFG
    (:class:`repro.lint.dataflow.taint.FunctionFlow`) tracking which
    names hold genuinely unordered containers (``set-order``), dict
    views (``view-order``), or ordered sequences whose element order
    was *captured* from an unordered container (``captured-order``) —
    including values laundered through intermediate assignments and
    same-module helper-call returns (via
    :func:`~repro.lint.dataflow.taint.module_summaries`).  Four shapes
    are flagged:

    1. **Materialization**: ``list``/``tuple``/``np.fromiter``/
       ``np.asarray`` over a ``set-order`` value — capturing a set's
       (hash-dependent) order into a sequence, no matter how many
       assignments sit between the set and the capture.
    2. **Order-sensitive loops**: ``for`` over a set or ``dict`` view
       whose body returns/yields, appends/extends to a name the
       function returns, or subscript-stores into a local that escapes
       (is returned or assigned onto ``self``).
    3. **Order-sensitive comprehensions**: list/generator/dict
       comprehensions over an unordered iterable that sit inside a
       ``return``/``yield`` value or feed ``json.dump(s)`` or an RNG
       ``choice``/``shuffle``/``permutation``.
    4. **Escaping captures**: ``return``/``yield`` of a name whose
       value carries ``captured-order`` taint (``t = list(s); return
       t``).

    Reassignment kills taint — ``s = sorted(s)`` cleans ``s``, and
    consuming with an order-insensitive reducer (``sum``/``min``/
    ``set``/...) is always silent.  Pure accumulation loops
    (``total += v``) and membership scans never trigger it.
    """

    rule = "DET003"
    alias = "unsorted"

    def applies(self, ctx: LintContext) -> bool:
        return ctx.in_package(
            "repro.sim", "repro.core", "repro.dht", "repro.faults",
            "repro.topology", "repro.metrics", "repro.util", "repro.cache",
            "repro.engine", "repro.replication", "repro.serve",
            "repro.loadgen",
        )

    # -- escape analysis (syntactic, per scope) ------------------------
    @staticmethod
    def _returned_names(func: ast.AST) -> set[str]:
        """Names that the function returns or yields (directly)."""
        out: set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, (ast.Return, ast.Yield)) and node.value is not None:
                for sub in ast.walk(node.value):
                    if isinstance(sub, ast.Name):
                        out.add(sub.id)
        return out

    @staticmethod
    def _escaping_locals(func: ast.AST, returned: set[str]) -> set[str]:
        """Locals whose contents outlive the call (returned or stored on self)."""
        out = set(returned)
        for node in ast.walk(func):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Attribute) and isinstance(node.value, ast.Name):
                        out.add(node.value.id)
        return out

    # -- trigger classification ----------------------------------------
    @staticmethod
    def _kind_of(taints) -> str | None:
        """Collapse a taint set to 'set' / 'view' / 'captured' / None."""
        labels = {t.label for t in taints}
        if SET_ORDER in labels:
            return "set"
        if VIEW_ORDER in labels:
            return "view"
        if CAPTURED in labels:
            return "captured"
        return None

    def _check_materialization(
        self, ctx: LintContext, flow, element, node: ast.Call
    ) -> Iterator[Finding]:
        dotted = dotted_name(node.func)
        if dotted not in _MATERIALIZERS or not node.args:
            return
        if self._kind_of(flow.taint_of(node.args[0], element)) == "set":
            yield ctx.finding(
                node, self.rule,
                f"`{dotted}(...)` captures a set's arbitrary order into a "
                "sequence; wrap the set in sorted(...)",
            )

    def _check_for(
        self,
        ctx: LintContext,
        flow,
        element,
        returned: set[str],
        escaping: set[str],
    ) -> Iterator[Finding]:
        node = element.node
        kind = self._kind_of(flow.taint_of(node.iter, element))
        if kind not in ("set", "view"):
            return
        reason = self._order_sensitive_body(node, returned, escaping)
        if reason is not None:
            what = "a set" if kind == "set" else "an unsorted dict view"
            yield ctx.finding(
                node.iter, self.rule,
                f"iteration over {what} {reason}; wrap the iterable in sorted(...)",
            )

    @staticmethod
    def _order_sensitive_body(
        loop: ast.For, returned: set[str], escaping: set[str]
    ) -> str | None:
        for node in ast.walk(loop):
            if node is loop:
                continue
            if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
                return "returns/yields from the loop body"
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                receiver = node.func.value
                if (
                    node.func.attr in ("append", "extend")
                    and isinstance(receiver, ast.Name)
                    and receiver.id in returned
                ):
                    return f"appends to returned `{receiver.id}`"
                if (
                    node.func.attr == "setdefault"
                    and isinstance(receiver, ast.Name)
                    and receiver.id in escaping
                ):
                    return f"inserts into escaping `{receiver.id}` in iteration order"
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Name)
                        and target.value.id in escaping
                    ):
                        return (
                            f"inserts into escaping `{target.value.id}` in iteration order"
                        )
        return None

    def _check_comprehension(
        self,
        ctx: LintContext,
        flow,
        element,
        node: ast.ListComp | ast.GeneratorExp | ast.DictComp,
    ) -> Iterator[Finding]:
        kinds = [
            self._kind_of(flow.taint_of(gen.iter, element)) for gen in node.generators
        ]
        if not any(k in ("set", "view") for k in kinds):
            return
        context = self._comprehension_sink(ctx, node)
        if context is None:
            return
        bad = next(k for k in kinds if k in ("set", "view"))
        what = "a set" if bad == "set" else "an unsorted dict view"
        yield ctx.finding(
            node, self.rule,
            f"comprehension over {what} {context}; wrap the iterable in sorted(...)",
        )

    def _check_escape(
        self, ctx: LintContext, flow, element, node: ast.AST
    ) -> Iterator[Finding]:
        """``return``/``yield`` of a name carrying captured-order taint."""
        value = node.value
        if not isinstance(value, ast.Name):
            return
        env = flow.env_before(element)
        taints = env.get(value.id, frozenset())
        if any(t.label == CAPTURED for t in taints):
            origin = next(t for t in taints if t.label == CAPTURED)
            yield ctx.finding(
                node, self.rule,
                f"`{value.id}` escapes with element order captured from an "
                f"unordered container (line {origin.line}); sort before "
                "materialising",
            )

    @staticmethod
    def _comprehension_sink(ctx: LintContext, node: ast.AST) -> str | None:
        """Why this comprehension's order matters (None: it doesn't)."""
        child = node
        for ancestor in ctx.ancestors(node):
            if isinstance(ancestor, (ast.Return, ast.Yield)):
                return "reaches a return value"
            if isinstance(ancestor, ast.Call):
                dotted = dotted_name(ancestor.func) or ""
                if child in ancestor.args or any(
                    kw.value is child for kw in ancestor.keywords
                ):
                    if dotted in _SERIALIZERS:
                        return f"feeds `{dotted}`"
                    if dotted.rsplit(".", 1)[-1] in _RNG_CONSUMERS:
                        return f"feeds RNG `{dotted}`"
                    if dotted in _ORDER_INSENSITIVE_SINKS:
                        return None
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                return None
            child = ancestor
        return None

    # ------------------------------------------------------------------
    @staticmethod
    def _exprs_of(element) -> list[ast.AST]:
        """The expression trees one CFG element evaluates."""
        if isinstance(element, TestExpr):
            return [element.expr]
        if isinstance(element, ForBind):
            return [element.node.iter]
        if isinstance(element, WithBind):
            return [element.item.context_expr]
        if isinstance(element, ast.stmt):
            if isinstance(element, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                return []  # nested scopes get their own flow
            return [
                child for child in ast.iter_child_nodes(element)
                if isinstance(child, ast.expr)
            ]
        return []

    def _check_element(
        self,
        ctx: LintContext,
        flow,
        element,
        returned: set[str],
        escaping: set[str],
    ) -> Iterator[Finding]:
        if isinstance(element, ForBind):
            yield from self._check_for(ctx, flow, element, returned, escaping)
        if isinstance(element, (ast.Return, ast.Yield)) and getattr(
            element, "value", None
        ) is not None:
            yield from self._check_escape(ctx, flow, element, element)
        for root in self._exprs_of(element):
            for node in ast.walk(root):
                if isinstance(node, ast.Lambda):
                    continue
                if isinstance(node, ast.Call):
                    yield from self._check_materialization(ctx, flow, element, node)
                elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
                    yield from self._check_comprehension(ctx, flow, element, node)
                elif isinstance(node, ast.Yield) and node.value is not None:
                    yield from self._check_escape(ctx, flow, element, node)

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        seen: set[tuple[int, int, str]] = set()
        for scope in ctx.scopes():
            flow = ctx.flow(scope)
            returned = self._returned_names(scope)
            escaping = self._escaping_locals(scope, returned)
            for element in flow.cfg.elements():
                for finding in self._check_element(ctx, flow, element, returned, escaping):
                    key = (finding.line, finding.col, finding.message)
                    if key not in seen:
                        seen.add(key)
                        yield finding
