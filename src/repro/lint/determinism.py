"""Determinism checkers: DET001 (rng), DET002 (wallclock), DET003 (unsorted).

These enforce the reproducibility contract of DESIGN.md §8: a run is a
pure function of its seed, so nothing in the simulation core may draw
entropy from the OS, read the wall clock, or let an unordered
container's iteration order reach a result.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.engine import Checker, Finding, LintContext, dotted_name

__all__ = ["RngChecker", "WallClockChecker", "UnsortedIterationChecker"]


class RngChecker(Checker):
    """DET001: all randomness flows through ``repro.util.rng``.

    In library code (``repro.*`` outside ``repro/util/rng.py``) any
    direct RNG construction or global seeding is banned — components
    take a ``Generator`` (or an int passed to ``make_rng``) so sibling
    streams stay independent.  Tests may construct *seeded* generators
    for fixture data, but unseeded construction, global seeding, and the
    stdlib ``random`` module are banned everywhere.
    """

    rule = "DET001"
    alias = "rng"

    def applies(self, ctx: LintContext) -> bool:
        return (ctx.in_package("repro") and ctx.module != "repro.util.rng") or ctx.in_tests

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        strict = not ctx.in_tests
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for name in node.names:
                    if name.name == "random" or name.name.startswith("random."):
                        yield ctx.finding(
                            node, self.rule,
                            "stdlib `random` is banned; use repro.util.rng.make_rng",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    yield ctx.finding(
                        node, self.rule,
                        "stdlib `random` is banned; use repro.util.rng.make_rng",
                    )
            elif isinstance(node, ast.Call):
                dotted = dotted_name(node.func)
                if dotted is None:
                    continue
                if dotted in ("np.random.seed", "numpy.random.seed"):
                    yield ctx.finding(
                        node, self.rule,
                        "global `np.random.seed` is banned; seed a Generator via make_rng",
                    )
                elif dotted in ("np.random.default_rng", "numpy.random.default_rng"):
                    if strict:
                        yield ctx.finding(
                            node, self.rule,
                            "direct `np.random.default_rng` outside repro/util/rng.py; "
                            "use make_rng/spawn_rngs",
                        )
                    elif not node.args and not node.keywords:
                        yield ctx.finding(
                            node, self.rule,
                            "unseeded `np.random.default_rng()` draws OS entropy; "
                            "pass an explicit seed",
                        )
                elif strict and dotted.startswith(("np.random.", "numpy.random.")):
                    # Legacy global-state API (np.random.rand & friends).
                    yield ctx.finding(
                        node, self.rule,
                        f"legacy global-state `{dotted}` is banned; use make_rng",
                    )


#: Call chains that read the wall clock (monotonic counters included —
#: their *values* are nondeterministic even if their ordering is not).
_WALLCLOCK_CALLS = frozenset(
    {
        "time.time", "time.time_ns",
        "time.perf_counter", "time.perf_counter_ns",
        "time.monotonic", "time.monotonic_ns",
        "time.process_time", "time.process_time_ns",
        "datetime.now", "datetime.utcnow", "datetime.today",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
        "date.today",
    }
)


class WallClockChecker(Checker):
    """DET002: no wall-clock reads inside the deterministic stacks.

    Simulated time is :attr:`Simulator.now`; real time inside
    ``repro.sim``/``core``/``dht``/``faults`` would leak host speed into
    results.  ``repro.experiments`` is also scanned — its phase timing
    is legitimate but must carry an ``allow-wallclock`` pragma so each
    site documents that its output lands in a nondeterministic artifact
    section.
    """

    rule = "DET002"
    alias = "wallclock"

    def applies(self, ctx: LintContext) -> bool:
        return ctx.in_package(
            "repro.sim", "repro.core", "repro.dht", "repro.faults",
            "repro.experiments", "repro.cache", "repro.engine",
            "repro.replication", "repro.serve", "repro.loadgen",
        )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                dotted = dotted_name(node.func)
                if dotted in _WALLCLOCK_CALLS:
                    yield ctx.finding(
                        node, self.rule,
                        f"wall-clock read `{dotted}` in deterministic module; "
                        "use simulated time (or pragma phase timing)",
                    )


_ORDER_INSENSITIVE_SINKS = frozenset(
    {
        "sorted", "sum", "min", "max", "len", "any", "all",
        "set", "frozenset", "dict", "Counter", "collections.Counter",
    }
)
_MATERIALIZERS = frozenset(
    {"list", "tuple", "np.fromiter", "numpy.fromiter", "np.asarray",
     "numpy.asarray", "np.array", "numpy.array"}
)
_RNG_CONSUMERS = frozenset({"choice", "shuffle", "permutation"})
_SERIALIZERS = frozenset({"json.dump", "json.dumps"})


def _is_dict_view(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in ("items", "keys", "values")
        and not node.args
        and not node.keywords
    )


class UnsortedIterationChecker(Checker):
    """DET003: unordered iteration must not reach results or artifacts.

    Within each function it tracks locals that are definitely sets
    (assigned from a set literal/constructor/comprehension or annotated
    ``set[...]``) and flags three shapes:

    1. **Materialization**: ``list``/``tuple``/``np.fromiter``/
       ``np.asarray`` over a set expression — capturing a set's
       (hash-dependent) order into a sequence.
    2. **Order-sensitive loops**: ``for`` over a set or ``dict`` view
       whose body returns/yields, appends/extends to a name the
       function returns, or subscript-stores into a local that escapes
       (is returned or assigned onto ``self``).
    3. **Order-sensitive comprehensions**: list/generator/dict
       comprehensions over a set or ``dict`` view that sit inside a
       ``return``/``yield`` value or feed ``json.dump(s)`` or an RNG
       ``choice``/``shuffle``/``permutation``.

    Wrapping the iterable in ``sorted(...)`` — or consuming it with an
    order-insensitive reducer (``sum``/``min``/``set``/...) — silences
    the rule.  Pure accumulation loops (``total += v``) and membership
    scans never trigger it.
    """

    rule = "DET003"
    alias = "unsorted"

    def applies(self, ctx: LintContext) -> bool:
        return ctx.in_package(
            "repro.sim", "repro.core", "repro.dht", "repro.faults",
            "repro.topology", "repro.metrics", "repro.util", "repro.cache",
            "repro.engine", "repro.replication", "repro.serve",
            "repro.loadgen",
        )

    # -- set-typed local tracking --------------------------------------
    @staticmethod
    def _is_set_expr(node: ast.AST, set_locals: set[str]) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in ("set", "frozenset"):
                return True
        if isinstance(node, ast.Name) and node.id in set_locals:
            return True
        return False

    @staticmethod
    def _annotation_is_set(annotation: ast.AST) -> bool:
        base = annotation.value if isinstance(annotation, ast.Subscript) else annotation
        name = dotted_name(base)
        return name in ("set", "frozenset", "Set", "FrozenSet", "typing.Set")

    def _collect_set_locals(self, func: ast.AST) -> set[str]:
        out: set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name) and self._is_set_expr(node.value, out):
                    out.add(target.id)
            elif isinstance(node, ast.AnnAssign):
                if isinstance(node.target, ast.Name) and self._annotation_is_set(node.annotation):
                    out.add(node.target.id)
        return out

    @staticmethod
    def _returned_names(func: ast.AST) -> set[str]:
        """Names that the function returns or yields (directly)."""
        out: set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, (ast.Return, ast.Yield)) and node.value is not None:
                for sub in ast.walk(node.value):
                    if isinstance(sub, ast.Name):
                        out.add(sub.id)
        return out

    @staticmethod
    def _escaping_locals(func: ast.AST, returned: set[str]) -> set[str]:
        """Locals whose contents outlive the call (returned or stored on self)."""
        out = set(returned)
        for node in ast.walk(func):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Attribute) and isinstance(node.value, ast.Name):
                        out.add(node.value.id)
        return out

    # -- trigger classification ----------------------------------------
    def _unsorted_iterable(self, node: ast.AST, set_locals: set[str]) -> str | None:
        """Classify ``node``: 'set', 'view', or None (ordered/unknown)."""
        if self._is_set_expr(node, set_locals):
            return "set"
        if _is_dict_view(node):
            return "view"
        return None

    def _check_function(self, ctx: LintContext, func: ast.AST) -> Iterator[Finding]:
        set_locals = self._collect_set_locals(func)
        returned = self._returned_names(func)
        escaping = self._escaping_locals(func, returned)

        for node in ast.walk(func):
            # Don't descend into nested defs: ast.walk does, but nested
            # functions get their own pass from check(); skipping here
            # avoids duplicate findings with the wrong local tables.
            if node is not func and isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            if isinstance(node, ast.Call):
                yield from self._check_materialization(ctx, node, set_locals)
            elif isinstance(node, ast.For):
                yield from self._check_for(ctx, node, set_locals, returned, escaping)
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
                yield from self._check_comprehension(ctx, node, set_locals)

    def _check_materialization(
        self, ctx: LintContext, node: ast.Call, set_locals: set[str]
    ) -> Iterator[Finding]:
        dotted = dotted_name(node.func)
        if dotted not in _MATERIALIZERS or not node.args:
            return
        if self._unsorted_iterable(node.args[0], set_locals) == "set":
            yield ctx.finding(
                node, self.rule,
                f"`{dotted}(...)` captures a set's arbitrary order into a "
                "sequence; wrap the set in sorted(...)",
            )

    def _check_for(
        self,
        ctx: LintContext,
        node: ast.For,
        set_locals: set[str],
        returned: set[str],
        escaping: set[str],
    ) -> Iterator[Finding]:
        kind = self._unsorted_iterable(node.iter, set_locals)
        if kind is None:
            return
        reason = self._order_sensitive_body(node, returned, escaping)
        if reason is not None:
            what = "a set" if kind == "set" else "an unsorted dict view"
            yield ctx.finding(
                node.iter, self.rule,
                f"iteration over {what} {reason}; wrap the iterable in sorted(...)",
            )

    @staticmethod
    def _order_sensitive_body(
        loop: ast.For, returned: set[str], escaping: set[str]
    ) -> str | None:
        for node in ast.walk(loop):
            if node is loop:
                continue
            if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
                return "returns/yields from the loop body"
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                receiver = node.func.value
                if (
                    node.func.attr in ("append", "extend")
                    and isinstance(receiver, ast.Name)
                    and receiver.id in returned
                ):
                    return f"appends to returned `{receiver.id}`"
                if (
                    node.func.attr == "setdefault"
                    and isinstance(receiver, ast.Name)
                    and receiver.id in escaping
                ):
                    return f"inserts into escaping `{receiver.id}` in iteration order"
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Name)
                        and target.value.id in escaping
                    ):
                        return (
                            f"inserts into escaping `{target.value.id}` in iteration order"
                        )
        return None

    def _check_comprehension(
        self,
        ctx: LintContext,
        node: ast.ListComp | ast.GeneratorExp | ast.DictComp,
        set_locals: set[str],
    ) -> Iterator[Finding]:
        kinds = [self._unsorted_iterable(gen.iter, set_locals) for gen in node.generators]
        if not any(kinds):
            return
        context = self._comprehension_sink(ctx, node)
        if context is None:
            return
        bad = next(k for k in kinds if k)
        what = "a set" if bad == "set" else "an unsorted dict view"
        yield ctx.finding(
            node, self.rule,
            f"comprehension over {what} {context}; wrap the iterable in sorted(...)",
        )

    @staticmethod
    def _comprehension_sink(ctx: LintContext, node: ast.AST) -> str | None:
        """Why this comprehension's order matters (None: it doesn't)."""
        child = node
        for ancestor in ctx.ancestors(node):
            if isinstance(ancestor, (ast.Return, ast.Yield)):
                return "reaches a return value"
            if isinstance(ancestor, ast.Call):
                dotted = dotted_name(ancestor.func) or ""
                if child in ancestor.args or any(
                    kw.value is child for kw in ancestor.keywords
                ):
                    if dotted in _SERIALIZERS:
                        return f"feeds `{dotted}`"
                    if dotted.rsplit(".", 1)[-1] in _RNG_CONSUMERS:
                        return f"feeds RNG `{dotted}`"
                    if dotted in _ORDER_INSENSITIVE_SINKS:
                        return None
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                return None
            child = ancestor
        return None

    # ------------------------------------------------------------------
    def check(self, ctx: LintContext) -> Iterator[Finding]:
        scopes: list[ast.AST] = [ctx.tree]
        scopes += [
            n for n in ast.walk(ctx.tree)
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        seen: set[tuple[int, int, str]] = set()
        for scope in scopes:
            for finding in self._check_function(ctx, scope):
                key = (finding.line, finding.col, finding.message)
                if key not in seen:
                    seen.add(key)
                    yield finding
