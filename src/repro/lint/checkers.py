"""The registry of active ``reprolint`` checkers.

Adding a rule is three steps (DESIGN.md §8): subclass
:class:`~repro.lint.engine.Checker` in a topical module, give it a
unique ``rule`` id and pragma ``alias``, and append an instance here.
"""

from __future__ import annotations

from repro.lint.contracts import IntervalChecker, MetricsGuardChecker
from repro.lint.determinism import (
    RngChecker,
    UnsortedIterationChecker,
    WallClockChecker,
)
from repro.lint.engine import Checker
from repro.lint.perf import (
    ChurnRebuildChecker,
    DtypeWideningChecker,
    LoopAllocationChecker,
)
from repro.lint.quality import (
    BroadExceptChecker,
    FloatAccumulationChecker,
    FrozenMutationChecker,
)

__all__ = ["ALL_CHECKERS"]

ALL_CHECKERS: tuple[Checker, ...] = (
    RngChecker(),
    WallClockChecker(),
    UnsortedIterationChecker(),
    MetricsGuardChecker(),
    IntervalChecker(),
    LoopAllocationChecker(),
    ChurnRebuildChecker(),
    DtypeWideningChecker(),
    FloatAccumulationChecker(),
    FrozenMutationChecker(),
    BroadExceptChecker(),
)
