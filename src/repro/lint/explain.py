"""``--explain RULE``: rule documentation straight from the source.

Every checker's class docstring *is* its documentation — the same text
feeds ``--explain``, the SARIF rule catalog, and the README's rule
table, so the three can never drift apart.  Engine-level rules that are
not :class:`~repro.lint.engine.Checker` subclasses (LNT000/LNT100/
LNT002) are documented here.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.lint.engine import Checker

__all__ = ["ENGINE_RULES", "explain", "first_line", "rule_catalog"]

#: Rules emitted by the engine itself rather than a Checker.
ENGINE_RULES: dict[str, str] = {
    "LNT000": (
        "LNT000: the file does not parse.\n\n"
        "A syntax error stops every other rule for the file; the single\n"
        "LNT000 finding carries the parser's message and location."
    ),
    "LNT100": (
        "LNT100: suppression pragma without a reason.\n\n"
        "The pragma grammar is `# lint: allow-<rule>[,<rule>...] -- <reason>`.\n"
        "A reasonless pragma suppresses nothing (the underlying finding\n"
        "still fires) and is itself reported, so every exception to the\n"
        "determinism contract is documented at the site that makes it."
    ),
    "LNT002": (
        "LNT002: unused suppression.\n\n"
        "A reasoned `# lint: allow-...` pragma whose named rules are all\n"
        "active in this run but which no longer matches any finding.  The\n"
        "code it excused has been fixed or deleted; delete the pragma so\n"
        "the remaining ones stay meaningful.  Not reported when `--select`\n"
        "excludes any of the pragma's rules (the pragma might match under\n"
        "the full rule set)."
    ),
}


def first_line(doc: str) -> str:
    """The headline of a rule doc (first non-empty line)."""
    for line in doc.splitlines():
        if line.strip():
            return line.strip()
    return doc.strip()


def rule_catalog(checkers: Sequence[Checker]) -> dict[str, str]:
    """``rule id -> full documentation`` for every known rule."""
    catalog = {
        c.rule: (c.__doc__ or c.rule).strip() for c in checkers
    }
    catalog.update(ENGINE_RULES)
    return catalog


def explain(rule: str, checkers: Sequence[Checker]) -> str | None:
    """The documentation for ``rule`` (case-insensitive), or None."""
    catalog = rule_catalog(checkers)
    wanted = rule.upper()
    for rule_id, doc in catalog.items():
        if rule_id.upper() == wanted:
            return doc
    # Pragma aliases also resolve (``--explain unsorted``).
    for checker in checkers:
        if checker.alias and checker.alias.lower() == rule.lower():
            return (checker.__doc__ or checker.rule).strip()
    return None
