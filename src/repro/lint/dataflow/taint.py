"""Provenance (taint) analysis for the determinism contract.

The lattice is a per-variable union of :class:`Taint` facts, each a
``(label, origin line/col)`` pair.  Labels:

``set-order`` (:data:`SET_ORDER`)
    The value is a genuine unordered container — ``set``/``frozenset``
    by literal, constructor, comprehension, set algebra, or a helper
    call whose summary says it returns one.  Iterating or materialising
    it leaks hash order.
``view-order`` (:data:`VIEW_ORDER`)
    The value is a ``dict`` view (``.items()/.keys()/.values()``).
    Iteration order is the dict's insertion order — suspect when it can
    reach a result, per DESIGN.md §8.
``captured-order`` (:data:`CAPTURED`)
    An *ordered* sequence whose element order was captured from an
    unordered container (a comprehension or ``list``/``tuple``/numpy
    materialiser over a ``set-order`` value).  The container type is
    deterministic; its order is not — returning or serialising it is a
    finding even though it is "just a list".
``unseeded-rng`` (:data:`UNSEEDED_RNG`)
    The value came from an RNG constructor that drew OS entropy
    (``np.random.default_rng()`` with no seed).

Propagation is flow-sensitive over the
:mod:`~repro.lint.dataflow.cfg` graph: reassignment kills
(``s = sorted(s)`` cleans ``s``), joins union, loops iterate to
fixpoint.  ``sorted``/``sum``/``min``/... sanitize; order-preserving
wrappers (``enumerate``/``zip``/``reversed``/...) propagate.  Helper
calls resolve through per-module :func:`module_summaries`, which is
what catches laundering through a function return.

Walrus assignments are handled *inside* expression evaluation:
:func:`taint_expr` binds ``x := e`` into the environment it is given.
"""

from __future__ import annotations

import ast
from collections import deque
from collections.abc import Mapping
from dataclasses import dataclass

from repro.lint.dataflow.cfg import (
    CFG,
    Element,
    ExceptBind,
    ForBind,
    MatchBind,
    TestExpr,
    WithBind,
    build_cfg,
)
from repro.lint.dataflow.reaching import _pattern_names, target_names

__all__ = [
    "SET_ORDER",
    "VIEW_ORDER",
    "CAPTURED",
    "UNSEEDED_RNG",
    "Taint",
    "TaintEnv",
    "taint_expr",
    "FunctionFlow",
    "analyze_function",
    "module_summaries",
]

SET_ORDER = "set-order"
VIEW_ORDER = "view-order"
CAPTURED = "captured-order"
UNSEEDED_RNG = "unseeded-rng"


@dataclass(frozen=True)
class Taint:
    """One provenance fact: ``label`` acquired at ``line:col``."""

    label: str
    line: int
    col: int

    def __repr__(self) -> str:
        return f"{self.label}@{self.line}:{self.col}"


TaintSet = frozenset[Taint]
TaintEnv = dict[str, TaintSet]
EMPTY: TaintSet = frozenset()

#: Callables that erase ordering provenance entirely.
_SANITIZERS = frozenset(
    {"sorted", "sum", "min", "max", "len", "any", "all", "bool", "float",
     "int", "str", "repr", "dict", "Counter", "collections.Counter",
     "math.fsum"}
)
#: Order-preserving wrappers: taint flows straight through.
_TRANSPARENT = frozenset({"reversed", "iter", "enumerate", "zip", "map", "filter"})
#: Sequence materialisers: capture the argument's current order.
MATERIALIZERS = frozenset(
    {"list", "tuple", "np.fromiter", "numpy.fromiter", "np.asarray",
     "numpy.asarray", "np.array", "numpy.array"}
)
#: ``set``-returning methods when called on a set-tainted receiver.
_SET_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference", "copy"}
)
_SET_BINOPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)


def _dotted(node: ast.AST) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_dict_view(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in ("items", "keys", "values")
        and not node.args
        and not node.keywords
    )


def _mark(label: str, node: ast.AST) -> TaintSet:
    return frozenset(
        {Taint(label, getattr(node, "lineno", 0), getattr(node, "col_offset", 0))}
    )


def _only(labels: tuple[str, ...], taints: TaintSet) -> TaintSet:
    return frozenset(t for t in taints if t.label in labels)


def _has(taints: TaintSet, *labels: str) -> bool:
    return any(t.label in labels for t in taints)


def _annotation_is_set(annotation: ast.AST) -> bool:
    base = annotation.value if isinstance(annotation, ast.Subscript) else annotation
    name = _dotted(base)
    return name in ("set", "frozenset", "Set", "FrozenSet", "typing.Set")


def taint_expr(
    expr: ast.AST,
    env: TaintEnv,
    summaries: Mapping[str, frozenset[str]] | None = None,
    self_class: str | None = None,
) -> TaintSet:
    """Provenance of ``expr`` under ``env``.

    ``env`` is mutated for walrus targets (``x := e`` binds ``x``), so
    callers probing a stored environment should pass a copy.
    """
    summaries = summaries or {}

    def visit(node: ast.AST) -> TaintSet:
        if isinstance(node, ast.Name):
            return env.get(node.id, EMPTY)
        if isinstance(node, ast.NamedExpr):
            value = visit(node.value)
            if isinstance(node.target, ast.Name):
                env[node.target.id] = value
            return value
        if isinstance(node, (ast.Set, ast.SetComp)):
            if isinstance(node, ast.SetComp):
                for gen in node.generators:
                    visit(gen.iter)
            return _mark(SET_ORDER, node)
        if isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            iters = frozenset().union(*(visit(g.iter) for g in node.generators))
            if _has(iters, SET_ORDER, CAPTURED):
                return _mark(CAPTURED, node)
            return EMPTY  # dict views: materialising insertion order is allowed
        if isinstance(node, ast.DictComp):
            for gen in node.generators:
                visit(gen.iter)
            return EMPTY
        if isinstance(node, ast.Call):
            return _call(node)
        if isinstance(node, ast.BoolOp):
            return frozenset().union(*(visit(v) for v in node.values))
        if isinstance(node, ast.BinOp):
            left, right = visit(node.left), visit(node.right)
            if isinstance(node.op, _SET_BINOPS) and _has(left | right, SET_ORDER):
                return _only((SET_ORDER,), left | right)
            return EMPTY
        if isinstance(node, ast.IfExp):
            visit(node.test)
            return visit(node.body) | visit(node.orelse)
        if isinstance(node, ast.Starred):
            return visit(node.value)
        if isinstance(node, (ast.Await, ast.UnaryOp)):
            return visit(node.operand if isinstance(node, ast.UnaryOp) else node.value)
        # Attribute loads, subscripts, constants, f-strings, lambdas,
        # comparisons: untracked → clean.  Still walk for walrus defs.
        for child in ast.iter_child_nodes(node):
            if not isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
            ):
                visit(child)
        return EMPTY

    def _call(node: ast.Call) -> TaintSet:
        arg_taints = [visit(a) for a in node.args]
        for kw in node.keywords:
            visit(kw.value)
        dotted = _dotted(node.func) or ""
        leaf = dotted.rsplit(".", 1)[-1]
        # -- dict views ------------------------------------------------
        if _is_dict_view(node):
            if isinstance(node.func, ast.Attribute):
                visit(node.func.value)
            return _mark(VIEW_ORDER, node)
        # -- constructors / builtins ----------------------------------
        if dotted in ("set", "frozenset"):
            return _mark(SET_ORDER, node)
        if dotted in _SANITIZERS:
            return EMPTY
        if dotted in _TRANSPARENT:
            merged = frozenset().union(*arg_taints) if arg_taints else EMPTY
            return _only((SET_ORDER, VIEW_ORDER, CAPTURED), merged)
        if dotted in MATERIALIZERS:
            first = arg_taints[0] if arg_taints else EMPTY
            if _has(first, SET_ORDER):
                return _mark(CAPTURED, node)
            return _only((CAPTURED,), first)
        if dotted in ("np.random.default_rng", "numpy.random.default_rng"):
            if not node.args and not node.keywords:
                return _mark(UNSEEDED_RNG, node)
            return EMPTY
        # -- set methods on tainted receivers -------------------------
        if isinstance(node.func, ast.Attribute):
            receiver = visit(node.func.value)
            if node.func.attr in _SET_METHODS and _has(receiver, SET_ORDER):
                return _mark(SET_ORDER, node)
            if node.func.attr == "sort":  # in-place sort sanitizes
                return EMPTY
        # -- helper calls through summaries ---------------------------
        key: str | None = None
        if isinstance(node.func, ast.Name):
            key = node.func.id
        elif (
            isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id in ("self", "cls")
            and self_class is not None
        ):
            key = f"{self_class}.{node.func.attr}"
        if key is not None and key in summaries:
            return frozenset(
                Taint(label, node.lineno, node.col_offset)
                for label in summaries[key]
            )
        return EMPTY

    return visit(expr)


def _join(a: TaintEnv, b: TaintEnv) -> TaintEnv:
    out = dict(a)
    for name, taints in b.items():
        out[name] = out.get(name, EMPTY) | taints
    return out


def transfer(
    element: Element,
    env: TaintEnv,
    summaries: Mapping[str, frozenset[str]],
    self_class: str | None,
) -> TaintEnv:
    """Abstract semantics of one CFG element (returns a new env)."""
    env = dict(env)

    def assign_names(target: ast.expr, taints: TaintSet) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = taints
        else:
            for name in target_names(target):
                env[name] = EMPTY  # unpacked elements: values, not order

    if isinstance(element, TestExpr):
        taint_expr(element.expr, env, summaries, self_class)
        return env
    if isinstance(element, ForBind):
        taint_expr(element.node.iter, env, summaries, self_class)
        for name in target_names(element.node.target):
            env[name] = EMPTY
        return env
    if isinstance(element, WithBind):
        taint_expr(element.item.context_expr, env, summaries, self_class)
        if element.item.optional_vars is not None:
            for name in target_names(element.item.optional_vars):
                env[name] = EMPTY
        return env
    if isinstance(element, MatchBind):
        for name in _pattern_names(element.case.pattern):
            env[name] = EMPTY
        return env
    if isinstance(element, ExceptBind):
        if element.handler.name:
            env[element.handler.name] = EMPTY
        return env

    node = element
    if isinstance(node, ast.Assign):
        taints = taint_expr(node.value, env, summaries, self_class)
        for target in node.targets:
            assign_names(target, taints)
    elif isinstance(node, ast.AnnAssign):
        if node.value is not None:
            taints = taint_expr(node.value, env, summaries, self_class)
        else:
            taints = EMPTY
        if isinstance(node.target, ast.Name):
            if _annotation_is_set(node.annotation):
                taints = taints | _mark(SET_ORDER, node)
            env[node.target.id] = taints
    elif isinstance(node, ast.AugAssign):
        taints = taint_expr(node.value, env, summaries, self_class)
        if isinstance(node.target, ast.Name):
            prior = env.get(node.target.id, EMPTY)
            if isinstance(node.op, _SET_BINOPS) and _has(prior | taints, SET_ORDER):
                env[node.target.id] = _only((SET_ORDER,), prior | taints)
            # numeric/str accumulation keeps the target's prior taint
    elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        env[node.name] = EMPTY
    elif isinstance(node, ast.Delete):
        for target in node.targets:
            if isinstance(target, ast.Name):
                env.pop(target.id, None)
    else:
        for child_value in _evaluated_exprs(node):
            taint_expr(child_value, env, summaries, self_class)
    return env


def _evaluated_exprs(node: ast.stmt) -> list[ast.expr]:
    if isinstance(node, (ast.Expr, ast.Return)) and node.value is not None:
        return [node.value]
    if isinstance(node, ast.Assert):
        return [node.test]
    if isinstance(node, ast.Raise):
        return [e for e in (node.exc, node.cause) if e is not None]
    return []


class FunctionFlow:
    """Fixpoint taint states for one function (or module top level).

    ``env_before(element)`` gives the abstract environment in force just
    before an element executes; ``taint_of(expr, element)`` evaluates a
    sub-expression of that element under it.
    """

    def __init__(
        self,
        func: ast.FunctionDef | ast.AsyncFunctionDef | ast.Module,
        summaries: Mapping[str, frozenset[str]] | None = None,
        self_class: str | None = None,
    ) -> None:
        self.func = func
        self.summaries = dict(summaries or {})
        self.self_class = self_class
        self.cfg: CFG = build_cfg(func)
        self._env_before: dict[int, TaintEnv] = {}
        self._solve()

    # ------------------------------------------------------------------
    def _solve(self) -> None:
        cfg = self.cfg
        n = len(cfg.blocks)
        block_in: list[TaintEnv] = [{} for _ in range(n)]
        block_out: list[TaintEnv] = [{} for _ in range(n)]
        work = deque(range(n))
        while work:
            idx = work.popleft()
            block = cfg.blocks[idx]
            if block.preds:
                merged: TaintEnv = {}
                for p in block.preds:
                    merged = _join(merged, block_out[p])
                block_in[idx] = merged
            env = dict(block_in[idx])
            for element in block.elements:
                env = transfer(element, env, self.summaries, self.self_class)
            if env != block_out[idx]:
                block_out[idx] = env
                for s in block.succs:
                    if s not in work:
                        work.append(s)
        # Final pass: record per-element entry environments.
        for block in cfg.blocks:
            env = dict(block_in[block.idx])
            for element in block.elements:
                self._env_before[id(element)] = dict(env)
                env = transfer(element, env, self.summaries, self.self_class)
        self._block_out = block_out

    # ------------------------------------------------------------------
    def env_before(self, element: Element) -> TaintEnv:
        return dict(self._env_before.get(id(element), {}))

    def taint_of(self, expr: ast.AST, element: Element) -> TaintSet:
        """Taint of ``expr`` as evaluated inside ``element``."""
        return taint_expr(
            expr, self.env_before(element), self.summaries, self.self_class
        )

    def return_labels(self) -> frozenset[str]:
        """Labels carried by any value this function can return."""
        labels: set[str] = set()
        for element in self.cfg.elements():
            if isinstance(element, ast.Return) and element.value is not None:
                for taint in self.taint_of(element.value, element):
                    labels.add(taint.label)
        return frozenset(labels)


def analyze_function(
    func: ast.FunctionDef | ast.AsyncFunctionDef | ast.Module,
    summaries: Mapping[str, frozenset[str]] | None = None,
    self_class: str | None = None,
) -> FunctionFlow:
    """Convenience constructor (mirrors :class:`FunctionFlow`)."""
    return FunctionFlow(func, summaries, self_class)


def _module_functions(
    tree: ast.Module,
) -> list[tuple[str, ast.FunctionDef | ast.AsyncFunctionDef, str | None]]:
    out: list[tuple[str, ast.FunctionDef | ast.AsyncFunctionDef, str | None]] = []
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            out.append((node.name, node, None))
        elif isinstance(node, ast.ClassDef):
            for sub in node.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    out.append((f"{node.name}.{sub.name}", sub, node.name))
    return out


def module_summaries(tree: ast.Module, max_rounds: int = 8) -> dict[str, frozenset[str]]:
    """Per-module function summaries: which callables return tainted
    values.

    Keys are ``name`` for module-level functions and ``Class.method``
    for methods (resolved at call sites via ``self.method(...)``).
    Iterated to fixpoint so transitive helpers (``a`` returns ``b()``'s
    set) are covered; ``max_rounds`` bounds pathological chains.
    """
    funcs = _module_functions(tree)
    summaries: dict[str, frozenset[str]] = {name: frozenset() for name, _, _ in funcs}
    for _ in range(max_rounds):
        changed = False
        for name, func, cls in funcs:
            labels = FunctionFlow(func, summaries, cls).return_labels()
            if labels != summaries[name]:
                summaries[name] = labels
                changed = True
        if not changed:
            break
    return summaries
