"""Flow-sensitive analysis engine underneath ``reprolint`` (phase one).

The syntactic checkers of PR 3 matched single expressions; they could
not see a set laundered through a temp variable (``t = s; return
list(t)``) or through a helper-call return.  This package supplies the
machinery that closes those holes:

* :mod:`repro.lint.dataflow.cfg` — per-function control-flow graphs
  covering branches, loops, ``try``/``except``/``finally``, ``with``,
  ``match``, comprehensions and walrus assignments.
* :mod:`repro.lint.dataflow.reaching` — classic reaching-definitions
  over those CFGs (worklist fixpoint).
* :mod:`repro.lint.dataflow.taint` — a small provenance lattice
  (unordered-container and unseeded-RNG labels) propagated through
  assignments, calls and returns, with per-module function summaries so
  helper-call laundering is visible.

Rules consume this via :meth:`repro.lint.engine.LintContext.flow`,
which caches one :class:`~repro.lint.dataflow.taint.FunctionFlow` per
function scope.
"""

from repro.lint.dataflow.cfg import CFG, Block, build_cfg
from repro.lint.dataflow.reaching import ReachingDefinitions, definitions_in
from repro.lint.dataflow.taint import (
    CAPTURED,
    SET_ORDER,
    UNSEEDED_RNG,
    VIEW_ORDER,
    FunctionFlow,
    analyze_function,
    module_summaries,
)

__all__ = [
    "CFG",
    "Block",
    "build_cfg",
    "ReachingDefinitions",
    "definitions_in",
    "SET_ORDER",
    "VIEW_ORDER",
    "CAPTURED",
    "UNSEEDED_RNG",
    "FunctionFlow",
    "analyze_function",
    "module_summaries",
]
