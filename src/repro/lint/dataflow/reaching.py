"""Reaching definitions over a :class:`~repro.lint.dataflow.cfg.CFG`.

A *definition* is ``(name, node)`` — a binding of ``name`` made by the
AST node ``node``.  The analysis is the textbook forward may-analysis:
``IN[b] = ∪ OUT[p]`` over predecessors, ``OUT[b] = gen(b) ∪ (IN[b] −
kill(b))``, iterated to fixpoint with a worklist.  Within a block,
per-element states are recovered by replaying the block's transfer.

``reprolint`` rules use this for soundness fixtures and for the taint
engine's treatment of loops/joins; the public surface is deliberately
small.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass

from repro.lint.dataflow.cfg import (
    CFG,
    Element,
    ExceptBind,
    ForBind,
    MatchBind,
    TestExpr,
    WithBind,
)

__all__ = ["Definition", "ReachingDefinitions", "definitions_in", "target_names"]


@dataclass(frozen=True)
class Definition:
    """One binding of ``name`` at a source location."""

    name: str
    line: int
    col: int

    def __repr__(self) -> str:
        return f"{self.name}@{self.line}:{self.col}"


def target_names(target: ast.expr) -> list[str]:
    """Plain names bound by an assignment target (tuples unpacked)."""
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        out: list[str] = []
        for elt in target.elts:
            out.extend(target_names(elt))
        return out
    if isinstance(target, ast.Starred):
        return target_names(target.value)
    return []  # attribute / subscript stores bind no local


def _pattern_names(pattern: ast.pattern) -> list[str]:
    """Capture names bound by a ``match`` pattern."""
    out: list[str] = []
    for node in ast.walk(pattern):
        if isinstance(node, (ast.MatchAs, ast.MatchStar)) and node.name:
            out.append(node.name)
        elif isinstance(node, ast.MatchMapping) and node.rest:
            out.append(node.rest)
    return out


def _walrus_names(node: ast.AST) -> list[tuple[str, ast.AST]]:
    """``(name, node)`` pairs for every ``:=`` under ``node``, without
    descending into nested function/class scopes."""
    out: list[tuple[str, ast.AST]] = []
    stack: list[ast.AST] = [node]
    while stack:
        cur = stack.pop()
        if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)):
            continue
        if isinstance(cur, ast.NamedExpr) and isinstance(cur.target, ast.Name):
            out.append((cur.target.id, cur))
        stack.extend(ast.iter_child_nodes(cur))
    return out


def definitions_in(element: Element) -> list[tuple[str, ast.AST]]:
    """Every ``(name, node)`` binding performed by one CFG element."""
    out: list[tuple[str, ast.AST]] = []
    if isinstance(element, TestExpr):
        return _walrus_names(element.expr)
    if isinstance(element, ForBind):
        out.extend(_walrus_names(element.node.iter))
        out.extend((n, element.node) for n in target_names(element.node.target))
        return out
    if isinstance(element, WithBind):
        out.extend(_walrus_names(element.item.context_expr))
        if element.item.optional_vars is not None:
            out.extend((n, element.item) for n in target_names(element.item.optional_vars))
        return out
    if isinstance(element, MatchBind):
        return [(n, element.case) for n in _pattern_names(element.case.pattern)]
    if isinstance(element, ExceptBind):
        if element.handler.name:
            return [(element.handler.name, element.handler)]
        return []
    # Plain statements ------------------------------------------------
    node = element
    if isinstance(node, ast.Assign):
        out.extend(_walrus_names(node.value))
        for target in node.targets:
            out.extend((n, node) for n in target_names(target))
    elif isinstance(node, ast.AnnAssign):
        if node.value is not None:
            out.extend(_walrus_names(node.value))
        if isinstance(node.target, ast.Name) and node.value is not None:
            out.append((node.target.id, node))
    elif isinstance(node, ast.AugAssign):
        out.extend(_walrus_names(node.value))
        if isinstance(node.target, ast.Name):
            out.append((node.target.id, node))
    elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        out.append((node.name, node))
    elif isinstance(node, ast.Import):
        for alias in node.names:
            out.append(((alias.asname or alias.name).split(".")[0], node))
    elif isinstance(node, ast.ImportFrom):
        for alias in node.names:
            if alias.name != "*":
                out.append((alias.asname or alias.name, node))
    elif isinstance(node, ast.Delete):
        pass  # kills handled by consumers that care; rare in lint scope
    elif isinstance(node, (ast.Expr, ast.Return, ast.Assert, ast.Raise)):
        value = getattr(node, "value", None) or getattr(node, "test", None)
        if value is not None:
            out.extend(_walrus_names(value))
    return out


def _as_definition(name: str, node: ast.AST) -> Definition:
    return Definition(
        name=name,
        line=getattr(node, "lineno", 0),
        col=getattr(node, "col_offset", 0),
    )


class ReachingDefinitions:
    """Worklist reaching-definitions over one CFG.

    Parameters
    ----------
    cfg:
        The function's control-flow graph.
    params:
        Parameter names, treated as definitions live at entry.
    """

    def __init__(self, cfg: CFG, params: tuple[str, ...] = ()) -> None:
        self.cfg = cfg
        entry_defs = frozenset(Definition(p, 0, 0) for p in params)
        gen_kill: list[tuple[frozenset[Definition], frozenset[str]]] = []
        for block in cfg.blocks:
            gen: dict[str, Definition] = {}
            for element in block.elements:
                for name, node in definitions_in(element):
                    gen[name] = _as_definition(name, node)
            gen_kill.append((frozenset(gen.values()), frozenset(gen)))

        n = len(cfg.blocks)
        self.block_in: list[frozenset[Definition]] = [frozenset()] * n
        self.block_in[cfg.entry] = entry_defs
        out: list[frozenset[Definition]] = [frozenset()] * n
        out[cfg.entry] = entry_defs
        work = deque(range(n))
        while work:
            idx = work.popleft()
            block = cfg.blocks[idx]
            if idx != cfg.entry:
                merged: set[Definition] = set()
                for p in block.preds:
                    merged |= out[p]
                self.block_in[idx] = frozenset(merged)
            gen, kill = gen_kill[idx]
            new_out = frozenset(
                d for d in self.block_in[idx] if d.name not in kill
            ) | gen
            if new_out != out[idx]:
                out[idx] = new_out
                for s in block.succs:
                    if s not in work:
                        work.append(s)
        self.block_out = out

    # ------------------------------------------------------------------
    def before_element(self, element: Element) -> frozenset[Definition]:
        """Definitions reaching the start of ``element`` (replays the
        owning block's transfer up to it)."""
        for block in self.cfg.blocks:
            if element in block.elements:
                state = dict_by_name(self.block_in[block.idx])
                for el in block.elements:
                    if el is element:
                        return frozenset(d for ds in state.values() for d in ds)
                    for name, node in definitions_in(el):
                        state[name] = {_as_definition(name, node)}
                break
        raise KeyError("element not in CFG")

    def names_before(self, element: Element) -> frozenset[str]:
        """Just the variable names defined before ``element``."""
        return frozenset(d.name for d in self.before_element(element))


def dict_by_name(defs: frozenset[Definition]) -> dict[str, set[Definition]]:
    """Group a definition set by variable name."""
    out: dict[str, set[Definition]] = {}
    for d in defs:
        out.setdefault(d.name, set()).add(d)
    return out
