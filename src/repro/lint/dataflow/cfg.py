"""Per-function control-flow graphs for ``reprolint``.

The CFG is statement-granular: each :class:`Block` holds a straight-line
sequence of *elements* executed in order.  Elements are either plain
``ast.stmt`` nodes or one of the small binding markers below, which give
compound-statement headers a place in the flow:

* :class:`TestExpr` — an ``if``/``while`` condition or ``match``
  subject (walrus targets inside it are definitions);
* :class:`ForBind` — one ``for`` header: evaluates ``iter`` and binds
  the loop target on every entry into the body;
* :class:`WithBind` — one ``with`` item binding its ``as`` name;
* :class:`MatchBind` — one ``case`` pattern binding its captures;
* :class:`ExceptBind` — one handler binding its ``as`` name.

Exceptional flow is approximated the standard lint-grade way: every
block created inside a ``try`` body gets an edge to each handler (any
statement may raise), and ``finally`` bodies join every normal or
exceptional exit of the statement.  That over-approximates feasible
paths — which is the sound direction for the union-based analyses
built on top (reaching definitions, taint).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = [
    "Block",
    "CFG",
    "TestExpr",
    "ForBind",
    "WithBind",
    "MatchBind",
    "ExceptBind",
    "Element",
    "build_cfg",
]


@dataclass(frozen=True)
class TestExpr:
    """A branch condition (``if``/``while`` test, ``match`` subject)."""

    expr: ast.expr


@dataclass(frozen=True)
class ForBind:
    """A ``for`` header: evaluates ``node.iter``, binds ``node.target``."""

    node: ast.For | ast.AsyncFor


@dataclass(frozen=True)
class WithBind:
    """One ``with`` item: evaluates the context expr, binds ``as`` name."""

    item: ast.withitem


@dataclass(frozen=True)
class MatchBind:
    """One ``case`` arm: binds every capture name in the pattern."""

    case: ast.match_case


@dataclass(frozen=True)
class ExceptBind:
    """Entry of one ``except`` handler, binding its ``as`` name."""

    handler: ast.ExceptHandler


Element = ast.stmt | TestExpr | ForBind | WithBind | MatchBind | ExceptBind


@dataclass
class Block:
    """A straight-line run of elements with explicit successor edges."""

    idx: int
    label: str = ""
    elements: list[Element] = field(default_factory=list)
    succs: list[int] = field(default_factory=list)
    preds: list[int] = field(default_factory=list)

    def __repr__(self) -> str:  # compact: used in test failure output
        return f"Block({self.idx}, {self.label!r}, succs={self.succs})"


class CFG:
    """A function's control-flow graph (single entry, single exit)."""

    def __init__(self) -> None:
        self.blocks: list[Block] = []
        self.entry = self._new("entry").idx
        self.exit = self._new("exit").idx

    # ------------------------------------------------------------------
    def _new(self, label: str = "") -> Block:
        block = Block(idx=len(self.blocks), label=label)
        self.blocks.append(block)
        return block

    def _edge(self, src: int, dst: int) -> None:
        if dst not in self.blocks[src].succs:
            self.blocks[src].succs.append(dst)
            self.blocks[dst].preds.append(src)

    # ------------------------------------------------------------------
    def block(self, idx: int) -> Block:
        return self.blocks[idx]

    def elements(self) -> list[Element]:
        """All elements in block order (for whole-graph scans)."""
        out: list[Element] = []
        for block in self.blocks:
            out.extend(block.elements)
        return out

    def render(self) -> str:
        """Readable dump used by the CFG-shape tests."""
        lines = []
        for b in self.blocks:
            kinds = ",".join(type(e).__name__ for e in b.elements) or "-"
            lines.append(f"{b.idx}[{b.label or 'block'}] ({kinds}) -> {sorted(b.succs)}")
        return "\n".join(lines)


class _LoopFrame:
    """break/continue targets of the innermost enclosing loop."""

    def __init__(self, head: int, after: int) -> None:
        self.head = head
        self.after = after


class _Builder:
    def __init__(self) -> None:
        self.cfg = CFG()
        self.loops: list[_LoopFrame] = []
        #: Stack of handler-entry lists for enclosing ``try`` bodies:
        #: every block born inside a try body may jump to its handlers.
        self.try_handlers: list[list[int]] = []

    # ------------------------------------------------------------------
    def _new_block(self, label: str = "") -> Block:
        block = self.cfg._new(label)
        for handlers in self.try_handlers:
            for h in handlers:
                self.cfg._edge(block.idx, h)
        return block

    def build(self, body: list[ast.stmt]) -> CFG:
        first = self._new_block("body")
        self.cfg._edge(self.cfg.entry, first.idx)
        last = self._visit_body(body, first.idx)
        if last is not None:
            self.cfg._edge(last, self.cfg.exit)
        return self.cfg

    # ------------------------------------------------------------------
    def _visit_body(self, body: list[ast.stmt], cur: int | None) -> int | None:
        """Thread ``body`` through the graph; returns the fall-through
        block index, or ``None`` when every path leaves (return/raise/
        break/continue)."""
        for stmt in body:
            if cur is None:
                # Unreachable code after a jump still gets a block so
                # its definitions exist for the analyses.
                cur = self._new_block("dead").idx
            cur = self._visit_stmt(stmt, cur)
        return cur

    def _visit_stmt(self, stmt: ast.stmt, cur: int) -> int | None:
        cfg = self.cfg
        if isinstance(stmt, ast.If):
            cfg.block(cur).elements.append(TestExpr(stmt.test))
            then = self._new_block("then")
            cfg._edge(cur, then.idx)
            then_end = self._visit_body(stmt.body, then.idx)
            if stmt.orelse:
                other = self._new_block("else")
                cfg._edge(cur, other.idx)
                other_end = self._visit_body(stmt.orelse, other.idx)
            else:
                other_end = cur  # false edge falls through
            if then_end is None and other_end is None:
                return None
            join = self._new_block("join")
            for end in (then_end, other_end):
                if end is not None:
                    cfg._edge(end, join.idx)
            return join.idx

        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            head = self._new_block("loop-head")
            cfg._edge(cur, head.idx)
            if isinstance(stmt, ast.While):
                head.elements.append(TestExpr(stmt.test))
            else:
                head.elements.append(ForBind(stmt))
            after = self._new_block("loop-after")
            cfg._edge(head.idx, after.idx)  # zero-iteration edge
            self.loops.append(_LoopFrame(head.idx, after.idx))
            body = self._new_block("loop-body")
            cfg._edge(head.idx, body.idx)
            body_end = self._visit_body(stmt.body, body.idx)
            if body_end is not None:
                cfg._edge(body_end, head.idx)  # back edge
            self.loops.pop()
            if stmt.orelse:
                # ``else`` runs on normal loop exit; modelled on the
                # zero/normal exit path before ``after``'s successors.
                else_end = self._visit_body(stmt.orelse, after.idx)
                return else_end
            return after.idx

        if isinstance(stmt, ast.Try):
            handlers: list[int] = []
            handler_blocks = []
            for handler in stmt.handlers:
                hblock = self._new_block("except")
                hblock.elements.append(ExceptBind(handler))
                handlers.append(hblock.idx)
                handler_blocks.append((handler, hblock))
            self.try_handlers.append(handlers)
            body = self._new_block("try-body")
            cfg._edge(cur, body.idx)
            for h in handlers:  # the body's first block may raise too
                cfg._edge(body.idx, h)
            body_end = self._visit_body(stmt.body, body.idx)
            self.try_handlers.pop()
            if stmt.orelse:
                if body_end is not None:
                    body_end = self._visit_body(stmt.orelse, body_end)
            ends: list[int] = [] if body_end is None else [body_end]
            for handler, hblock in handler_blocks:
                h_end = self._visit_body(handler.body, hblock.idx)
                if h_end is not None:
                    ends.append(h_end)
            if stmt.finalbody:
                fin = self._new_block("finally")
                for end in ends:
                    cfg._edge(end, fin.idx)
                if not ends:
                    # Every path raised/returned; finally still runs.
                    cfg._edge(cur, fin.idx)
                return self._visit_body(stmt.finalbody, fin.idx)
            if not ends:
                return None
            join = self._new_block("join")
            for end in ends:
                cfg._edge(end, join.idx)
            return join.idx

        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                cfg.block(cur).elements.append(WithBind(item))
            return self._visit_body(stmt.body, cur)

        if isinstance(stmt, ast.Match):
            cfg.block(cur).elements.append(TestExpr(stmt.subject))
            ends = []
            exhaustive = False
            for case in stmt.cases:
                arm = self._new_block("case")
                cfg._edge(cur, arm.idx)
                arm.elements.append(MatchBind(case))
                if case.guard is not None:
                    arm.elements.append(TestExpr(case.guard))
                elif isinstance(case.pattern, ast.MatchAs) and case.pattern.pattern is None:
                    exhaustive = True  # bare ``case _:`` / ``case name:``
                arm_end = self._visit_body(case.body, arm.idx)
                if arm_end is not None:
                    ends.append(arm_end)
            join = self._new_block("join")
            if not exhaustive:
                cfg._edge(cur, join.idx)  # no-arm-matched edge
            for end in ends:
                cfg._edge(end, join.idx)
            return None if exhaustive and not ends else join.idx

        # ---- jump statements ------------------------------------------
        if isinstance(stmt, ast.Return):
            cfg.block(cur).elements.append(stmt)
            cfg._edge(cur, cfg.exit)
            return None
        if isinstance(stmt, ast.Raise):
            cfg.block(cur).elements.append(stmt)
            cfg._edge(cur, cfg.exit)
            return None
        if isinstance(stmt, ast.Break):
            if self.loops:
                cfg._edge(cur, self.loops[-1].after)
            return None
        if isinstance(stmt, ast.Continue):
            if self.loops:
                cfg._edge(cur, self.loops[-1].head)
            return None

        # ---- nested scopes are opaque single elements -----------------
        # (each FunctionDef/ClassDef gets its own CFG from the caller)
        cfg.block(cur).elements.append(stmt)
        return cur


def build_cfg(func: ast.AST) -> CFG:
    """Build the CFG of a function, or of a module's top level.

    Nested function/class definitions are single opaque elements — they
    define a name here and get their own graph when analyzed.
    """
    if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)):
        body = func.body
    else:  # pragma: no cover - defensive; lambdas have expression bodies
        raise TypeError(f"cannot build a CFG for {type(func).__name__}")
    return _Builder().build(body)
