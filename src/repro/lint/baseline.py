"""Baseline files: adopt ``reprolint`` incrementally (``--baseline``).

A baseline is a JSON file of finding *fingerprints* — the engine's
stable identities hashing ``(module, rule, normalised source line,
occurrence index)`` rather than line numbers, so unrelated edits above
a baselined finding do not resurrect it, while actually touching the
flagged line does.

Workflow::

    python -m repro.lint src --write-baseline .reprolint-baseline.json
    # ... later runs only report findings NOT in the baseline:
    python -m repro.lint src --baseline .reprolint-baseline.json

Baselined findings that no longer occur are reported by the CLI as a
note (count only) so the file can be re-written and shrunk over time.
"""

from __future__ import annotations

import json
from pathlib import Path
from collections.abc import Sequence

from repro.lint.engine import Finding

__all__ = ["load_baseline", "write_baseline", "partition"]

_VERSION = 1


def load_baseline(path: Path | str) -> set[str]:
    """The fingerprint set of a baseline file.

    Raises ``ValueError`` on a malformed or wrong-version file — a
    silently ignored baseline would un-suppress hundreds of findings.
    """
    raw = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(raw, dict) or raw.get("version") != _VERSION:
        raise ValueError(f"{path}: not a reprolint baseline (version {_VERSION})")
    fingerprints = raw.get("fingerprints")
    if not isinstance(fingerprints, dict):
        raise ValueError(f"{path}: baseline has no fingerprint map")
    return set(fingerprints)


def write_baseline(path: Path | str, findings: Sequence[Finding]) -> None:
    """Write ``findings`` as a baseline (sorted, human-diffable)."""
    fingerprints = {
        f.fingerprint: f.render() for f in findings if f.fingerprint
    }
    doc = {
        "version": _VERSION,
        "tool": "reprolint",
        "fingerprints": dict(sorted(fingerprints.items())),
    }
    Path(path).write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")


def partition(
    findings: Sequence[Finding], baseline: set[str]
) -> tuple[list[Finding], int]:
    """Split findings into (new, count-of-baselined).

    A finding with no fingerprint (defensive; the engine always stamps
    one) is treated as new.
    """
    new = [f for f in findings if not f.fingerprint or f.fingerprint not in baseline]
    return new, len(findings) - len(new)
