"""Core machinery of ``reprolint``: findings, pragmas, and the runner.

A :class:`Checker` walks one parsed module (wrapped in a
:class:`LintContext`) and yields :class:`Finding` records.  The engine
is responsible for everything rule-independent: discovering files,
mapping paths to dotted module names, parsing suppression pragmas from
the token stream (so pragmas inside string literals are *not* honoured),
filtering findings against them, flagging pragmas that no longer
suppress anything (**LNT002**), and stamping every surviving finding
with a stable fingerprint for ``--baseline`` files and SARIF output.

Since the v2 (dataflow) rewrite the engine also runs in *project mode*:
:func:`lint_paths` first scans every file into a
:class:`~repro.lint.facts.ProjectFacts` snapshot (import graph,
hot-module manifest, rebuild-caller closure) and hands it to each
file's :class:`LintContext`, optionally fanning files out over worker
processes (``jobs > 1``).  Flow-sensitive rules get per-scope
control-flow/taint analyses from :meth:`LintContext.flow`, computed
lazily and cached.

Pragma grammar (one per comment)::

    # lint: allow-<name>[,<name>...] -- <reason>

``<name>`` is a rule id (``det002``) or its alias (``wallclock``).  The
reason is mandatory: a reasonless pragma suppresses nothing and is
itself reported as **LNT100**, so every exception to the determinism
contract is documented at the site that makes it.
"""

from __future__ import annotations

import ast
import hashlib
import io
import re
import tokenize
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from pathlib import Path
from collections.abc import Iterable, Iterator, Sequence

from repro.lint.facts import ProjectFacts, build_facts, default_facts

__all__ = [
    "Finding",
    "Suppression",
    "LintContext",
    "Checker",
    "lint_source",
    "lint_paths",
    "iter_python_files",
    "module_name_for",
]

_PRAGMA_RE = re.compile(r"#\s*lint:\s*allow-(?P<names>[A-Za-z0-9_,-]+)(?:\s*--\s*(?P<reason>\S.*))?")

#: Engine-level rule ids that are not Checker subclasses but are still
#: addressable from pragmas (``# lint: allow-lnt002 -- ...``).
_ENGINE_ALIASES = {"lnt002": "lnt002", "unused-suppression": "lnt002"}


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    #: Last physical line of the flagged statement — pragmas anywhere in
    #: ``[line, end_line]`` suppress the finding.  Not part of rendering.
    end_line: int = 0
    #: Stable identity for baselines/SARIF: hashes the module name, rule
    #: and normalised source line (not the line *number*), so findings
    #: survive unrelated edits above them.  Stamped by the engine.
    fingerprint: str = ""

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass(frozen=True)
class Suppression:
    """A parsed ``# lint: allow-...`` pragma."""

    line: int
    names: tuple[str, ...]
    reason: str | None

    def covers(self, finding: Finding, aliases: dict[str, str]) -> bool:
        """Whether this pragma (if reasoned) silences ``finding``."""
        if not self.reason:
            return False
        if not (finding.line <= self.line <= max(finding.end_line, finding.line)):
            return False
        return any(aliases.get(name, name) == finding.rule.lower() for name in self.names)


def _parse_suppressions(source: str) -> list[Suppression]:
    """Extract pragmas from real COMMENT tokens only."""
    out: list[Suppression] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return out
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _PRAGMA_RE.search(tok.string)
        if match is None:
            continue
        names = tuple(
            part.removeprefix("allow-").lower()
            for part in match.group("names").split(",")
            if part
        )
        out.append(Suppression(line=tok.start[0], names=names, reason=match.group("reason")))
    return out


def module_name_for(path: Path) -> str:
    """Dotted module name for ``path`` (``""`` when unclassifiable).

    ``src/repro/dht/chord.py`` → ``repro.dht.chord``;
    ``tests/test_chord.py`` → ``tests.test_chord``; package
    ``__init__.py`` files name the package itself.  ``benchmarks/`` and
    ``examples/`` anchor the same way so scope rules can single them
    out.
    """
    parts = list(path.parts)
    for anchor in ("repro", "tests", "benchmarks", "examples"):
        if anchor in parts:
            rel = parts[parts.index(anchor):]
            if rel[-1].endswith(".py"):
                rel[-1] = rel[-1][:-3]
            if rel[-1] == "__init__":
                rel = rel[:-1]
            return ".".join(rel)
    return path.stem


class LintContext:
    """Everything a checker needs to know about one module."""

    def __init__(
        self,
        path: Path,
        source: str,
        tree: ast.Module,
        facts: ProjectFacts | None = None,
    ) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.module = module_name_for(path)
        self.facts = facts if facts is not None else default_facts()
        self.suppressions = _parse_suppressions(source)
        self._parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent
        self._flows: dict[int, object] = {}
        self._summaries: dict[str, frozenset[str]] | None = None

    # ------------------------------------------------------------------
    @property
    def in_tests(self) -> bool:
        return self.module.startswith(("tests.", "benchmarks.")) or self.module in (
            "tests", "benchmarks",
        )

    @property
    def relaxed(self) -> bool:
        """Test-grade scope: tests, benchmarks and examples."""
        return self.in_tests or self.module.startswith("examples.") or (
            self.module == "examples"
        )

    def in_package(self, *prefixes: str) -> bool:
        """Whether the module sits inside any of the dotted ``prefixes``."""
        return any(
            self.module == p or self.module.startswith(p + ".") for p in prefixes
        )

    @property
    def hot(self) -> bool:
        """Whether this module is on the hot path (facts manifest)."""
        return self.facts.is_hot(self.module)

    # ------------------------------------------------------------------
    def parent(self, node: ast.AST) -> ast.AST | None:
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Walk from ``node``'s parent up to the module root."""
        cur = self._parents.get(node)
        while cur is not None:
            yield cur
            cur = self._parents.get(cur)

    def enclosing_class(self, node: ast.AST) -> str | None:
        """Name of the class whose body (transitively) holds ``node``."""
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, ast.ClassDef):
                return ancestor.name
        return None

    # ------------------------------------------------------------------
    # flow-sensitive analyses (lazy, cached per scope)
    # ------------------------------------------------------------------
    @property
    def summaries(self) -> dict[str, frozenset[str]]:
        """Per-module taint summaries of every function's return value."""
        if self._summaries is None:
            from repro.lint.dataflow.taint import module_summaries

            self._summaries = module_summaries(self.tree)
        return self._summaries

    def flow(self, scope: ast.AST):
        """The cached :class:`~repro.lint.dataflow.taint.FunctionFlow`
        for one function scope (or the module itself)."""
        key = id(scope)
        if key not in self._flows:
            from repro.lint.dataflow.taint import FunctionFlow

            self_class = None
            if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self_class = self.enclosing_class(scope)
            self._flows[key] = FunctionFlow(scope, self.summaries, self_class)
        return self._flows[key]

    def scopes(self) -> list[ast.AST]:
        """The module plus every (nested) function definition."""
        out: list[ast.AST] = [self.tree]
        out += [
            n for n in ast.walk(self.tree)
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        return out

    def finding(self, node: ast.AST, rule: str, message: str) -> Finding:
        """Build a finding anchored at ``node`` (span-aware for pragmas)."""
        line = getattr(node, "lineno", 1)
        return Finding(
            path=str(self.path),
            line=line,
            col=getattr(node, "col_offset", 0) + 1,
            rule=rule,
            message=message,
            end_line=getattr(node, "end_lineno", None) or line,
        )


def dotted_name(node: ast.AST) -> str | None:
    """Render an ``a.b.c`` attribute/name chain (None for anything else)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class Checker:
    """Base class: one rule, one AST pass.

    Subclasses set ``rule`` (the id findings carry) and ``alias`` (the
    short pragma name), restrict themselves via :meth:`applies`, and
    yield findings from :meth:`check`.  To add a checker: subclass,
    implement both methods, append an instance to
    :data:`repro.lint.checkers.ALL_CHECKERS` (see DESIGN.md §8 and the
    rule-authoring guide in docs/DEVELOPMENT.md).
    """

    rule: str = ""
    alias: str = ""

    def applies(self, ctx: LintContext) -> bool:
        return True

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        raise NotImplementedError
        yield  # pragma: no cover - makes the override contract a generator


def _alias_table(checkers: Sequence[Checker]) -> dict[str, str]:
    aliases = {c.alias: c.rule.lower() for c in checkers if c.alias}
    aliases.update({c.rule.lower(): c.rule.lower() for c in checkers})
    aliases.update(_ENGINE_ALIASES)
    return aliases


def _normalised_line(source_lines: list[str], line: int) -> str:
    if 1 <= line <= len(source_lines):
        return " ".join(source_lines[line - 1].split())
    return ""


def _stamp_fingerprints(
    findings: list[Finding], module: str, source: str
) -> list[Finding]:
    """Attach stable identities: hash of module, rule, normalised line
    text and an occurrence index (for identical lines)."""
    lines = source.splitlines()
    seen: dict[tuple[str, str], int] = {}
    out = []
    for f in sorted(findings, key=lambda f: (f.line, f.col, f.rule)):
        text = _normalised_line(lines, f.line)
        key = (f.rule, text)
        occurrence = seen.get(key, 0)
        seen[key] = occurrence + 1
        digest = hashlib.sha256(
            f"{module}\x1f{f.rule}\x1f{text}\x1f{occurrence}".encode()
        ).hexdigest()[:20]
        out.append(replace(f, fingerprint=digest))
    return out


def lint_source(
    path: Path | str,
    source: str,
    checkers: Sequence[Checker],
    facts: ProjectFacts | None = None,
) -> list[Finding]:
    """Lint one module's source; returns unsuppressed findings.

    Syntax errors surface as a single ``LNT000`` finding.  Reasonless
    pragmas each produce an ``LNT100`` finding and suppress nothing; a
    reasoned pragma that suppresses nothing produces an ``LNT002``
    (unused suppression) so stale exceptions get cleaned up — but only
    when every rule it names is active in this run, so ``--select``
    subsets never misreport.
    """
    path = Path(path)
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Finding(
                path=str(path), line=exc.lineno or 1, col=(exc.offset or 0) + 1,
                rule="LNT000", message=f"syntax error: {exc.msg}",
            )
        ]
    ctx = LintContext(path, source, tree, facts)
    aliases = _alias_table(checkers)
    active_rules = {c.rule.lower() for c in checkers} | set(_ENGINE_ALIASES.values())
    raw: list[Finding] = []
    for checker in checkers:
        if checker.applies(ctx):
            raw.extend(checker.check(ctx))
    kept = []
    used: set[int] = set()
    for f in raw:
        covering = [s for s in ctx.suppressions if s.covers(f, aliases)]
        if covering:
            used.update(id(s) for s in covering)
        else:
            kept.append(f)
    for sup in ctx.suppressions:
        if not sup.reason:
            kept.append(
                Finding(
                    path=str(path), line=sup.line, col=1, rule="LNT100",
                    message=(
                        "suppression pragma needs a reason: "
                        "# lint: allow-" + ",".join(sup.names) + " -- <why>"
                    ),
                    end_line=sup.line,
                )
            )
        elif id(sup) not in used and all(
            aliases.get(name, name) in active_rules for name in sup.names
        ):
            lnt002 = Finding(
                path=str(path), line=sup.line, col=1, rule="LNT002",
                message=(
                    "unused suppression: `# lint: allow-"
                    + ",".join(sup.names)
                    + "` no longer matches any finding — delete the pragma"
                ),
                end_line=sup.line,
            )
            # LNT002 is itself suppressible (e.g. pragmas documenting
            # platform-specific rules that fire elsewhere).
            if not any(s.covers(lnt002, aliases) for s in ctx.suppressions):
                kept.append(lnt002)
    kept = _stamp_fingerprints(kept, ctx.module, source)
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return kept


def iter_python_files(paths: Iterable[Path | str]) -> Iterator[Path]:
    """Yield ``*.py`` files under ``paths`` in sorted, deterministic order."""
    for entry in paths:
        p = Path(entry)
        if p.is_dir():
            yield from sorted(q for q in p.rglob("*.py") if q.is_file())
        elif p.suffix == ".py":
            yield p


def _read(path: Path) -> str:
    return path.read_text(encoding="utf-8")


def project_facts(files: Sequence[Path]) -> ProjectFacts:
    """Build the cross-module facts snapshot for one run."""
    return build_facts((p, _read(p)) for p in files)


def _lint_one(
    args: tuple[str, Sequence[Checker], ProjectFacts],
) -> list[Finding]:
    """Worker body for parallel runs (must stay module-level picklable)."""
    path_str, checkers, facts = args
    path = Path(path_str)
    return lint_source(path, _read(path), checkers, facts)


def lint_paths(
    paths: Iterable[Path | str],
    checkers: Sequence[Checker],
    *,
    jobs: int = 1,
) -> list[Finding]:
    """Lint every python file under ``paths``.

    Builds one :class:`~repro.lint.facts.ProjectFacts` over the whole
    file set first (phase one), then runs the per-file rule passes —
    serially, or over ``jobs`` worker processes.  Output order is
    deterministic either way.
    """
    files = list(iter_python_files(paths))
    facts = project_facts(files)
    findings: list[Finding] = []
    if jobs > 1 and len(files) > 1:
        tasks = [(str(f), checkers, facts) for f in files]
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            for result in pool.map(_lint_one, tasks, chunksize=8):
                findings.extend(result)
    else:
        for file in files:
            findings.extend(lint_source(file, _read(file), checkers, facts))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings
