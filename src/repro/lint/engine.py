"""Core machinery of ``reprolint``: findings, pragmas, and the runner.

A :class:`Checker` walks one parsed module (wrapped in a
:class:`LintContext`) and yields :class:`Finding` records.  The engine
is responsible for everything rule-independent: discovering files,
mapping paths to dotted module names, parsing suppression pragmas from
the token stream (so pragmas inside string literals are *not* honoured),
and filtering findings against them.

Pragma grammar (one per comment)::

    # lint: allow-<name>[,<name>...] -- <reason>

``<name>`` is a rule id (``det002``) or its alias (``wallclock``).  The
reason is mandatory: a reasonless pragma suppresses nothing and is
itself reported as **LNT100**, so every exception to the determinism
contract is documented at the site that makes it.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from collections.abc import Iterable, Iterator, Sequence

__all__ = [
    "Finding",
    "Suppression",
    "LintContext",
    "Checker",
    "lint_source",
    "lint_paths",
    "iter_python_files",
]

_PRAGMA_RE = re.compile(r"#\s*lint:\s*allow-(?P<names>[A-Za-z0-9_,-]+)(?:\s*--\s*(?P<reason>\S.*))?")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    #: Last physical line of the flagged statement — pragmas anywhere in
    #: ``[line, end_line]`` suppress the finding.  Not part of rendering.
    end_line: int = 0

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass(frozen=True)
class Suppression:
    """A parsed ``# lint: allow-...`` pragma."""

    line: int
    names: tuple[str, ...]
    reason: str | None

    def covers(self, finding: Finding, aliases: dict[str, str]) -> bool:
        """Whether this pragma (if reasoned) silences ``finding``."""
        if not self.reason:
            return False
        if not (finding.line <= self.line <= max(finding.end_line, finding.line)):
            return False
        return any(aliases.get(name, name) == finding.rule.lower() for name in self.names)


def _parse_suppressions(source: str) -> list[Suppression]:
    """Extract pragmas from real COMMENT tokens only."""
    out: list[Suppression] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return out
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _PRAGMA_RE.search(tok.string)
        if match is None:
            continue
        names = tuple(
            part.removeprefix("allow-").lower()
            for part in match.group("names").split(",")
            if part
        )
        out.append(Suppression(line=tok.start[0], names=names, reason=match.group("reason")))
    return out


def module_name_for(path: Path) -> str:
    """Dotted module name for ``path`` (``""`` when unclassifiable).

    ``src/repro/dht/chord.py`` → ``repro.dht.chord``;
    ``tests/test_chord.py`` → ``tests.test_chord``; package
    ``__init__.py`` files name the package itself.
    """
    parts = list(path.parts)
    for anchor in ("repro", "tests", "benchmarks"):
        if anchor in parts:
            rel = parts[parts.index(anchor):]
            if rel[-1].endswith(".py"):
                rel[-1] = rel[-1][:-3]
            if rel[-1] == "__init__":
                rel = rel[:-1]
            return ".".join(rel)
    return path.stem


class LintContext:
    """Everything a checker needs to know about one module."""

    def __init__(self, path: Path, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.module = module_name_for(path)
        self.suppressions = _parse_suppressions(source)
        self._parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent

    # ------------------------------------------------------------------
    @property
    def in_tests(self) -> bool:
        return self.module.startswith(("tests.", "benchmarks.")) or self.module in (
            "tests", "benchmarks",
        )

    def in_package(self, *prefixes: str) -> bool:
        """Whether the module sits inside any of the dotted ``prefixes``."""
        return any(
            self.module == p or self.module.startswith(p + ".") for p in prefixes
        )

    # ------------------------------------------------------------------
    def parent(self, node: ast.AST) -> ast.AST | None:
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Walk from ``node``'s parent up to the module root."""
        cur = self._parents.get(node)
        while cur is not None:
            yield cur
            cur = self._parents.get(cur)

    def finding(self, node: ast.AST, rule: str, message: str) -> Finding:
        """Build a finding anchored at ``node`` (span-aware for pragmas)."""
        line = getattr(node, "lineno", 1)
        return Finding(
            path=str(self.path),
            line=line,
            col=getattr(node, "col_offset", 0) + 1,
            rule=rule,
            message=message,
            end_line=getattr(node, "end_lineno", None) or line,
        )


def dotted_name(node: ast.AST) -> str | None:
    """Render an ``a.b.c`` attribute/name chain (None for anything else)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class Checker:
    """Base class: one rule, one AST pass.

    Subclasses set ``rule`` (the id findings carry) and ``alias`` (the
    short pragma name), restrict themselves via :meth:`applies`, and
    yield findings from :meth:`check`.  To add a checker: subclass,
    implement both methods, append an instance to
    :data:`repro.lint.checkers.ALL_CHECKERS` (see DESIGN.md §8).
    """

    rule: str = ""
    alias: str = ""

    def applies(self, ctx: LintContext) -> bool:
        return True

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        raise NotImplementedError
        yield  # pragma: no cover - makes the override contract a generator


def _alias_table(checkers: Sequence[Checker]) -> dict[str, str]:
    aliases = {c.alias: c.rule.lower() for c in checkers if c.alias}
    aliases.update({c.rule.lower(): c.rule.lower() for c in checkers})
    return aliases


def lint_source(
    path: Path | str,
    source: str,
    checkers: Sequence[Checker],
) -> list[Finding]:
    """Lint one module's source; returns unsuppressed findings.

    Syntax errors surface as a single ``LNT000`` finding.  Reasonless
    pragmas each produce an ``LNT100`` finding and suppress nothing.
    """
    path = Path(path)
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Finding(
                path=str(path), line=exc.lineno or 1, col=(exc.offset or 0) + 1,
                rule="LNT000", message=f"syntax error: {exc.msg}",
            )
        ]
    ctx = LintContext(path, source, tree)
    aliases = _alias_table(checkers)
    raw: list[Finding] = []
    for checker in checkers:
        if checker.applies(ctx):
            raw.extend(checker.check(ctx))
    kept = [
        f for f in raw
        if not any(s.covers(f, aliases) for s in ctx.suppressions)
    ]
    for sup in ctx.suppressions:
        if not sup.reason:
            kept.append(
                Finding(
                    path=str(path), line=sup.line, col=1, rule="LNT100",
                    message=(
                        "suppression pragma needs a reason: "
                        "# lint: allow-" + ",".join(sup.names) + " -- <why>"
                    ),
                    end_line=sup.line,
                )
            )
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return kept


def iter_python_files(paths: Iterable[Path | str]) -> Iterator[Path]:
    """Yield ``*.py`` files under ``paths`` in sorted, deterministic order."""
    for entry in paths:
        p = Path(entry)
        if p.is_dir():
            yield from sorted(q for q in p.rglob("*.py") if q.is_file())
        elif p.suffix == ".py":
            yield p


def lint_paths(
    paths: Iterable[Path | str],
    checkers: Sequence[Checker],
) -> list[Finding]:
    """Lint every python file under ``paths``."""
    findings: list[Finding] = []
    for file in iter_python_files(paths):
        findings.extend(
            lint_source(file, file.read_text(encoding="utf-8"), checkers)
        )
    return findings
