"""Cross-module facts for ``reprolint`` (phase one, project scope).

Single-file checkers cannot know that ``repro.dht.chord`` sits on the
batch engine's hot path, or that ``add_peer`` triggers a full ring
rebuild two calls down.  A :class:`ProjectFacts` snapshot — built once
per run from every file's AST, before any rule fires — carries exactly
the whole-program knowledge the rule families need:

* the **import graph** restricted to in-repo modules;
* the **hot-module manifest** (``repro.dht``/``repro.engine``/
  ``repro.cache``/``repro.core``) and its import closure, so PERF rules
  scope by hotness instead of hard-coding module lists;
* **project classes** (and which are dataclasses), so PERF001 flags
  allocation of *our* per-peer record types, not arbitrary callables;
* **rebuild callers** — the transitive name set of functions/methods
  whose body reaches a ``_rebuild``/``rebuild`` call, so PERF002 can
  flag a per-element mutation loop without seeing the callee's body.

The snapshot is a frozen dataclass of plain strings, so it pickles
cleanly into ``--jobs`` worker processes.  When no project context is
available (single-file ``lint_source`` calls, unit fixtures),
:func:`default_facts` supplies conservative name-based fallbacks.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Iterable

__all__ = ["ProjectFacts", "build_facts", "default_facts", "HOT_MANIFEST"]

#: Packages whose modules are on the routing/caching hot path.  The
#: ROADMAP's million-peer scale-out is gated on these staying free of
#: per-peer Python objects and per-element rebuilds.
HOT_MANIFEST: tuple[str, ...] = (
    "repro.dht",
    "repro.engine",
    "repro.cache",
    "repro.core",
    "repro.scale",
)

#: Method names that rebuild full routing state, and the singular
#: mutators known to reach them; the seed of the transitive closure and
#: the fallback when no project scan ran.
_REBUILD_SEEDS = frozenset({"_rebuild", "rebuild", "rebuild_all"})
_FALLBACK_MUTATORS = frozenset(
    {"add_peer", "remove_peer", "revive_peer", "fail_peer"}
)


@dataclass(frozen=True)
class ProjectFacts:
    """Whole-project knowledge shared by every checker in one run."""

    #: module → in-repo modules it imports.
    import_graph: dict[str, frozenset[str]] = field(default_factory=dict)
    #: Every class defined anywhere in the linted tree.
    project_classes: frozenset[str] = frozenset()
    #: The subset of ``project_classes`` decorated ``@dataclass``.
    dataclass_names: frozenset[str] = frozenset()
    #: Function/method names whose bodies (transitively, by name) reach
    #: a ``_rebuild``-family call.
    rebuild_callers: frozenset[str] = frozenset(_REBUILD_SEEDS | _FALLBACK_MUTATORS)
    #: Dotted package prefixes considered hot.
    hot_manifest: tuple[str, ...] = HOT_MANIFEST

    # ------------------------------------------------------------------
    def is_hot(self, module: str) -> bool:
        """Whether ``module`` falls under the hot manifest."""
        return any(
            module == p or module.startswith(p + ".") for p in self.hot_manifest
        )

    def hot_closure(self) -> frozenset[str]:
        """Hot-manifest modules plus everything they (transitively)
        import in-repo — the full set of code reachable from a hot
        entry point."""
        seeds = [m for m in self.import_graph if self.is_hot(m)]
        seen: set[str] = set(seeds)
        stack = list(seeds)
        while stack:
            for dep in self.import_graph.get(stack.pop(), ()):
                if dep not in seen:
                    seen.add(dep)
                    stack.append(dep)
        return frozenset(seen)

    def importers_of(self, module: str) -> frozenset[str]:
        """Modules that import ``module`` directly."""
        return frozenset(
            m for m, deps in self.import_graph.items() if module in deps
        )


def default_facts() -> ProjectFacts:
    """Conservative facts for single-file analysis (unit fixtures)."""
    return ProjectFacts()


# ----------------------------------------------------------------------
# construction
# ----------------------------------------------------------------------
def _imports_of(tree: ast.Module) -> set[str]:
    out: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            out.update(alias.name for alias in node.names)
        elif isinstance(node, ast.ImportFrom) and node.module:
            out.add(node.module)
    return out


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = target.attr if isinstance(target, ast.Attribute) else getattr(target, "id", "")
        if name == "dataclass":
            return True
    return False


def _called_names(func: ast.AST) -> set[str]:
    """Leaf names of every call in ``func``'s body (``self.add_peer`` →
    ``add_peer``)."""
    out: set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            target = node.func
            if isinstance(target, ast.Attribute):
                out.add(target.attr)
            elif isinstance(target, ast.Name):
                out.add(target.id)
    return out


def build_facts(
    files: Iterable[tuple[Path | str, str]],
    *,
    hot_manifest: tuple[str, ...] = HOT_MANIFEST,
) -> ProjectFacts:
    """Scan ``(path, source)`` pairs into a :class:`ProjectFacts`.

    Unparseable files are skipped here — the per-file lint pass reports
    their syntax error as LNT000.
    """
    from repro.lint.engine import module_name_for  # cycle-free at call time

    import_graph: dict[str, frozenset[str]] = {}
    classes: set[str] = set()
    dataclasses: set[str] = set()
    calls_by_func: dict[str, set[str]] = {}

    trees: list[tuple[str, ast.Module]] = []
    for path, source in files:
        try:
            tree = ast.parse(source)
        except SyntaxError:
            continue
        trees.append((module_name_for(Path(path)), tree))

    module_names = {name for name, _ in trees}
    for name, tree in trees:
        deps = set()
        for imported in _imports_of(tree):
            # Longest in-repo prefix wins: ``from repro.dht.chord import X``
            # depends on ``repro.dht.chord``; bare ``repro.dht`` likewise.
            probe = imported
            while probe:
                if probe in module_names:
                    deps.add(probe)
                    break
                probe = probe.rpartition(".")[0]
        import_graph[name] = frozenset(deps - {name})

        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                classes.add(node.name)
                if _is_dataclass_decorated(node):
                    dataclasses.add(node.name)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                calls_by_func.setdefault(node.name, set()).update(_called_names(node))

    # Transitive closure by callee *name*: sound enough for PERF002's
    # purpose (flagging per-element mutation loops) and cheap.
    rebuilders: set[str] = set(_REBUILD_SEEDS)
    changed = True
    while changed:
        changed = False
        for fname, callees in calls_by_func.items():
            if fname not in rebuilders and callees & rebuilders:
                rebuilders.add(fname)
                changed = True

    return ProjectFacts(
        import_graph=import_graph,
        project_classes=frozenset(classes),
        dataclass_names=frozenset(dataclasses),
        rebuild_callers=frozenset(rebuilders),
        hot_manifest=hot_manifest,
    )
