"""``reprolint``: dataflow-aware determinism & performance analysis.

The repository's reproducibility contract (DESIGN.md §8) is a set of
*conventions* — all randomness flows through
:func:`repro.util.rng.make_rng`, no wall-clock reaches the simulation
core, iteration order never leaks from an unordered container into an
artifact, metrics stay off the hot path unless attached, and the hot
packages keep their struct-of-arrays shape.  Conventions rot; this
package checks them mechanically::

    python -m repro.lint src tests benchmarks examples --jobs auto

Since v2 the analyzer is two-phase.  Phase one scans every file into a
:class:`~repro.lint.facts.ProjectFacts` snapshot (import graph,
hot-module manifest, dataclass registry, rebuild-caller closure).
Phase two runs per-file rule passes — flow-sensitive ones ride the
:mod:`repro.lint.dataflow` engine (per-function CFGs, reaching
definitions, and a provenance taint lattice), so ``s = sorted(s)``
kills a finding and ``t = s; return list(t)`` still raises one.

Rule catalog
------------

========  ==============  ====================================================
Rule      Pragma alias    What it bans
========  ==============  ====================================================
DET001    rng             direct RNG construction/seeding outside
                          ``repro/util/rng.py`` (test-grade code may seed
                          explicitly)
DET002    wallclock       wall-clock reads inside ``sim``/``core``/``dht``/
                          ``faults``/``experiments``
DET003    unsorted        unordered ``set``/``dict`` iteration whose order can
                          reach a return value, artifact, or RNG choice —
                          tracked through assignments and helper returns
MET001    metrics-guard   registry/span calls on ``dht``/``sim`` hot paths not
                          behind an ``is None``/truthiness guard
INT001    interval        raw chained modular comparisons in ``core``/``dht``
                          that bypass ``repro.util.intervals``
PERF001   loop-alloc      per-element record-object allocation in loops in
                          hot-manifest modules (SoA contract)
PERF002   churn-rebuild   per-peer routing-state rebuilds inside membership
                          churn loops (use the batch mutators)
PERF003   dtype           dtype-less numpy constructors in hot-manifest
                          modules (implicit int64/float64 widening)
FLT001    float-order     order-sensitive float accumulation over unordered
                          iterables (sort or ``math.fsum``)
FRZ001    frozen          ``object.__setattr__`` on frozen configs outside
                          construction
EXC001    broad-except    ``except``/``except Exception`` swallowing errors in
                          protocol/sim code
LNT000    —               syntax error (stops all other rules for the file)
LNT100    —               suppression pragma without a reason (the pragma is
                          ignored until a reason is given)
LNT002    —               reasoned pragma that no longer suppresses anything
========  ==============  ====================================================

Findings are suppressed inline with a *reasoned* pragma on any physical
line of the offending statement::

    t0 = time.perf_counter()  # lint: allow-wallclock -- phase timing, reported under the nondeterministic "phases" key

Toolchain: ``--jobs N|auto`` fans the per-file phase over worker
processes, ``--sarif PATH`` emits SARIF 2.1.0 for code scanning,
``--baseline``/``--write-baseline`` adopt the linter incrementally via
stable fingerprints, ``--explain RULE`` prints a rule's documentation,
and ``--max-seconds`` enforces the CI runtime budget.  The CLI exits
nonzero on any unsuppressed finding, so CI can gate on it.
"""

from repro.lint.engine import Checker, Finding, LintContext, lint_paths, lint_source
from repro.lint.checkers import ALL_CHECKERS
from repro.lint.facts import ProjectFacts, build_facts

__all__ = [
    "Checker",
    "Finding",
    "LintContext",
    "ProjectFacts",
    "build_facts",
    "lint_paths",
    "lint_source",
    "ALL_CHECKERS",
]
