"""``reprolint``: AST-based determinism & simulation-safety analysis.

The repository's reproducibility contract (DESIGN.md §8) is a set of
*conventions* — all randomness flows through
:func:`repro.util.rng.make_rng`, no wall-clock reaches the simulation
core, iteration order never leaks from an unordered container into an
artifact, metrics stay off the hot path unless attached, and modular
interval tests go through :mod:`repro.util.intervals`.  Conventions rot;
this package checks them mechanically::

    python -m repro.lint src tests

Rule catalog
------------

========  ==============  ====================================================
Rule      Pragma alias    What it bans
========  ==============  ====================================================
DET001    rng             direct RNG construction/seeding outside
                          ``repro/util/rng.py`` (tests may seed explicitly)
DET002    wallclock       wall-clock reads inside ``sim``/``core``/``dht``/
                          ``faults``/``experiments``
DET003    unsorted        unordered ``set``/``dict`` iteration whose order can
                          reach a return value, artifact, or RNG choice
MET001    metrics-guard   registry/span calls on ``dht``/``sim`` hot paths not
                          behind an ``is None``/truthiness guard
INT001    interval        raw chained modular comparisons in ``core``/``dht``
                          that bypass ``repro.util.intervals``
LNT100    —               suppression pragma without a reason (the pragma is
                          ignored until a reason is given)
========  ==============  ====================================================

Findings are suppressed inline with a *reasoned* pragma on any physical
line of the offending statement::

    t0 = time.perf_counter()  # lint: allow-wallclock -- phase timing, reported under the nondeterministic "phases" key

The CLI exits nonzero on any unsuppressed finding, so CI can gate on it.
"""

from repro.lint.engine import Checker, Finding, LintContext, lint_paths, lint_source
from repro.lint.checkers import ALL_CHECKERS

__all__ = [
    "Checker",
    "Finding",
    "LintContext",
    "lint_paths",
    "lint_source",
    "ALL_CHECKERS",
]
