"""Numeric and robustness contracts: FLT001, FRZ001, EXC001.

**FLT001** closes the gap DET003 deliberately leaves open: accumulation
loops over unordered iterables are order-*insensitive* for ints, but
float addition is non-associative, so ``sum`` over a set of floats is a
seed-stable-looking nondeterminism bomb — the result changes with hash
order.  The rule reuses the dataflow taint engine to find unordered
iterables and simple syntactic evidence to decide "this accumulates
floats".

**FRZ001** protects the frozen-config contract: experiment configs are
frozen dataclasses precisely so a run's parameters cannot drift
mid-run; ``object.__setattr__`` punches through that freeze and is only
legitimate inside construction (``__init__``/``__post_init__``/
``__setstate__``).

**EXC001** bans broad exception swallowing in protocol/simulation
code: an ``except Exception: pass`` around a routing step converts a
logic bug into silent wrong results, which in a reproducibility study
is the worst failure mode available.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.dataflow.cfg import ForBind
from repro.lint.dataflow.taint import SET_ORDER, VIEW_ORDER
from repro.lint.engine import Checker, Finding, LintContext, dotted_name

__all__ = ["FloatAccumulationChecker", "FrozenMutationChecker", "BroadExceptChecker"]


def _has_float_evidence(expr: ast.AST) -> bool:
    """Whether ``expr`` plausibly produces a float (literal, division,
    ``float()``/``math.*`` call, or a ``*_ms``-style name)."""
    for node in ast.walk(expr):
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            return True
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
            return True
        if isinstance(node, ast.Call):
            dotted = dotted_name(node.func) or ""
            if dotted == "float" or dotted.startswith("math."):
                return True
    return False


class FloatAccumulationChecker(Checker):
    """FLT001: float accumulation over unordered iterables is
    order-sensitive.

    Two shapes, both requiring the iterable to carry ``set-order`` or
    ``view-order`` taint (dataflow engine) *and* the accumulated term
    to show float evidence (a float literal, a division, ``float()``,
    or a ``math.*`` call):

    1. ``sum(<comp> for x in <unordered>)`` — the one-liner;
    2. ``acc += <float term>`` inside ``for x in <unordered>`` where
       ``acc`` was initialised from a float expression.

    Fix by sorting the iterable or switching to ``math.fsum`` (exact
    and order-independent), either of which silences the rule.
    """

    rule = "FLT001"
    alias = "float-order"

    def applies(self, ctx: LintContext) -> bool:
        return ctx.in_package(
            "repro.sim", "repro.core", "repro.dht", "repro.faults",
            "repro.topology", "repro.metrics", "repro.util", "repro.cache",
            "repro.engine", "repro.replication", "repro.serve",
            "repro.loadgen",
        )

    @staticmethod
    def _unordered(taints) -> bool:
        return any(t.label in (SET_ORDER, VIEW_ORDER) for t in taints)

    def _float_locals(self, scope: ast.AST) -> set[str]:
        out: set[str] = set()
        for node in ast.walk(scope):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name) and _has_float_evidence(node.value):
                    out.add(target.id)
        return out

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for scope in ctx.scopes():
            flow = ctx.flow(scope)
            float_locals = self._float_locals(scope)
            for element in flow.cfg.elements():
                # Shape 2: ``acc += term`` under a for-over-unordered.
                if isinstance(element, ast.AugAssign) and isinstance(
                    element.op, ast.Add
                ):
                    target = element.target
                    accumulates_float = _has_float_evidence(element.value) or (
                        isinstance(target, ast.Name) and target.id in float_locals
                    )
                    if accumulates_float and self._in_unordered_loop(
                        ctx, flow, element
                    ):
                        yield ctx.finding(
                            element, self.rule,
                            "float `+=` over an unordered iterable is "
                            "order-sensitive; sort the iterable or use "
                            "math.fsum",
                        )
                # Shape 1: ``sum(... for x in <unordered>)``.
                for root in _element_exprs(element):
                    for node in ast.walk(root):
                        if not (
                            isinstance(node, ast.Call)
                            and dotted_name(node.func) == "sum"
                            and node.args
                        ):
                            continue
                        arg = node.args[0]
                        if isinstance(arg, (ast.GeneratorExp, ast.ListComp)):
                            over_unordered = any(
                                self._unordered(flow.taint_of(g.iter, element))
                                for g in arg.generators
                            )
                            if over_unordered and _has_float_evidence(arg.elt):
                                yield ctx.finding(
                                    node, self.rule,
                                    "`sum(...)` of floats over an unordered "
                                    "iterable is order-sensitive; sort the "
                                    "iterable or use math.fsum",
                                )

    def _in_unordered_loop(self, ctx: LintContext, flow, element) -> bool:
        """Whether ``element`` sits in a for-loop over a tainted iterable."""
        for ancestor in ctx.ancestors(element):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return False
            if isinstance(ancestor, (ast.For, ast.AsyncFor)):
                for el in flow.cfg.elements():
                    if isinstance(el, ForBind) and el.node is ancestor:
                        return self._unordered(flow.taint_of(ancestor.iter, el))
        return False


def _element_exprs(element) -> list[ast.AST]:
    if isinstance(element, ast.stmt) and not isinstance(
        element, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
    ):
        return [c for c in ast.iter_child_nodes(element) if isinstance(c, ast.expr)]
    return []


_CONSTRUCTION_METHODS = frozenset({"__init__", "__post_init__", "__setstate__"})


class FrozenMutationChecker(Checker):
    """FRZ001: no ``object.__setattr__`` on frozen configs after
    construction.

    Frozen dataclasses freeze the run's parameters; the only sanctioned
    bypass is the construction window (``__init__``/``__post_init__``/
    ``__setstate__``) where derived fields are materialised.  Anywhere
    else, ``object.__setattr__`` silently mutates what every consumer
    assumes is immutable — replace it with ``dataclasses.replace``.
    """

    rule = "FRZ001"
    alias = "frozen"

    def applies(self, ctx: LintContext) -> bool:
        return ctx.in_package("repro") and not ctx.relaxed

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and dotted_name(node.func) == "object.__setattr__"
            ):
                continue
            enclosing = next(
                (
                    a.name for a in ctx.ancestors(node)
                    if isinstance(a, (ast.FunctionDef, ast.AsyncFunctionDef))
                ),
                None,
            )
            if enclosing in _CONSTRUCTION_METHODS:
                continue
            yield ctx.finding(
                node, self.rule,
                "`object.__setattr__` mutates a frozen instance outside "
                "construction; use dataclasses.replace to derive a new config",
            )


class BroadExceptChecker(Checker):
    """EXC001: no broad exception swallowing in protocol/sim code.

    Flags ``except:``/``except Exception:``/``except BaseException:``
    (bare names or inside tuples) whose handler body does not re-raise.
    A handler that logs-and-raises is fine; a handler that swallows
    turns routing bugs into silently wrong results.  Catch the specific
    exceptions the protocol step can produce instead.
    """

    rule = "EXC001"
    alias = "broad-except"

    def applies(self, ctx: LintContext) -> bool:
        return ctx.in_package(
            "repro.sim", "repro.core", "repro.dht", "repro.faults",
            "repro.engine", "repro.replication", "repro.serve",
        )

    @staticmethod
    def _is_broad(type_node: ast.AST | None) -> bool:
        if type_node is None:
            return True  # bare except
        if isinstance(type_node, ast.Tuple):
            return any(BroadExceptChecker._is_broad(e) for e in type_node.elts)
        name = dotted_name(type_node) or ""
        return name.rsplit(".", 1)[-1] in ("Exception", "BaseException")

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not self._is_broad(node.type):
                continue
            if any(isinstance(sub, ast.Raise) for sub in ast.walk(node)):
                continue
            yield ctx.finding(
                node, self.rule,
                "broad exception handler swallows protocol errors; catch the "
                "specific exceptions this step can raise, or re-raise",
            )
