"""``reprolint`` command line: ``python -m repro.lint <paths...>``.

Exit codes: 0 — clean (every finding suppressed with a reasoned
pragma); 1 — unsuppressed findings; 2 — usage error (unknown rule id,
missing path, or no python files under the given paths).
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.lint.checkers import ALL_CHECKERS
from repro.lint.engine import iter_python_files, lint_source

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="AST-based determinism & simulation-safety analyzer "
        "for the HIERAS reproduction (rule catalog: DESIGN.md §8).",
    )
    parser.add_argument(
        "paths", nargs="+",
        help="files or directories to lint (e.g. `src tests`)",
    )
    parser.add_argument(
        "--select", default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="suppress the per-file progress summary line",
    )
    args = parser.parse_args(argv)

    checkers = ALL_CHECKERS
    if args.select:
        wanted = {r.strip().upper() for r in args.select.split(",") if r.strip()}
        checkers = tuple(c for c in ALL_CHECKERS if c.rule in wanted)
        unknown = wanted - {c.rule for c in ALL_CHECKERS}
        if unknown:
            parser.error(f"unknown rule id(s): {', '.join(sorted(unknown))}")

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        parser.error(f"no such path(s): {' '.join(missing)}")
    files = list(iter_python_files(args.paths))
    if not files:
        parser.error(f"no python files under: {' '.join(args.paths)}")

    findings = []
    for file in files:
        findings.extend(
            lint_source(file, Path(file).read_text(encoding="utf-8"), checkers)
        )
    for finding in findings:
        print(finding.render())
    if not args.quiet:
        status = f"{len(findings)} finding(s)" if findings else "clean"
        print(f"reprolint: {len(files)} file(s), {status}")
    return 1 if findings else 0
