"""``reprolint`` command line: ``python -m repro.lint <paths...>``.

Exit codes: 0 — clean (every finding suppressed with a reasoned
pragma or baselined); 1 — unsuppressed findings, or the ``--max-seconds``
budget was exceeded; 2 — usage error (unknown rule id, missing path,
no python files under the given paths, or an unreadable baseline).

The full toolchain::

    python -m repro.lint src tests benchmarks examples \
        --jobs auto \
        --sarif artifacts/reprolint.sarif \
        --baseline .reprolint-baseline.json \
        --max-seconds 30

    python -m repro.lint --explain DET003        # rule documentation
    python -m repro.lint src --write-baseline b.json   # adopt gradually
"""

from __future__ import annotations

import argparse
import os
import time
from pathlib import Path

from repro.lint.checkers import ALL_CHECKERS
from repro.lint.engine import iter_python_files, lint_paths

__all__ = ["main"]


def _resolve_jobs(spec: str) -> int:
    if spec == "auto":
        return max(1, (os.cpu_count() or 2) - 1)
    try:
        jobs = int(spec)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid --jobs value: {spec!r}")
    if jobs < 1:
        raise argparse.ArgumentTypeError("--jobs must be >= 1 (or 'auto')")
    return jobs


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="AST/dataflow determinism & performance-contract analyzer "
        "for the HIERAS reproduction (rule catalog: DESIGN.md §8).",
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (e.g. `src tests benchmarks examples`)",
    )
    parser.add_argument(
        "--select", default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--jobs", default="1", type=_resolve_jobs, metavar="N|auto",
        help="worker processes for per-file analysis (default 1; "
        "'auto' = cores-1)",
    )
    parser.add_argument(
        "--sarif", default=None, metavar="PATH",
        help="also write findings as SARIF 2.1.0 to PATH",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="suppress findings whose fingerprints appear in this "
        "baseline file",
    )
    parser.add_argument(
        "--write-baseline", default=None, metavar="PATH",
        help="write the run's findings as a new baseline and exit 0",
    )
    parser.add_argument(
        "--explain", default=None, metavar="RULE",
        help="print the documentation for one rule id (or pragma alias) "
        "and exit",
    )
    parser.add_argument(
        "--max-seconds", default=None, type=float, metavar="S",
        help="fail (exit 1) if the whole run takes longer than S seconds "
        "(CI runtime budget)",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="suppress the per-file progress summary line",
    )
    args = parser.parse_args(argv)

    if args.explain:
        from repro.lint.explain import explain, rule_catalog

        doc = explain(args.explain, ALL_CHECKERS)
        if doc is None:
            known = ", ".join(sorted(rule_catalog(ALL_CHECKERS)))
            parser.error(f"unknown rule {args.explain!r} (known: {known})")
        print(doc)
        return 0

    checkers = ALL_CHECKERS
    if args.select:
        wanted = {r.strip().upper() for r in args.select.split(",") if r.strip()}
        checkers = tuple(c for c in ALL_CHECKERS if c.rule in wanted)
        unknown = wanted - {c.rule for c in ALL_CHECKERS}
        if unknown:
            parser.error(f"unknown rule id(s): {', '.join(sorted(unknown))}")

    if not args.paths:
        parser.error("no paths given (and no --explain)")
    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        parser.error(f"no such path(s): {' '.join(missing)}")
    files = list(iter_python_files(args.paths))
    if not files:
        parser.error(f"no python files under: {' '.join(args.paths)}")

    started = time.perf_counter()
    findings = lint_paths(args.paths, checkers, jobs=args.jobs)
    elapsed = time.perf_counter() - started

    if args.write_baseline:
        from repro.lint.baseline import write_baseline

        write_baseline(args.write_baseline, findings)
        if not args.quiet:
            print(
                f"reprolint: wrote baseline with {len(findings)} finding(s) "
                f"to {args.write_baseline}"
            )
        return 0

    baselined = 0
    if args.baseline:
        from repro.lint.baseline import load_baseline, partition

        try:
            known = load_baseline(args.baseline)
        except (OSError, ValueError) as exc:
            parser.error(str(exc))
        findings, baselined = partition(findings, known)

    if args.sarif:
        from repro.lint.sarif import write_sarif

        sarif_path = Path(args.sarif)
        if sarif_path.parent and not sarif_path.parent.exists():
            sarif_path.parent.mkdir(parents=True, exist_ok=True)
        write_sarif(sarif_path, findings, checkers, root=Path.cwd())

    for finding in findings:
        print(finding.render())

    over_budget = args.max_seconds is not None and elapsed > args.max_seconds
    if not args.quiet:
        status = f"{len(findings)} finding(s)" if findings else "clean"
        extras = []
        if baselined:
            extras.append(f"{baselined} baselined")
        if args.jobs > 1:
            extras.append(f"jobs={args.jobs}")
        suffix = f" ({', '.join(extras)})" if extras else ""
        print(f"reprolint: {len(files)} file(s), {status}{suffix} in {elapsed:.2f}s")
    if over_budget:
        print(
            f"reprolint: runtime budget exceeded: {elapsed:.2f}s > "
            f"--max-seconds {args.max_seconds:g}"
        )
        return 1
    return 1 if findings else 0
