"""Fault injection and failure-aware routing (paper §3.3–§3.4).

The paper argues *qualitatively* that HIERAS tolerates failures as
cheaply as flat Chord because every layer keeps its own successor list.
This package makes the claim testable: deterministic, seeded fault
schedules (:class:`FaultPlan`) drive both execution stacks through node
crashes, message-loss bursts, latency spikes, network partitions and
landmark outages, while the static networks gain a lossy routing mode
(``route_lossy``) whose per-hop timeout/retry accounting comes from a
shared :class:`RetryPolicy`.
"""

from repro.faults.injector import FaultInjector, FaultState, LossyContext, ScaledLatency
from repro.faults.plan import FaultEvent, FaultPlan
from repro.faults.retry import RetryPolicy
from repro.faults.routing import lossy_ring_route

__all__ = [
    "FaultEvent",
    "FaultPlan",
    "FaultInjector",
    "FaultState",
    "LossyContext",
    "RetryPolicy",
    "ScaledLatency",
    "lossy_ring_route",
]
