"""Timeout/retry policy shared by both failure-aware stacks.

A node that forwards a lookup to a dead or unreachable peer learns
nothing until its request times out; it then retries (the same hop or a
fallback route entry) with exponentially backed-off timeouts.  The
policy quantifies that cost so the static stack can charge realistic
latency penalties without simulating individual messages, and the
protocol stack can re-issue lookups with the same schedule.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.validation import require

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """How a node waits, retries, and falls back when a hop fails.

    Attributes
    ----------
    timeout_ms:
        Wait before the first attempt at a hop is declared lost.
    max_retries:
        Additional attempts after the first (so a hop costs up to
        ``max_retries + 1`` timeouts before the node gives up on that
        candidate and falls back to the next one).
    backoff:
        Multiplier applied to the timeout on each successive attempt.
    jitter:
        Fractional uniform jitter applied to each timeout (0.1 ⇒ each
        penalty is scaled by a factor in ``[0.9, 1.1]``).  Jitter draws
        come from the injector's ``repro.util.rng`` stream, keeping
        penalised latencies deterministic per seed.
    successor_fallback:
        Length of the per-ring successor list consulted when fingers
        fail — the §3.3 failure-recovery state ("a node must keep a
        successor-list of its r nearest successors in each layer").
        This is recovery state, independent of the routing-acceleration
        ``successor_list_r`` the networks use on the happy path.
    """

    timeout_ms: float = 500.0
    max_retries: int = 2
    backoff: float = 2.0
    jitter: float = 0.1
    successor_fallback: int = 16

    def __post_init__(self) -> None:
        require(self.timeout_ms > 0, "timeout_ms must be > 0")
        require(self.max_retries >= 0, "max_retries must be >= 0")
        require(self.backoff >= 1.0, "backoff must be >= 1")
        require(0.0 <= self.jitter < 1.0, "jitter must be in [0, 1)")
        require(self.successor_fallback >= 0, "successor_fallback must be >= 0")

    @property
    def max_attempts(self) -> int:
        """Total attempts per contacted peer (first try + retries)."""
        return self.max_retries + 1

    def attempt_timeout_ms(self, attempt: int, rng: np.random.Generator) -> float:
        """Timeout paid for failed ``attempt`` (0-based), with jitter."""
        penalty = self.timeout_ms * self.backoff**attempt
        if self.jitter > 0.0:
            penalty *= 1.0 + self.jitter * (2.0 * float(rng.random()) - 1.0)
        return penalty

    def worst_case_contact_ms(self) -> float:
        """Upper bound on the penalty of exhausting one peer's attempts."""
        total = sum(self.timeout_ms * self.backoff**k for k in range(self.max_attempts))
        return total * (1.0 + self.jitter)
