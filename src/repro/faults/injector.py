"""Apply a :class:`FaultPlan` to either execution stack.

One :class:`FaultInjector` owns the evolving :class:`FaultState` (who is
dead, the ambient loss rate, the latency-spike factor, the partition
map) and knows how to advance it along the plan's timeline:

* **Static stack** — experiments drive a virtual clock by calling
  :meth:`FaultInjector.advance_to` between lookups; the networks'
  ``route_lossy`` methods consult the injector per hop through
  :meth:`FaultInjector.contact`, which charges timeout penalties from
  the shared :class:`~repro.faults.retry.RetryPolicy`.  Crashes do *not*
  rebuild the ring snapshots — finger tables stay stale on purpose, so
  lookups actually traverse dead fingers the way a real overlay does
  between stabilisation rounds.
* **Discrete-event stack** — :meth:`FaultInjector.install_sim`
  schedules the same events on the simulator: crashes call
  ``SimNode.fail``, loss bursts mutate ``SimNetwork.loss_rate``,
  latency spikes scale the network's latency model, and partitions
  install a ``drop_filter``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.faults.plan import FaultEvent, FaultPlan
from repro.faults.retry import RetryPolicy
from repro.topology.base import LatencyModel
from repro.util.rng import RngFactory
from repro.util.validation import require

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator
    from repro.sim.network import SimNetwork

__all__ = ["FaultState", "FaultInjector", "LossyContext", "ScaledLatency"]


@dataclass
class LossyContext:
    """Per-lookup accumulator of failure costs (filled by ``contact``)."""

    timeouts: int = 0
    retry_latency_ms: float = 0.0


class FaultState:
    """Current fault conditions, mutated as plan events apply."""

    def __init__(self, n_peers: int) -> None:
        require(n_peers >= 1, "n_peers must be >= 1")
        self.n_peers = n_peers
        self.dead = np.zeros(n_peers, dtype=bool)
        self.loss_rate = 0.0
        self.delay_factor = 1.0
        self.partition: np.ndarray | None = None  # side label per peer
        self.dead_landmarks: set[int] = set()

    def is_dead(self, peer: int) -> bool:
        """Ground-truth liveness of ``peer``."""
        return bool(self.dead[peer])

    def reachable(self, src: int, dst: int) -> bool:
        """Whether a message from ``src`` could ever reach ``dst``."""
        if self.dead[dst] or self.dead[src]:
            return False
        if self.partition is not None and self.partition[src] != self.partition[dst]:
            return False
        return True

    def live_peers(self) -> np.ndarray:
        """Indices of currently-live peers."""
        return np.flatnonzero(~self.dead)


class ScaledLatency(LatencyModel):
    """Wraps a latency model with a mutable multiplicative factor.

    ``install_sim`` swaps this in for the network's model once; spike
    events then only flip :attr:`factor`.
    """

    def __init__(self, inner: LatencyModel) -> None:
        self.inner = inner
        self.factor = 1.0

    def pair(self, u: int, v: int) -> float:
        return float(self.inner.pair(u, v)) * self.factor

    def pairs(self, us: np.ndarray, vs: np.ndarray) -> np.ndarray:
        return self.inner.pairs(us, vs) * self.factor


class FaultInjector:
    """Executes one compiled fault schedule against one population.

    Parameters
    ----------
    plan:
        The fault schedule (compiled against ``n_peers`` on entry).
    n_peers:
        Population size the plan applies to.
    policy:
        Timeout/retry policy used by the static stack's ``contact``
        model; defaults to :class:`RetryPolicy`'s defaults.

    The injector's own randomness (loss coin-flips, timeout jitter)
    comes from a ``repro.util.rng`` stream derived from the plan seed,
    so two injectors built from the same plan replay identically.
    """

    def __init__(
        self,
        plan: FaultPlan,
        n_peers: int,
        *,
        policy: RetryPolicy | None = None,
    ) -> None:
        self.plan = plan
        self.policy = policy if policy is not None else RetryPolicy()
        self.state = FaultState(n_peers)
        self.events: tuple[FaultEvent, ...] = plan.events(n_peers)
        self._next = 0
        self.now_ms = 0.0
        self.rng = RngFactory(plan.seed).get("fault-injector")

    # ------------------------------------------------------------------
    # timeline (static stack)
    # ------------------------------------------------------------------
    def advance_to(self, t_ms: float) -> list[FaultEvent]:
        """Apply every event with ``time_ms <= t_ms``; returns them."""
        require(t_ms >= self.now_ms, "the fault clock cannot run backwards")
        fired: list[FaultEvent] = []
        while self._next < len(self.events) and self.events[self._next].time_ms <= t_ms:
            ev = self.events[self._next]
            self._apply(ev)
            fired.append(ev)
            self._next += 1
        self.now_ms = t_ms
        return fired

    def _apply(self, ev: FaultEvent) -> None:
        state = self.state
        if ev.kind == "crash":
            for p in ev.peers:
                state.dead[p] = True
        elif ev.kind == "revive":
            for p in ev.peers:
                state.dead[p] = False
        elif ev.kind == "loss_start":
            state.loss_rate = ev.rate
        elif ev.kind == "loss_end":
            state.loss_rate = 0.0
        elif ev.kind == "spike_start":
            state.delay_factor = ev.factor
        elif ev.kind == "spike_end":
            state.delay_factor = 1.0
        elif ev.kind == "partition_start":
            state.partition = np.asarray(ev.groups, dtype=np.int64)
        elif ev.kind == "partition_end":
            state.partition = None
        elif ev.kind == "landmark_outage":
            state.dead_landmarks.add(ev.landmark)
        else:  # pragma: no cover - plan compilation guarantees known kinds
            raise ValueError(f"unknown fault event kind {ev.kind!r}")

    # ------------------------------------------------------------------
    # static-stack contact model
    # ------------------------------------------------------------------
    def contact(self, src: int, dst: int, ctx: LossyContext) -> bool:
        """Model ``src`` trying to reach ``dst`` under current faults.

        Each failed attempt (dead/partitioned target, or a live target
        whose request or reply was lost) charges one backed-off timeout
        to ``ctx``.  Returns whether any attempt got through.  With no
        active faults this returns True without consuming randomness, so
        a fault-free ``route_lossy`` is penalty-free and deterministic.
        """
        reachable = self.state.reachable(src, dst)
        loss = self.state.loss_rate
        if reachable and loss == 0.0:
            return True
        for attempt in range(self.policy.max_attempts):
            # A message and its reply each cross the network once.
            if reachable and self.rng.random() >= loss and self.rng.random() >= loss:
                return True
            ctx.timeouts += 1
            ctx.retry_latency_ms += self.policy.attempt_timeout_ms(attempt, self.rng)
        return False

    # ------------------------------------------------------------------
    # discrete-event stack
    # ------------------------------------------------------------------
    def install_sim(self, sim: "Simulator", net: "SimNetwork") -> None:
        """Schedule the plan's events on a simulator, relative to now.

        Crashes call :meth:`SimNode.fail` on registered nodes, loss
        bursts set :attr:`SimNetwork.loss_rate` (restoring the baseline
        afterwards), latency spikes scale the network's latency model in
        place, and partitions install a :attr:`SimNetwork.drop_filter`.
        Landmark outages have no transport-level effect; protocol code
        consults :attr:`FaultState.dead_landmarks`.
        """
        baseline_loss = net.loss_rate
        scaled = ScaledLatency(net.latency)
        net.latency = scaled

        def _fire(ev: FaultEvent) -> None:
            self._apply(ev)
            if ev.kind in ("crash", "revive"):
                for p in ev.peers:
                    if p in net:
                        node = net.node(p)
                        if ev.kind == "crash" and node.alive:
                            node.fail()
                        elif ev.kind == "revive" and not node.alive:
                            node.recover()
            elif ev.kind == "loss_start":
                net.loss_rate = ev.rate
            elif ev.kind == "loss_end":
                net.loss_rate = baseline_loss
            elif ev.kind in ("spike_start", "spike_end"):
                scaled.factor = self.state.delay_factor
            elif ev.kind == "partition_start":
                sides = self.state.partition

                def _blocked(src: int, dst: int) -> bool:
                    return bool(sides[src] != sides[dst])

                net.drop_filter = _blocked
            elif ev.kind == "partition_end":
                net.drop_filter = None

        for ev in self.events:
            sim.schedule(ev.time_ms, _fire, ev)
        # install_sim consumed the schedule; advance_to must not re-apply.
        self._next = len(self.events)
