"""Deterministic, composable fault schedules.

A :class:`FaultPlan` is a seeded recipe of failure scenarios — node
crashes, message-loss bursts, latency spikes, network partitions and
landmark outages — declared with fluent builder calls and compiled into
a time-ordered tuple of concrete :class:`FaultEvent` records by
:meth:`FaultPlan.events`.  Compilation is deterministic: any randomness
(which peers crash for a given fraction, which partition side each peer
lands on) is drawn from :class:`repro.util.rng.RngFactory` streams keyed
by the plan seed and the spec's position, so the same plan applied to
the same population always produces the same schedule — on the static
stack and the discrete-event stack alike.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.util.rng import RngFactory
from repro.util.validation import require

__all__ = ["FaultEvent", "FaultPlan"]

# Event kinds produced by compilation. Durations expand into start/end
# pairs so appliers only ever handle point events.
KINDS = (
    "crash",
    "revive",
    "loss_start",
    "loss_end",
    "spike_start",
    "spike_end",
    "partition_start",
    "partition_end",
    "landmark_outage",
)


@dataclass(frozen=True)
class FaultEvent:
    """One concrete scheduled fault.

    ``peers`` is filled for crash/revive events, ``rate`` for loss
    bursts, ``factor`` for latency spikes, ``groups`` (one side label
    per peer) for partitions, and ``landmark`` for landmark outages.
    """

    time_ms: float
    kind: str
    peers: tuple[int, ...] = ()
    rate: float = 0.0
    factor: float = 1.0
    groups: tuple[int, ...] = ()
    landmark: int = -1


@dataclass
class FaultPlan:
    """Seeded builder of fault schedules (fluent interface).

    Examples
    --------
    >>> plan = (FaultPlan(seed=7)
    ...         .crash_fraction(at_ms=500.0, fraction=0.2)
    ...         .loss_burst(at_ms=200.0, rate=0.3, duration_ms=300.0))
    >>> [e.kind for e in plan.events(100)]
    ['loss_start', 'crash', 'loss_end']
    """

    seed: int = 0
    _specs: list[tuple[str, dict[str, Any]]] = field(default_factory=list)

    # ------------------------------------------------------------------
    # builders
    # ------------------------------------------------------------------
    def crash_peers(self, *, at_ms: float, peers: list[int] | tuple[int, ...]) -> "FaultPlan":
        """Crash an explicit set of peers at ``at_ms``."""
        require(at_ms >= 0.0, "at_ms must be >= 0")
        self._specs.append(("crash_peers", {"at_ms": float(at_ms), "peers": tuple(int(p) for p in peers)}))
        return self

    def crash_fraction(self, *, at_ms: float, fraction: float) -> "FaultPlan":
        """Crash a uniformly-drawn ``fraction`` of the population at ``at_ms``."""
        require(at_ms >= 0.0, "at_ms must be >= 0")
        require(0.0 <= fraction <= 1.0, "fraction must be in [0, 1]")
        self._specs.append(("crash_fraction", {"at_ms": float(at_ms), "fraction": float(fraction)}))
        return self

    def revive_peers(self, *, at_ms: float, peers: list[int] | tuple[int, ...]) -> "FaultPlan":
        """Bring previously-crashed peers back at ``at_ms``."""
        require(at_ms >= 0.0, "at_ms must be >= 0")
        self._specs.append(("revive_peers", {"at_ms": float(at_ms), "peers": tuple(int(p) for p in peers)}))
        return self

    def loss_burst(self, *, at_ms: float, rate: float, duration_ms: float) -> "FaultPlan":
        """Raise the message-loss rate to ``rate`` for ``duration_ms``."""
        require(at_ms >= 0.0, "at_ms must be >= 0")
        require(0.0 <= rate < 1.0, "rate must be in [0, 1)")
        require(duration_ms > 0.0, "duration_ms must be > 0")
        self._specs.append(
            ("loss_burst", {"at_ms": float(at_ms), "rate": float(rate), "duration_ms": float(duration_ms)})
        )
        return self

    def latency_spike(self, *, at_ms: float, factor: float, duration_ms: float) -> "FaultPlan":
        """Scale all link delays by ``factor`` for ``duration_ms``."""
        require(at_ms >= 0.0, "at_ms must be >= 0")
        require(factor >= 1.0, "factor must be >= 1")
        require(duration_ms > 0.0, "duration_ms must be > 0")
        self._specs.append(
            ("latency_spike", {"at_ms": float(at_ms), "factor": float(factor), "duration_ms": float(duration_ms)})
        )
        return self

    def partition(self, *, at_ms: float, duration_ms: float, n_groups: int = 2) -> "FaultPlan":
        """Split the population into ``n_groups`` isolated sides.

        Peers are assigned to sides uniformly at random (seeded); while
        the partition holds, messages between different sides are
        undeliverable.
        """
        require(at_ms >= 0.0, "at_ms must be >= 0")
        require(duration_ms > 0.0, "duration_ms must be > 0")
        require(n_groups >= 2, "a partition needs at least 2 sides")
        self._specs.append(
            ("partition", {"at_ms": float(at_ms), "duration_ms": float(duration_ms), "n_groups": int(n_groups)})
        )
        return self

    def crash_ring(
        self, *, at_ms: float, network: Any, name: str, layer: int | None = None
    ) -> "FaultPlan":
        """Crash every member of one HIERAS low-layer ring at ``at_ms``.

        The correlated-failure primitive: a whole topology-aware ring
        (all peers sharing landmark order ``name`` at ``layer``,
        default the lowest layer) dies in one wave — the worst case for
        HIERAS's locality-derived rings.  Members are resolved *now*,
        from the network's current live membership, and sorted, so the
        resulting spec is a plain ``crash_peers`` — deterministic and
        applicable to any same-population network (e.g. the flat Chord
        baseline, for a head-to-head comparison).
        """
        layer = int(layer) if layer is not None else int(network.depth)
        rings = network.rings_at_layer(layer)
        require(name in rings, f"no ring named {name!r} at layer {layer}")
        members = sorted(int(p) for p in rings[name].peers)
        return self.crash_peers(at_ms=at_ms, peers=members)

    def crash_region(
        self, *, at_ms: float, attachment: Any, domain: int
    ) -> "FaultPlan":
        """Crash every peer attached inside one stub domain at ``at_ms``.

        Topology-level correlated failure: all overlay peers whose
        attachment router lies in stub ``domain`` of a transit-stub
        topology die together (a regional outage).  Resolution is
        deterministic — peers are read from the attachment's
        ``router_of_peer`` map against the topology's
        ``stub_domain_of`` labels and sorted.
        """
        topology = attachment.topology
        stub_of = getattr(topology, "stub_domain_of", None)
        require(
            stub_of is not None,
            "crash_region needs a transit-stub topology (stub_domain_of)",
        )
        routers = np.asarray(attachment.router_of_peer, dtype=np.int64)
        members = sorted(int(p) for p in np.flatnonzero(stub_of[routers] == domain))
        require(bool(members), f"stub domain {domain} hosts no overlay peers")
        return self.crash_peers(at_ms=at_ms, peers=members)

    def landmark_outage(self, *, at_ms: float, landmark: int) -> "FaultPlan":
        """Take one landmark offline at ``at_ms``.

        Landmarks are measurement infrastructure, not overlay members:
        an outage blinds one coordinate of the binning scheme for nodes
        that join afterwards (§2), without touching existing rings.
        Appliers record the outage in :class:`FaultState.dead_landmarks`
        for join/rebinning logic to consult.
        """
        require(at_ms >= 0.0, "at_ms must be >= 0")
        require(landmark >= 0, "landmark must be >= 0")
        self._specs.append(("landmark_outage", {"at_ms": float(at_ms), "landmark": int(landmark)}))
        return self

    # ------------------------------------------------------------------
    # compilation
    # ------------------------------------------------------------------
    def events(self, n_peers: int) -> tuple[FaultEvent, ...]:
        """Compile the plan into time-sorted concrete events.

        Deterministic in ``(seed, spec order, n_peers)``: each spec that
        needs randomness gets its own named stream, so reordering or
        adding unrelated specs never perturbs another spec's draws.
        """
        require(n_peers >= 1, "n_peers must be >= 1")
        factory = RngFactory(self.seed)
        out: list[FaultEvent] = []
        for i, (kind, params) in enumerate(self._specs):
            if kind == "crash_peers":
                out.append(FaultEvent(params["at_ms"], "crash", peers=params["peers"]))
            elif kind == "crash_fraction":
                count = int(round(params["fraction"] * n_peers))
                if count > 0:
                    rng = factory.get(f"spec-{i}-crash")
                    chosen = rng.choice(n_peers, size=min(count, n_peers), replace=False)
                    out.append(
                        FaultEvent(params["at_ms"], "crash", peers=tuple(sorted(int(p) for p in chosen)))
                    )
            elif kind == "revive_peers":
                out.append(FaultEvent(params["at_ms"], "revive", peers=params["peers"]))
            elif kind == "loss_burst":
                out.append(FaultEvent(params["at_ms"], "loss_start", rate=params["rate"]))
                out.append(FaultEvent(params["at_ms"] + params["duration_ms"], "loss_end"))
            elif kind == "latency_spike":
                out.append(FaultEvent(params["at_ms"], "spike_start", factor=params["factor"]))
                out.append(FaultEvent(params["at_ms"] + params["duration_ms"], "spike_end"))
            elif kind == "partition":
                rng = factory.get(f"spec-{i}-partition")
                sides = rng.integers(0, params["n_groups"], size=n_peers)
                out.append(
                    FaultEvent(
                        params["at_ms"], "partition_start", groups=tuple(int(s) for s in sides)
                    )
                )
                out.append(FaultEvent(params["at_ms"] + params["duration_ms"], "partition_end"))
            elif kind == "landmark_outage":
                out.append(
                    FaultEvent(params["at_ms"], "landmark_outage", landmark=params["landmark"])
                )
            else:  # pragma: no cover - builders guarantee known kinds
                raise ValueError(f"unknown fault spec {kind!r}")
        order = np.argsort([e.time_ms for e in out], kind="stable")
        return tuple(out[int(j)] for j in order)

    def __len__(self) -> int:
        return len(self._specs)
