"""Failure-aware Chord routing over stale ring snapshots.

The static stack's :class:`~repro.dht.ring_array.SortedRing` is a
snapshot of *believed* membership — exactly what a node's finger table
is between stabilisation rounds.  When peers crash, the snapshot goes
stale: fingers and successors still point at dead nodes.  This module
routes through such a stale ring the way a real Chord node does (§3.3):
try the greedy hop; if the contact times out, fall back to the next-best
finger, then to successor-list entries, paying timeout penalties for
every failed contact, until either a live hop advances the lookup or
every known candidate is exhausted and the lookup fails.

The same routine serves both HIERAS loop styles: ``to_owner=True`` is
the global ring's terminating loop (ends at the first *live* successor
of the key); ``to_owner=False`` is a lower layer's predecessor loop
(stops at the key's closest live predecessor in the ring).
"""

from __future__ import annotations

from bisect import bisect_left
from collections.abc import Callable

from repro.dht.ring_array import SortedRing

__all__ = ["lossy_ring_route"]


def lossy_ring_route(
    ring: SortedRing,
    start_pos: int,
    key: int,
    *,
    to_owner: bool,
    contact: Callable[[int, int], bool],
    is_dead: Callable[[int], bool],
    fallback_r: int,
    max_hops: int,
) -> tuple[list[int], bool]:
    """Route ``key`` from ``start_pos`` through a possibly-stale ring.

    Parameters
    ----------
    contact:
        ``contact(src_peer, dst_peer) -> bool`` — attempt to reach a
        peer, charging timeout penalties to the caller's accumulator on
        failure.  Routing itself never inspects liveness directly: a
        node only learns a finger is dead by timing out on it.
    is_dead:
        Ground-truth liveness (used only to compute the *destination* —
        which live member actually owns the key — never to pick hops).
    fallback_r:
        Successor-list length used for fallback candidates (§3.3).
    max_hops:
        Give up after this many successful forwards (routing through a
        heavily-damaged ring must terminate).

    Returns
    -------
    (positions, ok):
        Ring positions visited (start included).  ``ok`` is False when
        the lookup died: no live candidate could be contacted, the hop
        budget ran out, or no live member owns the key.
    """
    n = len(ring)
    size = ring.space.size
    idlist = ring._idlist
    peers = ring.peers
    key = int(key) % size

    path = [start_pos]
    # Destination among live members: first live member at/after the key.
    owner0 = ring.successor_pos(key)
    live_owner = -1
    for k in range(n):
        p = (owner0 + k) % n
        if not is_dead(int(peers[p])):
            live_owner = p
            break
    if live_owner < 0:
        return path, False  # nobody left alive to own the key

    cur = start_pos
    hops = 0
    while True:
        cur_id = idlist[cur]
        d = (key - cur_id) % size
        if d == 0 or cur == live_owner:
            return path, True  # cur owns the key (among live members)
        if not to_owner:
            # Predecessor-stop (§3.2 lower loops): if no live member sits
            # strictly between cur and the key, cur is the key's closest
            # live predecessor in this ring and the loop ends here.
            nxt = -1
            for k in range(1, n):
                p = (cur + k) % n
                if not is_dead(int(peers[p])):
                    nxt = p
                    break
            if nxt < 0:
                return path, True  # cur is the only live member
            if d <= (idlist[nxt] - cur_id) % size:
                return path, True
        if hops >= max_hops:
            return path, False

        # Candidate next hops, best first: greedy finger, then each
        # next-smaller finger, then successor-list entries — all still
        # strictly advancing towards the key.  The final hop onto the
        # owner itself comes from the successor list (a node's list
        # reaches past dead immediate successors, §3.3).
        seen = {cur}
        cands: list[int] = []
        for i in range((d - 1).bit_length() - 1, -1, -1):
            start = (cur_id + (1 << i)) % size
            j = bisect_left(idlist, start)
            fpos = 0 if j == n else j
            fd = (idlist[fpos] - cur_id) % size
            if 0 < fd < d and fpos not in seen:
                seen.add(fpos)
                cands.append(fpos)
        for k in range(1, min(max(fallback_r, 1), n - 1) + 1):
            p = (cur + k) % n
            fd = (idlist[p] - cur_id) % size
            if 0 < fd < d and p not in seen:
                seen.add(p)
                cands.append(p)
        if to_owner and live_owner not in seen and 0 < (live_owner - cur) % n <= max(fallback_r, 1):
            cands.append(live_owner)

        advanced = False
        for p in cands:
            if contact(int(peers[cur]), int(peers[p])):
                cur = p
                path.append(p)
                hops += 1
                advanced = True
                break
        if not advanced:
            return path, False  # every known candidate is dead/unreachable
