"""Shared low-level utilities for the HIERAS reproduction.

This package deliberately contains only dependency-free building blocks:

* :mod:`repro.util.ids` — identifier spaces and collision-free hashing.
* :mod:`repro.util.intervals` — circular (modular) interval arithmetic
  used by every ring-structured DHT in the repository.
* :mod:`repro.util.rng` — deterministic random-number-generator plumbing
  so that every experiment is exactly reproducible from a single seed.
* :mod:`repro.util.validation` — small argument-checking helpers with
  consistent error messages.
"""

from repro.util.ids import IdSpace, sha1_int
from repro.util.intervals import (
    clockwise_distance,
    in_interval,
    in_interval_closed,
    in_interval_open,
    ring_distance,
)
from repro.util.rng import RngFactory, make_rng, spawn_rngs
from repro.util.validation import (
    require,
    require_in_range,
    require_positive,
    require_type,
)

__all__ = [
    "IdSpace",
    "sha1_int",
    "clockwise_distance",
    "in_interval",
    "in_interval_closed",
    "in_interval_open",
    "ring_distance",
    "RngFactory",
    "make_rng",
    "spawn_rngs",
    "require",
    "require_in_range",
    "require_positive",
    "require_type",
]
