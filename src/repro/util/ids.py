"""Identifier spaces and collision-free hashing.

Every DHT in this repository (Chord, CAN's zone ownership keys, Pastry,
and HIERAS itself) places nodes and keys on a circular identifier space
of ``2**bits`` points.  The paper (§3.1) uses SHA-1 as the collision-free
hash; we do the same, truncating the 160-bit digest to the configured
width.  Simulations typically use 32- or 64-bit spaces, which keeps the
arithmetic in machine integers while preserving Chord's behaviour (ids
are unique per node, so the ring geometry is identical up to relabeling).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from collections.abc import Iterable, Sequence

import numpy as np
import numpy.typing as npt

from repro.util.validation import require, require_in_range

__all__ = ["IdSpace", "sha1_int", "DEFAULT_BITS"]

#: Default identifier width used throughout the simulations.  32 bits is
#: wide enough that 10 000 random node ids collide with probability
#: < 1.2 % per draw (and the samplers below reject collisions anyway)
#: while keeping every id a cheap machine integer.
DEFAULT_BITS = 32


def sha1_int(data: bytes | str, bits: int = DEFAULT_BITS) -> int:
    """Hash ``data`` with SHA-1 and truncate the digest to ``bits`` bits.

    This is the paper's "collision free algorithm such as SHA-1" (§3.1)
    used to generate node ids, file keys, and ring ids.

    Parameters
    ----------
    data:
        Raw bytes or text (text is UTF-8 encoded first).
    bits:
        Width of the target identifier space; must be in ``[1, 160]``.

    Returns
    -------
    int
        The top ``bits`` bits of the SHA-1 digest, as a Python int.
    """
    require_in_range(bits, 1, 160, name="bits")
    if isinstance(data, str):
        data = data.encode("utf-8")
    digest = hashlib.sha1(data).digest()
    value = int.from_bytes(digest, "big")
    return value >> (160 - bits)


@dataclass(frozen=True)
class IdSpace:
    """A circular identifier space of ``2**bits`` points.

    Instances are immutable and cheap; they bundle the modulus together
    with the hashing and sampling operations every DHT needs.

    Examples
    --------
    >>> space = IdSpace(bits=8)
    >>> space.size
    256
    >>> space.hash_key("some-file.txt") < 256
    True
    """

    bits: int = DEFAULT_BITS
    size: int = field(init=False)

    def __post_init__(self) -> None:
        require_in_range(self.bits, 1, 160, name="bits")
        object.__setattr__(self, "size", 1 << self.bits)

    # ------------------------------------------------------------------
    # hashing
    # ------------------------------------------------------------------
    def hash_key(self, key: bytes | str) -> int:
        """Map an application key (e.g. a file name) onto the space."""
        return sha1_int(key, self.bits)

    def hash_node(self, address: bytes | str) -> int:
        """Map a node address (e.g. an IP:port string) onto the space.

        Chord hashes the node's IP address; we keep a distinct entry
        point so call sites document intent, but the mapping is the same
        SHA-1 truncation as :meth:`hash_key`.
        """
        return sha1_int(address, self.bits)

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def wrap(self, value: int) -> int:
        """Reduce ``value`` modulo the space size."""
        return value & (self.size - 1)

    def finger_start(self, node_id: int, index: int) -> int:
        """Start of the ``index``-th Chord finger interval (1-based).

        Chord's finger ``i`` of node ``n`` targets ``n + 2**(i-1)``
        (mod ``2**bits``); see Stoica et al. and paper Table 2.
        """
        require_in_range(index, 1, self.bits, name="index")
        return self.wrap(node_id + (1 << (index - 1)))

    def finger_starts(self, node_id: int) -> npt.NDArray[np.uint64]:
        """Vector of all ``bits`` finger starts for ``node_id``."""
        powers = np.left_shift(np.uint64(1), np.arange(self.bits, dtype=np.uint64))
        starts = (np.uint64(node_id) + powers) & np.uint64(self.size - 1)
        return np.asarray(starts, dtype=np.uint64)

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------
    def sample_unique_ids(self, count: int, rng: np.random.Generator) -> npt.NDArray[np.uint64]:
        """Draw ``count`` distinct ids uniformly at random.

        Collisions are rejected and redrawn so the result always holds
        exactly ``count`` distinct ids.  The result is returned in
        **random order**, deliberately: callers typically zip it with an
        independently generated peer attribute (attachment router,
        landmark order, …), and returning sorted ids would correlate id
        adjacency with that attribute — e.g. making id-neighbours
        topology-neighbours, which silently falsifies every latency
        experiment.  Sort at the call site if you need order.

        Raises
        ------
        ValueError
            If ``count`` exceeds the size of the space.
        """
        require(count >= 0, f"count must be >= 0, got {count}")
        require(
            count <= self.size,
            f"cannot draw {count} unique ids from a space of {self.size}",
        )
        ids: set[int] = set()
        # Oversample slightly; loop until we have enough distinct ids.
        while len(ids) < count:
            need = count - len(ids)
            draw = rng.integers(0, self.size, size=max(need + 16, int(need * 1.1)))
            ids.update(int(v) for v in draw)
            while len(ids) > count:
                ids.pop()
        out = np.fromiter(ids, dtype=np.uint64, count=count)  # lint: allow-unsorted -- int-set order is hash-stable across runs, and rng.shuffle below re-permutes it; sorting first would silently reseed every artifact
        rng.shuffle(out)
        return np.asarray(out, dtype=np.uint64)

    def ids_from_names(self, names: Iterable[str]) -> list[int]:
        """Hash a sequence of textual names into the space (no dedup)."""
        return [self.hash_key(name) for name in names]

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def validate_id(self, value: int, *, name: str = "id") -> int:
        """Check that ``value`` lies inside the space and return it."""
        require_in_range(int(value), 0, self.size - 1, name=name)
        return int(value)

    def format_id(self, value: int) -> str:
        """Render an id as zero-padded hex, convenient in logs/tables."""
        width = (self.bits + 3) // 4
        return f"{value:0{width}x}"


def unique_sorted(ids: Sequence[int]) -> npt.NDArray[np.uint64]:
    """Return the sorted unique ``uint64`` array of ``ids``.

    Helper shared by network constructors that accept arbitrary
    user-provided id collections.
    """
    arr = np.asarray(sorted(set(int(i) for i in ids)), dtype=np.uint64)
    return arr
