"""Small argument-checking helpers with consistent error messages.

These keep validation one-liners readable at call sites and guarantee
uniform exception types: every violated precondition raises
:class:`ValueError` (or :class:`TypeError` for type checks), never a
bare assert that could be compiled away under ``python -O``.
"""

from __future__ import annotations

from typing import Any

__all__ = ["require", "require_positive", "require_in_range", "require_type"]


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValueError` with ``message`` unless ``condition``."""
    if not condition:
        raise ValueError(message)


def require_positive(value: float, *, name: str = "value") -> None:
    """Raise unless ``value`` is strictly positive."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")


def require_in_range(value: float, low: float, high: float, *, name: str = "value") -> None:
    """Raise unless ``low <= value <= high`` (inclusive on both ends)."""
    if not (low <= value <= high):
        raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")


def require_type(value: Any, types: type | tuple[type, ...], *, name: str = "value") -> None:
    """Raise :class:`TypeError` unless ``value`` is an instance of ``types``."""
    if not isinstance(value, types):
        expected = types.__name__ if isinstance(types, type) else "/".join(t.__name__ for t in types)
        raise TypeError(f"{name} must be {expected}, got {type(value).__name__}")
