"""Deterministic random-number-generator plumbing.

Reproducibility rule for the whole repository: **every** source of
randomness flows from a single integer seed through
:class:`numpy.random.SeedSequence` spawning.  Components never call
``np.random.default_rng()`` without a seed, and sibling components get
*independent* streams (so adding a new consumer of randomness does not
perturb existing experiments).

Typical usage::

    factory = RngFactory(seed=42)
    topo_rng = factory.get("topology")
    ids_rng = factory.get("node-ids")
    requests_rng = factory.get("requests")

The stream returned for a given ``(seed, label)`` pair is stable across
runs and across machines.
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterator

import numpy as np

__all__ = ["make_rng", "spawn_rngs", "RngFactory"]


def make_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Accepts an existing generator (returned unchanged), an integer seed,
    or ``None`` (seed 0 — we deliberately do *not* fall back to OS
    entropy, experiments must be reproducible by default).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = 0
    return np.random.default_rng(int(seed))


def spawn_rngs(seed: int, count: int) -> list[np.random.Generator]:
    """Spawn ``count`` independent generators from one integer seed."""
    seq = np.random.SeedSequence(int(seed))
    return [np.random.default_rng(child) for child in seq.spawn(count)]


def _label_to_int(label: str) -> int:
    """Map a textual label to a stable 64-bit integer."""
    digest = hashlib.sha1(label.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngFactory:
    """Named, independent random streams derived from a single seed.

    Each distinct ``label`` yields an independent
    :class:`numpy.random.Generator`; asking twice for the same label
    returns a *fresh* generator positioned at the start of the same
    stream, so components that re-request their stream restart it
    (callers that need continuation should hold onto the generator).
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)

    def get(self, label: str) -> np.random.Generator:
        """Return the generator for ``label`` (stable across runs)."""
        seq = np.random.SeedSequence([self.seed, _label_to_int(label)])
        return np.random.default_rng(seq)

    def child(self, label: str) -> "RngFactory":
        """Return a sub-factory whose streams are namespaced by ``label``."""
        return RngFactory(seed=(self.seed * 0x9E3779B1 + _label_to_int(label)) % (1 << 63))

    def many(self, label: str, count: int) -> Iterator[np.random.Generator]:
        """Yield ``count`` independent generators under one label."""
        seq = np.random.SeedSequence([self.seed, _label_to_int(label)])
        for child in seq.spawn(count):
            yield np.random.default_rng(child)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngFactory(seed={self.seed})"
