"""Circular (modular) interval arithmetic.

Chord — and therefore HIERAS, which runs Chord's routing rule inside
every ring — constantly asks questions of the form "does id ``x`` lie in
the arc from ``a`` to ``b`` walking clockwise?".  On a circle these
predicates cannot be answered with plain comparisons because intervals
may wrap around zero.  This module centralises the (easy to get subtly
wrong) logic; everything else in the repository builds on these five
functions.

All functions take the ``size`` of the identifier space (``2**bits``)
explicitly rather than an :class:`~repro.util.ids.IdSpace` so they stay
usable from vectorised NumPy code without attribute lookups in hot loops.
"""

from __future__ import annotations

__all__ = [
    "clockwise_distance",
    "ring_distance",
    "in_interval",
    "in_interval_open",
    "in_interval_closed",
]


def clockwise_distance(a: int, b: int, size: int) -> int:
    """Number of steps walking clockwise (increasing ids) from ``a`` to ``b``.

    ``clockwise_distance(a, a, size) == 0`` and the result is always in
    ``[0, size)``.
    """
    return (b - a) % size


def ring_distance(a: int, b: int, size: int) -> int:
    """Shortest distance between ``a`` and ``b`` in either direction."""
    d = (b - a) % size
    return min(d, size - d)


def in_interval_open(x: int, a: int, b: int, size: int) -> bool:
    """True iff ``x`` lies strictly inside the clockwise arc ``(a, b)``.

    When ``a == b`` the open interval covers the whole ring except ``a``
    itself (Chord's convention: a single-node ring owns everything).
    """
    if a == b:
        return x != a
    return clockwise_distance(a, x, size) > 0 and clockwise_distance(a, x, size) < clockwise_distance(a, b, size)


def in_interval(x: int, a: int, b: int, size: int) -> bool:
    """True iff ``x`` lies in the half-open clockwise arc ``(a, b]``.

    This is Chord's ownership predicate: node ``s`` is responsible for
    key ``k`` iff ``k ∈ (predecessor(s), s]``.  When ``a == b`` the arc
    is the full ring (every ``x`` qualifies), matching the single-node
    degenerate case.
    """
    if a == b:
        return True
    return 0 < clockwise_distance(a, x, size) <= clockwise_distance(a, b, size)


def in_interval_closed(x: int, a: int, b: int, size: int) -> bool:
    """True iff ``x`` lies in the closed clockwise arc ``[a, b]``.

    When ``a == b`` the arc degenerates to the single point ``a``.
    """
    if a == b:
        return x == a
    return clockwise_distance(a, x, size) <= clockwise_distance(a, b, size)
