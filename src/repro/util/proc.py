"""Process-level measurements shared by the benchmark CLIs.

Every benchmark runner reports its peak resident set size alongside its
wall-clock phases: memory ceilings are the binding constraint for the
million-peer scale work, so the number belongs next to the timings in
every ``BENCH_*.json``.  Peak RSS is inherently machine-dependent, so
it always goes in the nondeterministic ``phases`` section of a bench
document, never in the byte-compared ``metrics``.
"""

from __future__ import annotations

import resource
import sys

__all__ = ["peak_rss_mb"]


def peak_rss_mb() -> float:
    """Peak resident set size of this process so far, in MiB.

    ``ru_maxrss`` is kilobytes on Linux but bytes on macOS; both are
    normalised to MiB.  Returns 0.0 on platforms without a usable
    ``getrusage`` so benchmark runners never fail over a metric that is
    informational only.
    """
    try:
        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    except (ValueError, OSError):  # pragma: no cover - exotic platforms
        return 0.0
    if sys.platform == "darwin":  # pragma: no cover - linux CI
        return peak / (1024.0 * 1024.0)
    return peak / 1024.0
