"""A time-stepped file-sharing service over a ring DHT.

Assembles the full stack — topology, binning, HIERAS (or Chord),
replicated storage, Zipf workload, churn — into the application the
paper's introduction motivates, and measures what a *user* of the
service sees round by round: query success rate, lookup latency, and
the repair work churn causes.

The simulation advances in rounds.  Each round:

1. a fraction of online peers crash (their stored state is lost) and a
   fraction of offline peers rejoin;
2. the storage layer repairs placement (Chord's background transfer);
3. online peers issue Zipf-distributed file queries; each query routes
   to the file key's owner and succeeds iff a replica survived.

Because peers only fail *between* repair rounds, the measured failure
rate isolates the replication factor's durability — reproducing the
CFS-style analysis the paper inherits from Chord (§3.2's "fault
tolerance ... of the underlying algorithm are still kept").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dht.storage import DHTStore
from repro.util.rng import make_rng
from repro.util.validation import require
from repro.workloads.requests import zipf_weights

__all__ = ["RoundMetrics", "FileSharingSystem"]


@dataclass(frozen=True)
class RoundMetrics:
    """What the service delivered in one round."""

    round_index: int
    online_peers: int
    failed_this_round: int
    rejoined_this_round: int
    keys_moved_by_repair: int
    queries: int
    successes: int
    mean_latency_ms: float
    mean_hops: float

    @property
    def success_rate(self) -> float:
        """Fraction of queries answered from a surviving replica."""
        return self.successes / self.queries if self.queries else 1.0


class FileSharingSystem:
    """File-location service + churn + Zipf queries over one network.

    Parameters
    ----------
    network:
        A :class:`~repro.core.hieras.HierasNetwork` or
        :class:`~repro.dht.chord.ChordNetwork`.  HIERAS networks churn
        with their ring names preserved (a rejoining peer re-enters the
        rings its landmark orders named).
    catalog_size / zipf_exponent:
        The shared file catalogue and its popularity skew.
    replicas:
        Storage copies beyond the owner.
    """

    def __init__(
        self,
        network,
        *,
        catalog_size: int = 1000,
        zipf_exponent: float = 0.95,
        replicas: int = 2,
        seed: int = 0,
    ) -> None:
        require(catalog_size >= 1, "catalog_size must be >= 1")
        self.network = network
        self.rng = make_rng(seed)
        # Realistic durability: values whose every replica crashes are
        # gone until someone re-publishes them.
        self.store = DHTStore(network, replicas=replicas, restore_lost=False)
        self.catalog = [f"file-{i}" for i in range(catalog_size)]
        self.popularity = zipf_weights(catalog_size, zipf_exponent)
        for name in self.catalog:
            self.store.put(name, {"name": name})
        self._offline: set[int] = set()
        self.history: list[RoundMetrics] = []

    # ------------------------------------------------------------------
    @property
    def online_peers(self) -> list[int]:
        """Currently-online peer indices."""
        return [
            p
            for p in range(len(self.network._id_of_peer))
            if self.network.is_alive(p)
        ]

    def _fail_peers(self, count: int) -> int:
        online = self.online_peers
        count = min(count, max(len(online) - 4, 0))
        if count <= 0:
            return 0
        victims = [int(v) for v in self.rng.choice(online, size=count, replace=False)]
        for victim in victims:
            self._offline.add(victim)
            self.store.drop_peer_state(victim)  # its disk is gone
        self.network.remove_peers(victims)  # one rebuild for the whole wave
        return count

    def _rejoin_peers(self, count: int) -> int:
        count = min(count, len(self._offline))
        if count <= 0:
            return 0
        peers = sorted(self._offline)
        picks = self.rng.choice(len(peers), size=count, replace=False)
        rejoining = [peers[int(i)] for i in picks]
        self._offline.difference_update(rejoining)
        # A rejoining host keeps its identity: same node id, same
        # attachment router, same ring names (HIERAS re-derives its
        # rings from the retained landmark orders).
        self.network.revive_peers(rejoining)  # one rebuild for the wave
        return count

    # ------------------------------------------------------------------
    def run_round(
        self,
        *,
        queries: int = 200,
        fail: int = 0,
        rejoin: int = 0,
    ) -> RoundMetrics:
        """Advance the service by one round (churn → repair → queries)."""
        failed = self._fail_peers(fail)
        rejoined = self._rejoin_peers(rejoin)
        moved = self.store.repair() if (failed or rejoined) else 0

        online = self.online_peers
        picks = self.rng.choice(
            len(self.catalog), size=queries, p=self.popularity
        )
        successes = 0
        latency = 0.0
        hops = 0
        for pick in picks:
            source = int(self.rng.choice(online))
            value, route = self.store.get(source, self.catalog[int(pick)])
            successes += value is not None
            latency += route.latency_ms
            hops += route.hops
        metrics = RoundMetrics(
            round_index=len(self.history),
            online_peers=len(online),
            failed_this_round=failed,
            rejoined_this_round=rejoined,
            keys_moved_by_repair=moved,
            queries=queries,
            successes=successes,
            mean_latency_ms=latency / queries if queries else 0.0,
            mean_hops=hops / queries if queries else 0.0,
        )
        self.history.append(metrics)
        return metrics

    def run(
        self,
        rounds: int,
        *,
        queries_per_round: int = 200,
        churn_per_round: int = 0,
    ) -> list[RoundMetrics]:
        """Run ``rounds`` rounds with symmetric churn.

        Each round fails ``churn_per_round`` peers and rejoins up to the
        same number of previously-failed peers, keeping the population
        roughly stable.
        """
        require(rounds >= 1, "rounds must be >= 1")
        out = []
        for _ in range(rounds):
            out.append(
                self.run_round(
                    queries=queries_per_round,
                    fail=churn_per_round,
                    rejoin=churn_per_round,
                )
            )
        return out

    # ------------------------------------------------------------------
    def summary(self) -> dict[str, float]:
        """Service-level summary over all rounds so far."""
        require(len(self.history) >= 1, "no rounds have run")
        total_q = sum(m.queries for m in self.history)
        total_ok = sum(m.successes for m in self.history)
        return {
            "rounds": float(len(self.history)),
            "availability": total_ok / total_q if total_q else 1.0,
            "mean_latency_ms": float(
                np.mean([m.mean_latency_ms for m in self.history])
            ),
            "mean_hops": float(np.mean([m.mean_hops for m in self.history])),
            "total_repair_moves": float(
                sum(m.keys_moved_by_repair for m in self.history)
            ),
        }
