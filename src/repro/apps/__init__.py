"""Application layer: end-to-end systems built on the library.

The paper motivates DHTs with file-sharing applications (Napster,
Gnutella, KaZaA — its references [1]–[4]).  This package assembles the
library's parts into such applications:

* :mod:`repro.apps.filesharing` — a time-stepped file-sharing service:
  replicated file-location storage over HIERAS (or Chord), Zipf query
  workload, membership churn with repair, and per-round service
  metrics.
"""

from repro.apps.filesharing import FileSharingSystem, RoundMetrics

__all__ = ["FileSharingSystem", "RoundMetrics"]
