"""CAN: a d-dimensional Content-Addressable Network (paper reference [8]).

The paper sketches HIERAS over CAN (§3.2): "the whole coordinate space
can be divided multiple times in different layers, we can create
multilayer neighbor sets accordingly".  This module provides the flat
CAN substrate that :mod:`repro.core.hieras_can` layers.

Construction follows the CAN paper: members join one at a time; each
joiner hashes to a random point, the current owner of that point splits
its zone in half along the next dimension in its round-robin split
order, and the joiner takes the half containing the join point.  Keys
hash to points; a key's owner is the zone containing its point.
Routing is greedy geometric forwarding: each node hands the message to
the neighbour zone closest (torus distance to the zone's nearest point)
to the target.

The implementation is array-backed and static-membership like
:class:`~repro.dht.chord.ChordNetwork`; peers are indices aligned with
the latency model, and a CAN can be built over any peer subset (HIERAS
builds one per ring).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dht.base import DHTNetwork, RouteResult, ZeroLatency
from repro.topology.base import LatencyModel
from repro.util.ids import sha1_int
from repro.util.rng import make_rng
from repro.util.validation import require

__all__ = ["CanParams", "CanNetwork", "key_point", "peer_point", "COORD_BITS", "COORD_MAX"]

#: Fixed-point resolution of each coordinate (coordinates are integers
#: in ``[0, 2**COORD_BITS)``, avoiding float zone-boundary ambiguity).
COORD_BITS = 30
COORD_MAX = 1 << COORD_BITS


@dataclass(frozen=True)
class CanParams:
    """Structural parameters of a CAN."""

    dimensions: int = 2

    def __post_init__(self) -> None:
        require(1 <= self.dimensions <= 8, "dimensions must be in [1, 8]")


def key_point(key: int, dims: int) -> np.ndarray:
    """Deterministically hash a key to a point on the coordinate torus."""
    return np.asarray(
        [sha1_int(f"can:{key}:{d}", COORD_BITS) for d in range(dims)], dtype=np.int64
    )


def peer_point(peer: int, dims: int) -> np.ndarray:
    """A peer's canonical join point on the torus.

    Deterministic per peer so that a node joining *several* CANs (one
    per HIERAS layer) lands at the same point in each: its zones then
    all contain that point, which is what makes the bottom-up layered
    routing geometric — the node that owns the key's point in a lower
    ring is guaranteed to own nearby space in the next layer too.
    """
    return np.asarray(
        [sha1_int(f"can-node:{peer}:{d}", COORD_BITS) for d in range(dims)],
        dtype=np.int64,
    )


def _torus_gap(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Element-wise torus distance between coordinates ``a`` and ``b``."""
    d = np.abs(a - b)
    return np.minimum(d, COORD_MAX - d)


class CanNetwork(DHTNetwork):
    """A CAN overlay over a static set of peers.

    Parameters
    ----------
    peers:
        Peer indices participating in this CAN (any subset of the
        global peer universe).
    params, latency:
        Dimensionality and per-hop delay source.
    seed:
        Drives the join order (join *points* are each peer's
        deterministic :func:`peer_point`); the same seed reproduces the
        same zone tree.
    """

    def __init__(
        self,
        peers: np.ndarray,
        *,
        params: CanParams | None = None,
        latency: LatencyModel | None = None,
        seed: int | np.random.Generator = 0,
    ) -> None:
        peers = np.asarray(peers, dtype=np.int64)
        require(len(peers) >= 1, "need at least one peer")
        require(len(np.unique(peers)) == len(peers), "peer indices must be unique")
        self.params = params or CanParams()
        self.latency = latency if latency is not None else ZeroLatency()
        self.peers = peers
        rng = make_rng(seed)
        d = self.params.dimensions
        n = len(peers)

        # Zone bounds per member slot: [lo, hi) along each dimension.
        lo = np.zeros((n, d), dtype=np.int64)
        hi = np.zeros((n, d), dtype=np.int64)
        next_split = np.zeros(n, dtype=np.int64)
        join_order = rng.permutation(n)
        first = int(join_order[0])
        hi[first, :] = COORD_MAX

        occupied = [first]
        for slot in join_order[1:]:
            slot = int(slot)
            point = peer_point(int(peers[slot]), d)
            owner = self._owner_among(point, np.asarray(occupied, dtype=np.int64), lo, hi)
            dim = int(next_split[owner])
            mid = (lo[owner, dim] + hi[owner, dim]) // 2
            lo[slot] = lo[owner]
            hi[slot] = hi[owner]
            if point[dim] >= mid:  # joiner takes the half with its point
                lo[slot, dim] = mid
                hi[owner, dim] = mid
            else:
                hi[slot, dim] = mid
                lo[owner, dim] = mid
            next_split[owner] = (dim + 1) % d
            next_split[slot] = (dim + 1) % d
            occupied.append(slot)

        self._lo = lo
        self._hi = hi
        self._next_split = next_split
        self._neighbors = self._build_neighbors()
        self._slot_of_peer = {int(p): i for i, p in enumerate(peers)}

    # ------------------------------------------------------------------
    @staticmethod
    def _owner_among(
        point: np.ndarray, slots: np.ndarray, lo: np.ndarray, hi: np.ndarray
    ) -> int:
        inside = np.all((lo[slots] <= point) & (point < hi[slots]), axis=1)
        idx = np.flatnonzero(inside)
        assert len(idx) == 1, "zones must partition the space"
        return int(slots[idx[0]])

    def _build_neighbors(self) -> list[np.ndarray]:
        """Adjacency: zones abutting along one axis, overlapping in all others."""
        lo, hi = self._lo, self._hi
        n, d = lo.shape
        # touch[k][i, j]: zones i, j abut along axis k (incl. torus wrap);
        # overlap[k][i, j]: open intervals overlap along axis k.
        touch = []
        overlap = []
        for k in range(d):
            a0 = lo[:, k][:, None]
            a1 = hi[:, k][:, None]
            b0 = lo[:, k][None, :]
            b1 = hi[:, k][None, :]
            t = (a1 == b0) | (b1 == a0)
            if n > 1:
                t |= ((a1 == COORD_MAX) & (b0 == 0)) | ((b1 == COORD_MAX) & (a0 == 0))
            touch.append(t)
            overlap.append((a0 < b1) & (b0 < a1))
        adjacency = np.zeros((n, n), dtype=bool)
        for k in range(d):
            cond = touch[k].copy()
            for other in range(d):
                if other != k:
                    cond &= overlap[other]
            adjacency |= cond
        np.fill_diagonal(adjacency, False)
        return [np.flatnonzero(adjacency[i]) for i in range(n)]

    # ------------------------------------------------------------------
    @property
    def n_peers(self) -> int:
        """Number of CAN members."""
        return len(self.peers)

    def zone_of_slot(self, slot: int) -> tuple[np.ndarray, np.ndarray]:
        """``(lo, hi)`` bounds of the member at internal ``slot``."""
        return self._lo[slot].copy(), self._hi[slot].copy()

    def slot_of_peer(self, peer: int) -> int:
        """Internal slot of a peer index (KeyError if absent)."""
        return self._slot_of_peer[int(peer)]

    def _owner_slot(self, point: np.ndarray) -> int:
        inside = np.all((self._lo <= point) & (point < self._hi), axis=1)
        idx = np.flatnonzero(inside)
        assert len(idx) == 1, "zones must partition the space"
        return int(idx[0])

    def owner_of(self, key: int) -> int:
        """Peer owning ``key``'s point."""
        return int(self.peers[self._owner_slot(key_point(key, self.params.dimensions))])

    def owner_of_point(self, point: np.ndarray) -> int:
        """Peer owning an explicit coordinate point."""
        return int(self.peers[self._owner_slot(point)])

    # ------------------------------------------------------------------
    def _zone_distance_sq(self, slots: np.ndarray, point: np.ndarray) -> np.ndarray:
        """Squared torus distance from ``point`` to each zone's nearest point."""
        lo = self._lo[slots]
        hi = self._hi[slots]
        inside = (lo <= point) & (point < hi)
        gap_lo = _torus_gap(lo, point)
        gap_hi = _torus_gap(hi - 1, point)
        per_dim = np.where(inside, 0.0, np.minimum(gap_lo, gap_hi).astype(np.float64))
        return (per_dim**2).sum(axis=1)

    def route_to_point(self, source: int, point: np.ndarray) -> list[int]:
        """Greedy geometric route (peer path) to ``point``'s owner."""
        slot = self.slot_of_peer(source)
        target = self._owner_slot(point)
        path = [slot]
        guard = 4 * len(self.peers) + 8
        while slot != target:
            nbrs = self._neighbors[slot]
            dists = self._zone_distance_sq(nbrs, point)
            slot = int(nbrs[int(np.argmin(dists))])
            path.append(slot)
            require(len(path) <= guard, "CAN routing failed to converge")
        return [int(self.peers[s]) for s in path]

    def route(self, source: int, key: int) -> RouteResult:
        """Greedy CAN routing of ``key`` from ``source``."""
        point = key_point(key, self.params.dimensions)
        path = self.route_to_point(source, point)
        return RouteResult(
            source=source,
            key=int(key),
            owner=path[-1],
            path=path,
            latency_ms=self.route_latency(self.latency, path),
            hops_per_layer=[len(path) - 1],
        )

    def neighbor_count(self, peer: int) -> int:
        """Size of a member's neighbour set (CAN's per-node state)."""
        return len(self._neighbors[self.slot_of_peer(peer)])

    # ------------------------------------------------------------------
    # membership (CAN node operations)
    # ------------------------------------------------------------------
    def add_peer(self, peer: int) -> None:
        """A new peer joins at its canonical point (CAN's join).

        The current owner of the point splits its zone along its next
        split dimension and the joiner takes the half containing the
        point — the same rule the constructor applies, so incremental
        joins and batch construction produce the same kind of zone tree.
        """
        peer = int(peer)
        require(peer not in self._slot_of_peer, f"peer {peer} already a member")
        d = self.params.dimensions
        point = peer_point(peer, d)
        owner = self._owner_slot(point)
        dim = int(self._next_split[owner])
        mid = (self._lo[owner, dim] + self._hi[owner, dim]) // 2
        require(
            mid > self._lo[owner, dim],
            "zone too small to split (coordinate resolution exhausted)",
        )
        new_lo = self._lo[owner].copy()
        new_hi = self._hi[owner].copy()
        if point[dim] >= mid:
            new_lo[dim] = mid
            self._hi[owner, dim] = mid
        else:
            new_hi[dim] = mid
            self._lo[owner, dim] = mid
        self._lo = np.vstack([self._lo, new_lo])
        self._hi = np.vstack([self._hi, new_hi])
        self._next_split[owner] = (dim + 1) % d
        self._next_split = np.append(self._next_split, (dim + 1) % d)
        self.peers = np.append(self.peers, peer)
        self._slot_of_peer[peer] = len(self.peers) - 1
        self._neighbors = self._build_neighbors()

    def remove_peer(self, peer: int) -> bool:
        """A peer departs; its zone is taken over (CAN's recovery).

        If some neighbour's zone is the departing zone's *perfect
        sibling* (identical bounds except along one axis where the two
        abut and have equal extent), the sibling absorbs the zone — the
        common case in CAN's binary split tree, and what CAN's takeover
        converges to.  Otherwise membership is rebuilt from scratch:
        the simulator's stand-in for CAN's background zone-reassignment
        defragmentation.  Returns True when a sibling merge happened.
        """
        slot = self.slot_of_peer(peer)
        require(len(self.peers) > 1, "cannot remove the last member")
        merged = False
        d = self.params.dimensions
        for nbr in self._neighbors[slot]:
            nbr = int(nbr)
            diff_dims = [
                k
                for k in range(d)
                if self._lo[slot, k] != self._lo[nbr, k]
                or self._hi[slot, k] != self._hi[nbr, k]
            ]
            if len(diff_dims) != 1:
                continue
            k = diff_dims[0]
            if self._hi[slot, k] == self._lo[nbr, k] or self._hi[nbr, k] == self._lo[slot, k]:
                lo = min(self._lo[slot, k], self._lo[nbr, k])
                hi = max(self._hi[slot, k], self._hi[nbr, k])
                self._lo[nbr, k] = lo
                self._hi[nbr, k] = hi
                merged = True
                self._drop_slot(slot)
                break
        if not merged:
            survivors = self.peers[np.arange(len(self.peers)) != slot]
            rebuilt = CanNetwork(
                survivors, params=self.params, latency=self.latency, seed=0
            )
            self.peers = rebuilt.peers
            self._lo = rebuilt._lo
            self._hi = rebuilt._hi
            self._next_split = rebuilt._next_split
            self._slot_of_peer = rebuilt._slot_of_peer
            self._neighbors = rebuilt._neighbors
        return merged

    def _drop_slot(self, slot: int) -> None:
        keep = np.arange(len(self.peers)) != slot
        self.peers = self.peers[keep]
        self._lo = self._lo[keep]
        self._hi = self._hi[keep]
        self._next_split = self._next_split[keep]
        self._slot_of_peer = {int(p): i for i, p in enumerate(self.peers)}
        self._neighbors = self._build_neighbors()

    def total_volume(self) -> int:
        """Sum of zone volumes — must equal the full torus volume.

        Computed with Python ints: volumes reach ``2**(30*d)`` and would
        overflow int64 beyond two dimensions.
        """
        total = 0
        for slot in range(len(self.peers)):
            vol = 1
            for dim in range(self.params.dimensions):
                vol *= int(self._hi[slot, dim] - self._lo[slot, dim])
            total += vol
        return total
