"""Message-level Chord on the discrete-event engine.

Where :mod:`repro.dht.chord` is a *snapshot* (routing tables derived
from authoritative membership), this module is the *protocol*: nodes
join through a bootstrap contact, learn their successor with a real
lookup, converge finger tables through periodic ``fix_fingers``, repair
successor pointers through ``stabilize``/``notify`` (with successor-list
failover on crashes), and answer recursive lookups hop by hop.

One deliberate generalisation: a node participates in any number of
**named rings**, each with its own successor/predecessor/fingers/
successor-list state, and every protocol message carries the ring name.
Flat Chord is the special case of a single ``"global"`` ring; HIERAS's
protocol node (:mod:`repro.core.hieras_protocol`) reuses this machinery
unchanged for every layer — which is precisely the paper's point that
the underlying algorithm is reused per ring (§3.2).

Integration tests assert that a converged protocol network makes the
same next-hop decisions as the array-backed stack on the same
membership.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable

from repro.sim.engine import Simulator
from repro.sim.network import Message, SimNetwork
from repro.sim.node import SimNode
from repro.util.ids import IdSpace
from repro.util.intervals import in_interval, in_interval_open
from repro.util.validation import require

__all__ = ["ChordProtocolNode", "ProtocolConfig", "RingState", "LookupOutcome"]

GLOBAL_RING = "global"


@dataclass(frozen=True)
class ProtocolConfig:
    """Timer and list-length settings for the protocol stack."""

    stabilize_interval_ms: float = 500.0
    fix_fingers_interval_ms: float = 250.0
    request_timeout_ms: float = 2000.0
    successor_list_len: int = 4

    def __post_init__(self) -> None:
        require(self.stabilize_interval_ms > 0, "stabilize interval must be positive")
        require(self.fix_fingers_interval_ms > 0, "fix_fingers interval must be positive")
        require(self.request_timeout_ms > 0, "request timeout must be positive")
        require(self.successor_list_len >= 1, "successor list must hold >= 1 entry")


@dataclass
class RingState:
    """Per-ring Chord state of one node."""

    name: str
    successor: tuple[int, int] | None = None  # (peer, id)
    predecessor: tuple[int, int] | None = None
    fingers: list[tuple[int, int] | None] = field(default_factory=list)
    successor_list: list[tuple[int, int]] = field(default_factory=list)
    next_finger: int = 1

    def known_successor(self) -> tuple[int, int] | None:
        """Best current successor (primary, else first list entry)."""
        if self.successor is not None:
            return self.successor
        return self.successor_list[0] if self.successor_list else None


@dataclass
class LookupOutcome:
    """Result handed to a lookup callback."""

    key: int
    owner_peer: int
    owner_id: int
    hops: int
    ring: str


class ChordProtocolNode(SimNode):
    """A Chord node that may participate in several named rings."""

    def __init__(
        self,
        peer: int,
        node_id: int,
        space: IdSpace,
        sim: Simulator,
        network: SimNetwork,
        *,
        config: ProtocolConfig | None = None,
    ) -> None:
        super().__init__(peer, sim, network)
        self.node_id = space.validate_id(node_id, name="node_id")
        self.space = space
        self.config = config or ProtocolConfig()
        self.rings: dict[str, RingState] = {}
        self._next_token = 0
        self._pending: dict[int, Callable[[Message | None], None]] = {}
        self.lookup_count = 0
        self.lookup_retry_count = 0

    # ------------------------------------------------------------------
    # ring lifecycle
    # ------------------------------------------------------------------
    def create_ring(self, ring: str) -> None:
        """Become the founding (sole) member of ``ring``."""
        state = RingState(name=ring, fingers=[None] * self.space.bits)
        state.successor = (self.peer, self.node_id)
        self.rings[ring] = state
        self._start_timers(ring)

    def join_ring(self, ring: str, via_peer: int, *, on_done: Callable[[], None] | None = None) -> None:
        """Join ``ring`` through member ``via_peer`` (Chord's join).

        Finds this node's successor inside the ring with one lookup via
        the contact, then lets stabilize/notify/fix-fingers converge the
        rest — the same procedure the paper inherits from Chord (§3.3).
        """
        state = RingState(name=ring, fingers=[None] * self.space.bits)
        self.rings[ring] = state

        def _on_found(msg: Message | None) -> None:
            if msg is None:  # timeout: retry through the same contact
                self.after(self.config.request_timeout_ms, self.join_ring, ring, via_peer)
                return
            state.successor = (msg.payload["owner_peer"], msg.payload["owner_id"])
            self._start_timers(ring)
            if on_done is not None:
                on_done()

        self._remote_find_successor(ring, via_peer, self.node_id, _on_found)

    def leave_ring(self, ring: str) -> None:
        """Gracefully leave ``ring``: hand keys to successor conceptually
        and notify neighbours so pointers repair fast."""
        state = self.rings.pop(ring, None)
        if state is None:
            return
        if state.successor and state.predecessor and state.successor[0] != self.peer:
            self.send(
                state.successor[0],
                "leaving",
                ring=ring,
                pred_peer=state.predecessor[0],
                pred_id=state.predecessor[1],
            )
            self.send(
                state.predecessor[0],
                "leaving_pred",
                ring=ring,
                succ_peer=state.successor[0],
                succ_id=state.successor[1],
            )

    def _start_timers(self, ring: str) -> None:
        self.after(self.config.stabilize_interval_ms, self._stabilize_tick, ring)
        self.after(self.config.fix_fingers_interval_ms, self._fix_fingers_tick, ring)

    # ------------------------------------------------------------------
    # local routing helpers
    # ------------------------------------------------------------------
    def _closest_preceding(self, ring: str, key: int) -> tuple[int, int] | None:
        """Closest known ring member preceding ``key`` (fingers + succ)."""
        state = self.rings[ring]
        size = self.space.size
        best: tuple[int, int] | None = None
        best_dist = 0
        candidates = [f for f in state.fingers if f is not None]
        if state.successor is not None:
            candidates.append(state.successor)
        candidates.extend(state.successor_list)
        for cand in candidates:
            if cand[0] == self.peer:
                continue
            if in_interval_open(cand[1], self.node_id, key, size):
                dist = (cand[1] - self.node_id) % size
                if dist > best_dist:
                    best, best_dist = cand, dist
        return best

    def _owns(self, ring: str, key: int) -> bool:
        """True when ``key`` lies in ``(me, my ring successor]`` — i.e.
        this node is the key's ring predecessor."""
        state = self.rings[ring]
        succ = state.known_successor()
        if succ is None or succ[0] == self.peer:
            return True
        return in_interval(key, self.node_id, succ[1], self.space.size)

    def _successor_list_shortcut(self, ring: str, key: int) -> tuple[int, int] | None:
        """The §3.2 acceleration: jump via the ring's successor list.

        If the key falls within the arc my successor list covers, the
        list member immediately preceding it is the key's ring
        predecessor — return it for a direct hop.  ``None`` when the
        key lies beyond the list (fingers must route normally).
        """
        state = self.rings.get(ring)
        if state is None or not state.successor_list:
            return None
        size = self.space.size
        d_key = (key - self.node_id) % size
        last = state.successor_list[-1]
        if d_key == 0 or d_key > (last[1] - self.node_id) % size:
            return None
        best: tuple[int, int] | None = None
        for entry in state.successor_list:
            if (entry[1] - self.node_id) % size < d_key:
                best = entry
            else:
                break
        return best

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def lookup(
        self, key: int, callback: Callable[[LookupOutcome], None], *, ring: str = GLOBAL_RING
    ) -> None:
        """Resolve ``key``'s owner inside ``ring``; async result via callback."""
        key = self.space.wrap(int(key))
        self.lookup_count += 1
        m = self.network.metrics
        if m is not None:
            m.inc("protocol.lookups")
        token = self._register(lambda msg: self._finish_lookup(msg, callback))
        self._route_find(ring, key, origin=self.peer, hops=0, token=token)

    def _finish_lookup(self, msg: Message | None, callback: Callable[[LookupOutcome], None]) -> None:
        if msg is None:
            return  # lookup lost to a failure; caller may retry
        m = self.network.metrics
        if m is not None:
            m.inc("protocol.lookups_completed")
            m.observe("protocol.lookup_hops", msg.payload["hops"])
        callback(
            LookupOutcome(
                key=msg.payload["key"],
                owner_peer=msg.payload["owner_peer"],
                owner_id=msg.payload["owner_id"],
                hops=msg.payload["hops"],
                ring=msg.payload["ring"],
            )
        )

    def _route_find(self, ring: str, key: int, origin: int, hops: int, token: int) -> None:
        """Process a find-successor step locally (recursive routing)."""
        state = self.rings.get(ring)
        if state is None:
            return
        if self._owns(ring, key):
            succ = state.known_successor() or (self.peer, self.node_id)
            owner = (self.peer, self.node_id) if (key - self.node_id) % self.space.size == 0 else succ
            final_hops = hops if owner[0] == self.peer else hops + 1
            self.send(
                origin,
                "find_done",
                token=token,
                ring=ring,
                key=key,
                owner_peer=owner[0],
                owner_id=owner[1],
                hops=final_hops,
            )
            return
        nxt = self._closest_preceding(ring, key)
        if nxt is None:
            succ = state.known_successor()
            if succ is None or succ[0] == self.peer:
                return
            nxt = succ
        self.send(nxt[0], "find", token=token, ring=ring, key=key, origin=origin, hops=hops + 1)

    def _remote_find_successor(
        self, ring: str, via_peer: int, key: int, callback: Callable[[Message | None], None]
    ) -> None:
        token = self._register(callback, timeout=True)
        self.send(via_peer, "find", token=token, ring=ring, key=key, origin=self.peer, hops=0)

    # ------------------------------------------------------------------
    # iterative lookups (Chord TR's alternative mode: the origin drives
    # every step itself, asking each hop for its best next node; slower
    # in wall-clock round trips but the origin observes every hop and a
    # single dead node costs one timeout, not the whole lookup)
    # ------------------------------------------------------------------
    def lookup_iterative(
        self, key: int, callback: Callable[[LookupOutcome], None], *, ring: str = GLOBAL_RING
    ) -> None:
        """Resolve ``key`` iteratively from this node."""
        key = self.space.wrap(int(key))
        self.lookup_count += 1
        if self.network.metrics is not None:
            self.network.metrics.inc("protocol.lookups")
        self._iterative_step(ring, key, self.peer, 0, callback)

    def _iterative_step(
        self,
        ring: str,
        key: int,
        at_peer: int,
        hops: int,
        callback: Callable[[LookupOutcome], None],
    ) -> None:
        def _on_answer(msg: Message | None) -> None:
            if msg is None:
                return  # queried node died: caller may retry
            if msg.payload["done"]:
                owner = msg.payload["next_peer"]
                owner_id = msg.payload["next_id"]
                final_hops = hops if owner == at_peer else hops + 1
                m = self.network.metrics
                if m is not None:
                    m.inc("protocol.lookups_completed")
                    m.observe("protocol.lookup_hops", final_hops)
                callback(
                    LookupOutcome(
                        key=key, owner_peer=owner, owner_id=owner_id,
                        hops=final_hops, ring=ring,
                    )
                )
                return
            self._iterative_step(
                ring, key, msg.payload["next_peer"], hops + 1, callback
            )

        token = self._register(_on_answer, timeout=True)
        self.send(at_peer, "next_hop_query", token=token, ring=ring, key=key)

    def _answer_next_hop(self, message: Message) -> None:
        p = message.payload
        state = self.rings.get(p["ring"])
        if state is None:
            return
        if self._owns(p["ring"], p["key"]):
            succ = state.known_successor() or (self.peer, self.node_id)
            owner = (
                (self.peer, self.node_id)
                if (p["key"] - self.node_id) % self.space.size == 0
                else succ
            )
            self.reply(
                message, "next_hop_answer", done=True,
                next_peer=owner[0], next_id=owner[1],
            )
            return
        nxt = self._closest_preceding(p["ring"], p["key"])
        if nxt is None:
            nxt = state.known_successor() or (self.peer, self.node_id)
        self.reply(
            message, "next_hop_answer", done=False, next_peer=nxt[0], next_id=nxt[1]
        )

    # ------------------------------------------------------------------
    # stabilization (per ring)
    # ------------------------------------------------------------------
    def _stabilize_tick(self, ring: str) -> None:
        state = self.rings.get(ring)
        if state is None:
            return
        succ = state.known_successor()
        if succ is not None and succ[0] != self.peer:
            token = self._register(lambda msg: self._on_stabilize_reply(ring, msg), timeout=True)
            self.send(succ[0], "get_state", token=token, ring=ring)
        # Chord's check_predecessor: probe the predecessor so a silent
        # crash clears the pointer.  Without this, a successor keeps
        # reporting its dead predecessor and stabilizing nodes re-adopt
        # the corpse as their successor forever.
        pred = state.predecessor
        if pred is not None and pred[0] != self.peer:
            token = self._register(
                lambda msg, probed=pred: self._on_predecessor_probe(ring, probed, msg),
                timeout=True,
            )
            self.send(pred[0], "ping", token=token, ring=ring)
        self.after(self.config.stabilize_interval_ms, self._stabilize_tick, ring)

    def _on_predecessor_probe(
        self, ring: str, probed: tuple[int, int], msg: Message | None
    ) -> None:
        if msg is not None:
            return
        state = self.rings.get(ring)
        if state is not None and state.predecessor == probed:
            # No answer: presume dead and let the next live notify
            # claim the slot.  A false positive (lost pong) heals the
            # same way one stabilize round later.
            state.predecessor = None

    def _on_stabilize_reply(self, ring: str, msg: Message | None) -> None:
        state = self.rings.get(ring)
        if state is None:
            return
        if msg is None:  # successor failed: fail over to successor list
            if state.successor_list:
                state.successor = state.successor_list.pop(0)
            else:
                state.successor = (self.peer, self.node_id)
            return
        succ = state.known_successor()
        assert succ is not None
        pred = msg.payload.get("pred")
        if pred is not None and pred[0] != self.peer:
            if in_interval_open(pred[1], self.node_id, succ[1], self.space.size):
                state.successor = (pred[0], pred[1])
        succ = state.known_successor()
        assert succ is not None
        # Adopt successor's list, shifted by the successor itself.
        remote_list = [tuple(e) for e in msg.payload.get("succ_list", [])]
        merged = [succ, *(e for e in remote_list if e[0] != self.peer)]
        state.successor_list = list(dict.fromkeys(merged))[: self.config.successor_list_len]
        self.send(succ[0], "notify", ring=ring, cand_peer=self.peer, cand_id=self.node_id)

    def _fix_fingers_tick(self, ring: str) -> None:
        state = self.rings.get(ring)
        if state is None:
            return
        i = state.next_finger
        state.next_finger = 1 + (state.next_finger % self.space.bits)
        start = self.space.finger_start(self.node_id, i)

        def _set(msg: Message | None) -> None:
            if ring not in self.rings:
                return
            if msg is None:
                # The refresh died on a failed node — evict the stale
                # entry so routing falls back to closer live fingers /
                # the successor instead of forwarding into the failure
                # forever; a later refresh repopulates the slot.
                self.rings[ring].fingers[i - 1] = None
                return
            self.rings[ring].fingers[i - 1] = (
                msg.payload["owner_peer"],
                msg.payload["owner_id"],
            )

        token = self._register(_set, timeout=True)
        self._route_find(ring, start, origin=self.peer, hops=0, token=token)
        self.after(self.config.fix_fingers_interval_ms, self._fix_fingers_tick, ring)

    # ------------------------------------------------------------------
    # request/response plumbing
    # ------------------------------------------------------------------
    def _register(
        self,
        callback: Callable[[Message | None], None],
        *,
        timeout: bool = False,
        timeout_ms: float | None = None,
    ) -> int:
        self._next_token += 1
        token = (self.peer << 24) | (self._next_token & 0xFFFFFF)
        self._pending[token] = callback
        if timeout:
            self.after(
                timeout_ms if timeout_ms is not None else self.config.request_timeout_ms,
                self._timeout,
                token,
            )
        return token

    def _timeout(self, token: int) -> None:
        callback = self._pending.pop(token, None)
        if callback is not None:
            callback(None)

    def _resolve(self, message: Message) -> None:
        callback = self._pending.pop(message.token, None)
        if callback is not None:
            callback(message)

    # ------------------------------------------------------------------
    # message dispatch
    # ------------------------------------------------------------------
    def handle_message(self, message: Message) -> None:
        kind = message.kind
        p = message.payload
        if kind == "find":
            self._route_find(p["ring"], p["key"], p["origin"], p["hops"], message.token)
        elif kind == "find_done":
            self._resolve(message)
        elif kind == "get_state":
            state = self.rings.get(p["ring"])
            if state is not None:
                self.reply(
                    message,
                    "state",
                    ring=p["ring"],
                    pred=state.predecessor,
                    succ_list=state.successor_list,
                )
        elif kind == "state":
            self._resolve(message)
        elif kind == "notify":
            state = self.rings.get(p["ring"])
            if state is not None:
                cand = (p["cand_peer"], p["cand_id"])
                if cand[0] != self.peer and (
                    state.predecessor is None
                    or in_interval_open(
                        cand[1], state.predecessor[1], self.node_id, self.space.size
                    )
                    or state.predecessor[0] not in self.network
                ):
                    old = state.predecessor
                    state.predecessor = cand
                    self.on_predecessor_changed(p["ring"], old, cand)
                # A sole founder adopts its first contact as successor.
                if state.successor is not None and state.successor[0] == self.peer:
                    state.successor = cand
        elif kind == "leaving":
            state = self.rings.get(p["ring"])
            if state is not None:
                state.predecessor = (p["pred_peer"], p["pred_id"])
        elif kind == "leaving_pred":
            state = self.rings.get(p["ring"])
            if state is not None:
                state.successor = (p["succ_peer"], p["succ_id"])
        elif kind == "ping":
            self.reply(message, "pong", ring=p["ring"])
        elif kind == "pong":
            self._resolve(message)
        elif kind == "next_hop_query":
            self._answer_next_hop(message)
        elif kind == "next_hop_answer":
            self._resolve(message)
        else:
            self.handle_extra(message)

    def handle_extra(self, message: Message) -> None:
        """Hook for subclasses (HIERAS adds ring-table messages)."""
        # Unknown kinds are ignored, like an unversioned wire protocol.
        return

    def on_predecessor_changed(
        self,
        ring: str,
        old: tuple[int, int] | None,
        new: tuple[int, int],
    ) -> None:
        """Hook fired when a ring predecessor is adopted.

        HIERAS uses the global-ring event to hand off stored ring
        tables whose ids now belong to the new predecessor (the same
        key-migration rule Chord applies to stored data on joins).
        """
        return

    # ------------------------------------------------------------------
    # introspection for tests
    # ------------------------------------------------------------------
    def ring_state(self, ring: str = GLOBAL_RING) -> RingState:
        """This node's state in ``ring`` (KeyError if not a member)."""
        return self.rings[ring]
