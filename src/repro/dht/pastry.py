"""Pastry baseline with proximity neighbour selection (paper ref [12]).

The paper positions Pastry as the existing *low-latency* DHT: its
routing tables are built so "topologically adjacent peers have higher
probability to be added" (§1), at the cost of more complex state.  The
paper's future work (§6) plans a comparison of HIERAS against Pastry —
the ``ablation_pastry`` experiment here runs it.

Implementation: classic Pastry with base-``2**b`` digits.

* **Leaf set** — the ``L/2`` numerically closest nodes on each side.
* **Routing table** — one row per shared-prefix length, one column per
  next digit; each entry is chosen by *proximity neighbour selection*
  (PNS): among all nodes with the required prefix, the one with the
  lowest measured latency (sampled, as deployed Pastry does, rather
  than exhaustively).
* **Routing rule** — deliver within leaf-set range to the numerically
  closest node; otherwise forward along the routing table entry that
  extends the shared prefix; fall back to any known node that is both
  prefix-compatible and numerically closer (Pastry's rare case).

Ownership in Pastry is *numerical closeness* (either direction), unlike
Chord's successor rule; :meth:`PastryNetwork.owner_of` implements that.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dht.base import DHTNetwork, RouteResult, ZeroLatency
from repro.topology.base import LatencyModel
from repro.util.ids import IdSpace
from repro.util.intervals import ring_distance
from repro.util.rng import make_rng
from repro.util.validation import require

__all__ = ["PastryParams", "PastryNetwork"]


@dataclass(frozen=True)
class PastryParams:
    """Structural parameters of a Pastry overlay."""

    #: Bits per digit (base ``2**b`` ids); Pastry's default is 4.
    b: int = 4
    #: Leaf-set size (``leaf_set/2`` on each side).
    leaf_set: int = 16
    #: PNS candidate sample size per routing-table entry.
    pns_samples: int = 8

    def __post_init__(self) -> None:
        require(1 <= self.b <= 8, "b must be in [1, 8]")
        require(self.leaf_set >= 2 and self.leaf_set % 2 == 0, "leaf_set must be even >= 2")
        require(self.pns_samples >= 1, "pns_samples must be >= 1")


class PastryNetwork(DHTNetwork):
    """A static Pastry overlay with PNS routing tables."""

    def __init__(
        self,
        space: IdSpace,
        ids: np.ndarray,
        *,
        params: PastryParams | None = None,
        latency: LatencyModel | None = None,
        seed: int | np.random.Generator = 0,
    ) -> None:
        self.params = params or PastryParams()
        require(
            space.bits % self.params.b == 0,
            f"id width {space.bits} must be a multiple of digit width {self.params.b}",
        )
        ids = np.asarray(ids, dtype=np.uint64)
        require(len(ids) >= 1, "need at least one peer")
        require(len(np.unique(ids)) == len(ids), "node ids must be unique")
        self.space = space
        self.latency = latency if latency is not None else ZeroLatency()
        self._id_of_peer = ids.copy()
        order = np.argsort(ids)
        self._sorted_ids = ids[order]
        self._sorted_peers = np.arange(len(ids), dtype=np.int64)[order]
        self._pos_of_peer = np.empty(len(ids), dtype=np.int64)
        self._pos_of_peer[self._sorted_peers] = np.arange(len(ids))
        self._levels = space.bits // self.params.b
        self._rng = make_rng(seed)
        self._tables = self._build_tables()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _digit(self, value: np.ndarray | int, level: int) -> np.ndarray | int:
        """Digit of ``value`` at ``level`` (0 = most significant)."""
        shift = self.space.bits - self.params.b * (level + 1)
        mask = (1 << self.params.b) - 1
        if isinstance(value, np.ndarray):
            return (value >> np.uint64(shift)).astype(np.uint64) & np.uint64(mask)
        return (int(value) >> shift) & mask

    def _build_tables(self) -> list[dict[tuple[int, int], int]]:
        """Per-peer routing tables via sampled PNS.

        Nodes are grouped by id prefix level by level; within a group,
        the bucket of nodes whose next digit is ``d`` supplies the
        candidates for every other member's ``(level, d)`` entry, and
        the lowest-latency sampled candidate wins.
        """
        n = len(self._id_of_peer)
        tables: list[dict[tuple[int, int], int]] = [dict() for _ in range(n)]
        ids = self._id_of_peer
        groups: dict[int, np.ndarray] = {0: np.arange(n)}
        for level in range(self._levels):
            next_groups: dict[int, np.ndarray] = {}
            digits = np.asarray(self._digit(ids, level), dtype=np.int64)
            for prefix, members in groups.items():
                if len(members) <= 1:
                    continue
                member_digits = digits[members]
                buckets = {
                    int(d): members[member_digits == d]
                    for d in np.unique(member_digits)
                }
                for d, bucket in buckets.items():
                    next_groups[(prefix << self.params.b) | d] = bucket
                for peer in members:
                    my_digit = int(digits[peer])
                    for d, bucket in buckets.items():
                        if d == my_digit:
                            continue
                        cand = bucket
                        if len(cand) > self.params.pns_samples:
                            cand = self._rng.choice(
                                cand, size=self.params.pns_samples, replace=False
                            )
                        delays = self.latency.to_targets(int(peer), cand)
                        tables[int(peer)][(level, d)] = int(cand[int(np.argmin(delays))])
            groups = next_groups
            if not groups:
                break
        return tables

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def n_peers(self) -> int:
        """Number of peers."""
        return len(self._id_of_peer)

    def id_of(self, peer: int) -> int:
        """Node id of ``peer``."""
        return int(self._id_of_peer[peer])

    def owner_of(self, key: int) -> int:
        """Peer whose id is numerically closest to ``key`` (Pastry rule)."""
        key = self.space.wrap(int(key))
        n = len(self._sorted_ids)
        idx = int(np.searchsorted(self._sorted_ids, key))
        succ = idx % n
        pred = (idx - 1) % n
        d_succ = ring_distance(key, int(self._sorted_ids[succ]), self.space.size)
        d_pred = ring_distance(key, int(self._sorted_ids[pred]), self.space.size)
        pos = succ if d_succ < d_pred or (d_succ == d_pred and succ < pred) else pred
        return int(self._sorted_peers[pos])

    def leaf_set(self, peer: int) -> np.ndarray:
        """Peer indices of ``peer``'s leaf set (L/2 each side)."""
        half = self.params.leaf_set // 2
        n = len(self._sorted_ids)
        pos = int(self._pos_of_peer[peer])
        offsets = [k for k in range(-half, half + 1) if k != 0]
        return np.asarray(
            [int(self._sorted_peers[(pos + k) % n]) for k in offsets], dtype=np.int64
        )[: min(2 * half, n - 1)]

    def shared_prefix_level(self, a: int, b: int) -> int:
        """Number of leading base-``2**b`` digits ids ``a`` and ``b`` share."""
        level = 0
        while level < self._levels and self._digit(a, level) == self._digit(b, level):
            level += 1
        return level

    def routing_table_entry(self, peer: int, level: int, digit: int) -> int | None:
        """PNS routing-table entry of ``peer`` (None if empty)."""
        return self._tables[peer].get((level, digit))

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def _within_leaf_range(self, peer: int, key: int) -> bool:
        half = min(self.params.leaf_set // 2, (self.n_peers - 1) // 2)
        if half == 0:
            return True
        n = len(self._sorted_ids)
        pos = int(self._pos_of_peer[peer])
        lo = int(self._sorted_ids[(pos - half) % n])
        hi = int(self._sorted_ids[(pos + half) % n])
        d_total = (hi - lo) % self.space.size
        return (key - lo) % self.space.size <= d_total

    def route(self, source: int, key: int) -> RouteResult:
        """Pastry prefix routing from ``source`` to ``key``'s owner."""
        key = self.space.wrap(int(key))
        owner = self.owner_of(key)
        cur = source
        path = [cur]
        guard = 4 * self._levels + self.n_peers
        while cur != owner:
            nxt = self._next_hop(cur, key)
            require(nxt != cur and len(path) <= guard, "Pastry routing stalled")
            cur = nxt
            path.append(cur)
        return RouteResult(
            source=source,
            key=key,
            owner=owner,
            path=path,
            latency_ms=self.route_latency(self.latency, path),
            hops_per_layer=[len(path) - 1],
        )

    def _next_hop(self, cur: int, key: int) -> int:
        size = self.space.size
        cur_id = int(self._id_of_peer[cur])
        if self._within_leaf_range(cur, key):
            # Deliver to the numerically closest node among self + leaves.
            best, best_d = cur, ring_distance(key, cur_id, size)
            for leaf in self.leaf_set(cur):
                d = ring_distance(key, int(self._id_of_peer[leaf]), size)
                if d < best_d or (d == best_d and leaf < best):
                    best, best_d = int(leaf), d
            return best
        level = self.shared_prefix_level(cur_id, key)
        entry = self._tables[cur].get((level, int(self._digit(key, level))))
        if entry is not None:
            return entry
        # Rare case: no table entry — fall back to any known node with a
        # prefix at least as long and numerically closer to the key.
        cur_d = ring_distance(key, cur_id, size)
        candidates = list(self.leaf_set(cur)) + list(self._tables[cur].values())
        best, best_d = cur, cur_d
        for cand in candidates:
            cid = int(self._id_of_peer[cand])
            if self.shared_prefix_level(cid, key) >= level:
                d = ring_distance(key, cid, size)
                if d < best_d:
                    best, best_d = int(cand), d
        return best
