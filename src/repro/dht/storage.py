"""A replicated key-value store over a ring DHT.

The paper's lookups exist to serve a storage layer: "the node returns
the location information of the requested file to the originator"
(§3.2).  :class:`DHTStore` supplies that layer over any ring network
(flat Chord or HIERAS): values live at the key's owner and are
replicated on the owner's ``r`` successors, reads route to the owner,
and :meth:`repair` re-establishes placement after membership changes —
the standard Chord/CFS data discipline the paper inherits "for free"
from its underlying algorithm (§3.2's third advantage).

The store works against the trace-driven stacks; it is deliberately
synchronous (no message loss) — the fault-aware discipline (per-replica
``route_lossy`` contacts, chain/quorum consistency, hinted handoff)
lives in :mod:`repro.replication`, and the protocol-level durability
story is exercised by the churn benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.dht.base import RouteResult
from repro.util.validation import require

__all__ = ["DHTStore", "StoreStats"]


@dataclass
class StoreStats:
    """Operation counters for overhead reporting."""

    puts: int = 0
    gets: int = 0
    get_hops: int = 0
    get_latency_ms: float = 0.0
    replicas_written: int = 0
    repairs: int = 0
    lost_after_repair: int = 0


class DHTStore:
    """Replicated KV storage over a ring network.

    Parameters
    ----------
    network:
        A :class:`~repro.dht.chord.ChordNetwork` or
        :class:`~repro.core.hieras.HierasNetwork` — anything with
        ``owner_of``, ``route``, ``successor_list`` (HIERAS exposes the
        global ring's), and stable peer indices.
    replicas:
        Copies beyond the owner (CFS uses a handful).
    restore_lost:
        When True (default), :meth:`repair` restores values whose every
        replica crashed from the authoritative audit catalogue — useful
        when the store is the measurement harness.  When False, such
        values are genuinely gone (reads return ``None``), which is the
        realistic durability model churn experiments need.
    """

    def __init__(
        self, network: Any, *, replicas: int = 2, restore_lost: bool = True
    ) -> None:
        require(replicas >= 0, "replicas must be >= 0")
        self.network = network
        self.replicas = replicas
        self.restore_lost = restore_lost
        self._lost: set[int] = set()
        #: Per-peer storage: peer -> {key -> value}.
        self._stored: dict[int, dict[int, Any]] = {}
        #: Authoritative catalogue for repair audits: key -> value.
        self._catalog: dict[int, Any] = {}
        self.stats = StoreStats()

    # ------------------------------------------------------------------
    def _space(self):
        return self.network.space

    def _replica_peers(self, key: int) -> list[int]:
        owner = self.network.owner_of(key)
        peers = [owner]
        if self.replicas > 0:
            # On tiny rings (replicas >= n-1) the successor list wraps
            # and would re-include the owner, double-counting
            # replicas_written; dedupe while preserving order.
            for peer in self._successors_of(owner):
                if peer not in peers:
                    peers.append(peer)
        return peers

    def _successors_of(self, peer: int) -> list[int]:
        if hasattr(self.network, "successor_list"):
            return self.network.successor_list(peer, self.replicas)
        # HIERAS: use the global ring directly.
        ring = self.network.global_ring
        pos = ring.pos_of_id(self.network.id_of(peer))
        return [
            int(ring.peers[p]) for p in ring.successor_list(pos, self.replicas)
        ]

    # ------------------------------------------------------------------
    def put(self, name: str, value: Any) -> int:
        """Store ``value`` under ``name``; returns the key used.

        Writes land on the key's owner and its ``replicas`` successors.
        """
        key = self._space().hash_key(name)
        self._catalog[key] = value
        self._lost.discard(key)  # a fresh publish resurrects a lost key
        for peer in self._replica_peers(key):
            self._stored.setdefault(peer, {})[key] = value
            self.stats.replicas_written += 1
        self.stats.puts += 1
        return key

    def get(self, source: int, name: str) -> tuple[Any | None, RouteResult]:
        """Route from ``source`` to ``name``'s owner and read the value.

        Returns ``(value_or_None, route)``; the route carries the hops
        and latency the lookup cost.
        """
        key = self._space().hash_key(name)
        route = self.network.route(source, key)
        self.stats.gets += 1
        self.stats.get_hops += route.hops
        self.stats.get_latency_ms += route.latency_ms
        value = self._stored.get(route.owner, {}).get(key)
        if value is None:
            # Owner lost it (e.g. churn before repair): any replica that
            # the owner's successor list reaches may still hold it.
            # Each probe is one extra message from the owner — charge a
            # hop and the link's delay, probed or not answered alike.
            for peer in self._successors_of(route.owner):
                self.stats.get_hops += 1
                self.stats.get_latency_ms += float(
                    self.network.latency.pair(route.owner, peer)
                )
                value = self._stored.get(peer, {}).get(key)
                if value is not None:
                    break
        return value, route

    # ------------------------------------------------------------------
    def drop_peer_state(self, peer: int) -> None:
        """Forget everything a crashed peer stored (its disk is gone)."""
        self._stored.pop(peer, None)

    def repair(self) -> int:
        """Re-establish ownership/replication after membership changes.

        Walks the catalogue, rewrites every key to its *current* owner
        and successor set, and drops copies from peers that should no
        longer hold them.  Returns the number of keys whose owner
        changed.  (This is the offline equivalent of Chord's background
        transfer on join/leave.)
        """
        moved = 0
        still_held: set[int] = set()
        for held in self._stored.values():
            still_held.update(held)
        desired: dict[int, dict[int, Any]] = {}
        # Sorted walk: per-peer store dicts are rebuilt in key order, so
        # the post-repair layout is canonical for a given membership.
        for key, value in sorted(self._catalog.items()):
            if key in self._lost:
                continue
            if key not in still_held:
                # Every replica crashed before this repair ran: a real
                # deployment has lost the value.
                self.stats.lost_after_repair += 1
                if not self.restore_lost:
                    self._lost.add(key)
                    continue
            peers = self._replica_peers(key)
            if key not in self._stored.get(peers[0], {}):
                moved += 1
            for peer in peers:
                desired.setdefault(peer, {})[key] = value
        self._stored = desired
        self.stats.repairs += 1
        return moved

    # ------------------------------------------------------------------
    def holder_count(self, name: str) -> int:
        """How many peers currently hold ``name``."""
        key = self._space().hash_key(name)
        return sum(1 for held in self._stored.values() if key in held)

    def stored_keys(self, peer: int) -> set[int]:
        """Keys currently held by ``peer``."""
        return set(self._stored.get(peer, {}))

    def __len__(self) -> int:
        return len(self._catalog)
