"""Common DHT abstractions: route results and the network interface.

Every routing stack in the repository (flat Chord, CAN, Pastry, HIERAS
over either substrate) produces :class:`RouteResult` records, so the
analysis and experiment layers are substrate-agnostic.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterable
from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

import numpy as np

from repro.metrics.spans import HopRecord, LookupSpan, SpanRecorder
from repro.topology.base import LatencyModel

__all__ = ["RouteResult", "DHTNetwork", "StorageListener", "ZeroLatency"]


@runtime_checkable
class StorageListener(Protocol):
    """Storage layer notified when a network's membership changes.

    ``drop_peer_state`` is called for every peer of a ``remove_peers``
    wave (the departed peer's disk is gone with it); listeners that also
    define ``on_revive(peers)`` hear about ``revive_peers`` waves — the
    replication layer replays hinted-handoff queues there.  Listeners
    that define ``on_graceful_leave(peers)`` additionally hear about
    *announced* departures (``remove_peers(..., graceful=True)``)
    before the departing disks are dropped, so they can hand keys and
    hints off to the peers' successors while the data still exists.
    """

    def drop_peer_state(self, peer: int) -> None: ...


class ZeroLatency(LatencyModel):
    """Latency model that reports 0 ms for every pair.

    Useful when only hop counts matter (several unit tests) or when no
    topology is attached to a network.
    """

    def pair(self, u: int, v: int) -> float:
        return 0.0

    def pairs(self, us: np.ndarray, vs: np.ndarray) -> np.ndarray:
        return np.zeros(len(us), dtype=np.float64)


@dataclass
class RouteResult:
    """Outcome of routing one key from one source peer.

    Attributes
    ----------
    source:
        Originating peer index.
    key:
        The looked-up identifier.
    owner:
        Peer index of the node responsible for ``key`` (the global
        successor of the key for ring DHTs).
    path:
        Peer indices visited, starting with ``source`` and ending with
        ``owner``; ``len(path) - 1`` message forwards were taken.
    latency_ms:
        Sum of per-hop link delays along ``path``.
    hops_per_layer:
        For hierarchical routing, hops taken in each layer, ordered from
        the **lowest** layer (searched first) up to layer 1 (the global
        ring).  Flat DHTs report a single-element list.
    success:
        Whether the lookup reached the key's (live) owner.  Plain
        ``route`` always succeeds; the failure-aware ``route_lossy``
        mode reports lookups that died mid-route.
    timeouts:
        Number of timed-out contact attempts paid along the way (0 on
        the fault-free path).
    retry_latency_ms:
        Total timeout/backoff penalty, *excluded* from ``latency_ms``
        so link-delay analyses are unaffected; see
        :attr:`total_latency_ms`.
    """

    source: int
    key: int
    owner: int
    path: list[int]
    latency_ms: float
    hops_per_layer: list[int] = field(default_factory=list)
    success: bool = True
    timeouts: int = 0
    retry_latency_ms: float = 0.0

    @property
    def hops(self) -> int:
        """Number of message forwards (``len(path) - 1``)."""
        return len(self.path) - 1

    @property
    def total_latency_ms(self) -> float:
        """Link delays plus timeout penalties — the user-visible wait."""
        return self.latency_ms + self.retry_latency_ms

    @property
    def low_layer_hops(self) -> int:
        """Hops taken below the global ring (0 for flat DHTs)."""
        if len(self.hops_per_layer) <= 1:
            return 0
        return sum(self.hops_per_layer[:-1])

    @property
    def top_layer_hops(self) -> int:
        """Hops taken in the global (highest) ring."""
        if not self.hops_per_layer:
            return self.hops
        return self.hops_per_layer[-1]


class DHTNetwork(ABC):
    """Interface every routing stack implements.

    Peers are integers ``0..n_peers-1``; keys live in the network's
    identifier space.  ``route`` must be deterministic given the
    network state.

    Observability (DESIGN.md §7): every stack carries a ``metrics``
    slot, ``None`` by default.  When a
    :class:`~repro.metrics.spans.SpanRecorder` is attached via
    :meth:`enable_tracing`, instrumented ``route``/``route_lossy``
    implementations emit one :class:`~repro.metrics.spans.LookupSpan`
    per lookup, with per-hop ring layers and link delays.  The
    uninstrumented path pays a single ``is None`` check — span inputs
    (per-hop latencies, layer labels) are only built after the guard.
    """

    #: Per-lookup span recorder; ``None`` disables collection entirely.
    metrics: SpanRecorder | None = None

    #: Storage layers notified on membership waves (see attach_store).
    _stores: tuple[StorageListener, ...] = ()

    # ------------------------------------------------------------------
    # storage attachment
    # ------------------------------------------------------------------
    def attach_store(self, store: StorageListener) -> StorageListener:
        """Subscribe a storage layer to membership waves.

        After attachment, every ``remove_peers`` wave calls the store's
        ``drop_peer_state`` for each departed peer (its disk leaves with
        it), and every ``revive_peers`` wave calls ``on_revive`` when
        the store defines it — callers no longer have to remember to
        mirror membership into storage per peer.
        """
        self._stores = (*self._stores, store)
        return store

    def detach_store(self, store: StorageListener) -> None:
        """Unsubscribe a previously-attached storage layer."""
        self._stores = tuple(s for s in self._stores if s is not store)

    def _notify_removed(self, peers: Iterable[int]) -> None:
        """Fan a remove wave out to attached stores (disks are gone)."""
        for store in self._stores:
            for peer in peers:
                store.drop_peer_state(int(peer))

    def _notify_departing(self, peers: Iterable[int]) -> None:
        """Announce a graceful leave to stores *before* disks drop.

        Called by ``remove_peers(..., graceful=True)`` after the
        membership flip (so successors are already re-assigned) but
        before ``_notify_removed`` destroys the departing disks; stores
        that define ``on_graceful_leave`` hand keys off there.
        """
        peer_list = [int(p) for p in peers]
        for store in self._stores:
            on_leave = getattr(store, "on_graceful_leave", None)
            if on_leave is not None:
                on_leave(peer_list)

    def _notify_revived(self, peers: Iterable[int]) -> None:
        """Fan a revive wave out to stores that listen for rejoins."""
        peer_list = [int(p) for p in peers]
        for store in self._stores:
            on_revive = getattr(store, "on_revive", None)
            if on_revive is not None:
                on_revive(peer_list)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def enable_tracing(self, recorder: SpanRecorder) -> SpanRecorder:
        """Attach a span recorder; every subsequent lookup is traced."""
        self.metrics = recorder
        return recorder

    def disable_tracing(self) -> None:
        """Detach the recorder — routing reverts to the zero-cost path."""
        self.metrics = None

    def record_route(
        self,
        label: str,
        result: "RouteResult",
        *,
        layers: list[int] | None = None,
        rings: list[str] | None = None,
        cache: list[str] | None = None,
    ) -> None:
        """Build and record the span of one finished lookup.

        ``layers``/``rings`` give each hop's ring layer and ring name;
        flat DHTs omit them (every hop runs in the single global ring).
        ``cache`` optionally annotates hops produced by the caching
        subsystem (``""`` entries mean an ordinary routed hop).
        Callers must have checked ``self.metrics is not None`` — this
        method assumes a live recorder.
        """
        n = len(result.path) - 1
        if layers is None:
            layers = [1] * n
        if rings is None:
            rings = ["global"] * n
        latency: LatencyModel | None = getattr(self, "latency", None)
        hops: list[HopRecord] = []
        for i in range(n):
            u, v = result.path[i], result.path[i + 1]
            delay = float(latency.pair(u, v)) if latency is not None else 0.0
            hops.append(
                HopRecord(  # lint: allow-loop-alloc -- traced routes only; metrics-off lookups never reach record_route
                    index=i, src=u, dst=v, layer=layers[i], ring=rings[i],
                    latency_ms=delay,
                    cache=cache[i] if cache is not None else "",
                )
            )
        self.metrics.record(  # lint: allow-metrics-guard -- documented contract: callers check `self.metrics is not None` before record_route
            LookupSpan(
                network=label,
                source=result.source,
                key=result.key,
                owner=result.owner,
                success=result.success,
                hops=hops,
                timeouts=result.timeouts,
                retry_latency_ms=result.retry_latency_ms,
            )
        )

    def hop_layer_info(self, result: "RouteResult") -> tuple[list[int], list[str]]:
        """Per-hop ``(layers, rings)`` labels for one finished lookup.

        The default covers flat DHTs — every hop runs in the single
        global ring.  Hierarchical stacks override this to recover the
        ring each path edge ran in; the caching subsystem uses it to
        relabel truncated paths.
        """
        n = len(result.path) - 1
        return [1] * n, ["global"] * n

    @property
    @abstractmethod
    def n_peers(self) -> int:
        """Current number of peers."""

    @abstractmethod
    def owner_of(self, key: int) -> int:
        """Peer index responsible for ``key``."""

    @abstractmethod
    def route(self, source: int, key: int) -> RouteResult:
        """Route ``key`` starting from peer ``source``."""

    # ------------------------------------------------------------------
    def route_latency(self, latency: LatencyModel, path: list[int]) -> float:
        """Sum link delays along a peer path (vectorised)."""
        if len(path) < 2:
            return 0.0
        arr = np.asarray(path, dtype=np.int64)
        return float(latency.pairs(arr[:-1], arr[1:]).sum())
