"""CAN *multiple realities* (the CAN paper's routing improvement).

The CAN design (paper reference [8]) improves path length by
maintaining ``r`` independent coordinate spaces — *realities*.  Every
node owns one zone per reality; a key is stored at its point owner in
every reality.  Routing exploits all of them simultaneously: at each
hop the message may jump to the neighbour closest to the target across
*any* reality, and it completes as soon as the current node owns the
key's point in *some* reality.

This matters here as a second axis of comparison for HIERAS-over-CAN:
both multiple realities and the HIERAS layering attack CAN's long
routes, through redundancy vs through topology-awareness — the
``ablation_can`` discussion in EXPERIMENTS.md contrasts them.
"""

from __future__ import annotations

import numpy as np

from repro.dht.base import DHTNetwork, RouteResult, ZeroLatency
from repro.dht.can import CanNetwork, CanParams, key_point
from repro.topology.base import LatencyModel
from repro.util.validation import require

__all__ = ["MultiRealityCan"]


class MultiRealityCan(DHTNetwork):
    """``r`` independent CANs over the same peers, routed jointly."""

    def __init__(
        self,
        peers: np.ndarray,
        *,
        realities: int = 3,
        params: CanParams | None = None,
        latency: LatencyModel | None = None,
        seed: int = 0,
    ) -> None:
        require(realities >= 1, "need at least one reality")
        peers = np.asarray(peers, dtype=np.int64)
        self.params = params or CanParams()
        self.latency = latency if latency is not None else ZeroLatency()
        self.realities = [
            CanNetwork(
                peers,
                params=self.params,
                latency=self.latency,
                # Distinct join orders give independent zone layouts;
                # join POINTS stay the per-peer canonical ones, which is
                # fine — independence comes from the split sequence.
                seed=seed * 7919 + r,
            )
            for r in range(realities)
        ]
        self.peers = peers

    # ------------------------------------------------------------------
    @property
    def n_peers(self) -> int:
        """Number of peers."""
        return len(self.peers)

    @property
    def n_realities(self) -> int:
        """Number of coordinate-space realities."""
        return len(self.realities)

    def owner_of(self, key: int) -> int:
        """The key's owner in reality 0 (the canonical replica)."""
        return self.realities[0].owner_of(key)

    def owners_of(self, key: int) -> list[int]:
        """The key's owner in every reality (its replica set)."""
        return [can.owner_of(key) for can in self.realities]

    def neighbor_state_size(self, peer: int) -> int:
        """Total neighbour entries across realities (the cost side)."""
        return sum(can.neighbor_count(peer) for can in self.realities)

    # ------------------------------------------------------------------
    def route(self, source: int, key: int) -> RouteResult:
        """Greedy routing over the union of all realities' neighbours.

        Terminates at the first node owning the point in any reality.
        """
        point = key_point(int(key), self.params.dimensions)
        owners = set(self.owners_of(int(key)))
        cur = source
        path = [cur]
        guard = 4 * self.n_peers + 8
        while cur not in owners:
            best_peer = None
            best_dist = None
            for can in self.realities:
                slot = can.slot_of_peer(cur)
                nbrs = can._neighbors[slot]
                if len(nbrs) == 0:
                    continue
                dists = can._zone_distance_sq(nbrs, point)
                i = int(np.argmin(dists))
                if best_dist is None or dists[i] < best_dist:
                    best_dist = float(dists[i])
                    best_peer = int(can.peers[int(nbrs[i])])
            require(best_peer is not None, "multi-reality routing has no neighbours")
            cur = best_peer
            path.append(cur)
            require(len(path) <= guard, "multi-reality routing failed to converge")
        return RouteResult(
            source=source,
            key=int(key),
            owner=cur,
            path=path,
            latency_ms=self.route_latency(self.latency, path),
            hops_per_layer=[len(path) - 1],
        )
