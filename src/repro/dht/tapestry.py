"""Tapestry baseline (paper reference [14]).

The paper's related work and future work name Tapestry, with Pastry, as
the existing locality-aware DHTs to compare against.  Tapestry routes by
resolving the destination id one digit at a time — like Pastry — but
differs in two ways that matter for a comparison:

* **Surrogate routing** instead of leaf sets: when the required routing
  table entry is empty, the message deterministically "routes around
  the hole" by trying the next digit value (wrapping), at the same
  level; the node reached when every entry at the current level maps to
  itself is the key's unique *surrogate root* — ownership needs no
  neighbour sets at all.
* Ids are resolved from the **least-significant digit upward** in
  classic Plaxton/Tapestry fashion (we follow the common
  most-significant-first presentation used in later Tapestry papers; the
  mechanics are symmetric).

Like :mod:`repro.dht.pastry`, routing-table entries are chosen with
proximity (lowest measured latency among candidates), which is
Tapestry's "closest digit-matching neighbour" rule.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dht.base import DHTNetwork, RouteResult, ZeroLatency
from repro.topology.base import LatencyModel
from repro.util.ids import IdSpace
from repro.util.rng import make_rng
from repro.util.validation import require

__all__ = ["TapestryParams", "TapestryNetwork"]


@dataclass(frozen=True)
class TapestryParams:
    """Structural parameters of a Tapestry overlay."""

    #: Bits per digit (base ``2**b``); Tapestry deployments used b=4.
    b: int = 4
    #: PNS candidate sample size per routing-table entry.
    pns_samples: int = 8

    def __post_init__(self) -> None:
        require(1 <= self.b <= 8, "b must be in [1, 8]")
        require(self.pns_samples >= 1, "pns_samples must be >= 1")


class TapestryNetwork(DHTNetwork):
    """A static Tapestry overlay with surrogate routing."""

    def __init__(
        self,
        space: IdSpace,
        ids: np.ndarray,
        *,
        params: TapestryParams | None = None,
        latency: LatencyModel | None = None,
        seed: int | np.random.Generator = 0,
    ) -> None:
        self.params = params or TapestryParams()
        require(
            space.bits % self.params.b == 0,
            f"id width {space.bits} must be a multiple of digit width {self.params.b}",
        )
        ids = np.asarray(ids, dtype=np.uint64)
        require(len(ids) >= 1, "need at least one peer")
        require(len(np.unique(ids)) == len(ids), "node ids must be unique")
        self.space = space
        self.latency = latency if latency is not None else ZeroLatency()
        self._id_of_peer = ids.copy()
        self._levels = space.bits // self.params.b
        self._base = 1 << self.params.b
        self._rng = make_rng(seed)
        self._tables = self._build_tables()

    # ------------------------------------------------------------------
    def _digit(self, value: int, level: int) -> int:
        shift = self.space.bits - self.params.b * (level + 1)
        return (int(value) >> shift) & (self._base - 1)

    def _build_tables(self) -> list[dict[tuple[int, int], int]]:
        """Routing tables: entry (level, d) = nearest node whose id
        shares my first ``level`` digits and has digit ``d`` next."""
        n = len(self._id_of_peer)
        tables: list[dict[tuple[int, int], int]] = [dict() for _ in range(n)]
        ids = self._id_of_peer
        groups: dict[int, np.ndarray] = {0: np.arange(n)}
        for level in range(self._levels):
            shift = self.space.bits - self.params.b * (level + 1)
            digits = ((ids >> np.uint64(shift)) & np.uint64(self._base - 1)).astype(np.int64)
            next_groups: dict[int, np.ndarray] = {}
            for prefix, members in groups.items():
                if len(members) <= 1:
                    continue
                member_digits = digits[members]
                buckets = {
                    int(d): members[member_digits == d] for d in np.unique(member_digits)
                }
                for d, bucket in buckets.items():
                    next_groups[(prefix << self.params.b) | d] = bucket
                for peer in members:
                    for d, bucket in buckets.items():
                        cand = bucket[bucket != peer]
                        if len(cand) == 0:
                            continue
                        if len(cand) > self.params.pns_samples:
                            cand = self._rng.choice(
                                cand, size=self.params.pns_samples, replace=False
                            )
                        delays = self.latency.to_targets(int(peer), cand)
                        tables[int(peer)][(level, d)] = int(cand[int(np.argmin(delays))])
            groups = next_groups
            if not groups:
                break
        return tables

    # ------------------------------------------------------------------
    @property
    def n_peers(self) -> int:
        """Number of peers."""
        return len(self._id_of_peer)

    def id_of(self, peer: int) -> int:
        """Node id of ``peer``."""
        return int(self._id_of_peer[peer])

    def _next_hop(self, cur: int, key: int) -> int | None:
        """One Tapestry routing step; None when ``cur`` is the root.

        Resolve the first digit of ``key`` that differs from ``cur``'s
        id; if the exact entry is missing, surrogate-route by trying the
        next digit values in cyclic order at the same level (restricted
        to entries the node actually has, plus itself).
        """
        cur_id = self.id_of(cur)
        for level in range(self._levels):
            want = self._digit(key, level)
            have = self._digit(cur_id, level)
            if want == have:
                continue
            entry = self._tables[cur].get((level, want))
            if entry is not None:
                return entry
            # Surrogate: walk digit values cyclically until one resolves
            # (or we come back to our own digit — then we keep the level
            # resolved as ourselves and continue to the next level).
            for offset in range(1, self._base):
                d = (want + offset) % self._base
                if d == have:
                    break
                entry = self._tables[cur].get((level, d))
                if entry is not None:
                    return entry
            continue
        return None

    def owner_of(self, key: int) -> int:
        """The key's surrogate root (unique, neighbour-set-free)."""
        key = self.space.wrap(int(key))
        cur = 0
        guard = self._levels * self._base + self.n_peers
        for _ in range(guard):
            nxt = self._next_hop(cur, key)
            if nxt is None:
                return cur
            cur = nxt
        raise RuntimeError("surrogate routing failed to converge")

    def route(self, source: int, key: int) -> RouteResult:
        """Tapestry prefix routing with surrogate holes."""
        key = self.space.wrap(int(key))
        cur = source
        path = [cur]
        guard = self._levels * self._base + self.n_peers
        while True:
            nxt = self._next_hop(cur, key)
            if nxt is None:
                break
            cur = nxt
            path.append(cur)
            require(len(path) <= guard, "Tapestry routing stalled")
        return RouteResult(
            source=source,
            key=key,
            owner=cur,
            path=path,
            latency_ms=self.route_latency(self.latency, path),
            hops_per_layer=[len(path) - 1],
        )
