"""Chord: the flat DHT baseline and HIERAS's underlying algorithm.

This is the trace-driven (array-backed) Chord: membership is a snapshot,
routing walks finger tables exactly as Stoica et al. define them (and as
the paper's baseline does), and per-hop latencies come from a
:class:`~repro.topology.base.LatencyModel`.  The message-level protocol
variant (join, stabilize, fix-fingers on the discrete-event engine)
lives in :mod:`repro.dht.chord_protocol`; integration tests assert both
make identical next-hop choices on identical memberships.
"""

from __future__ import annotations

import numpy as np

from repro.dht.base import DHTNetwork, RouteResult, ZeroLatency
from repro.dht.ring_array import FingerEntry, SortedRing
from repro.topology.base import LatencyModel
from repro.util.ids import IdSpace
from repro.util.validation import require

__all__ = ["ChordNetwork"]


class ChordNetwork(DHTNetwork):
    """A Chord overlay over a static set of peers.

    Parameters
    ----------
    space:
        Identifier space.
    ids:
        One id per peer; ``ids[p]`` is peer ``p``'s node id.  Ids must
        be unique (Chord assumes collision-free hashing).
    latency:
        Peer-indexed latency model; defaults to zero latency (hop
        counting only).

    Notes
    -----
    Peer indices are stable handles: :meth:`remove_peer` keeps indices
    of remaining peers unchanged, and :meth:`add_peer` appends a new
    index.  Membership changes **splice** the sorted ring view in place
    (:meth:`~repro.dht.ring_array.SortedRing.splice` — O(n + k log n)
    per wave of ``k`` edits) instead of re-sorting everything; the
    result is bit-identical to the full O(n log n) rebuild, which stays
    available as the :meth:`rebuild` escape hatch and is pinned by the
    incremental-equivalence tests.  :attr:`rebuild_count` and
    :attr:`incremental_waves` expose which path ran.
    """

    def __init__(
        self,
        space: IdSpace,
        ids: np.ndarray,
        *,
        latency: LatencyModel | None = None,
        successor_list_r: int = 0,
    ) -> None:
        ids = np.asarray(ids, dtype=np.uint64)
        require(len(ids) >= 1, "need at least one peer")
        require(len(np.unique(ids)) == len(ids), "node ids must be unique")
        require(successor_list_r >= 0, "successor_list_r must be >= 0")
        self.space = space
        self.latency = latency if latency is not None else ZeroLatency()
        # The paper's Chord baseline routes with fingers only (its hop
        # counts match plain greedy Chord), so the successor-list
        # shortcut defaults off here; ablations can enable it for a
        # like-for-like comparison with HIERAS's accelerated loops.
        self.successor_list_r = successor_list_r
        self._id_of_peer = ids.copy()
        self._alive = np.ones(len(ids), dtype=bool)
        #: Full O(n log n) rebuilds performed (the constructor's initial
        #: build counts); membership waves splice instead, so this stays
        #: flat under churn — pinned by the maintenance tests.
        self.rebuild_count = 0
        #: Membership waves applied incrementally (no full rebuild).
        self.incremental_waves = 0
        self._rebuild()

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def _rebuild(self) -> None:
        self.rebuild_count += 1
        alive_peers = np.flatnonzero(self._alive)
        alive_ids = self._id_of_peer[alive_peers]
        order = np.argsort(alive_ids)
        self.ring = SortedRing(self.space, alive_ids[order], alive_peers[order])
        self._pos_cache: np.ndarray | None = None

    def rebuild(self) -> None:
        """Escape hatch: rebuild the ring view from scratch.

        Produces bit-identical state to the incremental splice path
        (asserted by ``tests/test_incremental.py``); exists so
        operators — and the equivalence tests — can force a full
        re-derivation at any time.
        """
        self._rebuild()

    @property
    def _pos_of_peer(self) -> np.ndarray:
        """Peer → ring-position map (−1 for dead peers), lazily patched.

        Membership waves invalidate rather than recompute it, so a
        burst of waves with no routing in between pays one scatter pass
        total instead of one per wave.
        """
        pos = self._pos_cache
        if pos is None:
            pos = np.full(len(self._id_of_peer), -1, dtype=np.int64)
            pos[self.ring.peers] = np.arange(len(self.ring))
            self._pos_cache = pos
        return pos

    @property
    def n_peers(self) -> int:
        """Number of live peers."""
        return int(self._alive.sum())

    @property
    def ids(self) -> np.ndarray:
        """Sorted ids of live peers."""
        return self.ring.ids

    def id_of(self, peer: int) -> int:
        """Node id of peer ``peer``."""
        return int(self._id_of_peer[peer])

    def is_alive(self, peer: int) -> bool:
        """Whether ``peer`` is currently a member."""
        return bool(self._alive[peer])

    def add_peer(self, node_id: int) -> int:
        """Add a peer with ``node_id``; returns its new peer index."""
        return self.add_peers([node_id])[0]

    def add_peers(self, node_ids: list[int]) -> list[int]:
        """Add several peers in one membership change; returns indices.

        Validation (same checks, same messages) and the resulting
        indices match calling :meth:`add_peer` in sequence, but the new
        members are spliced into the ring view in one O(n + k log n)
        pass — the mutation is all-or-nothing, so a rejected id leaves
        the overlay untouched.  Ring membership of the whole batch is
        checked with one vectorized ``searchsorted`` and in-batch
        duplicates with a set, so validating a wave of ``k`` joins is
        O(k log n), not the O(k²) of per-id list scans.
        """
        validated: list[int] = []
        seen: set[int] = set()
        for node_id in node_ids:
            node_id = self.space.validate_id(node_id, name="node_id")
            require(node_id not in seen, f"id {node_id} already present")
            seen.add(node_id)
            validated.append(node_id)
        if not validated:
            return []
        new_ids = np.asarray(validated, dtype=np.uint64)
        at = np.minimum(np.searchsorted(self.ring.ids, new_ids), len(self.ring) - 1)
        present = np.flatnonzero(self.ring.ids[at] == new_ids)
        if present.size:
            raise ValueError(f"id {validated[int(present[0])]} already present")
        start = len(self._id_of_peer)
        self._id_of_peer = np.concatenate([self._id_of_peer, new_ids])
        self._alive = np.concatenate(
            [self._alive, np.ones(len(validated), dtype=bool)]
        )
        new_peers = np.arange(start, start + len(validated), dtype=np.int64)
        self.ring = self.ring.splice((), new_ids, new_peers)
        self._pos_cache = None
        self.incremental_waves += 1
        return list(range(start, start + len(validated)))

    def remove_peer(self, peer: int) -> None:
        """Remove ``peer`` from the overlay (graceful leave or failure)."""
        self.remove_peers([peer])

    def remove_peers(self, peers: list[int], *, graceful: bool = False) -> None:
        """Remove several peers in one membership change.

        Semantically a sequence of :meth:`remove_peer` calls (same
        checks, same error messages, in order) with a single ring
        splice at the end; validation runs against a scratch copy, so
        a rejected batch leaves the overlay untouched.

        ``graceful=True`` models an *announced* departure: after the
        ring is rebuilt (successors re-assigned) but before the
        departing disks are dropped, attached stores hear
        ``on_graceful_leave`` and hand keys/hints off to the keys' new
        replica groups.  The default (``False``) is a silent kill —
        disks vanish with the peers, exactly as before.
        """
        alive = self._alive.copy()
        live = int(alive.sum())
        for peer in peers:
            require(bool(alive[peer]), f"peer {peer} is not alive")
            require(live > 1, "cannot remove the last peer")
            alive[peer] = False
            live -= 1
        if not peers:
            return
        self._alive = alive
        victims = np.asarray(peers, dtype=np.int64)
        rm_pos = np.searchsorted(self.ring.ids, self._id_of_peer[victims])
        self.ring = self.ring.splice(rm_pos, (), ())
        self._pos_cache = None
        self.incremental_waves += 1
        if graceful:
            self._notify_departing(peers)
        self._notify_removed(peers)

    def revive_peer(self, peer: int) -> None:
        """Bring a previously-removed peer back under its old index.

        A rejoining host keeps its identity (node id, attachment router
        — and therefore its latency-model index), so churn simulations
        revive rather than append; :meth:`add_peer` is for genuinely new
        peers.
        """
        self.revive_peers([peer])

    def revive_peers(self, peers: list[int]) -> None:
        """Revive several previously-removed peers with one splice."""
        alive = self._alive.copy()
        for peer in peers:
            require(not bool(alive[peer]), f"peer {peer} is already alive")
            alive[peer] = True
        if not peers:
            return
        self._alive = alive
        back = np.asarray(peers, dtype=np.int64)
        self.ring = self.ring.splice((), self._id_of_peer[back], back)
        self._pos_cache = None
        self.incremental_waves += 1
        self._notify_revived(peers)

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def owner_of(self, key: int) -> int:
        """Peer responsible for ``key`` (successor of the key)."""
        return int(self.ring.peers[self.ring.successor_pos(key)])

    def route(self, source: int, key: int) -> RouteResult:
        """Greedy finger-table routing from ``source`` to ``key``'s owner."""
        require(bool(self._alive[source]), f"source peer {source} is not alive")
        key = self.space.wrap(int(key))
        positions = self.ring.greedy_route(
            int(self._pos_of_peer[source]), key, succ_list_r=self.successor_list_r
        )
        path = [int(self.ring.peers[p]) for p in positions]
        result = RouteResult(
            source=source,
            key=key,
            owner=path[-1],
            path=path,
            latency_ms=self.route_latency(self.latency, path),
            hops_per_layer=[len(path) - 1],
        )
        if self.metrics is not None:
            self.record_route("chord", result)
        return result

    def route_lossy(self, source: int, key: int, *, injector) -> RouteResult:
        """Failure-aware routing under an active fault injector.

        Unlike :meth:`route`, the ring snapshot is treated as *stale*
        knowledge: peers the injector has crashed still appear in finger
        tables, each contact may time out (dead target, partition, or
        message loss), and the lookup falls back through next-best
        fingers and the §3.3 successor list, paying retry penalties from
        the injector's :class:`~repro.faults.retry.RetryPolicy`.  The
        returned :class:`RouteResult` carries the per-lookup outcome
        (``success``, ``timeouts``, ``retry_latency_ms``); on failure
        ``owner`` is ``-1`` and ``path`` covers the hops taken before
        the lookup died.
        """
        from repro.faults.injector import LossyContext
        from repro.faults.routing import lossy_ring_route

        require(bool(self._alive[source]), f"source peer {source} is not alive")
        require(not injector.state.is_dead(source), f"source peer {source} has crashed")
        key = self.space.wrap(int(key))
        ctx = LossyContext()
        max_hops = 2 * max(len(self.ring).bit_length(), 4) + injector.policy.successor_fallback
        positions, ok = lossy_ring_route(
            self.ring,
            int(self._pos_of_peer[source]),
            key,
            to_owner=True,
            contact=lambda u, v: injector.contact(u, v, ctx),
            is_dead=injector.state.is_dead,
            fallback_r=injector.policy.successor_fallback,
            max_hops=max_hops,
        )
        path = [int(self.ring.peers[p]) for p in positions]
        result = RouteResult(
            source=source,
            key=key,
            owner=path[-1] if ok else -1,
            path=path,
            latency_ms=self.route_latency(self.latency, path) * injector.state.delay_factor,
            hops_per_layer=[len(path) - 1],
            success=ok,
            timeouts=ctx.timeouts,
            retry_latency_ms=ctx.retry_latency_ms,
        )
        if self.metrics is not None:
            self.record_route("chord", result)
        return result

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def finger_table(self, peer: int) -> list[FingerEntry]:
        """Materialised finger table of ``peer`` (paper Table 2 layout)."""
        return self.ring.finger_table(int(self._pos_of_peer[peer]))

    def successor(self, peer: int) -> int:
        """Peer index of ``peer``'s immediate successor."""
        pos = self.ring.successor_of_pos(int(self._pos_of_peer[peer]))
        return int(self.ring.peers[pos])

    def predecessor(self, peer: int) -> int:
        """Peer index of ``peer``'s immediate predecessor."""
        pos = self.ring.predecessor_of_pos(int(self._pos_of_peer[peer]))
        return int(self.ring.peers[pos])

    def successor_list(self, peer: int, r: int) -> list[int]:
        """Peer indices of ``peer``'s ``r`` nearest successors."""
        return [
            int(self.ring.peers[p])
            for p in self.ring.successor_list(int(self._pos_of_peer[peer]), r)
        ]

    def ring_successor_list(self, peer: int, r: int) -> list[int]:
        """Successors of ``peer`` inside its lowest ring.

        Flat Chord has exactly one ring, so this is
        :meth:`successor_list` — the degenerate case of the HIERAS
        ring-scoped query the replication layer's ``ring_scoped``
        placement issues.  Keeping the method on both stacks lets
        placement code stay substrate-agnostic.
        """
        return self.successor_list(peer, r)
