"""Chord with proximity finger selection (PFS).

The paper's §1 observes that flat DHTs ignore topology and §5 credits
Pastry-style designs with choosing topologically-close routing-table
entries.  *Proximity finger selection* is the minimal way to retrofit
that idea onto Chord itself (studied by Gummadi et al., "The Impact of
DHT Routing Geometry on Resilience and Proximity", SIGCOMM 2003): the
``i``-th finger may be **any** node in the interval
``[n + 2^(i-1), n + 2^i)`` — correctness only needs a node that halves
the distance — so pick the lowest-latency candidate in the interval
instead of the interval's first successor.

This gives HIERAS a third comparison point between vanilla Chord and
Pastry: same ring geometry and hop count as Chord, latency improved
purely through neighbour choice.  The ``ablation_locality`` experiment
runs Chord / Chord+PFS / HIERAS / Pastry / Tapestry side by side.
"""

from __future__ import annotations

import numpy as np

from repro.dht.base import DHTNetwork, RouteResult, ZeroLatency
from repro.topology.base import LatencyModel
from repro.util.ids import IdSpace
from repro.util.rng import make_rng
from repro.util.validation import require

__all__ = ["PfsChordNetwork"]


class PfsChordNetwork(DHTNetwork):
    """Chord whose finger tables are chosen by proximity.

    Parameters
    ----------
    space, ids, latency:
        As for :class:`~repro.dht.chord.ChordNetwork`.
    pns_samples:
        Candidate sample size per finger interval (deployed systems
        probe a few candidates rather than the whole interval).
    seed:
        Drives candidate sampling.
    """

    def __init__(
        self,
        space: IdSpace,
        ids: np.ndarray,
        *,
        latency: LatencyModel | None = None,
        pns_samples: int = 8,
        seed: int | np.random.Generator = 0,
    ) -> None:
        ids = np.asarray(ids, dtype=np.uint64)
        require(len(ids) >= 1, "need at least one peer")
        require(len(np.unique(ids)) == len(ids), "node ids must be unique")
        require(pns_samples >= 1, "pns_samples must be >= 1")
        self.space = space
        self.latency = latency if latency is not None else ZeroLatency()
        self.pns_samples = pns_samples
        self._id_of_peer = ids.copy()
        order = np.argsort(ids)
        self._sorted_ids = ids[order]
        self._sorted_peers = np.arange(len(ids), dtype=np.int64)[order]
        self._pos_of_peer = np.empty(len(ids), dtype=np.int64)
        self._pos_of_peer[self._sorted_peers] = np.arange(len(ids))
        self._rng = make_rng(seed)
        self._fingers = self._build_fingers()

    # ------------------------------------------------------------------
    def _interval_positions(self, node_id: int, i: int) -> np.ndarray:
        """Sorted-array positions of peers in ``[n+2^(i-1), n+2^i)``."""
        size = self.space.size
        lo = (node_id + (1 << (i - 1))) % size
        hi = (node_id + (1 << i)) % size
        a = int(np.searchsorted(self._sorted_ids, lo))
        b = int(np.searchsorted(self._sorted_ids, hi))
        n = len(self._sorted_ids)
        if lo < hi:
            return np.arange(a, b)
        return np.concatenate([np.arange(a, n), np.arange(0, b)])

    def _build_fingers(self) -> list[dict[int, int]]:
        """Per-peer finger map: finger index -> chosen peer."""
        n = len(self._id_of_peer)
        fingers: list[dict[int, int]] = [dict() for _ in range(n)]
        for peer in range(n):
            node_id = int(self._id_of_peer[peer])
            for i in range(1, self.space.bits + 1):
                positions = self._interval_positions(node_id, i)
                positions = positions[self._sorted_peers[positions] != peer]
                if len(positions) == 0:
                    continue
                if len(positions) > self.pns_samples:
                    positions = self._rng.choice(
                        positions, size=self.pns_samples, replace=False
                    )
                candidates = self._sorted_peers[positions]
                delays = self.latency.to_targets(peer, candidates)
                fingers[peer][i] = int(candidates[int(np.argmin(delays))])
        return fingers

    # ------------------------------------------------------------------
    @property
    def n_peers(self) -> int:
        """Number of peers."""
        return len(self._id_of_peer)

    def id_of(self, peer: int) -> int:
        """Node id of ``peer``."""
        return int(self._id_of_peer[peer])

    def owner_of(self, key: int) -> int:
        """Chord ownership: the key's successor."""
        key = self.space.wrap(int(key))
        idx = int(np.searchsorted(self._sorted_ids, key))
        return int(self._sorted_peers[idx % len(self._sorted_ids)])

    def finger(self, peer: int, i: int) -> int | None:
        """The chosen ``i``-th finger of ``peer`` (None if interval empty)."""
        return self._fingers[peer].get(i)

    # ------------------------------------------------------------------
    def _successor_peer(self, peer: int) -> int:
        pos = (int(self._pos_of_peer[peer]) + 1) % len(self._sorted_ids)
        return int(self._sorted_peers[pos])

    def route(self, source: int, key: int) -> RouteResult:
        """Greedy Chord routing over the proximity-chosen fingers."""
        key = self.space.wrap(int(key))
        size = self.space.size
        owner = self.owner_of(key)
        cur = source
        path = [cur]
        guard = self.space.bits + self.n_peers
        while cur != owner:
            cur_id = self.id_of(cur)
            d = (key - cur_id) % size
            succ = self._successor_peer(cur)
            dsucc = (self.id_of(succ) - cur_id) % size
            if d <= dsucc:
                cur = succ
            else:
                # Highest finger whose chosen node still precedes the key.
                nxt = None
                for i in range((d - 1).bit_length(), 0, -1):
                    cand = self._fingers[cur].get(i)
                    if cand is None:
                        continue
                    fd = (self.id_of(cand) - cur_id) % size
                    if 0 < fd < d:
                        nxt = cand
                        break
                cur = nxt if nxt is not None else succ
            path.append(cur)
            require(len(path) <= guard, "PFS routing stalled")
        return RouteResult(
            source=source,
            key=key,
            owner=owner,
            path=path,
            latency_ms=self.route_latency(self.latency, path),
            hops_per_layer=[len(path) - 1],
        )
