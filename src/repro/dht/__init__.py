"""Flat DHT substrates.

HIERAS is built *on top of* an existing DHT (§3.1: "It is built on top
of an existing DHT routing algorithm ... we use Chord ... it is easy to
extend HIERAS to other DHT algorithms such as CAN").  This package
provides those substrates:

* :mod:`repro.dht.chord` — Chord, the paper's underlying algorithm and
  its flat baseline; array-backed for trace-driven speed.
* :mod:`repro.dht.chord_protocol` — message-level Chord on the
  discrete-event engine (join/stabilize/fix-fingers), used by churn
  experiments and to validate the array-backed stack.
* :mod:`repro.dht.can` — CAN, the second underlying algorithm the paper
  sketches for HIERAS (§3.2).
* :mod:`repro.dht.pastry` — a Pastry baseline with proximity neighbour
  selection, the "low latency DHT" the paper's future work compares
  against (§6).
* :mod:`repro.dht.tapestry` — a Tapestry baseline (surrogate routing +
  PNS), the other comparison target §6 names.
* :mod:`repro.dht.storage` — a replicated key→value layer over the ring
  networks, the "location information" service the lookups exist for.
"""

from repro.dht.base import DHTNetwork, RouteResult
from repro.dht.can import CanNetwork, CanParams
from repro.dht.can_realities import MultiRealityCan
from repro.dht.chord import ChordNetwork
from repro.dht.chord_pfs import PfsChordNetwork
from repro.dht.pastry import PastryNetwork, PastryParams
from repro.dht.ring_array import SortedRing
from repro.dht.storage import DHTStore
from repro.dht.tapestry import TapestryNetwork, TapestryParams

__all__ = [
    "DHTNetwork",
    "RouteResult",
    "SortedRing",
    "ChordNetwork",
    "PfsChordNetwork",
    "CanNetwork",
    "CanParams",
    "MultiRealityCan",
    "PastryNetwork",
    "PastryParams",
    "TapestryNetwork",
    "TapestryParams",
    "DHTStore",
]
