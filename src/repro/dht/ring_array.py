"""Array-backed Chord ring: the shared greedy-routing primitive.

A :class:`SortedRing` is an immutable snapshot of a set of peers placed
on a circular identifier space, stored as a sorted id array.  It
implements exactly Chord's routing rule — *final hop to the successor
when the key falls in ``(current, successor]``, otherwise forward to the
closest preceding finger* — but parameterised by the member set, which
is what HIERAS needs: every P2P ring at every layer routes with the same
rule over its own membership (§3.2: "the same underlying DHT routing
algorithm keeps being used in different layer rings with the
corresponding finger table").

Finger semantics: node ``n``'s ``i``-th finger is the ring's successor
of ``n + 2**(i-1)`` *restricted to ring members*, exactly how the paper
builds lower-layer finger tables (§3.1, Table 2).  Rather than
materialising every table, the ring answers finger queries with binary
search on the sorted id array — bit-for-bit the same next-hop choice,
two orders of magnitude less memory, which is what makes paper-scale
sweeps tractable.  (:meth:`SortedRing.finger_table` materialises a
table on demand for inspection and for the Table 2 reproduction.)
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass

import numpy as np

from repro.util.ids import IdSpace
from repro.util.validation import require

__all__ = ["SortedRing", "FingerEntry"]


@dataclass(frozen=True)
class FingerEntry:
    """One row of a materialised finger table (paper Table 2)."""

    index: int  # 1-based finger index
    start: int  # n + 2**(index-1) mod 2**bits
    interval: tuple[int, int]  # [start, next_start)
    node_id: int  # ring successor of `start`
    peer: int  # peer index of that successor


class SortedRing:
    """Immutable sorted-id view of a ring's membership with Chord routing.

    Parameters
    ----------
    space:
        The identifier space shared by all rings of a network.
    ids:
        Sorted, unique member ids (``uint64``-compatible).
    peers:
        Peer indices aligned with ``ids`` (peer ``peers[i]`` owns id
        ``ids[i]``).
    """

    __slots__ = ("space", "ids", "peers", "_idlist_cache", "_size", "_n")

    def __init__(self, space: IdSpace, ids: np.ndarray, peers: np.ndarray) -> None:
        ids = np.asarray(ids, dtype=np.uint64)
        peers = np.asarray(peers, dtype=np.int64)
        require(len(ids) == len(peers), "ids and peers must align")
        require(len(ids) >= 1, "a ring needs at least one member")
        if len(ids) > 1:
            require(bool(np.all(ids[1:] > ids[:-1])), "ids must be sorted and unique")
        require(int(ids[-1]) < space.size, "id out of space")
        self.space = space
        self.ids = ids
        self.peers = peers
        self._idlist_cache: list[int] | None = None
        self._size = space.size
        self._n = len(ids)

    @property
    def _idlist(self) -> list[int]:
        """Python-int id list for the scalar bisect paths (lazy).

        Million-member rings never materialise this unless a scalar
        route (or the lossy fault router) actually runs on them; the
        vectorized kernels and all membership queries work straight off
        the ``uint64`` :attr:`ids` array.
        """
        cached = self._idlist_cache
        if cached is None:
            cached = self.ids.tolist()
            self._idlist_cache = cached
        return cached

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._n

    def __contains__(self, node_id: int) -> bool:
        key = int(node_id)
        if key < 0 or key >= self._size:
            return False
        i = int(np.searchsorted(self.ids, np.uint64(key)))
        return i < self._n and int(self.ids[i]) == key

    def pos_of_id(self, node_id: int) -> int:
        """Position of an exact member id (raises if absent)."""
        key = int(node_id)
        i = int(np.searchsorted(self.ids, np.uint64(key))) if 0 <= key < self._size else self._n
        if i == self._n or int(self.ids[i]) != key:
            raise KeyError(f"id {node_id} is not a ring member")
        return i

    def successor_pos(self, key: int) -> int:
        """Position of the ring member owning ``key`` (successor of key)."""
        i = int(np.searchsorted(self.ids, np.uint64(int(key) % self._size)))
        return 0 if i == self._n else i

    def successor_of_pos(self, pos: int) -> int:
        """Position following ``pos`` clockwise."""
        return (pos + 1) % self._n

    def predecessor_of_pos(self, pos: int) -> int:
        """Position preceding ``pos`` clockwise."""
        return (pos - 1) % self._n

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def next_hop(self, cur_pos: int, key: int) -> int:
        """Chord's next hop from member ``cur_pos`` towards ``key``.

        Final-hop rule first (key in ``(cur, successor]`` → successor),
        otherwise the closest preceding finger: the highest finger whose
        *ring* successor still precedes the key.
        """
        size = self._size
        idlist = self._idlist
        n = self._n
        cur_id = idlist[cur_pos]
        d = (key - cur_id) % size
        if d == 0:
            return cur_pos
        succ_pos = cur_pos + 1 if cur_pos + 1 < n else 0
        dsucc = (idlist[succ_pos] - cur_id) % size
        if d <= dsucc:
            return succ_pos
        # Closest preceding finger: largest i with finger start
        # cur + 2**i inside (cur, key), whose ring successor is still
        # strictly inside (cur, key).  The start level and the modular
        # reductions are hoisted out of the loop: ``step <= size / 2``
        # and ``cur_id < size``, so one conditional subtraction (or
        # addition for the signed id difference) replaces each ``%``.
        step = 1 << max((d - 1).bit_length() - 1, 0)
        while step:
            start = cur_id + step
            if start >= size:
                start -= size
            j = bisect_left(idlist, start)
            fpos = 0 if j == n else j
            fd = idlist[fpos] - cur_id
            if fd < 0:
                fd += size
            if 0 < fd < d:
                return fpos
            step >>= 1
        return succ_pos  # unreachable: finger i=0 is the successor

    def greedy_route(self, start_pos: int, key: int, *, succ_list_r: int = 0) -> list[int]:
        """Positions visited routing ``key`` from ``start_pos``.

        Ends at the ring member owning ``key``; the start position is
        included, so hops taken = ``len(result) - 1``.

        ``succ_list_r > 0`` lets every node additionally consult its
        successor list of ``r`` entries: whenever the owner is within
        the current node's list, the message jumps to it in one hop
        (the §3.2 "predecessor and successor lists can be used to
        accelerate the process" optimisation).
        """
        owner = self.successor_pos(key)
        cur = start_pos
        path = [cur]
        n = self._n
        while cur != owner:
            if succ_list_r > 0 and 0 < (owner - cur) % n <= succ_list_r:
                path.append(owner)
                return path
            cur = self.next_hop(cur, key)
            path.append(cur)
        return path

    def predecessor_route(self, start_pos: int, key: int, *, succ_list_r: int = 0) -> list[int]:
        """Route towards ``key`` but stop at its ring *predecessor*.

        This is each lower layer's loop in HIERAS: the message advances
        clockwise with Chord's finger rule until the key falls between
        the current member and its ring successor, then stops *without*
        taking the final hop.  Stopping before the key (instead of at
        the ring successor, which generally overshoots it) is what lets
        the next layer continue shrinking the remaining distance rather
        than re-circling the space — see DESIGN.md §5.  If the start
        member's id equals the key, the route is empty (the owner has
        been reached).

        ``succ_list_r`` enables the same successor-list shortcut as
        :meth:`greedy_route`, jumping straight to the ring predecessor
        when it is within the current node's ``r``-entry successor list
        (paper §3.3 keeps one such list per layer).
        """
        cur = start_pos
        path = [cur]
        if self._n == 1:
            return path
        size = self._size
        idlist = self._idlist
        n = self._n
        owner = self.successor_pos(key)
        if cur == owner:
            # The start already owns the key (it knows: key lies in
            # (predecessor, me]) — the §3.2 destination check; walking
            # to the key's predecessor from here would circle the ring.
            return path
        pred = (owner - 1) % n
        while True:
            cur_id = idlist[cur]
            d = (key - cur_id) % size
            if d == 0:  # sitting exactly on the key: cur owns it
                return path
            succ_pos = cur + 1 if cur + 1 < n else 0
            dsucc = (idlist[succ_pos] - cur_id) % size
            if d <= dsucc:  # key in (cur, successor]: cur is predecessor
                return path
            if succ_list_r > 0 and 0 < (pred - cur) % n <= succ_list_r:
                path.append(pred)
                return path
            cur = self.next_hop(cur, key)
            path.append(cur)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def finger_table(self, pos: int, *, max_entries: int | None = None) -> list[FingerEntry]:
        """Materialise the finger table of the member at ``pos``.

        Used by the Table 2 reproduction and by the protocol stack's
        correctness tests; routing itself queries fingers lazily.
        """
        node_id = int(self.ids[pos])
        bits = self.space.bits if max_entries is None else max_entries
        entries = []
        for i in range(1, bits + 1):
            start = (node_id + (1 << (i - 1))) % self._size
            nxt = (node_id + (1 << i)) % self._size if i < self.space.bits else node_id
            spos = self.successor_pos(start)
            entries.append(
                FingerEntry(  # lint: allow-loop-alloc -- inspection/Table 2 helper; routing queries fingers lazily from the SoA arrays
                    index=i,
                    start=start,
                    interval=(start, nxt),
                    node_id=int(self.ids[spos]),
                    peer=int(self.peers[spos]),
                )
            )
        return entries

    def successor_list(self, pos: int, r: int) -> list[int]:
        """Positions of the ``r`` nearest clockwise successors of ``pos``.

        HIERAS keeps one such list *per layer* for failure recovery
        (§3.3); the list wraps and excludes ``pos`` itself.
        """
        require(r >= 0, "r must be >= 0")
        r = min(r, self._n - 1)
        return [(pos + k) % self._n for k in range(1, r + 1)]

    def arc_members(self, lo: int, hi: int) -> np.ndarray:
        """Positions of members with ids in the clockwise arc ``(lo, hi]``."""
        size = self._size
        lo, hi = int(lo) % size, int(hi) % size
        a = int(np.searchsorted(self.ids, np.uint64(lo), side="right"))
        b = int(np.searchsorted(self.ids, np.uint64(hi), side="right"))
        if lo < hi:
            return np.arange(a, b)
        return np.concatenate([np.arange(a, self._n), np.arange(0, b)])

    # ------------------------------------------------------------------
    # incremental maintenance
    # ------------------------------------------------------------------
    def splice(
        self,
        remove_positions: np.ndarray | list[int] | tuple[int, ...],
        insert_ids: np.ndarray | list[int] | tuple[int, ...],
        insert_peers: np.ndarray | list[int] | tuple[int, ...],
    ) -> "SortedRing":
        """A new ring with some members removed and others inserted.

        ``remove_positions`` are current positions (need not be sorted,
        must be distinct); ``insert_ids``/``insert_peers`` are the new
        members (ids in any order, distinct, and absent from the
        surviving membership).  The result is **bit-identical** to
        rebuilding a :class:`SortedRing` from the edited member set with
        an argsort — sorted-unique ids admit exactly one layout — which
        is the contract the incremental membership paths in
        :class:`~repro.dht.chord.ChordNetwork` and
        :class:`~repro.core.hieras.HierasNetwork` rely on.  Cost is
        O(n + k log n) for a size-``n`` ring and ``k`` edits, replacing
        the O(n log n) sort of a full rebuild.
        """
        ids = self.ids
        peers = self.peers
        remove_positions = np.asarray(remove_positions, dtype=np.int64)
        if len(remove_positions):
            ids = np.delete(ids, remove_positions)
            peers = np.delete(peers, remove_positions)
        ins_ids = np.asarray(insert_ids, dtype=np.uint64)
        if len(ins_ids):
            ins_peers = np.asarray(insert_peers, dtype=np.int64)
            order = np.argsort(ins_ids)
            ins_ids = ins_ids[order]
            ins_peers = ins_peers[order]
            at = np.searchsorted(ids, ins_ids)
            ids = np.insert(ids, at, ins_ids)
            peers = np.insert(peers, at, ins_peers)
        return SortedRing(self.space, ids, peers)
