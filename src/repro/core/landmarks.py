"""Landmark nodes and the landmark table (paper §2.3).

A *landmark table* "simply records the IP addresses of all landmark
nodes" (§3.1); every joining node copies it from its bootstrap contact
and measures its distance to each live landmark.  This module models the
landmark set itself, including failures: when a landmark dies, newly
binned nodes use the survivors and previously binned nodes drop the dead
column from their orders (§2.3) — implemented here by masking the
distance matrix before handing it to the binning scheme.

A *logical landmark* option groups several geographically-close routers
into one landmark whose measured distance is the minimum over the group
(§2.3's fault-tolerance suggestion).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.topology.base import LatencyModel
from repro.util.validation import require

__all__ = ["LandmarkSet"]


@dataclass
class LandmarkSet:
    """A well-known set of landmark machines.

    Attributes
    ----------
    routers:
        ``(n_landmarks,)`` router ids, or for logical landmarks a list
        of router-id groups (``members[k]`` backs landmark ``k``).
    alive:
        Liveness flags; failed landmarks are excluded from measurement.
    """

    routers: np.ndarray
    members: list[np.ndarray] | None = None
    alive: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self.routers = np.asarray(self.routers, dtype=np.int64)
        require(len(self.routers) >= 1, "need at least one landmark")
        if self.alive is None:
            self.alive = np.ones(len(self.routers), dtype=bool)
        else:
            self.alive = np.asarray(self.alive, dtype=bool)
            require(len(self.alive) == len(self.routers), "alive mask length mismatch")
        if self.members is not None:
            require(
                len(self.members) == len(self.routers),
                "logical landmark groups must align with routers",
            )
            self.members = [np.asarray(m, dtype=np.int64) for m in self.members]
            require(all(len(m) >= 1 for m in self.members), "empty logical landmark")

    # ------------------------------------------------------------------
    @property
    def n_landmarks(self) -> int:
        """Number of configured landmarks (live or failed)."""
        return len(self.routers)

    @property
    def n_alive(self) -> int:
        """Number of currently live landmarks."""
        return int(self.alive.sum())

    @classmethod
    def logical(cls, groups: list[np.ndarray]) -> "LandmarkSet":
        """Build a set of logical landmarks from router groups.

        Each group acts as one landmark; its measured distance is the
        minimum over group members, so losing one member degrades the
        measurement instead of killing the landmark (§2.3).
        """
        require(len(groups) >= 1, "need at least one landmark group")
        require(all(len(g) >= 1 for g in groups), "empty logical landmark")
        primaries = np.asarray([int(g[0]) for g in groups], dtype=np.int64)
        return cls(
            routers=primaries,
            members=[np.asarray(g, dtype=np.int64) for g in groups],
        )

    def fail(self, landmark: int) -> None:
        """Mark a landmark as failed (it stops answering pings)."""
        require(0 <= landmark < self.n_landmarks, "landmark index out of range")
        require(self.n_alive > 1, "cannot fail the last landmark")
        self.alive[landmark] = False

    def recover(self, landmark: int) -> None:
        """Bring a failed landmark back."""
        require(0 <= landmark < self.n_landmarks, "landmark index out of range")
        self.alive[landmark] = True

    # ------------------------------------------------------------------
    def measure(
        self, model: LatencyModel, node_routers: np.ndarray
    ) -> np.ndarray:
        """Measure node→landmark distances over live landmarks only.

        Returns ``(n_nodes, n_alive)`` delays in ms.  For logical
        landmarks the distance is the minimum over live group members.
        """
        node_routers = np.asarray(node_routers, dtype=np.int64)
        live = np.flatnonzero(self.alive)
        out = np.empty((len(node_routers), len(live)), dtype=np.float64)
        for col, k in enumerate(live):
            if self.members is not None:
                per_member = np.stack(
                    [
                        model.pairs(
                            node_routers, np.full(len(node_routers), m, dtype=np.int64)
                        )
                        for m in self.members[k]
                    ]
                )
                out[:, col] = per_member.min(axis=0)
            else:
                out[:, col] = model.pairs(
                    node_routers,
                    np.full(len(node_routers), self.routers[k], dtype=np.int64),
                )
        return out
