"""P2P rings, ring names/ids and ring tables (paper §3.1, Table 3).

Every lower-layer ring is identified by its **ring name** — the landmark
order string shared by its members (e.g. ``"012"``) — and by a **ring
id**, the collision-free hash of the name mapped onto the node id space.
The **ring table** of a ring records four extreme members (largest,
second largest, smallest, second smallest node ids) and is stored on the
node whose id is numerically closest to the ring id, replicated on a few
of that node's successors for fault tolerance.  Joining nodes fetch the
ring table (one ordinary Chord lookup) to learn a bootstrap member of
each ring they must join (§3.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util.ids import IdSpace
from repro.util.intervals import ring_distance
from repro.util.validation import require

__all__ = ["ring_name", "ring_id", "RingTable", "RingInfo", "RingTableDirectory"]


def ring_name(order: str) -> str:
    """Canonical ring name for a landmark order string.

    The paper names rings directly by the order string (ring ``"012"``);
    we keep that, so this is the identity with validation.
    """
    require(len(order) >= 1, "ring name cannot be empty")
    return order


def ring_id(space: IdSpace, name: str) -> int:
    """Ring id: the collision-free hash of the ring name (§3.1).

    A ``"ring:"`` prefix keeps ring ids from colliding with file keys
    hashed from the same strings.
    """
    return space.hash_key("ring:" + ring_name(name))


@dataclass
class RingTable:
    """The four extreme members of a ring (paper Table 3).

    Node ids (with their peer indices) of the largest, second-largest,
    smallest and second-smallest members.  Rings with fewer than four
    members repeat what they have, like a real deployment would.
    """

    ringid: int
    ringname: str
    largest: tuple[int, int]
    second_largest: tuple[int, int]
    smallest: tuple[int, int]
    second_smallest: tuple[int, int]

    @classmethod
    def from_members(
        cls, space: IdSpace, name: str, ids: np.ndarray, peers: np.ndarray
    ) -> "RingTable":
        """Build the table from a ring's (sorted) membership arrays."""
        require(len(ids) >= 1, "ring table needs at least one member")
        ids = np.asarray(ids, dtype=np.uint64)
        peers = np.asarray(peers, dtype=np.int64)
        n = len(ids)
        entry = lambda i: (int(ids[i]), int(peers[i]))  # noqa: E731
        return cls(
            ringid=ring_id(space, name),
            ringname=name,
            largest=entry(n - 1),
            second_largest=entry(max(n - 2, 0)),
            smallest=entry(0),
            second_smallest=entry(min(1, n - 1)),
        )

    def entries(self) -> list[tuple[int, int]]:
        """All four ``(node_id, peer)`` entries, largest first."""
        return [self.largest, self.second_largest, self.smallest, self.second_smallest]

    def bootstrap_peer(self) -> int:
        """A member peer a joining node can contact (§3.3 node ``p``)."""
        return self.smallest[1]

    def would_update(self, node_id: int) -> bool:
        """Whether a new member with ``node_id`` belongs in the table.

        Paper §3.3: the joiner sends a ring-table modification message
        iff its id is larger than the second largest or smaller than the
        second smallest entry.
        """
        return node_id > self.second_largest[0] or node_id < self.second_smallest[0]


@dataclass
class RingInfo:
    """A ring's identity plus its current membership snapshot."""

    name: str
    ringid: int
    layer: int  # 1 = global ring, 2.. = lower layers
    member_peers: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))

    @property
    def n_members(self) -> int:
        """Current member count."""
        return len(self.member_peers)


class RingTableDirectory:
    """Placement and retrieval of ring tables on the global ring.

    The directory answers two questions the §3.3 join protocol needs:

    * :meth:`host_of` — which peer stores a ring's table?  The paper
      places it on the node whose id is *numerically closest* to the
      ring id (shortest distance around the circle in either direction),
      with replicas on the host's ``r`` successors.
    * :meth:`table_of` — the current :class:`RingTable` content.

    The directory is rebuilt from authoritative membership by the static
    stack; the protocol stack (``repro.core.hieras_protocol``) maintains
    it with messages instead and is tested against this one.
    """

    def __init__(self, space: IdSpace, *, replicas: int = 2) -> None:
        require(replicas >= 0, "replicas must be >= 0")
        self.space = space
        self.replicas = replicas
        self._tables: dict[str, RingTable] = {}

    # ------------------------------------------------------------------
    def publish(self, name: str, ids: np.ndarray, peers: np.ndarray) -> RingTable:
        """(Re)build and store the ring table for ``name``."""
        table = RingTable.from_members(self.space, name, ids, peers)
        self._tables[name] = table
        return table

    def table_of(self, name: str) -> RingTable:
        """Current ring table of ring ``name`` (KeyError if unknown)."""
        return self._tables[ring_name(name)]

    def names(self) -> list[str]:
        """All ring names with a published table."""
        return sorted(self._tables)

    def drop(self, name: str) -> None:
        """Forget a ring (its last member left)."""
        self._tables.pop(name, None)

    # ------------------------------------------------------------------
    def host_of(self, name: str, global_ids: np.ndarray, global_peers: np.ndarray) -> int:
        """Peer that stores ring ``name``'s table.

        ``global_ids`` must be the sorted ids of the global ring;
        ``global_peers`` the aligned peer indices.  Returns the peer
        whose id is numerically closest to the ring id (ties broken
        clockwise, i.e. toward the successor).
        """
        rid = ring_id(self.space, name)
        global_ids = np.asarray(global_ids, dtype=np.uint64)
        idx = int(np.searchsorted(global_ids, rid))
        n = len(global_ids)
        succ = idx % n
        pred = (idx - 1) % n
        d_succ = ring_distance(rid, int(global_ids[succ]), self.space.size)
        d_pred = ring_distance(rid, int(global_ids[pred]), self.space.size)
        best = succ if d_succ <= d_pred else pred
        return int(global_peers[best])

    def replica_hosts(
        self, name: str, global_ids: np.ndarray, global_peers: np.ndarray
    ) -> list[int]:
        """The primary host plus its ``replicas`` successors (§3.1)."""
        primary = self.host_of(name, global_ids, global_peers)
        global_ids = np.asarray(global_ids, dtype=np.uint64)
        global_peers = np.asarray(global_peers, dtype=np.int64)
        pos = int(np.flatnonzero(global_peers == primary)[0])
        n = len(global_ids)
        count = min(self.replicas, n - 1)
        return [primary, *(int(global_peers[(pos + k) % n]) for k in range(1, count + 1))]

    def live_host_of(
        self,
        name: str,
        global_ids: np.ndarray,
        global_peers: np.ndarray,
        is_dead,
    ) -> int:
        """First live replica host of ring ``name``'s table.

        The replication in §3.1 exists precisely so a ring table
        survives its primary host crashing; this walks the replica chain
        (primary, then its successors) and returns the first host
        ``is_dead`` clears.  Raises ``LookupError`` when the primary and
        every replica are dead — the table is genuinely lost until the
        overlay republishes it.
        """
        for host in self.replica_hosts(name, global_ids, global_peers):
            if not is_dead(host):
                return host
        raise LookupError(
            f"ring table {name!r}: primary and all {self.replicas} replicas are dead"
        )
