"""HIERAS: the hierarchical multi-ring DHT network (paper §2–§3).

A :class:`HierasNetwork` is built from the same ingredients as the flat
:class:`~repro.dht.chord.ChordNetwork` — an id space, one id per peer, a
latency model — plus the peers' **landmark orders** from the distributed
binning scheme.  Layer 1 is the single global ring containing everyone;
each lower layer partitions the peers into rings of nodes sharing a
landmark order, and every node routes with Chord's rule inside each of
its rings using a ring-restricted finger table (§3.1, Table 2).

Routing (§3.2) is bottom-up: the lookup runs in the originator's lowest
ring until it reaches the node that would own the key *in that ring*
(its ring-successor), climbs one layer, and repeats until the global
ring delivers it to the key's true owner.  Because any ring containing
the global owner has the global owner as its ring-successor of the key,
upper-layer loops naturally contribute zero hops once the owner is
reached — the paper's early-exit check falls out of the semantics (the
protocol stack still performs it explicitly to avoid sending messages).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.binning import LandmarkOrders
from repro.core.ring import RingTableDirectory, ring_id
from repro.dht.base import DHTNetwork, RouteResult, ZeroLatency
from repro.dht.ring_array import FingerEntry, SortedRing
from repro.topology.base import LatencyModel
from repro.util.ids import IdSpace
from repro.util.rng import make_rng
from repro.util.validation import require

__all__ = ["HierasNetwork", "LayeredFingerRow"]


@dataclass(frozen=True)
class LayeredFingerRow:
    """One row of the paper's Table 2: a finger across every layer.

    ``successors[0]`` is the layer-1 (global) successor; subsequent
    entries descend through the lower layers.  Each successor is a
    ``(node_id, peer, ring_name)`` triple — ring name of the successor's
    own layer-2 ring, as printed in Table 2's parentheses.
    """

    start: int
    interval: tuple[int, int]
    successors: tuple[tuple[int, int, str], ...]


class HierasNetwork(DHTNetwork):
    """The HIERAS overlay over a static set of peers.

    Parameters
    ----------
    space, ids, latency:
        As for :class:`~repro.dht.chord.ChordNetwork`.
    landmark_orders:
        Output of :meth:`repro.core.binning.BinningScheme.orders` for
        these peers (row ``p`` binned peer ``p``).
    depth:
        Hierarchy depth ``m`` (layers including the global ring).
        Defaults to everything the orders provide; may be lowered to
        study depth effects with one binning pass (paper §4.5).
    successor_list_r:
        Length of the per-layer successor list every node maintains
        (§3.3: "a node must keep a successor-list of its r nearest
        successors in each layer").  Routing consults it as the §3.2
        acceleration; 0 disables the shortcut entirely.
    successor_list_policy:
        ``"transitions"`` (default) consults successor lists in every
        loop **above the lowest** — the message enters those loops
        already close to the key, which is exactly where §3.2 says the
        lists "accelerate the process"; the cold lowest loop routes
        with fingers alone, like the flat Chord baseline.  ``"always"``
        also shortcuts inside the lowest loop and ``"off"`` never does;
        both are exposed for the acceleration ablation.
    """

    def __init__(
        self,
        space: IdSpace,
        ids: np.ndarray,
        *,
        landmark_orders: LandmarkOrders,
        latency: LatencyModel | None = None,
        depth: int | None = None,
        ring_table_replicas: int = 2,
        successor_list_r: int = 16,
        successor_list_policy: str = "transitions",
    ) -> None:
        ids = np.asarray(ids, dtype=np.uint64)
        n = len(ids)
        require(n >= 1, "need at least one peer")
        require(len(np.unique(ids)) == n, "node ids must be unique")
        require(
            landmark_orders.n_nodes == n,
            f"landmark orders cover {landmark_orders.n_nodes} nodes, network has {n}",
        )
        depth = depth if depth is not None else landmark_orders.depth
        require(
            2 <= depth <= landmark_orders.depth,
            f"depth must be in [2, {landmark_orders.depth}], got {depth}",
        )
        require(successor_list_r >= 0, "successor_list_r must be >= 0")
        require(
            successor_list_policy in ("transitions", "always", "off"),
            f"unknown successor_list_policy {successor_list_policy!r}",
        )
        self.space = space
        self.depth = depth
        self.latency = latency if latency is not None else ZeroLatency()
        self.orders = landmark_orders
        self.successor_list_r = successor_list_r
        self.successor_list_policy = successor_list_policy
        self._id_of_peer = ids.copy()
        self._alive = np.ones(n, dtype=bool)
        # Ring membership per lower layer, struct-of-arrays: every peer
        # carries one ``int32`` *pool code* per layer (index 0 →
        # layer 2) and the per-layer pool maps codes back to ring-name
        # strings — no per-peer Python string ever sits on the hot
        # path, which is what keeps million-peer networks in budget.
        self._name_pool: list[list[str]] = []
        self._name_code_of: list[dict[str, int]] = []
        self._name_codes: list[np.ndarray] = []
        pools = getattr(landmark_orders, "name_pools", None)
        codes = getattr(landmark_orders, "codes_per_layer", None)
        for k in range(depth - 1):
            if pools is not None and codes is not None:
                pool = [str(s) for s in pools[k]]
                layer_codes = np.asarray(codes[k], dtype=np.int32)
            else:
                uniq, inverse = np.unique(
                    np.asarray(landmark_orders.names_per_layer[k], dtype=object),
                    return_inverse=True,
                )
                pool = [str(u) for u in uniq]
                layer_codes = inverse.astype(np.int32)
            self._name_pool.append(pool)
            self._name_code_of.append({name: c for c, name in enumerate(pool)})
            self._name_codes.append(layer_codes)
        #: Full O(N log N) all-ring rebuilds performed (the constructor's
        #: initial build counts); membership waves splice only the rings
        #: they touch, so this stays flat under churn.
        self.rebuild_count = 0
        #: Membership waves applied incrementally (no full rebuild).
        self.incremental_waves = 0
        #: Rings created, spliced, or retired by incremental waves — the
        #: O(wave) work certificate the maintenance tests pin.
        self.rings_spliced = 0
        #: ``directory.publish`` calls skipped because a ring's
        #: membership did not change across a full rebuild.
        self.publish_skips = 0
        self.directory = RingTableDirectory(space, replicas=ring_table_replicas)
        self._rebuild()

    # ------------------------------------------------------------------
    # construction / membership
    # ------------------------------------------------------------------
    def _intern(self, k: int, name: str) -> int:
        """Pool code for ``name`` at layer index ``k`` (interning it)."""
        code = self._name_code_of[k].get(name)
        if code is None:
            code = len(self._name_pool[k])
            self._name_pool[k].append(name)
            self._name_code_of[k][name] = code
        return code

    def _publish(
        self, name: str, ring: SortedRing, prev: dict[str, SortedRing] | None
    ) -> None:
        """Publish one ring table, skipping unchanged memberships."""
        if prev is not None:
            old = prev.get(name)
            if (
                old is not None
                and np.array_equal(old.ids, ring.ids)
                and np.array_equal(old.peers, ring.peers)
            ):
                self.publish_skips += 1
                return
        self.directory.publish(name, ring.ids, ring.peers)

    def _refresh_layer_caches(self) -> None:
        # Per-layer accessor caches: ring membership only changes in
        # ``_rebuild``/``_apply_wave``, so the name->ring maps and size
        # vectors sweeps poll per cell are materialized once per
        # membership change instead of per call.
        self._rings_by_name: list[dict[str, SortedRing]] = [
            dict(zip(names, rings))
            for names, rings in zip(self._ring_names, self._rings)
        ]
        self._ring_size_arrays: list[np.ndarray] = []
        for rings in self._rings:
            sizes = np.asarray([len(r) for r in rings], dtype=np.int64)
            sizes.setflags(write=False)
            self._ring_size_arrays.append(sizes)

    @property
    def _pos_global(self) -> np.ndarray:
        """Peer → global-ring position (−1 for dead peers), lazy."""
        pos = self._pos_global_cache
        if pos is None:
            pos = np.full(len(self._id_of_peer), -1, dtype=np.int64)
            pos[self.global_ring.peers] = np.arange(len(self.global_ring))
            self._pos_global_cache = pos
        return pos

    def _rebuild(self) -> None:
        self.rebuild_count += 1
        alive = np.flatnonzero(self._alive)
        ids = self._id_of_peer[alive]
        order = np.argsort(ids)
        self.global_ring = SortedRing(self.space, ids[order], alive[order])
        n_total = len(self._id_of_peer)
        self._pos_global_cache: np.ndarray | None = None

        # Lower layers: factorise live peers' interned ring codes, build
        # one SortedRing per distinct name (listed in ring-name order,
        # matching the incremental path), record each peer's ring + slot.
        prev_tables = getattr(self, "_rings_by_name", None)
        self._rings: list[list[SortedRing]] = []
        self._ring_names: list[list[str]] = []
        self._ring_of_peer = np.full((self.depth - 1, n_total), -1, dtype=np.int32)
        self._pos_in_ring = np.full((self.depth - 1, n_total), -1, dtype=np.int32)
        known_names = set(self.directory.names())
        seen_names: set[str] = set()
        for k in range(self.depth - 1):
            pool = self._name_pool[k]
            codes_alive = self._name_codes[k][alive]
            grouped = np.lexsort((ids, codes_alive))
            codes_sorted = codes_alive[grouped]
            members_sorted = alive[grouped]
            ids_sorted = ids[grouped]
            present = np.unique(codes_alive)
            starts = np.searchsorted(codes_sorted, present, side="left")
            ends = np.searchsorted(codes_sorted, present, side="right")
            by_name = sorted(range(len(present)), key=lambda i: pool[int(present[i])])
            layer_rings: list[SortedRing] = []
            layer_names: list[str] = []
            prev = prev_tables[k] if prev_tables is not None else None
            for gi in by_name:
                name = pool[int(present[gi])]
                a, b = int(starts[gi]), int(ends[gi])
                ring = SortedRing(self.space, ids_sorted[a:b], members_sorted[a:b])
                code = len(layer_rings)
                layer_rings.append(ring)
                layer_names.append(name)
                self._ring_of_peer[k, ring.peers] = code
                self._pos_in_ring[k, ring.peers] = np.arange(len(ring), dtype=np.int32)
                self._publish(name, ring, prev)
                seen_names.add(name)
            self._rings.append(layer_rings)
            self._ring_names.append(layer_names)
        for stale in sorted(known_names - seen_names):
            self.directory.drop(stale)
        self._refresh_layer_caches()

    def rebuild(self) -> None:
        """Escape hatch: re-derive every ring of every layer from scratch.

        The incremental wave path (:meth:`_apply_wave`) produces state
        bit-identical to this full rebuild — pinned by
        ``tests/test_incremental.py`` — so calling it is never *needed*;
        it exists for operators and for the equivalence tests.
        """
        self._rebuild()

    def _apply_wave(self, added: np.ndarray, removed: np.ndarray) -> None:
        """Splice one membership wave into every layer's ring state.

        ``added``/``removed`` hold the peer indices whose liveness just
        flipped (``self._alive`` is already updated).  Only the rings
        those peers belong to are rebuilt/spliced — O(wave + touched
        ring sizes) work instead of the full rebuild's O(N log N) sort
        plus every ring of every layer — and the resulting state is
        bit-identical to :meth:`_rebuild` (tests pin this), because
        :meth:`SortedRing.splice` and the argsort rebuild agree on the
        unique sorted layout and rings stay listed in name order.
        """
        self.incremental_waves += 1
        rm_pos = (
            np.searchsorted(self.global_ring.ids, self._id_of_peer[removed])
            if len(removed)
            else np.empty(0, dtype=np.int64)
        )
        self.global_ring = self.global_ring.splice(
            rm_pos, self._id_of_peer[added], added
        )
        self._pos_global_cache = None

        for k in range(self.depth - 1):
            pool = self._name_pool[k]
            names_k = self._ring_names[k]
            rings_k = self._rings[k]
            index_of = {nm: i for i, nm in enumerate(names_k)}
            layer_codes = self._name_codes[k]
            rm_by_name: dict[str, list[int]] = {}
            for p in removed.tolist():
                rm_by_name.setdefault(pool[int(layer_codes[p])], []).append(p)
            add_by_name: dict[str, list[int]] = {}
            for p in added.tolist():
                add_by_name.setdefault(pool[int(layer_codes[p])], []).append(p)

            touched: dict[str, SortedRing | None] = {}
            for name in sorted(set(rm_by_name) | set(add_by_name)):
                leavers = rm_by_name.get(name, [])
                joiners = add_by_name.get(name, [])
                old_idx = index_of.get(name)
                old_ring = rings_k[old_idx] if old_idx is not None else None
                self.rings_spliced += 1
                if old_ring is None:
                    members = np.asarray(joiners, dtype=np.int64)
                    m_ids = self._id_of_peer[members]
                    srt = np.argsort(m_ids)
                    new_ring: SortedRing | None = SortedRing(
                        self.space, m_ids[srt], members[srt]
                    )
                elif len(leavers) == len(old_ring) and not joiners:
                    new_ring = None  # its last members left: the ring dies
                else:
                    lv = np.asarray(leavers, dtype=np.int64)
                    jn = np.asarray(joiners, dtype=np.int64)
                    new_ring = old_ring.splice(
                        self._pos_in_ring[k, lv], self._id_of_peer[jn], jn
                    )
                touched[name] = new_ring
                if new_ring is None:
                    self.directory.drop(name)
                else:
                    self.directory.publish(name, new_ring.ids, new_ring.peers)
            if len(removed):
                self._ring_of_peer[k, removed] = -1
                self._pos_in_ring[k, removed] = -1

            births = [
                nm for nm, r in touched.items() if r is not None and nm not in index_of
            ]
            deaths = {nm for nm, r in touched.items() if r is None}
            if births or deaths:
                # The ring *set* changed: renumber so rings stay listed
                # in name order (one vectorized old→new code remap).
                new_names = sorted((set(names_k) - deaths) | set(births))
                remap = np.full(len(names_k), -1, dtype=np.int32)
                new_rings: list[SortedRing] = []
                for new_idx, nm in enumerate(new_names):
                    old_idx = index_of.get(nm)
                    if old_idx is not None:
                        remap[old_idx] = np.int32(new_idx)
                        ring = touched.get(nm, rings_k[old_idx])
                    else:
                        ring = touched[nm]
                    assert ring is not None
                    new_rings.append(ring)
                col = self._ring_of_peer[k]
                live = col >= 0
                col[live] = remap[col[live]]
                self._ring_names[k] = new_names
                self._rings[k] = new_rings
            else:
                self._rings[k] = [
                    touched.get(nm, ring) for nm, ring in zip(names_k, rings_k)
                ]
            # Re-index members of every touched, surviving ring.
            idx_by_name = {nm: i for i, nm in enumerate(self._ring_names[k])}
            for nm, ring in touched.items():
                if ring is None:
                    continue
                i = idx_by_name[nm]
                self._ring_of_peer[k, ring.peers] = i
                self._pos_in_ring[k, ring.peers] = np.arange(len(ring), dtype=np.int32)
        self._refresh_layer_caches()

    @property
    def n_peers(self) -> int:
        """Number of live peers."""
        return int(self._alive.sum())

    def id_of(self, peer: int) -> int:
        """Node id of ``peer``."""
        return int(self._id_of_peer[peer])

    def is_alive(self, peer: int) -> bool:
        """Whether ``peer`` is currently a member."""
        return bool(self._alive[peer])

    def add_peer(self, node_id: int, ring_names: list[str]) -> int:
        """Add a peer (offline equivalent of the §3.3 join protocol).

        ``ring_names`` gives the ring the new node joins at each lower
        layer (layer 2 first) — i.e. its landmark orders, measured by
        the caller against the landmark set.
        """
        return self.add_peers([node_id], [ring_names])[0]

    def add_peers(
        self, node_ids: list[int], ring_names_per_peer: list[list[str]]
    ) -> list[int]:
        """Add several peers in one membership change; returns indices.

        ``ring_names_per_peer[i]`` names peer ``i``'s rings (layer 2
        first), exactly as :meth:`add_peer` takes them.  Validation and
        the returned indices match the sequential calls, but the wave is
        spliced into the affected rings in one pass (no full rebuild); a
        rejected entry leaves the overlay untouched.
        """
        require(
            len(ring_names_per_peer) == len(node_ids),
            "need one ring-name list per added peer",
        )
        validated: list[int] = []
        seen: set[int] = set()
        for node_id, ring_names in zip(node_ids, ring_names_per_peer):
            node_id = self.space.validate_id(node_id, name="node_id")
            require(
                node_id not in self.global_ring and node_id not in seen,
                f"id {node_id} already present",
            )
            require(
                len(ring_names) == self.depth - 1,
                f"need {self.depth - 1} ring names, got {len(ring_names)}",
            )
            seen.add(node_id)
            validated.append(node_id)
        if not validated:
            return []
        start = len(self._id_of_peer)
        count = len(validated)
        self._id_of_peer = np.concatenate(
            [self._id_of_peer, np.asarray(validated, dtype=np.uint64)]
        )
        self._alive = np.concatenate([self._alive, np.ones(count, dtype=bool)])
        for k in range(self.depth - 1):
            codes = np.asarray(
                [self._intern(k, names[k]) for names in ring_names_per_peer],
                dtype=np.int32,
            )
            self._name_codes[k] = np.concatenate([self._name_codes[k], codes])
        pad = np.full((self.depth - 1, count), -1, dtype=np.int32)
        self._ring_of_peer = np.concatenate([self._ring_of_peer, pad], axis=1)
        self._pos_in_ring = np.concatenate([self._pos_in_ring, pad.copy()], axis=1)
        self._apply_wave(
            np.arange(start, start + count, dtype=np.int64),
            np.empty(0, dtype=np.int64),
        )
        return list(range(start, start + count))

    def remove_peer(self, peer: int) -> None:
        """Remove ``peer`` (graceful leave or failure)."""
        self.remove_peers([peer])

    def remove_peers(self, peers: list[int], *, graceful: bool = False) -> None:
        """Remove several peers in one membership change.

        A sequence of :meth:`remove_peer` calls (same checks, same
        error messages, in order) with one splice per touched ring —
        rings the wave does not touch are untouched objects; validation
        runs against a scratch copy, so a rejected batch leaves the
        overlay untouched.

        ``graceful=True`` models the §3.3 *announced* leave: after the
        rings are rebuilt (ring successors re-assigned) but before the
        departing disks drop, attached stores hear
        ``on_graceful_leave`` and hand keys/hints off to the keys' new
        replica groups.  The default (``False``) is a silent failure —
        disks vanish with the peers.
        """
        alive = self._alive.copy()
        live = int(alive.sum())
        for peer in peers:
            require(bool(alive[peer]), f"peer {peer} is not alive")
            require(live > 1, "cannot remove the last peer")
            alive[peer] = False
            live -= 1
        if not peers:
            return
        self._alive = alive
        self._apply_wave(
            np.empty(0, dtype=np.int64), np.asarray(peers, dtype=np.int64)
        )
        if graceful:
            self._notify_departing(peers)
        self._notify_removed(peers)

    def revive_peer(self, peer: int) -> None:
        """Bring a removed peer back under its old index and ring names.

        The peer re-enters the rings its landmark orders named (its
        position on the Internet did not change while it was offline);
        its node id and latency-model index are retained.
        """
        self.revive_peers([peer])

    def revive_peers(self, peers: list[int]) -> None:
        """Revive several previously-removed peers in one spliced wave."""
        alive = self._alive.copy()
        for peer in peers:
            require(not bool(alive[peer]), f"peer {peer} is already alive")
            alive[peer] = True
        if not peers:
            return
        self._alive = alive
        self._apply_wave(
            np.asarray(peers, dtype=np.int64), np.empty(0, dtype=np.int64)
        )
        self._notify_revived(peers)

    def rebind_peers(
        self, peers: list[int], ring_names_per_peer: list[list[str]]
    ) -> None:
        """Re-assign lower-ring names for *offline* peers in place.

        Models §2.3's degraded joins: a node (re)joining while a
        landmark is down measures a blinded coordinate and lands in a
        different low-layer ring than its position warrants.  Only
        peers currently offline may be rebound (a live node's rings
        cannot silently change); a later :meth:`revive_peers` brings
        them back under the new names.  No rebuild happens here — the
        rings only change when membership does.
        """
        require(
            len(ring_names_per_peer) == len(peers),
            "need one ring-name list per rebound peer",
        )
        for peer, ring_names in zip(peers, ring_names_per_peer):
            require(not bool(self._alive[peer]), f"peer {peer} is alive; cannot rebind")
            require(
                len(ring_names) == self.depth - 1,
                f"need {self.depth - 1} ring names, got {len(ring_names)}",
            )
        for peer, ring_names in zip(peers, ring_names_per_peer):
            for k in range(self.depth - 1):
                self._name_codes[k][peer] = self._intern(k, ring_names[k])

    # ------------------------------------------------------------------
    # ring accessors
    # ------------------------------------------------------------------
    def ring_of(self, peer: int, layer: int) -> SortedRing:
        """The ring ``peer`` belongs to at ``layer`` (1 = global)."""
        require(1 <= layer <= self.depth, f"layer must be in [1, {self.depth}]")
        if layer == 1:
            return self.global_ring
        code = int(self._ring_of_peer[layer - 2, peer])
        require(code >= 0, f"peer {peer} is not alive")
        return self._rings[layer - 2][code]

    def ring_name_of(self, peer: int, layer: int) -> str:
        """Ring name of ``peer`` at a lower ``layer`` (2..depth)."""
        require(2 <= layer <= self.depth, f"layer must be in [2, {self.depth}]")
        k = layer - 2
        return self._name_pool[k][int(self._name_codes[k][peer])]

    def rings_at_layer(self, layer: int) -> dict[str, SortedRing]:
        """All rings of one lower layer, keyed by ring name.

        The returned mapping is a cache shared by every caller (rebuilt
        on membership change); treat it as read-only.
        """
        require(2 <= layer <= self.depth, f"layer must be in [2, {self.depth}]")
        return self._rings_by_name[layer - 2]

    def ring_sizes(self, layer: int) -> np.ndarray:
        """Member counts of the rings at one lower layer (read-only)."""
        require(2 <= layer <= self.depth, f"layer must be in [2, {self.depth}]")
        return self._ring_size_arrays[layer - 2]

    def ring_table_host(self, name: str) -> int:
        """Peer storing ring ``name``'s ring table (§3.1)."""
        return self.directory.host_of(name, self.global_ring.ids, self.global_ring.peers)

    def ring_successor_list(self, peer: int, r: int) -> list[int]:
        """Successors of ``peer`` inside its **lowest-layer** ring.

        The replication layer's ``ring_scoped`` placement asks exactly
        this question: which nearby nodes — nearby by landmark order,
        i.e. members of ``peer``'s layer-``depth`` ring — come next on
        that ring's id circle?  The list wraps, excludes ``peer``
        itself, and is capped at the ring's size minus one; callers pad
        from the global ring when they need more copies than the ring
        can hold.
        """
        ring = self.ring_of(peer, self.depth)
        pos = int(self._pos_in_ring[self.depth - 2, peer])
        return [int(ring.peers[p]) for p in ring.successor_list(pos, r)]

    # ------------------------------------------------------------------
    # routing (§3.2)
    # ------------------------------------------------------------------
    def owner_of(self, key: int) -> int:
        """Peer responsible for ``key`` — the global successor."""
        return int(self.global_ring.peers[self.global_ring.successor_pos(key)])

    def route(self, source: int, key: int) -> RouteResult:
        """Bottom-up hierarchical routing of ``key`` from ``source``.

        One loop per layer, lowest ring first, each running Chord's
        greedy rule restricted to the current ring's membership.  Lower
        loops stop at the key's *ring predecessor* — the ring member the
        key falls immediately after — so the message approaches the key
        monotonically and never overshoots it (DESIGN.md §5 discusses
        this reading of the paper's "numerically closest node in this
        ring").  The final, global loop takes the last hop to the key's
        owner, exactly like flat Chord's terminating step.
        """
        require(bool(self._alive[source]), f"source peer {source} is not alive")
        key = self.space.wrap(int(key))
        cur = source
        path = [source]
        hops_per_layer: list[int] = []
        for layer in range(self.depth, 0, -1):
            ring = self.ring_of(cur, layer)
            pos = (
                int(self._pos_global[cur])
                if layer == 1
                else int(self._pos_in_ring[layer - 2, cur])
            )
            if self.successor_list_policy == "off":
                r = 0
            elif self.successor_list_policy == "transitions" and layer == self.depth:
                r = 0  # cold lowest loop: fingers only, like flat Chord
            else:
                r = self.successor_list_r
            sub = ring.predecessor_route(pos, key, succ_list_r=r)
            hops = len(sub) - 1
            for p in sub[1:]:
                path.append(int(ring.peers[p]))
            cur = path[-1]
            if layer == 1:
                # Terminating step (§3.2): the global predecessor hands
                # the request to its successor — the key's owner — just
                # like flat Chord's final hop.
                owner = self.owner_of(key)
                if cur != owner:
                    path.append(owner)
                    cur = owner
                    hops += 1
            hops_per_layer.append(hops)
        result = RouteResult(
            source=source,
            key=key,
            owner=path[-1],
            path=path,
            latency_ms=self.route_latency(self.latency, path),
            hops_per_layer=hops_per_layer,
        )
        if self.metrics is not None:
            layers, rings = self.hop_layer_info(result)
            self.record_route("hieras", result, layers=layers, rings=rings)
        return result

    def route_lossy(self, source: int, key: int, *, injector) -> RouteResult:
        """Failure-aware bottom-up routing under an active fault injector.

        Same layer-by-layer procedure as :meth:`route`, but every ring
        snapshot is treated as stale knowledge: crashed peers still sit
        in finger tables, contacts can time out, and each loop falls
        back through next-best fingers and the per-layer §3.3 successor
        list (``injector.policy.successor_fallback`` entries), charging
        retry penalties to the result.  Lower loops stop at the key's
        closest *live* ring predecessor; the global loop ends at the
        first *live* successor of the key — the peer that actually owns
        it after the failures.  On failure ``owner`` is ``-1`` and the
        path covers the hops taken before the lookup died.
        """
        from repro.faults.injector import LossyContext
        from repro.faults.routing import lossy_ring_route

        require(bool(self._alive[source]), f"source peer {source} is not alive")
        require(not injector.state.is_dead(source), f"source peer {source} has crashed")
        key = self.space.wrap(int(key))
        ctx = LossyContext()
        contact = lambda u, v: injector.contact(u, v, ctx)  # noqa: E731
        fallback_r = injector.policy.successor_fallback
        cur = source
        path = [source]
        hops_per_layer: list[int] = []
        ok = True
        for layer in range(self.depth, 0, -1):
            ring = self.ring_of(cur, layer)
            pos = (
                int(self._pos_global[cur])
                if layer == 1
                else int(self._pos_in_ring[layer - 2, cur])
            )
            max_hops = 2 * max(len(ring).bit_length(), 4) + fallback_r
            sub, sub_ok = lossy_ring_route(
                ring,
                pos,
                key,
                to_owner=(layer == 1),
                contact=contact,
                is_dead=injector.state.is_dead,
                fallback_r=fallback_r,
                max_hops=max_hops,
            )
            for p in sub[1:]:
                path.append(int(ring.peers[p]))
            hops_per_layer.append(len(sub) - 1)
            cur = path[-1]
            if not sub_ok:
                ok = False
                break
        result = RouteResult(
            source=source,
            key=key,
            owner=path[-1] if ok else -1,
            path=path,
            latency_ms=self.route_latency(self.latency, path) * injector.state.delay_factor,
            hops_per_layer=hops_per_layer,
            success=ok,
            timeouts=ctx.timeouts,
            retry_latency_ms=ctx.retry_latency_ms,
        )
        if self.metrics is not None:
            layers, rings = self.hop_layer_info(result)
            self.record_route("hieras", result, layers=layers, rings=rings)
        return result

    def hop_layer_info(self, result: RouteResult) -> tuple[list[int], list[str]]:
        """Per-hop ``(layers, rings)`` labels for one finished lookup.

        ``hops_per_layer`` is ordered lowest layer first, matching the
        ``range(depth, 0, -1)`` routing loop, so zipping the two
        recovers which ring each ``path`` edge ran in.  A hop's ring is
        named after its *source* peer — the peer whose ring-restricted
        finger table chose the next hop.
        """
        layers: list[int] = []
        rings: list[str] = []
        hop_index = 0
        for layer, layer_hops in zip(range(self.depth, 0, -1), result.hops_per_layer):
            for _ in range(layer_hops):
                src = result.path[hop_index]
                layers.append(layer)
                rings.append("global" if layer == 1 else self.ring_name_of(src, layer))
                hop_index += 1
        return layers, rings

    # ------------------------------------------------------------------
    # inspection (Table 2, §3.4 cost model)
    # ------------------------------------------------------------------
    def finger_table(self, peer: int, layer: int) -> list[FingerEntry]:
        """Materialised finger table of ``peer`` in one layer's ring."""
        ring = self.ring_of(peer, layer)
        pos = (
            int(self._pos_global[peer])
            if layer == 1
            else int(self._pos_in_ring[layer - 2, peer])
        )
        return ring.finger_table(pos)

    def table2_rows(self, peer: int) -> list[LayeredFingerRow]:
        """The paper's Table 2 for ``peer``: fingers across all layers.

        Every row pairs the layer-1 successor with the lower-layer
        successors for the same finger interval; each successor is
        annotated with its own layer-2 ring name, as in the paper.
        """
        tables = [self.finger_table(peer, layer) for layer in range(1, self.depth + 1)]
        rows = []
        for entries in zip(*tables):
            base = entries[0]
            succ = tuple(
                (e.node_id, e.peer, self.ring_name_of(e.peer, 2)) for e in entries
            )
            rows.append(
                LayeredFingerRow(start=base.start, interval=base.interval, successors=succ)  # lint: allow-loop-alloc -- Table 2 inspection API; routing never calls this
            )
        return rows

    def distinct_finger_count(self, peer: int, layer: int) -> int:
        """Number of *distinct* finger nodes of ``peer`` at ``layer``.

        The §3.4 cost discussion notes lower-layer finger tables hold
        fewer distinct nodes; this is the quantity behind that claim.
        """
        return len({e.node_id for e in self.finger_table(peer, layer)})

    def maintenance_summary(self, *, successor_list_len: int = 4, sample: int | None = 64,
                            seed: int = 0) -> dict[str, float]:
        """Quantified §3.4 cost model (averages per node).

        Reports, per node: distinct finger-table entries per layer,
        successor-list entries (one list per layer), and how many ring
        tables the node hosts.  ``sample`` bounds the number of nodes
        whose finger tables are materialised (None = all).
        """
        rng = make_rng(seed)
        peers = self.global_ring.peers
        if sample is not None and sample < len(peers):
            peers = rng.choice(peers, size=sample, replace=False)
        finger_entries = {
            layer: float(
                np.mean([self.distinct_finger_count(int(p), layer) for p in peers])
            )
            for layer in range(1, self.depth + 1)
        }
        hosts: dict[int, int] = {}
        for name in self.directory.names():
            h = self.ring_table_host(name)
            hosts[h] = hosts.get(h, 0) + 1
        succ_entries = sum(
            min(successor_list_len, len(self.ring_of(int(peers[0]), layer)) - 1)
            for layer in range(1, self.depth + 1)
        )
        return {
            "depth": float(self.depth),
            "n_rings": float(sum(len(layer) for layer in self._rings) + 1),
            "avg_distinct_fingers_total": float(sum(finger_entries.values())),
            **{
                f"avg_distinct_fingers_layer{layer}": v
                for layer, v in sorted(finger_entries.items())
            },
            "successor_list_entries": float(succ_entries),
            "avg_ring_tables_hosted": float(
                sum(hosts.values()) / max(self.n_peers, 1)
            ),
        }

    def ring_id_of(self, name: str) -> int:
        """Ring id (hash of ring name) in this network's id space."""
        return ring_id(self.space, name)

    def explain_route(self, source: int, key: int) -> str:
        """Human-readable per-hop narration of one lookup.

        Shows, for every hop: the layer/ring it ran in, the peers and
        node ids involved, and the link delay — the debugging view of
        §3.2's multi-loop procedure.
        """
        result = self.route(source, key)
        lines = [
            f"route key={self.space.wrap(int(key))} from peer {source} "
            f"(id {self.id_of(source)}): {result.hops} hops, "
            f"{result.latency_ms:.0f}ms"
        ]
        hop_index = 0
        layers = list(range(self.depth, 0, -1))
        for layer, layer_hops in zip(layers, result.hops_per_layer):
            ring_label = (
                "global ring"
                if layer == 1
                else f'ring "{self.ring_name_of(result.path[hop_index], layer)}"'
            )
            if layer_hops == 0:
                lines.append(f"  layer {layer} ({ring_label}): no hops needed")
                hop_index += 0
                continue
            for _ in range(layer_hops):
                a = result.path[hop_index]
                b = result.path[hop_index + 1]
                delay = self.latency.pair(a, b)
                lines.append(
                    f"  layer {layer} ({ring_label}): peer {a} (id {self.id_of(a)})"
                    f" -> peer {b} (id {self.id_of(b)})  {delay:.0f}ms"
                )
                hop_index += 1
        lines.append(
            f"  owner: peer {result.owner} (id {self.id_of(result.owner)})"
        )
        return "\n".join(lines)
