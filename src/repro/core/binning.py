"""The distributed binning scheme (paper §2.2, Table 1).

Nodes measure their latency to a well-known set of landmark machines,
quantise each measurement into a small number of *levels*, and the
resulting digit string — the **landmark order** — names the lower-layer
P2P ring the node joins.  Nodes with the same order land in the same
ring; because the order is a coarse latency fingerprint, ring mates are
topologically close.

Level rule
----------
The paper uses three levels: ``[0, 20] → 0``, ``(20, 100) → 1`` and
``[100, ∞) → 2`` (both Table 1 boundary cases appear in the paper:
node F's 20 ms maps to level 0 and node C's 100 ms maps to level 2, so
the bottom level is closed and the top level includes its boundary).
:func:`quantise_levels` generalises that rule to any ascending boundary
list: values ≤ the first boundary get level 0, values ≥ the last
boundary get the top level, interior values use half-open bins.

Hierarchy depth > 2
-------------------
The paper evaluates depths up to 4 but never specifies how deeper rings
form.  We use **nested boundary refinement** (DESIGN.md §5): each deeper
layer re-quantises with a strictly finer boundary set, and a ring's name
is the full refinement path (``"1012" → "1012/301524" → …``), so a
layer-(ℓ+1) ring is always a subset of its layer-ℓ parent — mirroring
"the lower the layer, the more topologically adjacent" (§2.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util.validation import require

__all__ = ["quantise_levels", "BinningScheme", "LandmarkOrders", "DEFAULT_LEVELS"]

#: Default level boundaries per lower layer: entry 0 configures layer-2
#: rings (paper values), each subsequent entry refines the previous one
#: for layer 3, layer 4, …
DEFAULT_LEVELS: tuple[tuple[float, ...], ...] = (
    (20.0, 100.0),
    (10.0, 20.0, 50.0, 100.0, 200.0),
    (5.0, 10.0, 15.0, 20.0, 35.0, 50.0, 75.0, 100.0, 150.0, 200.0, 300.0),
)


def quantise_levels(distances: np.ndarray, boundaries: tuple[float, ...]) -> np.ndarray:
    """Quantise latency measurements into discrete levels.

    ``len(boundaries) + 1`` levels; the rule reproduces paper Table 1
    exactly (see module docstring for the boundary cases).

    Examples
    --------
    >>> quantise_levels(np.array([25.0, 5, 30, 100]), (20.0, 100.0)).tolist()
    [1, 0, 1, 2]
    >>> quantise_levels(np.array([20.0, 140, 50, 40]), (20.0, 100.0)).tolist()
    [0, 2, 1, 1]
    """
    distances = np.asarray(distances, dtype=np.float64)
    bounds = np.asarray(boundaries, dtype=np.float64)
    levels = np.digitize(distances, bounds, right=True)
    levels[distances >= bounds[-1]] = len(bounds)
    return levels.astype(np.int64)


def _digits(levels_row: np.ndarray) -> str:
    """Render one node's level vector as a ring-name digit string.

    Single characters while all levels fit a digit (the paper's
    ``"1012"`` style); dot-separated otherwise (deep hierarchies can
    exceed 9 levels).
    """
    if levels_row.max(initial=0) <= 9:
        return "".join(str(int(v)) for v in levels_row)
    return ".".join(str(int(v)) for v in levels_row)


@dataclass(frozen=True)
class BinningScheme:
    """Boundary configuration for every lower layer of a hierarchy.

    ``level_boundaries[k]`` configures layer ``k + 2`` (layer 1 is the
    global ring and is never binned).  Each boundary set must be an
    ascending, strict refinement (superset) of the previous one so that
    deeper rings nest.
    """

    level_boundaries: tuple[tuple[float, ...], ...] = field(
        default=(DEFAULT_LEVELS[0],)
    )

    def __post_init__(self) -> None:
        require(len(self.level_boundaries) >= 1, "need boundaries for at least layer 2")
        prev: set[float] = set()
        for k, bounds in enumerate(self.level_boundaries):
            require(len(bounds) >= 1, f"layer {k + 2} needs at least one boundary")
            require(
                all(b > 0 for b in bounds), f"layer {k + 2} boundaries must be positive"
            )
            require(
                list(bounds) == sorted(set(bounds)),
                f"layer {k + 2} boundaries must be strictly ascending",
            )
            require(
                prev.issubset(set(bounds)),
                f"layer {k + 2} boundaries must refine layer {k + 1}'s "
                f"({sorted(prev)} ⊄ {sorted(bounds)})",
            )
            prev = set(bounds)

    @property
    def depth(self) -> int:
        """Hierarchy depth this scheme supports (layers incl. global)."""
        return len(self.level_boundaries) + 1

    @classmethod
    def default_for_depth(cls, depth: int) -> "BinningScheme":
        """Paper-faithful scheme for a given hierarchy depth (2–4)."""
        require(
            2 <= depth <= 1 + len(DEFAULT_LEVELS),
            f"depth must be in [2, {1 + len(DEFAULT_LEVELS)}], got {depth}",
        )
        return cls(DEFAULT_LEVELS[: depth - 1])

    # ------------------------------------------------------------------
    def level_matrix(self, distances: np.ndarray, layer_index: int) -> np.ndarray:
        """Quantised ``(n_nodes, n_landmarks)`` levels for one lower layer.

        ``layer_index`` is 0-based into :attr:`level_boundaries`
        (0 → layer 2).
        """
        return quantise_levels(distances, self.level_boundaries[layer_index])

    def orders(self, distances: np.ndarray) -> "LandmarkOrders":
        """Compute every node's landmark order at every lower layer.

        Parameters
        ----------
        distances:
            ``(n_nodes, n_landmarks)`` measured node→landmark delays
            (ms), e.g. from
            :meth:`repro.topology.attach.OverlayAttachment.landmark_distances`.
        """
        distances = np.asarray(distances, dtype=np.float64)
        require(distances.ndim == 2, "distances must be (n_nodes, n_landmarks)")
        require(distances.shape[1] >= 1, "need at least one landmark")
        matrices = [
            self.level_matrix(distances, k) for k in range(len(self.level_boundaries))
        ]
        # Factorised construction: render each *distinct* level row once
        # (O(#rings) Python string work, not O(n_nodes)) and keep the
        # per-node assignment as int codes into the name pool.  The
        # object-array names are views into the pool (shared strings),
        # so million-node order sets stay cheap to build and hold.
        names: list[np.ndarray] = []
        pools: list[list[str]] = []
        codes_per_layer: list[np.ndarray] = []
        parent_codes = np.zeros(len(distances), dtype=np.int64)
        parent_pool: list[str] = []
        for k, mat in enumerate(matrices):
            rows, inv = np.unique(mat, axis=0, return_inverse=True)
            digit_pool = [_digits(row) for row in rows]
            if k == 0:
                pool = digit_pool
                layer_codes = inv.astype(np.int64)
            else:
                pairs = np.stack([parent_codes, inv.astype(np.int64)], axis=1)
                uniq_pairs, pair_inv = np.unique(pairs, axis=0, return_inverse=True)
                pool = [
                    f"{parent_pool[int(p)]}/{digit_pool[int(d)]}" for p, d in uniq_pairs
                ]
                layer_codes = pair_inv.astype(np.int64)
            pools.append(pool)
            codes_per_layer.append(layer_codes)
            names.append(np.asarray(pool, dtype=object)[layer_codes])
            parent_codes = layer_codes
            parent_pool = pool
        return LandmarkOrders(
            scheme=self,
            distances=distances,
            level_matrices=matrices,
            names_per_layer=names,
            codes_per_layer=codes_per_layer,
            name_pools=pools,
        )


@dataclass
class LandmarkOrders:
    """Per-node landmark orders for every lower layer of the hierarchy.

    ``names_per_layer[k][i]`` is the ring name node ``i`` joins at layer
    ``k + 2``; deeper names embed their parent name, so rings nest by
    construction.
    """

    scheme: BinningScheme
    distances: np.ndarray
    level_matrices: list[np.ndarray]
    names_per_layer: list[np.ndarray]
    #: Optional factorised form (set by :meth:`BinningScheme.orders`):
    #: ``codes_per_layer[k][i]`` indexes ``name_pools[k]``, node ``i``'s
    #: ring name at layer ``k + 2``.  Consumers that can work on int
    #: codes (e.g. :class:`~repro.core.hieras.HierasNetwork`) use these
    #: directly and never touch the per-node string arrays.
    codes_per_layer: list[np.ndarray] | None = None
    name_pools: list[list[str]] | None = None

    @property
    def n_nodes(self) -> int:
        """Number of binned nodes."""
        return self.distances.shape[0]

    @property
    def n_landmarks(self) -> int:
        """Number of landmarks used."""
        return self.distances.shape[1]

    @property
    def depth(self) -> int:
        """Hierarchy depth (layers including the global ring)."""
        return len(self.names_per_layer) + 1

    def ring_codes(self, layer_index: int) -> tuple[np.ndarray, list[str]]:
        """Factorised ring assignment at one lower layer.

        Returns ``(codes, names)`` where ``codes[i]`` indexes ``names``
        — the distinct ring names at layer ``layer_index + 2``.
        """
        uniq, inverse = np.unique(self.names_per_layer[layer_index], return_inverse=True)
        return inverse.astype(np.int64), [str(u) for u in uniq]

    def order_of(self, node: int, layer_index: int = 0) -> str:
        """Ring name of ``node`` at one lower layer (default layer 2)."""
        return str(self.names_per_layer[layer_index][node])

    def drop_landmark(self, landmark: int) -> "LandmarkOrders":
        """Orders after a landmark failure (paper §2.3).

        Surviving nodes "drop the failed landmark from their order
        information": the failed column disappears from the distance
        matrix and all orders are recomputed from the survivors.
        """
        require(
            0 <= landmark < self.n_landmarks,
            f"landmark {landmark} out of range 0..{self.n_landmarks - 1}",
        )
        require(self.n_landmarks > 1, "cannot drop the last landmark")
        kept = np.delete(self.distances, landmark, axis=1)
        return self.scheme.orders(kept)

    def table1_rows(self, labels: list[str] | None = None) -> list[dict[str, object]]:
        """Rows in the paper's Table 1 layout (layer-2 orders).

        Each row carries the node label, its per-landmark distances and
        its layer-2 order string.
        """
        labels = labels or [str(i) for i in range(self.n_nodes)]
        rows = []
        for i in range(self.n_nodes):
            row: dict[str, object] = {"node": labels[i]}
            for j in range(self.n_landmarks):
                row[f"dist_l{j + 1}_ms"] = float(self.distances[i, j])
            row["order"] = self.order_of(i)
            rows.append(row)
        return rows
