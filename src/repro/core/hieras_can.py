"""HIERAS over CAN (paper §3.2's sketched generalisation).

    "if we use CAN as the underlying algorithm, the whole coordinate
    space can be divided multiple times in different layers, we can
    create multilayer neighbor sets accordingly and use these neighbor
    sets in different loops during a routing procedure."

Concretely: every lower-layer ring's members build their **own** CAN
over the full coordinate torus (the space is "divided multiple times"),
so each node owns one zone per layer and keeps one neighbour set per
layer.  A lookup routes greedily in the originator's lowest-layer CAN
until it reaches the member whose *ring-layer* zone contains the key's
point, then continues in that node's next-layer CAN, finishing in the
global CAN at the key's true owner.  Unlike the ring case there is no
overshoot subtlety: geometric distance to the target point decreases
monotonically across layers because every layer's stopping node's zone
contains the point.
"""

from __future__ import annotations

import numpy as np

from repro.core.binning import LandmarkOrders
from repro.dht.base import DHTNetwork, RouteResult, ZeroLatency
from repro.dht.can import CanNetwork, CanParams, key_point
from repro.topology.base import LatencyModel
from repro.util.validation import require

__all__ = ["HierasCanNetwork"]


class HierasCanNetwork(DHTNetwork):
    """Multi-layer CAN: one coordinate-space division per layer."""

    def __init__(
        self,
        n_peers: int,
        *,
        landmark_orders: LandmarkOrders,
        params: CanParams | None = None,
        latency: LatencyModel | None = None,
        depth: int | None = None,
        seed: int = 0,
    ) -> None:
        require(n_peers >= 1, "need at least one peer")
        require(
            landmark_orders.n_nodes == n_peers,
            f"landmark orders cover {landmark_orders.n_nodes} nodes, network has {n_peers}",
        )
        depth = depth if depth is not None else landmark_orders.depth
        require(
            2 <= depth <= landmark_orders.depth,
            f"depth must be in [2, {landmark_orders.depth}], got {depth}",
        )
        self.params = params or CanParams()
        self.latency = latency if latency is not None else ZeroLatency()
        self.depth = depth
        self.orders = landmark_orders
        self._n = n_peers

        self.global_can = CanNetwork(
            np.arange(n_peers), params=self.params, latency=self.latency, seed=seed
        )
        # One CAN per ring per lower layer; peers keep their global
        # indices inside each ring CAN.
        self._layer_cans: list[list[CanNetwork]] = []
        self._ring_of_peer = np.full((depth - 1, n_peers), -1, dtype=np.int64)
        for k in range(depth - 1):
            codes, names = landmark_orders.ring_codes(k)
            cans: list[CanNetwork] = []
            for code in range(len(names)):
                members = np.flatnonzero(codes == code)
                cans.append(
                    CanNetwork(
                        members,
                        params=self.params,
                        latency=self.latency,
                        seed=seed * 1_000_003 + k * 1009 + code,
                    )
                )
                self._ring_of_peer[k, members] = code
            self._layer_cans.append(cans)

    # ------------------------------------------------------------------
    @property
    def n_peers(self) -> int:
        """Number of peers."""
        return self._n

    def can_of(self, peer: int, layer: int) -> CanNetwork:
        """The CAN ``peer`` belongs to at ``layer`` (1 = global)."""
        require(1 <= layer <= self.depth, f"layer must be in [1, {self.depth}]")
        if layer == 1:
            return self.global_can
        code = int(self._ring_of_peer[layer - 2, peer])
        return self._layer_cans[layer - 2][code]

    def owner_of(self, key: int) -> int:
        """Peer owning ``key`` in the global CAN."""
        return self.global_can.owner_of(key)

    def neighbor_state_size(self, peer: int) -> int:
        """Total neighbour-set entries across layers (§3.4 cost)."""
        return sum(
            self.can_of(peer, layer).neighbor_count(peer)
            for layer in range(1, self.depth + 1)
        )

    # ------------------------------------------------------------------
    def route(self, source: int, key: int) -> RouteResult:
        """Bottom-up routing through the layered CANs."""
        point = key_point(int(key), self.params.dimensions)
        cur = source
        path = [source]
        hops_per_layer: list[int] = []
        for layer in range(self.depth, 0, -1):
            can = self.can_of(cur, layer)
            sub = can.route_to_point(cur, point)
            hops_per_layer.append(len(sub) - 1)
            path.extend(sub[1:])
            cur = path[-1]
        return RouteResult(
            source=source,
            key=int(key),
            owner=path[-1],
            path=path,
            latency_ms=self.route_latency(self.latency, path),
            hops_per_layer=hops_per_layer,
        )
