"""HIERAS core: the paper's primary contribution.

* :mod:`repro.core.binning` — the distributed binning scheme (§2.2,
  Table 1): landmark latency orders that decide ring membership.
* :mod:`repro.core.landmarks` — landmark tables and landmark-failure
  handling (§2.3).
* :mod:`repro.core.ring` — P2P rings, ring names/ids and ring tables
  (§3.1, Table 3).
* :mod:`repro.core.hieras` — the multi-layer HIERAS network over Chord:
  per-layer finger tables and the bottom-up routing procedure (§3.2).
* :mod:`repro.core.hieras_can` — HIERAS over CAN (§3.2's sketched
  generalisation).
* :mod:`repro.core.hieras_protocol` — the §3.3 node-operations protocol
  on the event engine (joins, ring-table fetch/handoff, hierarchical
  lookups).
* :mod:`repro.core.maintenance` — the §3.4 cost model and failure
  helpers.
"""

from repro.core.binning import DEFAULT_LEVELS, BinningScheme, LandmarkOrders
from repro.core.hieras import HierasNetwork
from repro.core.landmarks import LandmarkSet
from repro.core.ring import RingInfo, RingTable, RingTableDirectory, ring_id, ring_name

__all__ = [
    "BinningScheme",
    "LandmarkOrders",
    "DEFAULT_LEVELS",
    "LandmarkSet",
    "RingInfo",
    "RingTable",
    "RingTableDirectory",
    "ring_id",
    "ring_name",
    "HierasNetwork",
]
