"""The HIERAS node-operations protocol (paper §3.3) on the event engine.

A :class:`HierasProtocolNode` extends the multi-ring Chord protocol node
with everything §3.3 specifies for a join:

1. Contact a nearby member ``n'`` (the bootstrap) and join the global
   ring with Chord's ordinary join.
2. Copy the landmark table from the bootstrap and determine the lower
   rings to join (the caller supplies the measured ring names — the
   binning itself is :mod:`repro.core.binning`).
3. For each lower ring: compute its ring id, look up the node ``c``
   storing the ring table with one *ordinary Chord lookup* on the
   global ring, and request the table.
4. Join that ring through a member found in the table (node ``p``),
   building the per-ring finger tables with in-ring lookups; or, if the
   ring does not exist yet, become its founding member.
5. Send a ring-table modification back to ``c`` when the joiner's id
   belongs among the ring's four extremes.

Ring-table storage follows §3.1: the node whose id is closest to
``hash(ringname)`` stores the table; members re-publish it periodically
so the mapping survives churn, and the host refreshes dead extremes.

Hierarchical lookups (§3.2) run bottom-up across the node's rings using
exactly the flat protocol's per-ring routing, with the early-exit
destination check between loops.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

from repro.core.ring import ring_id
from repro.dht.chord_protocol import (
    GLOBAL_RING,
    ChordProtocolNode,
    LookupOutcome,
    ProtocolConfig,
)
from repro.sim.engine import Simulator
from repro.sim.network import Message, SimNetwork
from repro.util.ids import IdSpace
from repro.util.intervals import in_interval, in_interval_open
from repro.util.validation import require

__all__ = ["HierasProtocolNode", "HierasLookupOutcome"]


@dataclass
class HierasLookupOutcome:
    """Result of a hierarchical lookup."""

    key: int
    owner_peer: int
    owner_id: int
    hops: int
    hops_per_layer: list[int]  # lowest layer first, like RouteResult


class HierasProtocolNode(ChordProtocolNode):
    """A HIERAS peer: multi-ring Chord node plus §3.3 node operations."""

    def __init__(
        self,
        peer: int,
        node_id: int,
        space: IdSpace,
        sim: Simulator,
        network: SimNetwork,
        *,
        config: ProtocolConfig | None = None,
        republish_interval_ms: float = 2000.0,
    ) -> None:
        super().__init__(peer, node_id, space, sim, network, config=config)
        require(republish_interval_ms > 0, "republish interval must be positive")
        self.republish_interval_ms = republish_interval_ms
        #: Ring names this node belongs to, lowest layer LAST
        #: (``lower_rings[0]`` is layer 2).
        self.lower_rings: list[str] = []
        #: Landmark table (§3.1): addresses of the landmark machines,
        #: copied from the bootstrap at join time.
        self.landmark_table: list[int] = []
        #: Ring tables this node stores as host ``c`` (name → 4 extreme
        #: (id, peer) pairs, largest/2nd-largest/smallest/2nd-smallest).
        self.stored_ring_tables: dict[str, list[tuple[int, int]]] = {}
        self.joined = False
        self._join_done_cb: Callable[[], None] | None = None
        self._join_index: int | None = None
        self._join_progress = 0

    # ------------------------------------------------------------------
    # system bootstrap / join (§3.3)
    # ------------------------------------------------------------------
    def found_system(self, ring_names: list[str], landmark_table: list[int]) -> None:
        """Become the very first node of a HIERAS system."""
        self.landmark_table = list(landmark_table)
        self.lower_rings = list(ring_names)
        self.create_ring(GLOBAL_RING)
        for name in ring_names:
            self.create_ring(name)
            self._store_ring_table_locally(name)
        self.joined = True
        self.after(self.republish_interval_ms, self._republish_tick)

    def join_system(
        self,
        bootstrap_peer: int,
        ring_names: list[str],
        *,
        on_done: Callable[[], None] | None = None,
    ) -> None:
        """Join an existing system through nearby member ``bootstrap_peer``.

        ``ring_names`` are this node's landmark orders (layer 2 first),
        measured by the caller against the landmark set — the protocol
        cannot ping for itself inside the simulation, so measurement is
        injected, mirroring how §3.3 separates binning from joining.
        """
        self.joined = False  # re-joins reset the flag until convergence
        self.lower_rings = list(ring_names)
        self._join_done_cb = on_done
        self._join_index = None
        # Ask the bootstrap for the landmark table, then join layer 1.
        token = self._register(self._on_landmark_table, timeout=True)
        self.send(bootstrap_peer, "landmark_table_req", token=token)
        self.join_ring(
            GLOBAL_RING, bootstrap_peer, on_done=lambda: self._join_lower(0)
        )
        # Watchdog: lower-ring joins involve lookups whose replies can
        # be lost to churn (dead hosts, stale routes); if a step makes
        # no progress for a few timeouts, re-run it from scratch.
        self.after(
            3 * self.config.request_timeout_ms,
            self._join_watchdog,
            self._join_progress,
        )

    def _join_watchdog(self, last_progress: int) -> None:
        if self.joined or not self.alive:
            return
        if self._join_progress == last_progress and self._join_index is not None:
            self._join_lower(self._join_index)
        self.after(
            3 * self.config.request_timeout_ms,
            self._join_watchdog,
            self._join_progress,
        )

    def _on_landmark_table(self, msg: Message | None) -> None:
        if msg is not None:
            self.landmark_table = list(msg.payload["landmarks"])

    def _join_lower(self, index: int) -> None:
        """Join lower ring ``index`` (0 = layer 2), then recurse."""
        self._join_index = index
        self._join_progress += 1
        if index >= len(self.lower_rings):
            self.joined = True
            self.after(self.republish_interval_ms, self._republish_tick)
            if self._join_done_cb is not None:
                self._join_done_cb()
            return
        name = self.lower_rings[index]
        rid = ring_id(self.space, name)

        def _on_host(outcome: LookupOutcome) -> None:
            # ``c`` — the ring-table host — answers with the table (or
            # "unknown" if we are the ring's first member).
            token = self._register(
                lambda msg: self._on_ring_table(index, name, outcome.owner_peer, msg),
                timeout=True,
            )
            self.send(
                outcome.owner_peer,
                "ring_table_req",
                token=token,
                name=name,
                node_id=self.node_id,
                claim=False,
            )

        self.lookup(rid, _on_host, ring=GLOBAL_RING)

    def _on_ring_table(
        self, index: int, name: str, host_peer: int, msg: Message | None, attempt: int = 0
    ) -> None:
        if msg is None:  # host failed mid-join: retry the whole step
            self.after(self.config.request_timeout_ms, self._join_lower, index)
            return
        entries = msg.payload.get("entries")
        if not entries:
            if attempt == 0:
                # The host may itself have just joined and not yet have
                # received the table handoff; retry once after a couple
                # of stabilization rounds before concluding the ring is
                # genuinely new.  (Without this, a stale "no table"
                # answer makes the joiner found a duplicate ring — a
                # partition stabilize can never heal.)
                self.after(
                    2 * self.config.stabilize_interval_ms,
                    self._retry_ring_table,
                    index,
                    name,
                )
                return
            # The host confirmed no table exists and registered us as
            # the founder (the ``claim`` flag serialises concurrent
            # would-be founders at the host): found the ring.
            self.create_ring(name)
            self._store_ring_table_locally(name)
            self._publish_ring_table(name)
            self._join_lower(index + 1)
            return
        bootstrap = int(entries[2][1])  # smallest-id member, like Table 3

        def _after_ring_join() -> None:
            # §3.3: notify ``c`` when our id belongs among the extremes.
            ids = [e[0] for e in entries]
            if self.node_id > min(ids[0], ids[1]) or self.node_id < max(ids[2], ids[3]):
                self.send(
                    host_peer,
                    "ring_table_update",
                    name=name,
                    node_id=self.node_id,
                    node_peer=self.peer,
                )
            self._join_lower(index + 1)

        self.join_ring(name, bootstrap, on_done=_after_ring_join)

    def _retry_ring_table(self, index: int, name: str) -> None:
        """Second ring-table fetch, freshly routed to the current host."""
        rid = ring_id(self.space, name)

        def _on_host(outcome: LookupOutcome) -> None:
            token = self._register(
                lambda msg: self._on_ring_table(
                    index, name, outcome.owner_peer, msg, attempt=1
                ),
                timeout=True,
            )
            self.send(
                outcome.owner_peer,
                "ring_table_req",
                token=token,
                name=name,
                node_id=self.node_id,
                claim=True,
            )

        self.lookup(rid, _on_host, ring=GLOBAL_RING)

    # ------------------------------------------------------------------
    # ring-table hosting
    # ------------------------------------------------------------------
    def on_predecessor_changed(
        self,
        ring: str,
        old: tuple[int, int] | None,
        new: tuple[int, int],
    ) -> None:
        """Hand off ring tables the new predecessor now owns.

        Table ownership follows Chord data placement — the table for
        ``ringname`` lives at the current successor of its ring id — so
        when a joiner slots in as our predecessor, every stored table
        whose ring id no longer falls in ``(pred, me]`` migrates to it.
        """
        if ring != GLOBAL_RING or not self.stored_ring_tables:
            return
        for name in list(self.stored_ring_tables):
            rid = ring_id(self.space, name)
            if not in_interval(rid, new[1], self.node_id, self.space.size):
                entries = self.stored_ring_tables.pop(name)
                self.send(new[0], "ring_table_put", name=name, entries=entries)

    def _store_ring_table_locally(self, name: str) -> None:
        entry = (self.node_id, self.peer)
        self.stored_ring_tables[name] = [entry, entry, entry, entry]

    def _apply_table_update(self, name: str, node_id: int, node_peer: int) -> None:
        table = self.stored_ring_tables.get(name)
        if table is None:
            entry = (node_id, node_peer)
            self.stored_ring_tables[name] = [entry, entry, entry, entry]
            return
        ids = {e[0]: e for e in table}
        ids[node_id] = (node_id, node_peer)
        ordered = sorted(ids.values(), key=lambda e: e[0])
        largest, second_largest = ordered[-1], ordered[max(len(ordered) - 2, 0)]
        smallest, second_smallest = ordered[0], ordered[min(1, len(ordered) - 1)]
        self.stored_ring_tables[name] = [largest, second_largest, smallest, second_smallest]

    def _republish_tick(self) -> None:
        """Members periodically re-publish and audit their rings' tables.

        Re-publication routes to whoever currently hosts the ring id,
        so the table migrates as membership changes and survives host
        failures (the paper replicates the table; routed refresh
        achieves the same durability in this simulation).  The audit
        half reads the table back and adopts any listed member sitting
        between this node and its current ring successor: if concurrent
        founding ever split a ring into parallel loops, the shared
        table is the rendezvous through which they re-merge (stabilize
        alone can never join disjoint cycles).
        """
        if not self.alive or not self.joined:
            return
        for name in self.lower_rings:
            rid = ring_id(self.space, name)

            def _send_update(outcome: LookupOutcome, name: str = name) -> None:
                self.send(
                    outcome.owner_peer,
                    "ring_table_update",
                    name=name,
                    node_id=self.node_id,
                    node_peer=self.peer,
                )
                token = self._register(
                    lambda msg: self._audit_ring_table(name, msg), timeout=True
                )
                self.send(
                    outcome.owner_peer,
                    "ring_table_req",
                    token=token,
                    name=name,
                    node_id=self.node_id,
                    claim=False,
                )

            self.lookup(rid, _send_update, ring=GLOBAL_RING)
        self.after(self.republish_interval_ms, self._republish_tick)

    def _audit_ring_table(self, name: str, msg: Message | None) -> None:
        """Adopt a closer ring successor learned from the ring table."""
        if msg is None:
            return
        entries = msg.payload.get("entries")
        state = self.rings.get(name)
        if not entries or state is None:
            return
        succ = state.known_successor()
        if succ is None:
            return
        for node_id, node_peer in entries:
            if node_peer == self.peer:
                continue
            if succ[0] == self.peer or in_interval_open(
                node_id, self.node_id, succ[1], self.space.size
            ):
                state.successor = (node_peer, node_id)
                succ = state.successor

    def _publish_ring_table(self, name: str) -> None:
        rid = ring_id(self.space, name)
        self.lookup(
            rid,
            lambda outcome: self.send(
                outcome.owner_peer,
                "ring_table_update",
                name=name,
                node_id=self.node_id,
                node_peer=self.peer,
            ),
            ring=GLOBAL_RING,
        )

    # ------------------------------------------------------------------
    # hierarchical lookup (§3.2)
    # ------------------------------------------------------------------
    def hieras_lookup(
        self,
        key: int,
        callback: Callable[[HierasLookupOutcome], None],
        *,
        retries: int = 0,
        on_fail: Callable[[int], None] | None = None,
    ) -> None:
        """Bottom-up lookup: lowest ring first, global ring last.

        With ``retries == 0`` (the default) the lookup is one-shot: a
        request that dies to a crashed relay or a lost message simply
        never completes, which is what the churn experiment measures.
        ``retries > 0`` makes the lookup failure-aware: the originator
        arms a watchdog (a multiple of the request timeout, so a full
        multi-hop route fits comfortably inside it) and re-issues the
        lookup from scratch up to ``retries`` times — by then stabilize
        has usually routed around the failure (§3.3).  ``on_fail`` fires
        with the key if every attempt times out.
        """
        key = self.space.wrap(int(key))
        layers = len(self.lower_rings) + 1
        attempts_left = retries

        def _finish(msg: Message | None) -> None:
            nonlocal attempts_left
            m = self.network.metrics
            if msg is None:
                if attempts_left > 0 and self.alive:
                    attempts_left -= 1
                    self.lookup_retry_count += 1
                    if m is not None:
                        m.inc("protocol.lookup_retries")
                    _start()
                elif on_fail is not None:
                    on_fail(key)
                return
            if m is not None:
                m.inc("protocol.lookups_completed")
                m.observe("protocol.lookup_hops", msg.payload["hops"])
            callback(
                HierasLookupOutcome(
                    key=msg.payload["key"],
                    owner_peer=msg.payload["owner_peer"],
                    owner_id=msg.payload["owner_id"],
                    hops=msg.payload["hops"],
                    hops_per_layer=msg.payload["per_layer"],
                )
            )

        def _start() -> None:
            self.lookup_count += 1
            if self.network.metrics is not None:
                self.network.metrics.inc("protocol.lookups")
            if retries > 0:
                token = self._register(
                    _finish, timeout=True, timeout_ms=3.0 * self.config.request_timeout_ms
                )
            else:
                token = self._register(_finish)
            self._route_hieras(key, self.peer, layers, 0, [0] * layers, token)

        _start()

    def _layer_ring_name(self, layer: int) -> str | None:
        """Ring name for ``layer`` (1 = global; depth = lowest)."""
        if layer == 1:
            return GLOBAL_RING
        index = layer - 2
        if index >= len(self.lower_rings):
            return None
        return self.lower_rings[index]

    def _is_global_owner(self, key: int) -> bool:
        """Early-exit check (§3.2): am I the key's destination?"""
        state = self.rings.get(GLOBAL_RING)
        if state is None or state.predecessor is None:
            return False
        return in_interval(key, state.predecessor[1], self.node_id, self.space.size)

    def _route_hieras(
        self,
        key: int,
        origin: int,
        layer: int,
        hops: int,
        per_layer: list[int],
        token: int,
    ) -> None:
        # Early exit: the current peer checks whether it already is the
        # destination before continuing in any ring.
        if self._is_global_owner(key):
            self.send(
                origin,
                "h_done",
                token=token,
                key=key,
                owner_peer=self.peer,
                owner_id=self.node_id,
                hops=hops,
                per_layer=per_layer,
            )
            return
        ring = self._layer_ring_name(layer)
        if ring is None or ring not in self.rings:
            # Node lacks this layer (e.g. still joining): fall through
            # to the next one rather than stalling the lookup.
            if layer > 1:
                self._route_hieras(key, origin, layer - 1, hops, per_layer, token)
            return
        layers = len(self.lower_rings) + 1
        slot = layers - layer  # per_layer is ordered lowest layer first
        if self._owns(ring, key):
            if layer == 1:
                state = self.rings[ring]
                succ = state.known_successor() or (self.peer, self.node_id)
                if succ[0] == self.peer:
                    self.send(
                        origin, "h_done", token=token, key=key,
                        owner_peer=self.peer, owner_id=self.node_id,
                        hops=hops, per_layer=per_layer,
                    )
                    return
                per_layer = per_layer.copy()
                per_layer[slot] += 1
                # Final hop: hand the request to the owner, who replies.
                self.send(
                    succ[0], "h_deliver", token=token, key=key, origin=origin,
                    hops=hops + 1, per_layer=per_layer,
                )
                return
            self._route_hieras(key, origin, layer - 1, hops, per_layer, token)
            return
        # §3.2 acceleration (loops above the lowest): if the key's ring
        # predecessor sits in this node's per-layer successor list, hop
        # to it directly instead of finger-routing.
        nxt = None
        if layer < layers:
            shortcut = self._successor_list_shortcut(ring, key)
            if shortcut is not None and shortcut[0] != self.peer:
                nxt = shortcut
        if nxt is None:
            nxt = self._closest_preceding(ring, key)
        if nxt is None:
            if layer > 1:
                self._route_hieras(key, origin, layer - 1, hops, per_layer, token)
            return
        per_layer = per_layer.copy()
        per_layer[slot] += 1
        self.send(
            nxt[0], "h_find", token=token, key=key, origin=origin,
            layer=layer, hops=hops + 1, per_layer=per_layer,
        )

    # ------------------------------------------------------------------
    # message handling
    # ------------------------------------------------------------------
    def handle_extra(self, message: Message) -> None:
        kind = message.kind
        p = message.payload
        if kind == "landmark_table_req":
            self.reply(message, "landmark_table_resp", landmarks=self.landmark_table)
        elif kind == "landmark_table_resp":
            self._resolve(message)
        elif kind == "ring_table_req":
            entries = self.stored_ring_tables.get(p["name"])
            if entries is None and p.get("claim"):
                # Serialise founders: provisionally record the claimant
                # so a concurrent second founder sees a table and joins
                # through the first instead of splitting the ring.
                self._apply_table_update(p["name"], p["node_id"], message.sender)
            self.reply(message, "ring_table_resp", name=p["name"], entries=entries)
        elif kind == "ring_table_resp":
            self._resolve(message)
        elif kind == "ring_table_update":
            self._apply_table_update(p["name"], p["node_id"], p["node_peer"])
        elif kind == "ring_table_put":
            existing = self.stored_ring_tables.get(p["name"])
            if existing is None:
                self.stored_ring_tables[p["name"]] = [tuple(e) for e in p["entries"]]
            else:
                for node_id, node_peer in p["entries"]:
                    self._apply_table_update(p["name"], node_id, node_peer)
        elif kind == "h_find":
            self._route_hieras(
                p["key"], p["origin"], p["layer"], p["hops"], p["per_layer"], message.token
            )
        elif kind == "h_deliver":
            self.send(
                p["origin"], "h_done", token=message.token, key=p["key"],
                owner_peer=self.peer, owner_id=self.node_id,
                hops=p["hops"], per_layer=p["per_layer"],
            )
        elif kind == "h_done":
            self._resolve(message)
