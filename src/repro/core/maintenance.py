"""Maintenance overheads and failure handling (paper §3.3–§3.4).

The paper argues qualitatively that HIERAS's extra state — one finger
table and one successor list per layer, plus ring tables — costs only
"hundreds or thousands of bytes" and that lower-layer upkeep is cheap
because ring mates are topologically close.  This module quantifies
that argument for the ``churn``/cost experiments:

* :func:`state_cost_model` — closed-form per-node state estimate.
* :func:`measured_state_cost` — the same quantities measured on a built
  :class:`~repro.core.hieras.HierasNetwork`.
* :func:`maintenance_traffic_cost` — expected *latency-weighted* cost of
  one round of pinging all maintained neighbours, the paper's point
  that lower-layer maintenance is affordable because those pings are
  short.
* :func:`fail_peers` — crash a set of peers on the static stack and
  verify/repair invariants, for failure-injection tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.hieras import HierasNetwork
from repro.util.rng import make_rng
from repro.util.validation import require

__all__ = [
    "StateCost",
    "state_cost_model",
    "measured_state_cost",
    "maintenance_traffic_cost",
    "fail_peers",
]

#: Bytes per routing-table entry: nodeid (20 B for SHA-1 width) + IPv4
#: address/port (6 B) + bookkeeping, rounded as the paper's
#: "hundred or thousands of bytes" arithmetic implies.
BYTES_PER_ENTRY = 32


@dataclass(frozen=True)
class StateCost:
    """Per-node state of one configuration, in entries and bytes."""

    finger_entries: float
    successor_entries: float
    ring_table_entries: float

    @property
    def total_entries(self) -> float:
        """All maintained entries per node."""
        return self.finger_entries + self.successor_entries + self.ring_table_entries

    @property
    def total_bytes(self) -> float:
        """Approximate bytes of routing state per node."""
        return self.total_entries * BYTES_PER_ENTRY


def state_cost_model(
    n_peers: int,
    depth: int,
    *,
    n_rings_per_layer: float | list[float] = 16.0,
    successor_list_len: int = 16,
) -> StateCost:
    """Closed-form §3.4 estimate of per-node state.

    A layer-ℓ ring holds roughly ``n / rings(ℓ)`` peers, and a Chord
    finger table over ``m`` peers has ``log2(m)`` distinct entries, so
    total distinct fingers ≈ ``Σ log2(ring size)``.  Chord itself is the
    ``depth=1`` case.

    ``n_rings_per_layer`` is either a scalar (ring count multiplies by
    that factor per layer — the idealised geometric hierarchy) or one
    explicit ring count per lower layer (layer 2 first), e.g. measured
    from a built network.
    """
    require(n_peers >= 1, "n_peers must be >= 1")
    require(depth >= 1, "depth must be >= 1")
    if isinstance(n_rings_per_layer, (int, float)):
        ring_counts = [float(n_rings_per_layer) ** layer for layer in range(1, depth)]
    else:
        ring_counts = [float(v) for v in n_rings_per_layer]
        require(
            len(ring_counts) == depth - 1,
            f"need {depth - 1} ring counts (layer 2..{depth}), got {len(ring_counts)}",
        )
    fingers = float(np.log2(max(n_peers, 2)))
    for rings in ring_counts:
        ring_size = max(n_peers / max(rings, 1.0), 1.0)
        fingers += float(np.log2(max(ring_size, 2.0)))
    successors = float(successor_list_len * depth)
    # Ring tables: one per ring, four entries each, spread over peers.
    ring_entries = 4.0 * sum(ring_counts) / n_peers
    return StateCost(
        finger_entries=fingers,
        successor_entries=successors,
        ring_table_entries=ring_entries,
    )


def measured_state_cost(
    network: HierasNetwork, *, successor_list_len: int = 16, sample: int = 64, seed: int = 0
) -> StateCost:
    """Measure the §3.4 quantities on a built network."""
    summary = network.maintenance_summary(
        successor_list_len=successor_list_len, sample=sample, seed=seed
    )
    return StateCost(
        finger_entries=summary["avg_distinct_fingers_total"],
        successor_entries=summary["successor_list_entries"],
        ring_table_entries=4.0 * summary["avg_ring_tables_hosted"],
    )


def maintenance_traffic_cost(
    network: HierasNetwork,
    *,
    successor_list_len: int = 16,
    sample: int = 128,
    seed: int = 0,
) -> dict[str, float]:
    """Latency-weighted cost of one maintenance round, per layer.

    For a sample of nodes, sums the round-trip delay of pinging every
    successor-list member in each layer.  The paper's claim is that the
    *lower-layer* share of this traffic is cheap because those
    successors are topologically close; the returned dict reports the
    mean per-ping delay per layer so the claim is directly checkable.
    """
    rng = make_rng(seed)
    peers = network.global_ring.peers
    if sample < len(peers):
        peers = rng.choice(peers, size=sample, replace=False)
    out: dict[str, float] = {}
    for layer in range(1, network.depth + 1):
        delays: list[float] = []
        for peer in peers:
            ring = network.ring_of(int(peer), layer)
            pos = ring.pos_of_id(network.id_of(int(peer)))
            succ_positions = ring.successor_list(pos, successor_list_len)
            targets = np.asarray([int(ring.peers[p]) for p in succ_positions], dtype=np.int64)
            if len(targets) == 0:
                continue
            delays.extend(
                network.latency.pairs(
                    np.full(len(targets), int(peer), dtype=np.int64), targets
                )
            )
        out[f"layer{layer}_mean_ping_ms"] = float(np.mean(delays)) if delays else 0.0
    return out


def fail_peers(network: HierasNetwork, peers: list[int]) -> dict[str, float]:
    """Crash ``peers`` on the static stack and report repair effects.

    Removal re-derives every routing structure from the surviving
    membership (the steady state a real deployment's stabilization
    converges to); returns how many rings changed or vanished.
    """
    rings_before = {
        layer: set(network.rings_at_layer(layer)) for layer in range(2, network.depth + 1)
    }
    network.remove_peers([int(peer) for peer in peers])
    changed = 0
    vanished = 0
    for layer, before in rings_before.items():
        after = set(network.rings_at_layer(layer))
        vanished += len(before - after)
        changed += len(before & after)
    return {
        "failed": float(len(peers)),
        "rings_surviving": float(changed),
        "rings_vanished": float(vanished),
        "peers_remaining": float(network.n_peers),
    }
