"""Experiment configuration.

A :class:`SimConfig` pins every knob of one simulated deployment —
topology family and size, landmark count and placement, binning depth,
id-space width, seeds — and is hashable so the runner can cache built
simulations across experiments (fig2 and fig3 share their sweep, fig4
and fig5 share their 10000-node network, …).

Scale control: experiments run at a CI-friendly reduced scale by
default; passing ``full=True`` (CLI ``--full``) or setting the
``REPRO_FULL=1`` environment variable selects the paper's parameters
(10000 nodes, 100000 requests).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace

from repro.util.validation import require

__all__ = ["SimConfig", "is_full_scale", "DEFAULT_REQUESTS", "FULL_REQUESTS"]

#: Requests per experiment at reduced / paper scale (paper: §4.2).
DEFAULT_REQUESTS = 20_000
FULL_REQUESTS = 100_000


def is_full_scale(full: bool | None = None) -> bool:
    """Resolve the scale flag (explicit argument wins over env)."""
    if full is not None:
        return full
    return os.environ.get("REPRO_FULL", "0") not in ("", "0", "false", "no")


@dataclass(frozen=True)
class SimConfig:
    """One simulated deployment (topology + overlay + HIERAS settings)."""

    model: str = "ts"  # "ts" | "inet" | "brite"
    n_peers: int = 1000
    n_landmarks: int = 4
    depth: int = 2
    seed: int = 42
    bits: int = 32
    #: Router count relative to overlay size; >1 leaves unoccupied
    #: routers, as in the paper's emulated networks.
    router_factor: float = 1.25
    #: ``"auto"`` picks per model: max–min *spread* placement on
    #: transit-stub (one landmark per backbone region) and *random*
    #: placement on Inet (random machines land in population hotspots —
    #: where well-known Internet landmarks actually live; max–min would
    #: select pathological fringe routers there).
    landmark_strategy: str = "auto"
    successor_list_r: int = 16
    successor_list_policy: str = "transitions"

    def __post_init__(self) -> None:
        require(self.model in ("ts", "inet", "brite"), f"unknown model {self.model!r}")
        require(self.n_peers >= 8, "n_peers must be >= 8")
        require(self.n_landmarks >= 1, "n_landmarks must be >= 1")
        require(2 <= self.depth <= 4, "depth must be in [2, 4]")
        require(self.router_factor >= 1.0, "router_factor must be >= 1")
        require(
            self.landmark_strategy in ("auto", "spread", "random"),
            f"unknown landmark_strategy {self.landmark_strategy!r}",
        )

    @property
    def resolved_landmark_strategy(self) -> str:
        """Per-model resolution of the ``"auto"`` landmark strategy."""
        if self.landmark_strategy != "auto":
            return self.landmark_strategy
        return "random" if self.model == "inet" else "spread"

    @property
    def n_routers(self) -> int:
        """Router count of the generated topology."""
        return max(64, int(self.n_peers * self.router_factor))

    def with_(self, **changes: object) -> "SimConfig":
        """Functional update (frozen dataclass convenience)."""
        return replace(self, **changes)  # type: ignore[arg-type]

    def topology_key(self) -> tuple:
        """Cache key for the expensive substrate (topology + latency +
        attachment + landmarks) — everything that does not depend on
        binning depth or routing settings."""
        return (
            self.model,
            self.n_peers,
            self.n_landmarks,
            self.seed,
            self.bits,
            self.router_factor,
            self.landmark_strategy,
        )
