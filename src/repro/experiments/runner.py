"""Build simulations from configs and run request traces through them.

The runner is the bridge between configuration and measurement:

* :func:`build_bundle` — topology → latency model → overlay attachment
  → landmark placement → binning → Chord + HIERAS networks, all seeded
  from the config for exact reproducibility.  Substrates are cached per
  :meth:`~repro.experiments.config.SimConfig.topology_key` so sweeps
  that share a deployment (fig2/fig3; fig4/fig5; fig6/fig7) only build
  it once per process.
* :func:`run_pair` — run one trace through both networks, returning
  :class:`~repro.analysis.stats.RouteSample` pairs ready for the
  figure-level reporting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.stats import RouteSample, collect_routes
from repro.core.binning import BinningScheme, LandmarkOrders
from repro.core.hieras import HierasNetwork
from repro.dht.chord import ChordNetwork
from repro.experiments.config import SimConfig
from repro.topology.attach import OverlayAttachment, PeerLatencyView, attach_overlay, place_landmarks
from repro.topology.base import LatencyModel, Topology
from repro.topology.brite import BriteParams, generate_brite
from repro.topology.inet import InetParams, generate_inet
from repro.topology.latency import latency_model_for
from repro.topology.transit_stub import TransitStubParams, generate_transit_stub
from repro.util.ids import IdSpace
from repro.util.rng import RngFactory
from repro.util.validation import require
from repro.workloads.requests import RequestTrace, generate_requests

__all__ = ["SimulationBundle", "build_bundle", "run_pair", "clear_cache", "make_trace"]


@dataclass
class _Substrate:
    """Cached expensive half of a simulation (no binning/DHT state)."""

    topology: Topology
    model: LatencyModel
    attachment: OverlayAttachment
    peer_latency: PeerLatencyView
    node_ids: np.ndarray
    landmark_distances: np.ndarray


@dataclass
class SimulationBundle:
    """A fully built deployment ready for routing experiments."""

    config: SimConfig
    topology: Topology
    attachment: OverlayAttachment
    peer_latency: PeerLatencyView
    space: IdSpace
    node_ids: np.ndarray
    orders: LandmarkOrders
    chord: ChordNetwork
    hieras: HierasNetwork


_SUBSTRATES: dict[tuple, _Substrate] = {}

#: Cache ceiling: full-scale Inet/BRITE substrates hold a 200 MB APSP
#: matrix each, so sweeps evict oldest-first beyond this many entries.
_MAX_SUBSTRATES = 6


def clear_cache() -> None:
    """Drop cached substrates (tests; memory pressure in huge sweeps)."""
    _SUBSTRATES.clear()


def _generate_topology(config: SimConfig, seed) -> Topology:
    n = config.n_routers
    if config.model == "ts":
        return generate_transit_stub(TransitStubParams.for_size(n), seed=seed)
    if config.model == "inet":
        require(
            n >= 3000,
            f"Inet topologies need >= 3000 routers (got {n}); the paper "
            "imposes the same floor (§4.1)",
        )
        return generate_inet(InetParams(n_nodes=n), seed=seed)
    return generate_brite(BriteParams(n_nodes=n), seed=seed)


def _build_substrate(config: SimConfig) -> _Substrate:
    key = config.topology_key()
    cached = _SUBSTRATES.get(key)
    if cached is not None:
        return cached
    rngs = RngFactory(config.seed)
    topology = _generate_topology(config, rngs.get("topology"))
    model = latency_model_for(topology)
    routers = attach_overlay(topology, config.n_peers, seed=rngs.get("attach"))
    landmarks = place_landmarks(
        topology,
        model,
        config.n_landmarks,
        seed=rngs.get("landmarks"),
        strategy=config.resolved_landmark_strategy,
    )
    attachment = OverlayAttachment(topology, routers, landmarks)
    space = IdSpace(config.bits)
    node_ids = space.sample_unique_ids(config.n_peers, rngs.get("node-ids"))
    substrate = _Substrate(
        topology=topology,
        model=model,
        attachment=attachment,
        peer_latency=attachment.peer_latency(model),
        node_ids=node_ids,
        landmark_distances=attachment.landmark_distances(model),
    )
    _SUBSTRATES[key] = substrate
    while len(_SUBSTRATES) > _MAX_SUBSTRATES:
        _SUBSTRATES.pop(next(iter(_SUBSTRATES)))
    return substrate


def build_bundle(config: SimConfig) -> SimulationBundle:
    """Build (or fetch from cache and finish) a full simulation."""
    sub = _build_substrate(config)
    space = IdSpace(config.bits)
    chord = ChordNetwork(space, sub.node_ids, latency=sub.peer_latency)
    scheme = BinningScheme.default_for_depth(config.depth)
    orders = scheme.orders(sub.landmark_distances)
    hieras = HierasNetwork(
        space,
        sub.node_ids,
        latency=sub.peer_latency,
        landmark_orders=orders,
        depth=config.depth,
        successor_list_r=config.successor_list_r,
        successor_list_policy=config.successor_list_policy,
    )
    return SimulationBundle(
        config=config,
        topology=sub.topology,
        attachment=sub.attachment,
        peer_latency=sub.peer_latency,
        space=space,
        node_ids=sub.node_ids,
        orders=orders,
        chord=chord,
        hieras=hieras,
    )


def make_trace(bundle: SimulationBundle, n_requests: int, *, seed_label: str = "requests") -> RequestTrace:
    """The experiment's request trace (uniform, as in the paper)."""
    rngs = RngFactory(bundle.config.seed)
    return generate_requests(
        n_requests, bundle.config.n_peers, bundle.space, seed=rngs.get(seed_label)
    )


def run_pair(
    bundle: SimulationBundle, n_requests: int, *, engine: str = "batch"
) -> tuple[RouteSample, RouteSample]:
    """Run the trace through Chord and HIERAS; returns both samples.

    ``engine`` selects the routing engine (``"batch"`` uses the
    vectorized frontier kernels of :mod:`repro.engine`; results are
    bit-identical to ``"scalar"`` — see ``collect_routes``).
    """
    trace = make_trace(bundle, n_requests)
    return (
        collect_routes(bundle.chord, trace, engine=engine),
        collect_routes(bundle.hieras, trace, engine=engine),
    )
