"""Million-peer scale benchmark: build, churn, and route at N up to 10⁶.

One run, per network size, on both stacks:

1. **build** — :func:`repro.scale.build_scale_bundle` (streaming
   latency models, bounded-block transit-stub sizing) timed end-to-end;
2. **membership waves** — remove then revive a seeded wave of peers
   through the incremental splice path, verifying with the stacks' own
   counters that *zero* full rebuilds happened, then force a full
   :meth:`rebuild` and check the spliced state is **bit-identical** to
   the from-scratch state (the incremental contract's acceptance pin);
3. **lookups** — a seeded trace streamed through
   :func:`repro.engine.stream.stream_batch_route` in bounded chunks;
   integer hop statistics and the order-weighted owner checksum land in
   ``metrics`` (chunk-size invariant), and the two stacks' checksums
   must agree — Chord and HIERAS resolve every key to the same global
   owner.

Document layout follows the repo's ``BENCH_*`` convention: wall-clock
and peak-RSS numbers in the nondeterministic ``phases`` section,
seed-deterministic aggregates in the byte-compared ``metrics`` section.
CLI front-end: ``python -m repro.experiments scale-bench``.
"""

from __future__ import annotations

import gc
import json
import time
from pathlib import Path

import numpy as np

from repro.engine.batch import batch_route
from repro.engine.stream import stream_batch_route
from repro.experiments.config import SimConfig
from repro.experiments.runner import SimulationBundle, make_trace
from repro.scale import build_scale_bundle, hot_state_bytes
from repro.util.proc import peak_rss_mb
from repro.util.rng import RngFactory

__all__ = ["SCHEMA", "run_bench_scale", "write_bench_scale"]

SCHEMA = "repro.bench_scale/1"

#: Streaming chunk size every cell routes with; pinned because the
#: float latency sum is association-sensitive (integer stats and the
#: owner checksum are chunk-size invariant regardless).
CHUNK_SIZE = 65_536

FULL_SIZES = (4096, 65_536, 1_000_000)
SMOKE_SIZES = (2048, 8192)


def _lookups_for(n_peers: int, *, full: bool) -> int:
    if not full:
        return 100_000
    return 10_000_000 if n_peers >= 1_000_000 else 1_000_000


def _snapshot(bundle: SimulationBundle) -> dict[str, object]:
    """References to every ring array of both stacks (rings are
    immutable, so holding the arrays *is* the pre-rebuild snapshot)."""
    hieras = bundle.hieras
    return {
        "chord": (bundle.chord.ring.ids, bundle.chord.ring.peers),
        "global": (hieras.global_ring.ids, hieras.global_ring.peers),
        "names": [list(names) for names in hieras._ring_names],
        "rings": [
            [(ring.ids, ring.peers) for ring in layer] for layer in hieras._rings
        ],
    }


def _matches(bundle: SimulationBundle, snap: dict[str, object]) -> bool:
    """Whether the current (rebuilt) state equals the snapshot exactly."""
    hieras = bundle.hieras
    chord_ids, chord_peers = snap["chord"]  # type: ignore[misc]
    if not (
        np.array_equal(chord_ids, bundle.chord.ring.ids)
        and np.array_equal(chord_peers, bundle.chord.ring.peers)
    ):
        return False
    glob_ids, glob_peers = snap["global"]  # type: ignore[misc]
    if not (
        np.array_equal(glob_ids, hieras.global_ring.ids)
        and np.array_equal(glob_peers, hieras.global_ring.peers)
    ):
        return False
    if snap["names"] != [list(names) for names in hieras._ring_names]:
        return False
    for layer_snap, layer in zip(snap["rings"], hieras._rings):  # type: ignore[arg-type]
        for (ids, peers), ring in zip(layer_snap, layer):
            if not (
                np.array_equal(ids, ring.ids) and np.array_equal(peers, ring.peers)
            ):
                return False
    return True


def run_bench_scale(
    *,
    full: bool = False,
    seed: int = 42,
    sizes: tuple[int, ...] | None = None,
) -> dict[str, object]:
    """Run the scale benchmark; returns the ``BENCH_scale`` document.

    ``full=True`` runs the ROADMAP deliverable — N up to 1 000 000
    peers with 10⁷ streamed lookups per stack at the top size; the
    default is a CI-sized smoke (N ≤ 8192, 10⁵ lookups) exercising the
    identical code paths.
    """
    if sizes is None:
        sizes = FULL_SIZES if full else SMOKE_SIZES

    phases: dict[str, dict[str, float]] = {}
    cells: dict[str, dict[str, object]] = {}

    for n_peers in sizes:
        wave_size = max(8, min(1024, n_peers // 16))
        n_lookups = _lookups_for(n_peers, full=full)

        t0 = time.perf_counter()  # lint: allow-wallclock -- phase timing; lands in the nondeterministic "phases" key
        bundle = build_scale_bundle(SimConfig(model="ts", n_peers=n_peers, seed=seed))
        phases[f"build_n{n_peers}"] = {
            "wall_ms": (time.perf_counter() - t0) * 1000.0,  # lint: allow-wallclock -- phase timing; lands in the nondeterministic "phases" key
            "peak_rss_mb": peak_rss_mb(),
        }

        # --- membership waves through the incremental splice path ----
        wave_rng = RngFactory(seed).get("scale-wave")
        wave = np.sort(wave_rng.choice(n_peers, size=wave_size, replace=False))
        builds_before = (bundle.chord.rebuild_count, bundle.hieras.rebuild_count)
        t0 = time.perf_counter()  # lint: allow-wallclock -- phase timing; lands in the nondeterministic "phases" key
        bundle.chord.remove_peers(wave.tolist())
        bundle.hieras.remove_peers(wave.tolist())
        t1 = time.perf_counter()  # lint: allow-wallclock -- phase timing; lands in the nondeterministic "phases" key
        bundle.chord.revive_peers(wave.tolist())
        bundle.hieras.revive_peers(wave.tolist())
        t2 = time.perf_counter()  # lint: allow-wallclock -- phase timing; lands in the nondeterministic "phases" key
        phases[f"wave_n{n_peers}"] = {
            "remove_wall_ms": (t1 - t0) * 1000.0,
            "revive_wall_ms": (t2 - t1) * 1000.0,
        }
        full_rebuilds_during_waves = (
            bundle.chord.rebuild_count - builds_before[0],
            bundle.hieras.rebuild_count - builds_before[1],
        )

        # --- bit-identical-to-rebuild check (and rebuild reference) --
        snap = _snapshot(bundle)
        t0 = time.perf_counter()  # lint: allow-wallclock -- phase timing; lands in the nondeterministic "phases" key
        bundle.chord.rebuild()
        bundle.hieras.rebuild()
        phases[f"rebuild_n{n_peers}"] = {
            "wall_ms": (time.perf_counter() - t0) * 1000.0  # lint: allow-wallclock -- phase timing; lands in the nondeterministic "phases" key
        }
        incremental_matches = _matches(bundle, snap)

        # --- streamed lookups ----------------------------------------
        trace = make_trace(bundle, n_lookups)
        stacks = {}
        for stack, network in (("chord", bundle.chord), ("hieras", bundle.hieras)):
            t0 = time.perf_counter()  # lint: allow-wallclock -- phase timing; lands in the nondeterministic "phases" key
            stats = stream_batch_route(
                network, trace.sources, trace.keys, chunk_size=CHUNK_SIZE
            )
            wall_ms = (time.perf_counter() - t0) * 1000.0  # lint: allow-wallclock -- phase timing; lands in the nondeterministic "phases" key
            phases[f"{stack}_lookup_n{n_peers}"] = {
                "wall_ms": wall_ms,
                "lookups_per_s": n_lookups / (wall_ms / 1000.0) if wall_ms else 0.0,
                "peak_rss_mb": peak_rss_mb(),
            }
            stacks[stack] = stats.as_dict()

        # --- batch-vs-scalar spot check at the smallest size ---------
        engines_agree = None
        if n_peers == min(sizes):
            probe = min(2000, n_lookups)
            batch = batch_route(
                bundle.chord, trace.sources[:probe], trace.keys[:probe]
            )
            scalar = batch_route(
                bundle.chord,
                trace.sources[:probe],
                trace.keys[:probe],
                engine="scalar",
            )
            batch_h = batch_route(
                bundle.hieras, trace.sources[:probe], trace.keys[:probe]
            )
            scalar_h = batch_route(
                bundle.hieras,
                trace.sources[:probe],
                trace.keys[:probe],
                engine="scalar",
            )
            engines_agree = bool(
                np.array_equal(batch.owner, scalar.owner)
                and np.array_equal(batch.hops, scalar.hops)
                and np.array_equal(batch.latency_ms, scalar.latency_ms)
                and np.array_equal(batch_h.owner, scalar_h.owner)
                and np.array_equal(batch_h.hops, scalar_h.hops)
                and np.array_equal(batch_h.latency_ms, scalar_h.latency_ms)
            )

        cells[f"n{n_peers}"] = {
            "n_peers": n_peers,
            "lookups": n_lookups,
            "chunk_size": CHUNK_SIZE,
            "wave_size": wave_size,
            "chord": stacks["chord"],
            "hieras": stacks["hieras"],
            "stacks_agree_owners": bool(
                stacks["chord"]["owner_checksum"] == stacks["hieras"]["owner_checksum"]
            ),
            "engines_agree": engines_agree,
            "memory": hot_state_bytes(bundle),
            "membership": {
                "full_rebuilds_during_waves_chord": full_rebuilds_during_waves[0],
                "full_rebuilds_during_waves_hieras": full_rebuilds_during_waves[1],
                "incremental_waves_chord": bundle.chord.incremental_waves,
                "incremental_waves_hieras": bundle.hieras.incremental_waves,
                "rings_spliced_hieras": bundle.hieras.rings_spliced,
                "incremental_matches_rebuild": incremental_matches,
            },
        }
        del bundle, trace
        gc.collect()

    phases["peak_rss"] = {"peak_rss_mb": peak_rss_mb()}
    return {
        "schema": SCHEMA,
        "config": {
            "full": full,
            "seed": seed,
            "sizes": list(sizes),
            "chunk_size": CHUNK_SIZE,
        },
        "phases": phases,
        "metrics": {"cells": cells},
    }


def write_bench_scale(doc: dict[str, object], out: str | Path) -> Path:
    """Write one BENCH_scale document as stable, indented JSON."""
    path = Path(out)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path
