"""Batch-routing benchmark: the vectorized engine vs the scalar loop.

One run builds a deployment per network size, routes the same seeded
trace through both trace-driven stacks twice — once with the scalar
per-request loop, once through :mod:`repro.engine`'s frontier-stepped
batch kernels — and writes ``BENCH_batchroute.json`` in the
``BENCH_baseline.json`` convention:

* ``phases`` — wall-clock milliseconds and lookups/sec per (stack, N)
  cell plus the resulting speedup.  **Nondeterministic** (machine- and
  load-dependent); the headline number (">= 5x at N=4096") lives here.
* ``metrics`` — per-cell route aggregates **and the engines-agree
  bits**: exact array equality (hop counts, bit-identical float
  latencies, layer splits) between the two engines.  **Deterministic**:
  a pure function of the seed.

CLI front-end: ``python -m repro.experiments batch-bench``; the pytest
benchmark (``benchmarks/bench_batchroute.py``) dispatches through the
registered ``batch_route`` experiment.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.analysis.stats import RouteSample, collect_routes
from repro.experiments.config import SimConfig
from repro.experiments.runner import build_bundle, make_trace
from repro.util.proc import peak_rss_mb

__all__ = ["SCHEMA", "run_bench_batchroute", "write_bench_batchroute"]

SCHEMA = "repro.bench_batchroute/1"

#: The acceptance-gate cell: the batch engine must beat the scalar loop
#: by at least this factor at this network size on at least one stack.
HEADLINE_N = 4096
HEADLINE_SPEEDUP = 5.0


def _samples_agree(a: RouteSample, b: RouteSample) -> bool:
    """Exact equality of every array in two route samples.

    Float arrays are compared with ``==`` (no tolerance): the batch
    engine's contract is *bit-identical* latencies, not merely close.
    """
    return (
        bool(np.array_equal(a.hops, b.hops))
        and bool(np.array_equal(a.latency_ms, b.latency_ms))
        and bool(np.array_equal(a.low_layer_hops, b.low_layer_hops))
        and bool(np.array_equal(a.top_layer_hops, b.top_layer_hops))
        and bool(np.array_equal(a.low_layer_latency_ms, b.low_layer_latency_ms))
    )


def run_bench_batchroute(
    *,
    full: bool = False,
    seed: int = 42,
    sizes: tuple[int, ...] | None = None,
    n_requests: int | None = None,
) -> dict[str, object]:
    """Benchmark both engines on both stacks; returns the document.

    Per (stack, N) cell the same trace is routed scalar-then-batch and
    the two :class:`~repro.analysis.stats.RouteSample`s are compared
    array-for-array — the deterministic ``engines_agree`` bit in
    ``metrics``.  Wall times and speedups land in ``phases``.
    """
    if sizes is None:
        sizes = (1024, 4096, 10_000) if full else (1024, 4096)
    if n_requests is None:
        n_requests = 50_000 if full else 10_000

    phases: dict[str, dict[str, float]] = {}
    cells: dict[str, dict[str, object]] = {}

    for n_peers in sizes:
        t0 = time.perf_counter()  # lint: allow-wallclock -- phase timing; lands in the nondeterministic "phases" key
        bundle = build_bundle(SimConfig(model="ts", n_peers=n_peers, seed=seed))
        trace = make_trace(bundle, n_requests)
        phases[f"build_n{n_peers}"] = {
            "wall_ms": (time.perf_counter() - t0) * 1000.0  # lint: allow-wallclock -- phase timing; lands in the nondeterministic "phases" key
        }
        for stack, network in (("chord", bundle.chord), ("hieras", bundle.hieras)):
            t0 = time.perf_counter()  # lint: allow-wallclock -- phase timing; lands in the nondeterministic "phases" key
            scalar = collect_routes(network, trace, engine="scalar")
            t1 = time.perf_counter()  # lint: allow-wallclock -- phase timing; lands in the nondeterministic "phases" key
            batch = collect_routes(network, trace, engine="batch")
            t2 = time.perf_counter()  # lint: allow-wallclock -- phase timing; lands in the nondeterministic "phases" key
            scalar_ms = (t1 - t0) * 1000.0
            batch_ms = (t2 - t1) * 1000.0
            phases[f"{stack}_n{n_peers}"] = {
                "scalar_wall_ms": scalar_ms,
                "batch_wall_ms": batch_ms,
                "scalar_lookups_per_s": n_requests / (scalar_ms / 1000.0),
                "batch_lookups_per_s": n_requests / (batch_ms / 1000.0),
                "speedup": scalar_ms / batch_ms if batch_ms else 0.0,
            }
            cells[f"{stack}_n{n_peers}"] = {
                "stack": stack,
                "n_peers": n_peers,
                "lookups": n_requests,
                "engines_agree": _samples_agree(scalar, batch),
                "mean_hops": batch.mean_hops,
                "mean_latency_ms": batch.mean_latency_ms,
                "low_layer_hop_share": batch.low_layer_hop_share,
                "mean_top_layer_hops": batch.mean_top_layer_hops,
            }

    phases["peak_rss"] = {"peak_rss_mb": peak_rss_mb()}
    return {
        "schema": SCHEMA,
        "config": {
            "full": full,
            "seed": seed,
            "sizes": list(sizes),
            "n_requests": n_requests,
            "headline_n": HEADLINE_N,
            "headline_speedup": HEADLINE_SPEEDUP,
        },
        "phases": phases,
        "metrics": {"cells": cells},
    }


def write_bench_batchroute(doc: dict[str, object], out: str | Path) -> Path:
    """Write one BENCH_batchroute document as stable, indented JSON."""
    path = Path(out)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path
