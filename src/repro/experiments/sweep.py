"""Generic parameter sweeps over the simulation grid.

The registered experiments reproduce the paper's exact artifacts; this
module is the tool for everything *around* them — "what if 8 landmarks
on BRITE at depth 3?" — sweeping any combination of model, size,
landmark count, depth and seed, and writing tidy rows (one per cell)
for downstream analysis.

Used by the ``sweep`` CLI subcommand:

    hieras-experiments sweep --models ts,inet --sizes 1000,2000 \\
        --landmarks 4,8 --depths 2,3 --seeds 42,43 --out sweep.csv
"""

from __future__ import annotations

import csv
import itertools
from dataclasses import dataclass
from pathlib import Path
from collections.abc import Callable, Iterable

from repro.analysis.stats import collect_routes, ratio_percent
from repro.experiments.config import SimConfig
from repro.experiments.runner import build_bundle, make_trace
from repro.util.validation import require

__all__ = ["SweepSpec", "run_sweep", "write_csv"]


@dataclass(frozen=True)
class SweepSpec:
    """The cartesian grid of configurations to evaluate."""

    models: tuple[str, ...] = ("ts",)
    sizes: tuple[int, ...] = (1000,)
    landmarks: tuple[int, ...] = (4,)
    depths: tuple[int, ...] = (2,)
    seeds: tuple[int, ...] = (42,)
    n_requests: int = 10_000
    #: Routing engine per cell; ``"batch"`` (vectorized, the default)
    #: and ``"scalar"`` produce bit-identical rows.
    engine: str = "batch"

    def __post_init__(self) -> None:
        require(len(self.models) >= 1, "need at least one model")
        require(len(self.sizes) >= 1, "need at least one size")
        require(len(self.landmarks) >= 1, "need at least one landmark count")
        require(len(self.depths) >= 1, "need at least one depth")
        require(len(self.seeds) >= 1, "need at least one seed")
        require(self.n_requests >= 1, "n_requests must be >= 1")
        require(self.engine in ("batch", "scalar"), f"unknown engine {self.engine!r}")

    @property
    def n_cells(self) -> int:
        """Number of grid cells the sweep will evaluate."""
        return (
            len(self.models)
            * len(self.sizes)
            * len(self.landmarks)
            * len(self.depths)
            * len(self.seeds)
        )

    def configs(self) -> Iterable[SimConfig]:
        """The grid, in deterministic iteration order."""
        for model, size, lms, depth, seed in itertools.product(
            self.models, self.sizes, self.landmarks, self.depths, self.seeds
        ):
            yield SimConfig(
                model=model, n_peers=size, n_landmarks=lms, depth=depth, seed=seed
            )


def _evaluate(
    config: SimConfig, n_requests: int, *, engine: str = "batch"
) -> dict[str, object]:
    bundle = build_bundle(config)
    trace = make_trace(bundle, n_requests)
    chord = collect_routes(bundle.chord, trace, engine=engine)
    hieras = collect_routes(bundle.hieras, trace, engine=engine)
    return {
        "model": config.model,
        "n_peers": config.n_peers,
        "n_landmarks": config.n_landmarks,
        "depth": config.depth,
        "seed": config.seed,
        "n_requests": n_requests,
        "rings_layer2": len(bundle.hieras.rings_at_layer(2)),
        "chord_hops": round(chord.mean_hops, 4),
        "hieras_hops": round(hieras.mean_hops, 4),
        "chord_latency_ms": round(chord.mean_latency_ms, 2),
        "hieras_latency_ms": round(hieras.mean_latency_ms, 2),
        "latency_ratio_pct": round(
            ratio_percent(hieras.mean_latency_ms, chord.mean_latency_ms), 2
        ),
        "low_layer_hop_share": round(hieras.low_layer_hop_share, 4),
        "top_layer_hops": round(hieras.mean_top_layer_hops, 4),
    }


def run_sweep(
    spec: SweepSpec,
    *,
    progress: Callable[[str], None] | None = None,
) -> list[dict[str, object]]:
    """Evaluate every grid cell; returns one tidy row per cell.

    Invalid cells (e.g. Inet below its 3000-router floor) are skipped
    with a progress note rather than aborting the sweep.
    """
    rows: list[dict[str, object]] = []
    for config in spec.configs():
        try:
            row = _evaluate(config, spec.n_requests, engine=spec.engine)
        except ValueError as exc:
            if progress:
                progress(f"skip {config.model}/{config.n_peers}: {exc}")
            continue
        rows.append(row)
        if progress:
            progress(
                f"{config.model} n={config.n_peers} L={config.n_landmarks} "
                f"d={config.depth} seed={config.seed}: "
                f"ratio={row['latency_ratio_pct']}%"
            )
    return rows


def write_csv(rows: list[dict[str, object]], path: str | Path) -> int:
    """Write sweep rows as CSV; returns the number of data rows."""
    require(len(rows) >= 1, "no rows to write")
    path = Path(path)
    with path.open("w", newline="", encoding="utf-8") as fh:
        writer = csv.DictWriter(fh, fieldnames=list(rows[0].keys()))
        writer.writeheader()
        writer.writerows(rows)
    return len(rows)
