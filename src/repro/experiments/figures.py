"""The experiment registry: one entry per paper table/figure + ablations.

Each experiment builds its deployments through the cached runner, runs
the request trace through Chord and HIERAS, and renders the same rows
or series the paper reports, followed by a shape check against the
paper's qualitative claims.  ``EXPERIMENTS`` maps ids to
:class:`Experiment` records; the CLI and the pytest benchmarks both
dispatch through it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable

import numpy as np

from repro.analysis.compare import bootstrap_ratio_ci
from repro.analysis.plots import bar_chart, line_plot
from repro.analysis.stats import RouteSample, collect_routes, hop_pdf, ratio_percent
from repro.analysis.tables import format_table, render_series
from repro.core.binning import BinningScheme, LandmarkOrders
from repro.core.hieras import HierasNetwork
from repro.core.hieras_can import HierasCanNetwork
from repro.dht.can import CanNetwork, CanParams
from repro.dht.pastry import PastryNetwork, PastryParams
from repro.experiments.config import DEFAULT_REQUESTS, FULL_REQUESTS, SimConfig, is_full_scale
from repro.experiments.runner import build_bundle, make_trace
from repro.topology.latency import NoisyLatencyModel
from repro.util.rng import RngFactory

__all__ = ["Experiment", "ExperimentResult", "EXPERIMENTS", "get_experiment"]


@dataclass
class ExperimentResult:
    """Rendered report plus the structured numbers behind it."""

    experiment_id: str
    title: str
    text: str
    data: dict[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class Experiment:
    """A registered, runnable reproduction of one paper artifact."""

    id: str
    title: str
    paper_claim: str
    run: Callable[[bool, int], ExperimentResult]


# ----------------------------------------------------------------------
# shared helpers
# ----------------------------------------------------------------------

_SAMPLES: dict[tuple, tuple[RouteSample, RouteSample]] = {}


def _pair(config: SimConfig, n_requests: int) -> tuple[RouteSample, RouteSample]:
    """Cached (chord, hieras) samples for a config + request count."""
    key = (config, n_requests)
    if key not in _SAMPLES:
        bundle = build_bundle(config)
        trace = make_trace(bundle, n_requests)
        _SAMPLES[key] = (
            collect_routes(bundle.chord, trace),
            collect_routes(bundle.hieras, trace),
        )
        if len(_SAMPLES) > 48:
            _SAMPLES.pop(next(iter(_SAMPLES)))
    return _SAMPLES[key]


def _requests(full: bool) -> int:
    return FULL_REQUESTS if full else DEFAULT_REQUESTS


def _sizes(full: bool, model: str) -> list[int]:
    """Network-size sweep per model (paper §4.1: 1000–10000; Inet ≥ 3000)."""
    if full:
        sizes = list(range(1000, 10_001, 1000))
    else:
        sizes = [1000, 2000, 3000, 4000]
    if model == "inet":
        sizes = [s for s in sizes if s * 1.25 >= 3000] or [3000]
    return sizes


def _claim(ok: bool, text: str) -> str:
    return f"  [{'ok' if ok else 'DIVERGES'}] {text}"


# ----------------------------------------------------------------------
# Table 1 — distributed binning example
# ----------------------------------------------------------------------

def _run_table1(full: bool, seed: int) -> ExperimentResult:
    """Reproduce Table 1: landmark orders of the paper's 6 sample nodes."""
    distances = np.asarray(
        [
            [25, 5, 30, 100],
            [40, 18, 12, 200],
            [100, 180, 5, 10],
            [160, 220, 8, 20],
            [45, 10, 100, 5],
            [20, 140, 50, 40],
        ],
        dtype=np.float64,
    )
    expected = ["1012", "1002", "2200", "2200", "1020", "0211"]
    orders = BinningScheme.default_for_depth(2).orders(distances)
    rows = orders.table1_rows(labels=list("ABCDEF"))
    got = [row["order"] for row in rows]
    same_ring = orders.order_of(2) == orders.order_of(3)
    lines = [
        format_table(rows),
        "",
        _claim(got == expected, f"orders match the paper exactly: {got}"),
        _claim(same_ring, 'C and D share layer-2 ring "2200"'),
    ]
    return ExperimentResult(
        "table1",
        "Table 1 — distributed binning of 6 sample nodes, 4 landmarks",
        "\n".join(lines),
        data={"orders": got, "expected": expected},
    )


# ----------------------------------------------------------------------
# Table 2 — layered finger tables
# ----------------------------------------------------------------------

def _run_table2(full: bool, seed: int) -> ExperimentResult:
    """Reproduce Table 2's layout: one node's finger table per layer.

    The paper's sample is a 2**8 id space with 3 landmarks; we build an
    equivalent small deployment and print the same columns (start,
    interval, layer-1 successor with its ring, layer-2 successor).
    """
    config = SimConfig(model="ts", n_peers=24, n_landmarks=3, depth=2, seed=seed, bits=8)
    bundle = build_bundle(config)
    peer = 0
    rows = []
    checks = []
    ring_name = bundle.hieras.ring_name_of(peer, 2)
    for row in bundle.hieras.table2_rows(peer):
        (l1_id, _l1_peer, l1_ring), (l2_id, l2_peer, l2_ring) = row.successors
        rows.append(
            {
                "start": row.start,
                "interval": f"[{row.interval[0]},{row.interval[1]})",
                "layer1_succ": f'{l1_id} ("{l1_ring}")',
                "layer2_succ": f'{l2_id} ("{l2_ring}")',
            }
        )
        checks.append(l2_ring == ring_name)
    my_ring = bundle.hieras.ring_of(peer, 2)
    lines = [
        f'node {bundle.hieras.id_of(peer)} ("{ring_name}"), '
        f"{bundle.hieras.n_peers} peers, layer-2 ring size {len(my_ring)}",
        format_table(rows),
        "",
        _claim(
            all(checks),
            "every layer-2 successor belongs to the node's own ring "
            "(layer-1 successors roam freely) — Table 2's defining property",
        ),
    ]
    return ExperimentResult(
        "table2",
        "Table 2 — two-layer finger tables of one node",
        "\n".join(lines),
        data={"rows": rows},
    )


# ----------------------------------------------------------------------
# Figures 2/3 — hops and latency vs network size, three models
# ----------------------------------------------------------------------

def _run_fig2(full: bool, seed: int) -> ExperimentResult:
    """Figure 2: average routing hops vs size, HIERAS ≈ Chord."""
    n_req = _requests(full)
    sections = []
    deltas: list[float] = []
    growth: dict[str, float] = {}
    for model in ("ts", "inet", "brite"):
        sizes = _sizes(full, model)
        chord_hops, hieras_hops = [], []
        for n in sizes:
            config = SimConfig(model=model, n_peers=n, n_landmarks=4, depth=2, seed=seed)
            chord, hieras = _pair(config, n_req)
            chord_hops.append(round(chord.mean_hops, 3))
            hieras_hops.append(round(hieras.mean_hops, 3))
            deltas.append(100 * (hieras.mean_hops - chord.mean_hops) / chord.mean_hops)
        growth[model] = 100 * (hieras_hops[-1] - hieras_hops[0]) / hieras_hops[0]
        sections.append(
            f"model={model}\n"
            + render_series(
                "nodes",
                sizes,
                {"chord_hops": chord_hops, "hieras_hops": hieras_hops},
            )
        )
    mean_delta = float(np.mean(deltas))
    lines = sections + [
        "",
        _claim(
            abs(mean_delta) < 10.0,
            f"HIERAS hop count stays within a few percent of Chord "
            f"(mean delta {mean_delta:+.2f}%; paper: +0.78% to +3.40%)",
        ),
        _claim(
            all(0 < g < 70 for g in growth.values()),
            f"hop growth from smallest to largest network is modest "
            f"({ {m: round(g, 1) for m, g in growth.items()} }; paper: ~32% "
            "for 1000→10000 nodes) — both algorithms scale as O(log N)",
        ),
    ]
    return ExperimentResult(
        "fig2",
        "Figure 2 — average routing hops vs network size",
        "\n".join(lines),
        data={"mean_delta_percent": mean_delta, "growth_percent": growth},
    )


def _run_fig3(full: bool, seed: int) -> ExperimentResult:
    """Figure 3: average routing latency vs size, per topology model."""
    n_req = _requests(full)
    sections = []
    ratios: dict[str, float] = {}
    for model in ("ts", "inet", "brite"):
        sizes = _sizes(full, model)
        chord_lat, hieras_lat, ratio = [], [], []
        for n in sizes:
            config = SimConfig(model=model, n_peers=n, n_landmarks=4, depth=2, seed=seed)
            chord, hieras = _pair(config, n_req)
            chord_lat.append(round(chord.mean_latency_ms, 1))
            hieras_lat.append(round(hieras.mean_latency_ms, 1))
            ratio.append(round(ratio_percent(hieras.mean_latency_ms, chord.mean_latency_ms), 1))
        ratios[model] = float(np.mean(ratio))
        sections.append(
            f"model={model}\n"
            + render_series(
                "nodes",
                sizes,
                {
                    "chord_ms": chord_lat,
                    "hieras_ms": hieras_lat,
                    "hieras/chord_%": ratio,
                },
            )
        )
    paper = {"ts": 51.8, "inet": 53.41, "brite": 62.47}
    lines = sections + [""]
    for model, mean_ratio in ratios.items():
        lines.append(
            _claim(
                mean_ratio < 80.0,
                f"{model}: HIERAS latency is {mean_ratio:.1f}% of Chord "
                f"(paper: {paper[model]}%) — HIERAS wins decisively",
            )
        )
    return ExperimentResult(
        "fig3",
        "Figure 3 — average routing latency vs network size (TS/Inet/BRITE)",
        "\n".join(lines),
        data={"mean_ratio_percent": ratios, "paper_ratio_percent": paper},
    )


# ----------------------------------------------------------------------
# Figures 4/5 — distributions on the big TS network
# ----------------------------------------------------------------------

def _dist_config(full: bool, seed: int) -> SimConfig:
    return SimConfig(
        model="ts", n_peers=10_000 if full else 4000, n_landmarks=4, depth=2, seed=seed
    )


def _run_fig4(full: bool, seed: int) -> ExperimentResult:
    """Figure 4: PDF of routing hops (Chord vs HIERAS vs low layer)."""
    config = _dist_config(full, seed)
    chord, hieras = _pair(config, _requests(full))
    top = int(max(chord.hops.max(), hieras.hops.max()))
    xs, chord_pdf = hop_pdf(chord.hops, max_hops=top)
    _, hieras_pdf = hop_pdf(hieras.hops, max_hops=top)
    _, low_pdf = hop_pdf(hieras.low_layer_hops, max_hops=top)
    table = render_series(
        "hops",
        xs.tolist(),
        {
            "chord_pdf": [round(v, 4) for v in chord_pdf],
            "hieras_pdf": [round(v, 4) for v in hieras_pdf],
            "hieras_low_layer_pdf": [round(v, 4) for v in low_pdf],
        },
    )
    low_share = 100 * hieras.low_layer_hop_share
    delta = 100 * (hieras.mean_hops - chord.mean_hops) / chord.mean_hops
    chart = bar_chart(
        [f"{h:>2}" for h in xs.tolist()],
        hieras_pdf.tolist(),
        width=42,
        title="HIERAS hop-count PDF:",
    )
    lines = [
        f"network: {config.n_peers} peers, TS model, {_requests(full)} requests",
        table,
        "",
        chart,
        "",
        f"mean hops: chord={chord.mean_hops:.4f} hieras={hieras.mean_hops:.4f} "
        f"(paper: 6.4933 vs 6.5937, +1.55%)",
        f"mean hops taken in the higher layer: {hieras.mean_top_layer_hops:.3f} "
        "(paper: 1.887)",
        _claim(
            abs(delta) < 12.0,
            f"hop distributions nearly coincide (delta {delta:+.2f}%)",
        ),
        _claim(
            low_share > 55.0,
            f"{low_share:.2f}% of HIERAS hops run in lower-layer rings "
            "(paper: 71.38%)",
        ),
    ]
    return ExperimentResult(
        "fig4",
        "Figure 4 — PDF of the number of routing hops",
        "\n".join(lines),
        data={
            "chord_mean_hops": chord.mean_hops,
            "hieras_mean_hops": hieras.mean_hops,
            "low_layer_hop_share": hieras.low_layer_hop_share,
            "top_layer_hops": hieras.mean_top_layer_hops,
        },
    )


def _run_fig5(full: bool, seed: int) -> ExperimentResult:
    """Figure 5: CDF of routing latency + the §4.3 link-delay split."""
    config = _dist_config(full, seed)
    chord, hieras = _pair(config, _requests(full))
    points = 15
    hi = float(max(chord.latency_ms.max(), hieras.latency_ms.max()))
    xs = np.linspace(0, hi, points)
    chord_sorted = np.sort(chord.latency_ms)
    hieras_sorted = np.sort(hieras.latency_ms)
    table = render_series(
        "latency_ms",
        [round(x, 1) for x in xs],
        {
            "chord_cdf": [
                round(float(np.searchsorted(chord_sorted, x, side="right") / len(chord_sorted)), 4)
                for x in xs
            ],
            "hieras_cdf": [
                round(float(np.searchsorted(hieras_sorted, x, side="right") / len(hieras_sorted)), 4)
                for x in xs
            ],
        },
    )
    ratio = ratio_percent(hieras.mean_latency_ms, chord.mean_latency_ms)
    ratio_ci = bootstrap_ratio_ci(hieras.latency_ms, chord.latency_ms, seed=seed)
    low_delay = hieras.mean_link_delay(layer="low")
    top_delay = hieras.mean_link_delay(layer="top")
    plot = line_plot(
        [round(x, 1) for x in xs],
        {
            "chord": [
                float(np.searchsorted(chord_sorted, x, side="right") / len(chord_sorted))
                for x in xs
            ],
            "hieras": [
                float(np.searchsorted(hieras_sorted, x, side="right") / len(hieras_sorted))
                for x in xs
            ],
        },
        width=60,
        height=12,
        x_label="latency (ms)",
        title="latency CDFs:",
    )
    lines = [
        f"network: {config.n_peers} peers, TS model, {_requests(full)} requests",
        table,
        "",
        plot,
        "",
        f"latency ratio (paired bootstrap 95% CI): "
        f"{100 * ratio_ci.estimate:.2f}% [{100 * ratio_ci.low:.2f}, {100 * ratio_ci.high:.2f}]",
        f"mean latency: chord={chord.mean_latency_ms:.2f}ms "
        f"hieras={hieras.mean_latency_ms:.2f}ms → {ratio:.2f}% "
        "(paper: 511.47 vs 276.53 → 54.07%)",
        f"mean link delay: higher layer {top_delay:.1f}ms, lower layers "
        f"{low_delay:.3f}ms → {ratio_percent(low_delay, top_delay):.2f}% "
        "(paper: 79 vs 27.758 → 35.23%)",
        f"low-layer hops {100 * hieras.low_layer_hop_share:.2f}% of hops carry "
        f"{100 * hieras.low_layer_latency_share:.2f}% of latency "
        "(paper: 71.38% of hops, 47.24% of latency)",
        _claim(ratio < 80.0, "HIERAS latency CDF dominates Chord's"),
        _claim(
            low_delay < 0.7 * top_delay,
            "lower-layer links are far cheaper than higher-layer links",
        ),
    ]
    return ExperimentResult(
        "fig5",
        "Figure 5 — CDF of routing latency",
        "\n".join(lines),
        data={
            "latency_ratio_percent": ratio,
            "low_link_delay_ms": low_delay,
            "top_link_delay_ms": top_delay,
            "low_latency_share": hieras.low_layer_latency_share,
        },
    )


# ----------------------------------------------------------------------
# Figures 6/7 — landmark count sweep
# ----------------------------------------------------------------------

def _landmark_configs(full: bool, seed: int) -> tuple[list[int], int]:
    n_peers = 10_000 if full else 3000
    counts = list(range(2, 13)) if full else [2, 4, 6, 8, 10, 12]
    return counts, n_peers


def _run_fig6(full: bool, seed: int) -> ExperimentResult:
    """Figure 6: hops vs number of landmarks."""
    counts, n_peers = _landmark_configs(full, seed)
    n_req = _requests(full)
    chord_hops, hieras_hops, low_hops = [], [], []
    for L in counts:
        config = SimConfig(model="ts", n_peers=n_peers, n_landmarks=L, depth=2, seed=seed)
        chord, hieras = _pair(config, n_req)
        chord_hops.append(round(chord.mean_hops, 3))
        hieras_hops.append(round(hieras.mean_hops, 3))
        low_hops.append(round(float(hieras.low_layer_hops.mean()), 3))
    table = render_series(
        "landmarks",
        counts,
        {
            "chord_hops": chord_hops,
            "hieras_hops": hieras_hops,
            "hieras_low_layer_hops": low_hops,
        },
    )
    spread = max(hieras_hops) - min(hieras_hops)
    lines = [
        f"network: {n_peers} peers, TS model, {n_req} requests",
        table,
        "",
        _claim(
            spread < 0.12 * float(np.mean(hieras_hops)),
            f"hop count changes little across landmark counts "
            f"(spread {spread:.3f} hops; paper: 'changes little')",
        ),
        _claim(
            low_hops[0] >= max(low_hops) - 1e-9 or low_hops[0] > low_hops[-1],
            "lower-layer hops shrink as landmarks increase (more, smaller "
            "rings; paper: 'reduces sharply' from 2 to 8 landmarks)",
        ),
    ]
    return ExperimentResult(
        "fig6",
        "Figure 6 — average routing hops vs number of landmarks",
        "\n".join(lines),
        data={"counts": counts, "hieras_hops": hieras_hops, "low_hops": low_hops},
    )


def _run_fig7(full: bool, seed: int) -> ExperimentResult:
    """Figure 7: latency vs number of landmarks."""
    counts, n_peers = _landmark_configs(full, seed)
    n_req = _requests(full)
    ratios = []
    hieras_lat, chord_lat = [], []
    for L in counts:
        config = SimConfig(model="ts", n_peers=n_peers, n_landmarks=L, depth=2, seed=seed)
        chord, hieras = _pair(config, n_req)
        chord_lat.append(round(chord.mean_latency_ms, 1))
        hieras_lat.append(round(hieras.mean_latency_ms, 1))
        ratios.append(round(ratio_percent(hieras.mean_latency_ms, chord.mean_latency_ms), 2))
    table = render_series(
        "landmarks",
        counts,
        {"chord_ms": chord_lat, "hieras_ms": hieras_lat, "hieras/chord_%": ratios},
    )
    best = min(ratios)
    lines = [
        f"network: {n_peers} peers, TS model, {n_req} requests",
        table,
        "",
        _claim(
            ratios[0] > best + 1.0,
            f"too few landmarks hurt: {counts[0]} landmarks give {ratios[0]}% "
            f"vs best {best}% (paper: 2 landmarks only 7.12% below Chord, "
            "best 43.31% at 8)",
        ),
        _claim(
            abs(ratios[-1] - best) < 15.0,
            "beyond the sweet spot, more landmarks give little extra gain",
        ),
    ]
    return ExperimentResult(
        "fig7",
        "Figure 7 — average routing latency vs number of landmarks",
        "\n".join(lines),
        data={"counts": counts, "ratios_percent": ratios},
    )


# ----------------------------------------------------------------------
# Figures 8/9 — hierarchy depth sweep
# ----------------------------------------------------------------------

def _depth_configs(full: bool) -> list[int]:
    return [5000, 6000, 7000, 8000, 9000, 10_000] if full else [2000, 3000, 4000]


def _run_fig8(full: bool, seed: int) -> ExperimentResult:
    """Figure 8: hops vs hierarchy depth (2–4), 6 landmarks."""
    sizes = _depth_configs(full)
    n_req = _requests(full)
    series: dict[str, list[float]] = {f"depth{d}_hops": [] for d in (2, 3, 4)}
    increments = []
    for n in sizes:
        per_depth = []
        for depth in (2, 3, 4):
            config = SimConfig(model="ts", n_peers=n, n_landmarks=6, depth=depth, seed=seed)
            _, hieras = _pair(config, n_req)
            series[f"depth{depth}_hops"].append(round(hieras.mean_hops, 3))
            per_depth.append(hieras.mean_hops)
        increments.append(100 * (per_depth[2] - per_depth[0]) / per_depth[0])
    table = render_series("nodes", sizes, series)
    max_inc = max(abs(v) for v in increments)
    lines = [
        f"TS model, 6 landmarks, {n_req} requests",
        table,
        "",
        _claim(
            max_inc < 8.0,
            f"depth barely changes hop count (4-layer vs 2-layer within "
            f"{max_inc:.2f}%; paper: +0.29% to +1.65%)",
        ),
    ]
    return ExperimentResult(
        "fig8",
        "Figure 8 — hops vs hierarchy depth",
        "\n".join(lines),
        data={"sizes": sizes, "series": series, "increments_percent": increments},
    )


def _run_fig9(full: bool, seed: int) -> ExperimentResult:
    """Figure 9: latency vs hierarchy depth (2–4), 6 landmarks."""
    sizes = _depth_configs(full)
    n_req = _requests(full)
    series: dict[str, list[float]] = {f"depth{d}_ms": [] for d in (2, 3, 4)}
    gain_23, gain_34 = [], []
    for n in sizes:
        per_depth = []
        for depth in (2, 3, 4):
            config = SimConfig(model="ts", n_peers=n, n_landmarks=6, depth=depth, seed=seed)
            _, hieras = _pair(config, n_req)
            series[f"depth{depth}_ms"].append(round(hieras.mean_latency_ms, 1))
            per_depth.append(hieras.mean_latency_ms)
        gain_23.append(100 * (per_depth[0] - per_depth[1]) / per_depth[0])
        gain_34.append(100 * (per_depth[1] - per_depth[2]) / per_depth[1])
    table = render_series("nodes", sizes, series)
    lines = [
        f"TS model, 6 landmarks, {n_req} requests",
        table,
        "",
        f"latency reduction 2→3 layers: {[round(g, 2) for g in gain_23]}% "
        "(paper: 9.64%–16.15%)",
        f"latency reduction 3→4 layers: {[round(g, 2) for g in gain_34]}% "
        "(paper: 2.12%–5.42%, occasionally negative)",
        _claim(
            float(np.mean(gain_23)) > float(np.mean(gain_34)) - 0.5,
            "going deeper helps with diminishing returns — 2 or 3 layers "
            "is the practical optimum (paper §4.5's conclusion)",
        ),
    ]
    return ExperimentResult(
        "fig9",
        "Figure 9 — latency vs hierarchy depth",
        "\n".join(lines),
        data={"sizes": sizes, "series": series, "gain_23": gain_23, "gain_34": gain_34},
    )


# ----------------------------------------------------------------------
# Ablations (DESIGN.md §4)
# ----------------------------------------------------------------------

def _run_ablation_binning(full: bool, seed: int) -> ExperimentResult:
    """Random ring assignment vs distributed binning.

    Keeps ring count and sizes identical and only destroys the
    *topological* grouping — isolating the binning scheme's entire
    contribution (paper §2.2 argues it is essential).
    """
    n_peers = 4000 if full else 2000
    n_req = _requests(full) // 2
    config = SimConfig(model="ts", n_peers=n_peers, n_landmarks=4, depth=2, seed=seed)
    bundle = build_bundle(config)
    trace = make_trace(bundle, n_req)
    chord = collect_routes(bundle.chord, trace)
    hieras = collect_routes(bundle.hieras, trace)

    rng = RngFactory(seed).get("ablation-binning")
    shuffled = bundle.orders.names_per_layer[0].copy()
    rng.shuffle(shuffled)
    random_orders = LandmarkOrders(
        scheme=bundle.orders.scheme,
        distances=bundle.orders.distances,
        level_matrices=bundle.orders.level_matrices,
        names_per_layer=[shuffled],
    )
    random_net = HierasNetwork(
        bundle.space,
        bundle.node_ids,
        latency=bundle.peer_latency,
        landmark_orders=random_orders,
        depth=2,
    )
    random_sample = collect_routes(random_net, trace)
    rows = [
        {
            "variant": name,
            "hops": round(s.mean_hops, 3),
            "latency_ms": round(s.mean_latency_ms, 1),
            "vs_chord_%": round(ratio_percent(s.mean_latency_ms, chord.mean_latency_ms), 1),
        }
        for name, s in [
            ("chord", chord),
            ("hieras_binned", hieras),
            ("hieras_random_rings", random_sample),
        ]
    ]
    ok = hieras.mean_latency_ms < 0.8 * random_sample.mean_latency_ms
    lines = [
        format_table(rows),
        "",
        _claim(
            ok,
            "with random (topology-blind) rings the latency win vanishes — "
            "the gain comes from the binning scheme, not from hierarchy alone",
        ),
    ]
    return ExperimentResult(
        "ablation_binning",
        "Ablation — distributed binning vs random ring assignment",
        "\n".join(lines),
        data={"rows": rows},
    )


def _run_ablation_succlist(full: bool, seed: int) -> ExperimentResult:
    """Successor-list acceleration policies (§3.2/§3.3).

    The paper reports HIERAS taking slightly *more* hops than Chord yet
    only 1.887 hops in the top ring; the acceleration policy controls
    exactly that trade-off (DESIGN.md §5).
    """
    n_peers = 4000 if full else 2000
    n_req = _requests(full) // 2
    base = SimConfig(model="ts", n_peers=n_peers, n_landmarks=4, depth=2, seed=seed)
    bundle = build_bundle(base)
    trace = make_trace(bundle, n_req)
    chord = collect_routes(bundle.chord, trace)
    rows = []
    by_policy: dict[str, RouteSample] = {}
    for policy in ("off", "transitions", "always"):
        net = HierasNetwork(
            bundle.space,
            bundle.node_ids,
            latency=bundle.peer_latency,
            landmark_orders=bundle.orders,
            depth=2,
            successor_list_policy=policy,
        )
        sample = collect_routes(net, trace)
        by_policy[policy] = sample
        rows.append(
            {
                "policy": policy,
                "hops": round(sample.mean_hops, 3),
                "hops_vs_chord_%": round(
                    100 * (sample.mean_hops - chord.mean_hops) / chord.mean_hops, 2
                ),
                "top_layer_hops": round(sample.mean_top_layer_hops, 3),
                "latency_vs_chord_%": round(
                    ratio_percent(sample.mean_latency_ms, chord.mean_latency_ms), 1
                ),
            }
        )
    ok = (
        by_policy["off"].mean_hops
        > by_policy["transitions"].mean_hops
        > by_policy["always"].mean_hops
    )
    lines = [
        f"chord: hops={chord.mean_hops:.3f} latency={chord.mean_latency_ms:.1f}ms",
        format_table(rows),
        "",
        _claim(
            ok,
            "each widening of successor-list use trims hops; 'off' brackets "
            "the paper's +hops regime, 'transitions' its 1.9 top-layer hops",
        ),
    ]
    return ExperimentResult(
        "ablation_succlist",
        "Ablation — successor-list acceleration policy",
        "\n".join(lines),
        data={"rows": rows},
    )


def _run_ablation_can(full: bool, seed: int) -> ExperimentResult:
    """HIERAS over CAN vs flat CAN vs multiple realities (§3.2).

    Multiple realities are CAN's own route-shortening mechanism
    (redundant coordinate spaces); contrasting them with the HIERAS
    layering separates what redundancy buys (fewer hops, same links)
    from what topology-awareness buys (cheaper links).
    """
    from repro.dht.can_realities import MultiRealityCan

    n_peers = 2048 if full else 512
    n_req = 4000 if full else 1500
    config = SimConfig(model="ts", n_peers=n_peers, n_landmarks=4, depth=2, seed=seed)
    bundle = build_bundle(config)
    trace = make_trace(bundle, n_req)
    flat = CanNetwork(
        np.arange(n_peers), params=CanParams(dimensions=2),
        latency=bundle.peer_latency, seed=seed,
    )
    layered = HierasCanNetwork(
        n_peers,
        landmark_orders=bundle.orders,
        params=CanParams(dimensions=2),
        latency=bundle.peer_latency,
        depth=2,
        seed=seed,
    )
    realities = MultiRealityCan(
        np.arange(n_peers), realities=3, params=CanParams(dimensions=2),
        latency=bundle.peer_latency, seed=seed,
    )
    samples = {
        "can_flat": collect_routes(flat, trace),
        "can_3_realities": collect_routes(realities, trace),
        "hieras_over_can": collect_routes(layered, trace),
    }
    flat_lat = samples["can_flat"].mean_latency_ms
    rows = [
        {
            "variant": name,
            "hops": round(s.mean_hops, 3),
            "latency_ms": round(s.mean_latency_ms, 1),
            "vs_flat_%": round(ratio_percent(s.mean_latency_ms, flat_lat), 1),
        }
        for name, s in samples.items()
    ]
    ratio = ratio_percent(samples["hieras_over_can"].mean_latency_ms, flat_lat)
    lines = [
        f"{n_peers} peers, 2-d CAN, {n_req} requests",
        format_table(rows),
        "",
        _claim(
            ratio < 90.0,
            f"the hierarchy transplants to CAN: layered latency is "
            f"{ratio:.1f}% of flat CAN (paper §3.2: 'easy to extend ... to "
            "other DHT algorithms such as CAN')",
        ),
        _claim(
            samples["hieras_over_can"].mean_latency_ms
            < samples["can_3_realities"].mean_latency_ms,
            "topology-aware layering beats redundancy: realities cut hops "
            "but pay full-cost links; HIERAS's hops run over cheap ones",
        ),
    ]
    return ExperimentResult(
        "ablation_can",
        "Ablation — HIERAS over CAN vs flat CAN vs multiple realities",
        "\n".join(lines),
        data={"rows": rows, "ratio_percent": ratio},
    )


def _run_ablation_pastry(full: bool, seed: int) -> ExperimentResult:
    """The locality-technique panel: Chord, Chord+PFS, HIERAS, Pastry,
    Tapestry — the comparison the paper's §6 plans ("compare HIERAS
    performance with other low latency DHT algorithms such as Pastry
    and Tapestry")."""
    from repro.dht.chord_pfs import PfsChordNetwork
    from repro.dht.tapestry import TapestryNetwork, TapestryParams

    n_peers = 4000 if full else 1500
    n_req = 8000 if full else 3000
    config = SimConfig(model="ts", n_peers=n_peers, n_landmarks=4, depth=2, seed=seed)
    bundle = build_bundle(config)
    trace = make_trace(bundle, n_req)
    pastry = PastryNetwork(
        bundle.space, bundle.node_ids, params=PastryParams(),
        latency=bundle.peer_latency, seed=seed,
    )
    tapestry = TapestryNetwork(
        bundle.space, bundle.node_ids, params=TapestryParams(),
        latency=bundle.peer_latency, seed=seed,
    )
    pfs = PfsChordNetwork(
        bundle.space, bundle.node_ids, latency=bundle.peer_latency, seed=seed
    )
    samples = {
        "chord": collect_routes(bundle.chord, trace),
        "chord_pfs": collect_routes(pfs, trace),
        "hieras": collect_routes(bundle.hieras, trace),
        "pastry_pns": collect_routes(pastry, trace),
        "tapestry_pns": collect_routes(tapestry, trace),
    }
    chord_lat = samples["chord"].mean_latency_ms
    rows = [
        {
            "variant": name,
            "hops": round(s.mean_hops, 3),
            "latency_ms": round(s.mean_latency_ms, 1),
            "vs_chord_%": round(ratio_percent(s.mean_latency_ms, chord_lat), 1),
        }
        for name, s in samples.items()
    ]
    ok = all(
        samples[name].mean_latency_ms < chord_lat
        for name in ("chord_pfs", "hieras", "pastry_pns", "tapestry_pns")
    )
    lines = [
        f"{n_peers} peers, TS model, {n_req} requests",
        format_table(rows),
        "",
        _claim(
            ok,
            "every locality-aware design beats flat Chord on latency; "
            "HIERAS achieves it with Chord-simple per-ring state (the "
            "paper's core argument vs Pastry/Tapestry complexity)",
        ),
    ]
    return ExperimentResult(
        "ablation_pastry",
        "Ablation — locality techniques: Chord / PFS / HIERAS / Pastry / Tapestry",
        "\n".join(lines),
        data={"rows": rows},
    )


def _run_ablation_noise(full: bool, seed: int) -> ExperimentResult:
    """Binning under noisy ping measurements (paper §2.2's robustness)."""
    n_peers = 4000 if full else 2000
    n_req = _requests(full) // 2
    config = SimConfig(model="ts", n_peers=n_peers, n_landmarks=4, depth=2, seed=seed)
    bundle = build_bundle(config)
    trace = make_trace(bundle, n_req)
    chord = collect_routes(bundle.chord, trace)
    rows = []
    ratios = []
    for sigma in (0.0, 0.1, 0.2, 0.4):
        noisy_model = NoisyLatencyModel(
            bundle.peer_latency.model, sigma=sigma, seed=seed + int(sigma * 100)
        )
        distances = bundle.attachment.landmark_distances(noisy_model)
        orders = BinningScheme.default_for_depth(2).orders(distances)
        net = HierasNetwork(
            bundle.space,
            bundle.node_ids,
            latency=bundle.peer_latency,
            landmark_orders=orders,
            depth=2,
        )
        sample = collect_routes(net, trace)
        ratio = ratio_percent(sample.mean_latency_ms, chord.mean_latency_ms)
        ratios.append(ratio)
        rows.append(
            {
                "ping_noise_sigma": sigma,
                "rings": len(net.rings_at_layer(2)),
                "hieras_ms": round(sample.mean_latency_ms, 1),
                "vs_chord_%": round(ratio, 1),
            }
        )
    lines = [
        format_table(rows),
        "",
        _claim(
            max(ratios) < 90.0,
            "HIERAS keeps a large latency win even with ±40% lognormal ping "
            "noise — binning 'is adequate for HIERAS' (§2.2)",
        ),
    ]
    return ExperimentResult(
        "ablation_noise",
        "Ablation — binning under noisy latency measurement",
        "\n".join(lines),
        data={"rows": rows},
    )


def _measure_join_costs(seed: int) -> list[dict[str, object]]:
    """Mean messages per join: flat Chord vs 2-ring HIERAS (§3.3–§3.4).

    Runs the event-driven protocol for a 20-node bootstrap, tracing the
    messages caused by the last five joins of each variant.  HIERAS
    joins additionally fetch ring tables and join a lower ring, so they
    cost more — the overhead §3.4 argues is affordable.
    """
    from repro.core.hieras_protocol import HierasProtocolNode
    from repro.dht.base import ZeroLatency
    from repro.dht.chord_protocol import GLOBAL_RING, ChordProtocolNode
    from repro.sim.engine import Simulator
    from repro.sim.network import SimNetwork
    from repro.metrics.messages import MessageTracer
    from repro.util.ids import IdSpace

    space = IdSpace(16)
    rng = RngFactory(seed).get("join-cost")
    n = 20
    ids = space.sample_unique_ids(n, rng)
    rows = []
    for variant in ("chord", "hieras"):
        sim = Simulator()
        net = SimNetwork(sim, ZeroLatency())
        if variant == "chord":
            nodes = [
                ChordProtocolNode(p, int(ids[p]), space, sim, net) for p in range(n)
            ]
            nodes[0].create_ring(GLOBAL_RING)
            start = lambda p: nodes[p].join_ring(GLOBAL_RING, 0)  # noqa: E731
        else:
            nodes = [
                HierasProtocolNode(p, int(ids[p]), space, sim, net) for p in range(n)
            ]
            nodes[0].found_system(["0"], landmark_table=[1, 2])
            start = lambda p: nodes[p].join_system(0, [str(p % 2)])  # noqa: E731
        t = 0.0
        for p in range(1, n - 5):
            t += 400.0
            sim.schedule_at(t, start, p)
        sim.run(until=t + 20_000, max_events=8_000_000)
        window_ms = 4_000.0
        # Baseline: steady-state maintenance traffic over one idle window.
        tracer = MessageTracer(net)
        tracer.start()
        sim.run(until=sim.now + window_ms, max_events=8_000_000)
        baseline = tracer.count()
        tracer.reset()
        # Five probed joins, one window each; the membership grows by
        # one node per window, so baseline drift is ~5%, well below the
        # join cost itself.
        for p in range(n - 5, n):
            sim.schedule_at(sim.now + 50.0, start, p)
            sim.run(until=sim.now + window_ms, max_events=8_000_000)
        tracer.stop()
        join_msgs = max((tracer.count() - 5 * baseline) / 5.0, 0.0)
        rows.append(
            {
                "variant": variant,
                "msgs_per_join": round(join_msgs, 1),
                "steady_state_msgs_per_window": baseline,
                "window_ms": int(window_ms),
            }
        )
    return rows


def _run_cost_analysis(full: bool, seed: int) -> ExperimentResult:
    """Quantitative overhead analysis (§3.4 + the paper's future work).

    The paper argues HIERAS's extra state is "hundreds or thousands of
    bytes" and lower-layer upkeep is cheap because ring mates are close;
    its future work promises a quantitative analysis.  This experiment
    measures, per hierarchy depth: routing-state entries and bytes per
    node (closed-form model vs measured), and the mean per-ping delay of
    one maintenance round per layer.
    """
    from repro.core.maintenance import (
        maintenance_traffic_cost,
        measured_state_cost,
        state_cost_model,
    )

    n_peers = 4000 if full else 1500
    base = SimConfig(model="ts", n_peers=n_peers, n_landmarks=6, seed=seed)
    bundle = build_bundle(base)
    rows = []
    ping_rows = []
    for depth in (2, 3, 4):
        orders = BinningScheme.default_for_depth(depth).orders(bundle.orders.distances)
        net = HierasNetwork(
            bundle.space,
            bundle.node_ids,
            latency=bundle.peer_latency,
            landmark_orders=orders,
            depth=depth,
        )
        measured = measured_state_cost(net, sample=48, seed=seed)
        ring_counts = [
            float(len(net.rings_at_layer(layer))) for layer in range(2, depth + 1)
        ]
        model = state_cost_model(n_peers, depth, n_rings_per_layer=ring_counts)
        rows.append(
            {
                "depth": depth,
                "measured_entries": round(measured.total_entries, 1),
                "model_entries": round(model.total_entries, 1),
                "measured_bytes": int(measured.total_bytes),
            }
        )
        pings = maintenance_traffic_cost(net, sample=64, seed=seed)
        ping_rows.append({"depth": depth, **{k: round(v, 1) for k, v in pings.items()}})
    ping_headers = ["depth"] + [f"layer{d}_mean_ping_ms" for d in range(1, 5)]
    chord_entries = state_cost_model(n_peers, 1).total_entries
    join_rows = _measure_join_costs(seed)
    lines = [
        f"{n_peers} peers, TS model, 6 landmarks "
        f"(flat Chord: {chord_entries:.1f} entries/node)",
        format_table(rows),
        "",
        "maintenance ping cost per layer (mean ms per successor ping):",
        format_table(ping_rows, headers=ping_headers),
        "",
        "protocol join cost (mean messages per join, event-driven stack):",
        format_table(join_rows),
        "",
        _claim(
            all(r["measured_bytes"] < 10_000 for r in rows),
            "multi-layer state stays in the hundreds-to-few-thousand bytes "
            "range (§3.4: 'only hundred or thousands of bytes')",
        ),
        _claim(
            all(
                row[f"layer{d}_mean_ping_ms"] <= ping_rows[0]["layer1_mean_ping_ms"]
                for row in ping_rows
                for d in range(2, int(row["depth"]) + 1)
            ),
            "lower-layer maintenance pings are no more expensive than "
            "global-ring pings (§3.4: lower-layer upkeep is affordable)",
        ),
    ]
    return ExperimentResult(
        "cost_analysis",
        "Cost analysis — §3.4 state and maintenance overheads, quantified",
        "\n".join(lines),
        data={"state_rows": rows, "ping_rows": ping_rows},
    )


def _run_ablation_landmark_failure(full: bool, seed: int) -> ExperimentResult:
    """Landmark failure (§2.3): drop landmarks, re-bin, re-measure.

    "In case of a landmark node failure ... previous binned nodes only
    need to drop the failed landmark(s) from their order information.
    In this case, performance degrades."  We quantify the degradation.
    """
    n_peers = 4000 if full else 2000
    n_req = _requests(full) // 2
    config = SimConfig(model="ts", n_peers=n_peers, n_landmarks=6, depth=2, seed=seed)
    bundle = build_bundle(config)
    trace = make_trace(bundle, n_req)
    chord = collect_routes(bundle.chord, trace)
    rows = []
    ratios = []
    orders = bundle.orders
    for failed in range(0, 4):
        net = HierasNetwork(
            bundle.space,
            bundle.node_ids,
            latency=bundle.peer_latency,
            landmark_orders=orders,
            depth=2,
        )
        sample = collect_routes(net, trace)
        ratio = ratio_percent(sample.mean_latency_ms, chord.mean_latency_ms)
        ratios.append(ratio)
        rows.append(
            {
                "landmarks_failed": failed,
                "landmarks_left": orders.n_landmarks,
                "rings": len(net.rings_at_layer(2)),
                "vs_chord_%": round(ratio, 1),
            }
        )
        if failed < 3:
            orders = orders.drop_landmark(0)
    # §2.3's mitigation: "use multiple geographically closest nodes as
    # one logical landmark" — losing one group member only perturbs the
    # measured distance instead of deleting an order digit.
    from repro.core.landmarks import LandmarkSet

    model = bundle.peer_latency.model  # the router-level latency model
    landmark_routers = bundle.attachment.landmark_routers
    groups = []
    for lm in landmark_routers:
        delays = model.to_targets(int(lm), bundle.topology.stub_routers)
        buddy = int(bundle.topology.stub_routers[int(np.argsort(delays)[1])])
        groups.append(np.asarray([int(lm), buddy]))
    logical = LandmarkSet.logical(groups)
    base_orders = BinningScheme.default_for_depth(2).orders(
        logical.measure(model, bundle.attachment.router_of_peer)
    )
    logical.members[0] = logical.members[0][1:]  # primary of group 0 dies
    degraded_orders = BinningScheme.default_for_depth(2).orders(
        logical.measure(model, bundle.attachment.router_of_peer)
    )
    unchanged = float(
        np.mean(
            [
                base_orders.order_of(i) == degraded_orders.order_of(i)
                for i in range(n_peers)
            ]
        )
    )

    lines = [
        f"{n_peers} peers, TS model, 6 landmarks initially, {n_req} requests",
        format_table(rows),
        "",
        f"logical-landmark mitigation: after one group member dies, "
        f"{100 * unchanged:.1f}% of nodes keep their exact orders "
        "(vs losing a whole order digit when a plain landmark dies)",
        "",
        _claim(
            ratios[-1] >= ratios[0] - 1.0,
            "performance degrades (or at best holds) as landmarks fail, "
            "but the system keeps working on the survivors (§2.3)",
        ),
        _claim(
            ratios[-1] < 95.0,
            "even after half the landmarks fail, HIERAS still beats Chord",
        ),
        _claim(
            unchanged > 0.85,
            "logical landmarks absorb single-member failures (§2.3's "
            "'multiple geographically closest nodes as one logical "
            "landmark')",
        ),
    ]
    return ExperimentResult(
        "ablation_landmark_failure",
        "Ablation — landmark failures (§2.3)",
        "\n".join(lines),
        data={"rows": rows, "logical_unchanged_fraction": unchanged},
    )


def _run_churn(full: bool, seed: int) -> ExperimentResult:
    """Protocol-stack churn: correctness and upkeep under membership flux.

    Two scenarios: a lossless network and one dropping 2% of messages —
    the §3.3 machinery (stabilization, successor lists, ring-table
    republish, join watchdog) must keep lookups correct in both.
    """
    from repro.experiments.churn_exp import run_churn_simulation

    universe = 60 if full else 40
    initial = 36 if full else 24
    rows = []
    ok = True
    for loss in (0.0, 0.02):
        stats = run_churn_simulation(
            universe=universe, initial=initial, seed=seed, loss_rate=loss
        )
        accuracy = stats["correct"] / max(stats["completed"], 1.0)
        # Lookups here are one-shot (no retries): under injected loss a
        # few resolve through views that stabilization has not healed
        # yet, so the floor is lower for the lossy scenario.
        floor = 0.95 if loss == 0.0 else 0.90
        ok = ok and stats["completed"] >= 100 and accuracy >= floor
        rows.append(
            {
                "loss_rate": loss,
                "live_nodes": int(stats["live"]),
                "lookups": int(stats["completed"]),
                "correct_%": round(100 * accuracy, 1),
                "total_msgs": int(stats["messages"]),
                "maintenance_msgs": int(stats["maintenance_msgs"]),
                "lost_msgs": int(stats["messages_lost"]),
            }
        )
    lines = [
        f"universe {universe} peers (churning), 3 lower rings, Poisson sessions",
        format_table(rows),
        "",
        _claim(
            ok,
            "one-shot lookups resolve to the correct live owner through "
            "crashes, leaves and rejoins (>=95% lossless; >=90% under 2% "
            "message loss, where stabilization heals slower) — §3.3's "
            "maintenance machinery works",
        ),
    ]
    return ExperimentResult(
        "churn",
        "Churn — the §3.3 protocol under membership churn",
        "\n".join(lines),
        data={"rows": rows},
    )


def _run_resilience(full: bool, seed: int) -> ExperimentResult:
    """Resilience sweep: lookup survival under crashes and loss (§3.3).

    Static stack: a per-cell FaultPlan crashes a fraction of peers
    mid-trace (plus an optional ambient loss burst) while failure-aware
    ``route_lossy`` lookups pay timeout penalties for dead fingers and
    fall back through successor lists.  Protocol stack: the same kind of
    plan drives the discrete-event simulation (SimNode crashes, loss
    bursts) against retrying lookups.  Writes the structured rows to
    ``resilience.json`` (directory overridable via REPRO_ARTIFACT_DIR).
    """
    import json
    import os
    from pathlib import Path

    from repro.experiments.resilience import (
        run_protocol_resilience,
        run_static_resilience_cell,
    )

    n_peers = 3000 if full else 1000
    n_requests = 12_000 if full else 6_000
    config = SimConfig(n_peers=n_peers, seed=seed)
    bundle = build_bundle(config)
    rows = []
    for fail_fraction in (0.0, 0.1, 0.2, 0.3):
        for loss_rate in (0.0, 0.05):
            cell = run_static_resilience_cell(
                bundle,
                fail_fraction=fail_fraction,
                loss_rate=loss_rate,
                n_requests=n_requests,
                seed=seed,
            )
            row = {"fail_fraction": fail_fraction, "loss_rate": loss_rate}
            for net, metrics in cell.items():
                row[f"{net}_success_%"] = round(100 * metrics["success_rate"], 2)
                row[f"{net}_hops"] = round(metrics["mean_hops"], 2)
                row[f"{net}_timeouts"] = round(metrics["timeouts_per_lookup"], 2)
                row[f"{net}_latency_ms"] = round(metrics["mean_total_latency_ms"], 0)
            rows.append(row)

    proto = run_protocol_resilience(seed=seed)
    proto_completion = proto["completed"] / (proto["completed"] + proto["failed"])
    proto_accuracy = proto["correct"] / max(proto["completed"], 1.0)

    clean = rows[0]
    crashed = next(r for r in rows if r["fail_fraction"] == 0.2 and r["loss_rate"] == 0.0)
    checks = [
        _claim(
            clean["chord_success_%"] == 100.0
            and clean["hieras_success_%"] == 100.0
            and clean["chord_timeouts"] == 0.0
            and clean["hieras_timeouts"] == 0.0,
            "fault-free cell: both stacks succeed on every lookup with zero "
            "timeouts (lossy mode is penalty-free without faults)",
        ),
        _claim(
            crashed["chord_success_%"] >= 99.0 and crashed["hieras_success_%"] >= 99.0,
            "20% of peers crashed mid-run: both stacks keep >=99% lookup "
            "success by routing around dead fingers via §3.3 successor lists",
        ),
        _claim(
            crashed["hieras_latency_ms"] < crashed["chord_latency_ms"],
            "HIERAS's latency advantage survives 20% failures even with "
            "timeout penalties included",
        ),
        _claim(
            proto_completion >= 0.90 and proto_accuracy >= 0.95,
            "protocol stack under the same plan shape (20% crash + 5% loss "
            "burst): >=90% of retrying lookups complete, >=95% of completions "
            "name the correct live owner",
        ),
    ]
    lines = [
        f"{n_peers} peers, {n_requests} lookups/cell; crash at mid-trace, "
        "ambient loss for the whole run; latency includes timeout penalties",
        format_table(rows),
        "",
        "protocol stack (24 nodes, 20% crash + 5% loss burst, retries=2): "
        f"completed {proto_completion:.0%}, correct {proto_accuracy:.0%}, "
        f"retries used {int(proto['retries_used'])}",
        "",
        *checks,
    ]
    data = {
        "rows": rows,
        "protocol": proto,
        "n_peers": n_peers,
        "n_requests": n_requests,
        "seed": seed,
    }
    artifact_dir = Path(os.environ.get("REPRO_ARTIFACT_DIR", "."))
    try:
        artifact_path = artifact_dir / "resilience.json"
        artifact_path.write_text(json.dumps(data, indent=2), encoding="utf-8")
        lines.append(f"\nwrote {artifact_path}")
    except OSError:  # pragma: no cover - unwritable artifact dir
        pass
    return ExperimentResult(
        "resilience",
        "Resilience — failure-aware lookups under crashes and loss",
        "\n".join(lines),
        data=data,
    )


def _run_perf_baseline(full: bool, seed: int) -> ExperimentResult:
    """Perf baseline: per-phase wall times + deterministic lookup metrics.

    Wall times live in the ``phases`` section (machine-dependent, shown
    for regression spotting only); the ``metrics`` section is a pure
    function of the seed, so the shape checks below — and the
    reproducibility test — pin it exactly.
    """
    from repro.experiments.baseline import run_perf_baseline

    doc = run_perf_baseline(full=full, seed=seed)
    metrics = doc["metrics"]
    rows = []
    for net in ("chord", "hieras"):
        m = metrics[net]
        rows.append(
            {
                "network": net,
                "lookups": int(m["lookups"]),
                "mean_hops": round(m["hops"]["mean"], 2),
                "p99_hops": round(m["hops"]["p99"], 2),
                "mean_latency_ms": round(m["latency_ms"]["mean"], 0),
                "p99_latency_ms": round(m["latency_ms"]["p99"], 0),
                "low_layer_hop_%": round(100 * m["low_layer_hop_share"], 1),
            }
        )
    proto = metrics["protocol"]
    n_requests = doc["config"]["n_requests"]
    low_share = metrics["hieras"]["low_layer_hop_share"]
    checks = [
        _claim(
            metrics["chord"]["lookups"] == n_requests
            and metrics["hieras"]["lookups"] == n_requests,
            "span collection sees every routed request on both stacks",
        ),
        _claim(
            low_share > 0.5,
            "the majority of HIERAS hops resolve inside lower-layer rings "
            "(§4.3's mechanism, observed per-hop by the span layer)",
        ),
        _claim(
            metrics["hieras"]["latency_ms"]["mean"]
            < metrics["chord"]["latency_ms"]["mean"],
            "HIERAS's latency advantage shows up in the streaming histograms",
        ),
        _claim(
            proto["lookups_completed"] == proto["lookups_issued"],
            "protocol smoke: every scheduled lookup completes with the "
            "simulator registry attached",
        ),
    ]
    phase_line = "  ".join(
        f"{name}={p['wall_ms']:.0f}ms" for name, p in doc["phases"].items()
    )
    lines = [
        f"{doc['config']['n_peers']} peers, {n_requests} lookups, seed {seed}; "
        "wall times are machine-dependent, metrics are seed-deterministic",
        format_table(rows),
        "",
        f"phases (wall): {phase_line}",
        f"protocol smoke: {int(proto['counters'].get('sim.messages_sent', 0))} "
        f"messages, {int(proto['counters'].get('sim.events_processed', 0))} events",
        "",
        *checks,
    ]
    return ExperimentResult(
        "perf_baseline",
        "Perf baseline — phase timings and lookup metrics",
        "\n".join(lines),
        data=doc,
    )


def _run_cache_effect(full: bool, seed: int) -> ExperimentResult:
    """Cache effect: Zipf workloads through ``repro.cache`` (DESIGN.md §9).

    Sweeps Zipf exponent × per-node cache capacity (plus churn and TTL
    cells) over both stacks and reports hop/latency reduction vs the
    paired uncached baseline, cache hit rates, and the
    owner-load-concentration metric.  Everything in ``data["metrics"]``
    is seed-deterministic; wall times live in ``data["phases"]``.
    """
    from repro.experiments.cache_exp import (
        HEADLINE_CAPACITY,
        HEADLINE_EXPONENT,
        run_bench_cache,
    )

    doc = run_bench_cache(full=full, seed=seed)
    metrics = doc["metrics"]
    cells = metrics["cells"]
    headline = metrics["headline"]
    rows = []
    for c in cells:
        if c["churn_fraction"] or c["eviction"] != "lru":
            continue
        rows.append(
            {
                "stack": c["stack"],
                "zipf_s": c["zipf_exponent"],
                "capacity": c["capacity"],
                "hops": round(c["mean_hops"], 3),
                "latency_ms": round(c["mean_total_latency_ms"], 1),
                "hit_%": round(100 * c["cache_hit_rate"], 1),
                "latency_cut_%": round(c.get("latency_reduction_percent", 0.0), 1),
                "load_conc": round(c["load_concentration"], 1),
            }
        )
    churn_rows = [
        {
            "stack": c["stack"],
            "eviction": c["eviction"],
            "capacity": c["capacity"],
            "success_%": round(100 * c["success_rate"], 2),
            "latency_ms": round(c["mean_total_latency_ms"], 1),
            "stale_evictions": int(c["cache_stale_evictions"]),
            "expirations": int(c["cache_expirations"]),
        }
        for c in cells
        if c["churn_fraction"]
    ]

    def _hit_rates(stack: str) -> list[float]:
        return [
            c["cache_hit_rate"]
            for c in cells
            if c["stack"] == stack
            and c["zipf_exponent"] == HEADLINE_EXPONENT
            and not c["churn_fraction"]
            and c["eviction"] == "lru"
            and c["capacity"] > 0
        ]

    reductions = {s: headline[s]["latency_reduction_percent"] for s in headline}
    hit_monotone = all(
        all(a <= b + 1e-9 for a, b in zip(rates, rates[1:]))
        for rates in (_hit_rates("chord"), _hit_rates("hieras"))
    )
    spread_ok = all(
        headline[s]["cached_concentration"] < 0.5 * headline[s]["uncached_concentration"]
        for s in headline
    )
    churn_ok = all(r["success_%"] >= 99.0 for r in churn_rows) and any(
        r["stale_evictions"] > 0 or r["expirations"] > 0 for r in churn_rows
    )
    config = doc["config"]
    lines = [
        f"{config['n_peers']} peers, TS model, {config['n_requests']} Zipf requests "
        f"over a {config['catalog_size']}-file catalogue",
        format_table(rows),
        "",
        f"under churn (crash {config['churn_fraction']:.0%} mid-trace, "
        "shortcut-only caching):",
        format_table(churn_rows),
        "",
        _claim(
            all(r >= 20.0 for r in reductions.values()),
            f"headline cell (zipf={HEADLINE_EXPONENT}, capacity="
            f"{HEADLINE_CAPACITY}): mean latency drops "
            f"{ {s: round(r, 1) for s, r in reductions.items()} }% vs uncached "
            "— well past the 20% gate on both stacks",
        ),
        _claim(
            hit_monotone,
            "hit rate grows monotonically with cache capacity on both stacks",
        ),
        _claim(
            spread_ok,
            "caching cuts owner-load concentration (max/mean served) by more "
            "than half — hot-key owners stop being hotspots",
        ),
        _claim(
            churn_ok,
            "with 15% of peers crashed, every lookup still succeeds; stale "
            "cached owners are detected and evicted (or TTL-expired) along "
            "the way",
        ),
    ]
    return ExperimentResult(
        "cache_effect",
        "Cache effect — Zipf workloads under path caching",
        "\n".join(lines),
        data=doc,
    )


def _run_batch_route(full: bool, seed: int) -> ExperimentResult:
    """Batch engine vs scalar loop: exact agreement + measured speedup.

    The claims pin only the deterministic ``engines_agree`` bits (exact
    array equality, bit-identical floats); the speedups are printed for
    the record but never gate the run — wall time is machine-dependent
    and CI-flaky by nature (the committed BENCH_batchroute.json holds
    the ">= 5x at N=4096" acceptance evidence).
    """
    from repro.experiments.batchbench import run_bench_batchroute

    doc = run_bench_batchroute(full=full, seed=seed)
    cells = doc["metrics"]["cells"]
    rows = []
    for name, cell in cells.items():
        phase = doc["phases"][name]
        rows.append(
            {
                "cell": name,
                "lookups": cell["lookups"],
                "agree": "yes" if cell["engines_agree"] else "NO",
                "mean_hops": round(cell["mean_hops"], 3),
                "mean_latency_ms": round(cell["mean_latency_ms"], 1),
                "scalar_per_s": round(phase["scalar_lookups_per_s"]),
                "batch_per_s": round(phase["batch_lookups_per_s"]),
                "speedup": round(phase["speedup"], 1),
            }
        )
    hieras_low = [
        c["low_layer_hop_share"] for c in cells.values() if c["stack"] == "hieras"
    ]
    lines = [
        f"{doc['config']['n_requests']} lookups per cell, seed {seed}; "
        "agreement bits are seed-deterministic, speedups are wall-clock",
        format_table(rows),
        "",
        _claim(
            all(c["engines_agree"] for c in cells.values()),
            "batch engine reproduces the scalar loop exactly on every cell "
            "(same hop counts, bit-identical latencies, same layer splits)",
        ),
        _claim(
            all(share > 0.5 for share in hieras_low),
            "the batch engine's layer accounting preserves §4.3's "
            "majority-of-hops-in-lower-rings signal at every size",
        ),
    ]
    return ExperimentResult(
        "batch_route",
        "Batch routing engine — vectorized vs scalar equivalence",
        "\n".join(lines),
        data=doc,
    )


def _run_scale(full: bool, seed: int) -> ExperimentResult:
    """Million-peer scale-out: incremental membership + streamed lookups.

    The claims pin the three deterministic contracts of the scale work:
    membership waves go through the splice path (zero full rebuilds),
    the spliced state is bit-identical to a from-scratch rebuild, and
    both stacks' streamed lookups resolve every key to the same global
    owner (equal order-weighted checksums).  Build times, wave times,
    lookups/sec and peak RSS are printed from ``phases`` for the record
    but never gate the run; the committed BENCH_scale.json holds the
    N=10⁶ acceptance evidence.
    """
    from repro.experiments.scale_exp import run_bench_scale

    doc = run_bench_scale(full=full, seed=seed)
    cells = doc["metrics"]["cells"]
    rows = []
    for name, cell in cells.items():
        n = cell["n_peers"]
        mem = cell["membership"]
        rows.append(
            {
                "cell": name,
                "lookups": cell["lookups"],
                "stacks_agree": "yes" if cell["stacks_agree_owners"] else "NO",
                "inc==rebuild": "yes" if mem["incremental_matches_rebuild"] else "NO",
                "mean_hops_hieras": round(cell["hieras"]["mean_hops"], 3),
                "build_s": round(doc["phases"][f"build_n{n}"]["wall_ms"] / 1000.0, 2),
                "lookups_per_s": round(
                    doc["phases"][f"hieras_lookup_n{n}"]["lookups_per_s"]
                ),
                "peak_rss_mb": round(
                    doc["phases"][f"hieras_lookup_n{n}"]["peak_rss_mb"]
                ),
            }
        )
    lines = [
        f"seed {seed}; agreement bits are seed-deterministic, "
        "build/lookup rates and RSS are wall-clock",
        format_table(rows),
        "",
        _claim(
            all(
                c["membership"]["full_rebuilds_during_waves_chord"] == 0
                and c["membership"]["full_rebuilds_during_waves_hieras"] == 0
                for c in cells.values()
            ),
            "membership waves never trigger a full rebuild on either stack "
            "(splice path only, pinned by the stacks' own rebuild counters)",
        ),
        _claim(
            all(
                c["membership"]["incremental_matches_rebuild"]
                for c in cells.values()
            ),
            "after remove+revive waves, the incremental state is "
            "bit-identical to a from-scratch rebuild (every ring id, peer, "
            "and ring name)",
        ),
        _claim(
            all(c["stacks_agree_owners"] for c in cells.values()),
            "Chord and HIERAS streamed lookups resolve every key to the "
            "same owner (equal order-weighted checksums per cell)",
        ),
    ]
    return ExperimentResult(
        "scale",
        "Scale — incremental membership and streamed million-peer lookups",
        "\n".join(lines),
        data=doc,
    )


def _run_durability(full: bool, seed: int) -> ExperimentResult:
    """Durability under churn through ``repro.replication`` (DESIGN.md §11).

    Sweeps replication factor × churn × consistency mode × placement
    over both stacks and reports data-loss probability, read staleness,
    chain-abort and hinted-handoff traffic.  The claims pin the four
    headline effects: replication eliminates the replicas=0 loss,
    quorum out-survives chain under the same faults, hinted handoff
    cuts loss vs handoff-disabled, and HIERAS ring-scoped placement is
    cheaper to write to without costing durability under uniform churn.
    """
    from repro.experiments.durability import (
        HEADLINE_CHURN,
        HEADLINE_REPLICAS,
        run_bench_durability,
    )

    doc = run_bench_durability(full=full, seed=seed)
    metrics = doc["metrics"]
    cells = metrics["cells"]
    headline = metrics["headline"]
    rows = [
        {
            "stack": c["stack"],
            "r": c["replicas"],
            "churn": c["churn_fraction"],
            "mode": c["consistency"],
            "placement": c["placement"],
            "loss_%": round(100 * c["loss_probability"], 2),
            "put_ok_%": round(100 * c["put_success_rate"], 1),
            "read_ok_%": round(100 * c["read_success_rate"], 1),
            "stale_%": round(100 * c["stale_value_rate"], 2),
            "aborts": int(c["chain_aborts"]),
            "repairs": int(c["read_repairs"]),
            "hints": int(c["hints_replayed"]),
        }
        for c in cells
        if c["churn_fraction"] == HEADLINE_CHURN
    ]

    def _loss(stack: str, replicas: int) -> float:
        return max(
            c["loss_probability"]
            for c in cells
            if c["stack"] == stack
            and c["replicas"] == replicas
            and c["churn_fraction"] == HEADLINE_CHURN
        )

    bare_loss = {s: _loss(s, 0) for s in ("chord", "hieras")}
    replicated_loss = {s: _loss(s, HEADLINE_REPLICAS) for s in ("chord", "hieras")}
    divergence = headline["chain_vs_quorum"]
    handoff = headline["handoff_loss"]
    locality = headline["ring_locality"]
    config = doc["config"]
    lines = [
        f"{config['n_peers']} peers, TS model, {config['n_keys']} keys per cell, "
        f"two crash waves of {HEADLINE_CHURN:.0%} each + rejoin, seed {seed}",
        format_table(rows),
        "",
        _claim(
            all(bare_loss[s] > 0.1 and replicated_loss[s] < bare_loss[s] / 2 for s in bare_loss),
            f"replication works: replicas=0 loses "
            f"{ {s: round(100 * v, 1) for s, v in bare_loss.items()} }% of keys at "
            f"{HEADLINE_CHURN:.0%} churn; replicas={HEADLINE_REPLICAS} cuts loss to "
            f"{ {s: round(100 * v, 1) for s, v in replicated_loss.items()} }%",
        ),
        _claim(
            all(
                d["quorum_put_success"] > d["chain_put_success"]
                for d in divergence.values()
            ),
            "chain and quorum diverge under the same faults: chain writes abort "
            "on any broken link while quorum writes ride out minority failures "
            f"(put success { {s: (round(d['chain_put_success'], 3), round(d['quorum_put_success'], 3)) for s, d in divergence.items()} } chain vs quorum)",
        ),
        _claim(
            all(h["on"] <= h["off"] for h in handoff.values())
            and any(h["on"] < h["off"] for h in handoff.values()),
            "hinted handoff reduces loss vs handoff-disabled on the paired "
            f"scenario (loss on/off: { {s: (round(h['on'], 3), round(h['off'], 3)) for s, h in handoff.items()} })",
        ),
        _claim(
            locality["hieras"]["ring_scoped_put_latency_ms"]
            < locality["hieras"]["successor_put_latency_ms"]
            and locality["hieras"]["ring_scoped_loss"]
            <= locality["hieras"]["successor_loss"] + 0.05,
            "HIERAS ring-scoped placement writes to topologically-near "
            "replicas — cheaper puts "
            f"({locality['hieras']['ring_scoped_put_latency_ms']:.0f} vs "
            f"{locality['hieras']['successor_put_latency_ms']:.0f} ms mean) "
            "without hurting durability under uniform churn",
        ),
    ]
    return ExperimentResult(
        "durability",
        "Durability under churn — fault-aware replication",
        "\n".join(lines),
        data=doc,
    )


def _run_saturation(full: bool, seed: int) -> ExperimentResult:
    """Serving-layer saturation through ``repro.serve`` (DESIGN.md §12).

    Sweeps offered load over both stacks behind a :class:`DHTService`
    front door (3:1 read:write Zipf mix through a quorum replicated
    store) and reports achieved throughput + p99 per rate.  The claims
    pin the four headline effects: achieved throughput tracks offered
    load until the cost-model knee and plateaus there, batch coalescing
    moves the knee vs per-request dispatch, admission control bounds
    the flash-crowd queue-wait tail, and HIERAS serves the same
    capacity at a lower end-to-end p99 than Chord.
    """
    from repro.experiments.serve_exp import run_bench_serve

    doc = run_bench_serve(full=full, seed=seed)
    metrics = doc["metrics"]
    sweep = metrics["sweep"]
    headline = metrics["headline"]
    knee = headline["knee"]
    rows = [
        {
            "stack": c["stack"],
            "offered/s": int(c["offered_per_s"]),
            "achieved/s": round(c["achieved_per_s"], 1),
            "q_p99_ms": round(c["phases"]["queue_wait"]["p99"], 1),
            "total_p99_ms": round(c["phases"]["total"]["p99"], 1),
            "total_p999_ms": round(c["phases"]["total"]["p999"], 1),
            "batch": round(c["mean_batch_size"], 2),
            "depth": c["max_queue_depth"],
        }
        for c in sweep
    ]

    def _tracks(c: dict) -> bool:
        capacity = knee[c["stack"]]["model_capacity_per_s"]
        if c["offered_per_s"] < 0.95 * capacity:
            return c["achieved_per_s"] >= 0.95 * c["offered_per_s"]
        return c["achieved_per_s"] <= 1.05 * capacity

    shift = headline["knee_shift"]
    admission = headline["admission"]
    tail_pairs = [
        (
            next(c for c in sweep if c["stack"] == "chord" and c["offered_per_s"] == r),
            next(c for c in sweep if c["stack"] == "hieras" and c["offered_per_s"] == r),
        )
        for r in (c["offered_per_s"] for c in sweep if c["stack"] == "chord")
    ]
    config = doc["config"]
    lines = [
        f"{config['n_peers']} peers, TS model, {config['duration_ms']:.0f} ms windows, "
        f"{config['mix']['read_fraction']:.0%} reads over a Zipf({config['mix']['zipf_exponent']}) "
        f"catalogue of {config['mix']['catalog_size']}, quorum replicas=2, seed {seed}",
        format_table(rows),
        "",
        _claim(
            all(_tracks(c) for c in sweep),
            "achieved throughput tracks offered load until the cost-model knee "
            f"(~{knee['hieras']['model_capacity_per_s']:.0f}/s batched) and plateaus there "
            f"(measured max { {s: round(k['achieved_max_per_s']) for s, k in knee.items()} }/s)",
        ),
        _claim(
            all(
                p["batched_achieved_per_s"] > 1.5 * p["scalar_achieved_per_s"]
                for p in shift.values()
            ),
            "batch coalescing moves the knee: at "
            f"{config['coalesce_rate']:.0f}/s offered, scalar dispatch serves "
            f"~{shift['hieras']['scalar_achieved_per_s']:.0f}/s "
            f"(model {knee['hieras']['model_scalar_capacity_per_s']:.0f}) vs "
            f"~{shift['hieras']['batched_achieved_per_s']:.0f}/s coalesced",
        ),
        _claim(
            all(
                a["bounded_queue_p99_ms"] < 0.5 * a["unbounded_queue_p99_ms"]
                for a in admission.values()
            ),
            "admission control bounds the flash-crowd tail: queue-wait p99 "
            f"{ {s: (round(a['unbounded_queue_p99_ms']), round(a['bounded_queue_p99_ms'])) for s, a in admission.items()} } ms "
            f"unbounded vs queue_limit={config['flash_queue_limit']} "
            f"(goodput {admission['hieras']['bounded_goodput']:.0%})",
        ),
        _claim(
            all(h["phases"]["total"]["p99"] <= ch["phases"]["total"]["p99"] for ch, h in tail_pairs)
            and any(
                h["phases"]["total"]["p99"] < 0.9 * ch["phases"]["total"]["p99"]
                for ch, h in tail_pairs
            ),
            "the stacks share the front-end capacity knee, but HIERAS serves it "
            "at a lower end-to-end p99 than Chord at every offered rate "
            "(routing latency is the differentiator, capacity is not)",
        ),
        _claim(
            all(
                c["failed"] == 0 and c["leave_peers"] > 0 and c["join_peers"] == c["leave_peers"]
                for c in metrics["churn"].values()
            ),
            "the service serves through a leave wave + rejoin "
            f"({metrics['churn']['hieras']['leave_peers']} peers churned) with zero "
            "failed requests — membership is just another queued operation",
        ),
    ]
    return ExperimentResult(
        "saturation",
        "Saturation — serving-layer capacity under open-loop load",
        "\n".join(lines),
        data=doc,
    )


def _run_scenarios(full: bool, seed: int) -> ExperimentResult:
    """Failure-campaign suite through ``repro.scenarios``.

    Replays six named campaigns — graceful vs abrupt mass departure,
    the correlated regional (whole lowest-ring) failure, a flash join,
    long-running Weibull session churn, rolling landmark outages —
    against both stacks and reports availability, route stretch vs a
    fault-free twin, sustained recovery time, and data durability per
    cell.  The claims pin the suite's headline contrasts.
    """
    from repro.experiments.scenarios_exp import check_gates, run_bench_scenarios

    doc = run_bench_scenarios(full=full, seed=seed)
    metrics = doc["metrics"]
    scenarios = metrics["scenarios"]
    headline = metrics["headline"]
    rows = [
        {
            "scenario": name,
            "stack": stack,
            "avail_min": round(c["availability_min"], 3),
            "avail_final": round(c["availability_final"], 3),
            "recovery_ms": int(c["recovery_ms"]),
            "stretch": round(c["stretch_mean"], 2),
            "loss_%": round(100 * c["loss_probability"], 2),
            "handoffs": int(c["graceful_handoffs"]),
        }
        for name, cells in scenarios.items()
        for stack, c in cells.items()
    ]
    regional = headline["regional_failure"]
    pair = headline["graceful_vs_abrupt"]
    flash = headline["flash_join"]
    landmark = headline["landmark_outage"]
    weibull = headline["weibull_churn"]
    regional_cells = scenarios["regional_failure"]
    config = doc["config"]
    lines = [
        f"{config['n_peers']} peers, TS model, {len(config['scenarios'])} campaigns "
        f"x both stacks, {config['duration_ms']:.0f} ms per run, seed {seed}",
        format_table(rows),
        "",
        _claim(
            all(
                c["notes"]["ring_size"] > 0
                and c["crashed_final"] == c["notes"]["ring_size"]
                and c["availability_min"] < 1.0
                and c["recovered"] == 1.0
                for c in regional_cells.values()
            ),
            "the regional campaign crashes an entire lowest-layer HIERAS ring "
            f"({regional['hieras']['ring_size']} peers) in one wave on both "
            "stacks; availability dips "
            f"({ {s: round(r['availability_min'], 2) for s, r in regional.items()} } min) "
            "and sustainably recovers "
            f"({ {s: round(r['recovery_ms']) for s, r in regional.items()} } ms)",
        ),
        _claim(
            all(
                p["graceful_stretch"] < p["abrupt_stretch"]
                and p["graceful_loss"] <= p["abrupt_loss"]
                for p in pair.values()
            ),
            "announcing a departure is worth the handoff: the same cohort "
            "leaving gracefully routes at "
            f"{ {s: round(p['graceful_stretch'], 2) for s, p in pair.items()} } stretch vs "
            f"{ {s: round(p['abrupt_stretch'], 2) for s, p in pair.items()} } when it "
            "crashes silently (stale fingers until the stabilize purge)",
        ),
        _claim(
            all(
                f["rebalanced"] > 0
                and f["post_rebalance_get_failure"] < f["pre_rebalance_get_failure"]
                for f in flash.values()
            ),
            "the flash join shifts ownership away from the data until the "
            "rebalance pass re-homes it: get failure "
            f"{ {s: round(f['pre_rebalance_get_failure'], 3) for s, f in flash.items()} } pre- vs "
            f"{ {s: round(f['post_rebalance_get_failure'], 3) for s, f in flash.items()} } post-rebalance",
        ),
        _claim(
            all(
                w["availability_mean"] >= 0.9 and w["graceful_handoffs"] > 0
                for w in weibull.values()
            ),
            "both stacks serve through sustained heavy-tailed (Weibull) session "
            "churn at >=90% mean probe availability "
            f"({ {s: round(w['availability_mean'], 3) for s, w in weibull.items()} })",
        ),
        _claim(
            landmark["hieras"]["stretch_mean"] > landmark["chord"]["stretch_mean"],
            "rolling landmark outages are a HIERAS-specific hazard: rejoiners "
            "binned from blinded coordinates land in the wrong low-layer rings "
            f"(stretch {landmark['hieras']['stretch_mean']:.2f} vs flat Chord "
            f"{landmark['chord']['stretch_mean']:.2f}, which ignores landmarks)",
        ),
        _claim(
            regional["hieras"]["loss_probability"] > regional["chord"]["loss_probability"],
            "ring-scoped placement trades correlated-failure durability for "
            "write locality: the whole-ring crash takes every co-located "
            f"replica ({100 * regional['hieras']['loss_probability']:.1f}% keys "
            f"lost on HIERAS vs {100 * regional['chord']['loss_probability']:.1f}% "
            "on Chord, whose replicas spread hash-uniformly)",
        ),
        _claim(
            not check_gates(doc),
            "all pinned regional regression gates hold "
            "(availability floor, recovery ceiling, loss ceiling)",
        ),
    ]
    return ExperimentResult(
        "scenarios",
        "Scenarios — adversarial & realistic failure campaigns",
        "\n".join(lines),
        data=doc,
    )


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------

EXPERIMENTS: dict[str, Experiment] = {
    e.id: e
    for e in [
        Experiment(
            "table1",
            "Table 1 — distributed binning of sample nodes",
            "orders 1012/1002/2200/2200/1020/0211; C and D share ring 2200",
            _run_table1,
        ),
        Experiment(
            "table2",
            "Table 2 — two-layer finger tables",
            "layer-2 successors stay inside the node's own ring",
            _run_table2,
        ),
        Experiment(
            "fig2",
            "Figure 2 — hops vs network size",
            "HIERAS within a few % of Chord; ~32% hop growth 1000→10000",
            _run_fig2,
        ),
        Experiment(
            "fig3",
            "Figure 3 — latency vs network size",
            "HIERAS ≈ 52%/53%/62% of Chord on TS/Inet/BRITE",
            _run_fig3,
        ),
        Experiment(
            "fig4",
            "Figure 4 — hop-count PDF",
            "distributions nearly coincide; ~71% of hops in lower rings",
            _run_fig4,
        ),
        Experiment(
            "fig5",
            "Figure 5 — latency CDF",
            "mean 276.53 vs 511.47 ms (54.07%); low-layer links ~35% the delay",
            _run_fig5,
        ),
        Experiment(
            "fig6",
            "Figure 6 — hops vs landmark count",
            "hop count varies little; lower-layer hops shrink with landmarks",
            _run_fig6,
        ),
        Experiment(
            "fig7",
            "Figure 7 — latency vs landmark count",
            "2 landmarks nearly useless; best ~43% of Chord around 8",
            _run_fig7,
        ),
        Experiment(
            "fig8",
            "Figure 8 — hops vs hierarchy depth",
            "depth adds at most ~1.65% hops",
            _run_fig8,
        ),
        Experiment(
            "fig9",
            "Figure 9 — latency vs hierarchy depth",
            "2→3 layers gains 9.6–16.2%; 3→4 gains ≤5.4%",
            _run_fig9,
        ),
        Experiment(
            "ablation_binning",
            "Ablation — binning vs random rings",
            "topological grouping, not hierarchy alone, delivers the win",
            _run_ablation_binning,
        ),
        Experiment(
            "ablation_succlist",
            "Ablation — successor-list policy",
            "acceleration trades hops for simplicity across policies",
            _run_ablation_succlist,
        ),
        Experiment(
            "ablation_can",
            "Ablation — HIERAS over CAN",
            "hierarchy transplants to CAN (§3.2)",
            _run_ablation_can,
        ),
        Experiment(
            "ablation_pastry",
            "Ablation — Pastry comparison",
            "future-work comparison vs a PNS low-latency DHT (§6)",
            _run_ablation_pastry,
        ),
        Experiment(
            "ablation_noise",
            "Ablation — noisy ping binning",
            "binning tolerates measurement noise (§2.2)",
            _run_ablation_noise,
        ),
        Experiment(
            "ablation_landmark_failure",
            "Ablation — landmark failures",
            "drop failed landmarks from orders; performance degrades (§2.3)",
            _run_ablation_landmark_failure,
        ),
        Experiment(
            "cost_analysis",
            "Cost analysis — state & maintenance overheads",
            "hundreds-to-thousands of bytes per node; cheap low-layer upkeep (§3.4)",
            _run_cost_analysis,
        ),
        Experiment(
            "churn",
            "Churn — the §3.3 protocol under membership churn",
            "join/leave/fail with stabilization; lookups stay correct",
            _run_churn,
        ),
        Experiment(
            "resilience",
            "Resilience — failure-aware lookups under crashes and loss",
            "successor lists keep lookups succeeding through failures (§3.3)",
            _run_resilience,
        ),
        Experiment(
            "perf_baseline",
            "Perf baseline — phase timings and lookup metrics",
            "majority of HIERAS hops in lower rings; latency advantage in "
            "streaming histograms (§4.3)",
            _run_perf_baseline,
        ),
        Experiment(
            "cache_effect",
            "Cache effect — Zipf workloads under path caching",
            "path caching cuts mean latency >=20% on skewed workloads and "
            "spreads hot-key owner load (CFS-style, DESIGN.md §9)",
            _run_cache_effect,
        ),
        Experiment(
            "batch_route",
            "Batch routing engine — vectorized vs scalar equivalence",
            "frontier-stepped numpy routing is bit-identical to the scalar "
            "loop and an order of magnitude faster",
            _run_batch_route,
        ),
        Experiment(
            "scale",
            "Scale — incremental membership and streamed million-peer lookups",
            "membership waves splice only affected rings (bit-identical to a "
            "full rebuild), hot routing state is struct-of-arrays, and "
            "latency blocks stream on demand so lookups run at N=10⁶ in "
            "bounded memory",
            _run_scale,
        ),
        Experiment(
            "durability",
            "Durability under churn — fault-aware replication",
            "successor-list replication keeps data alive through churn "
            "(§3.2's 'for free' inheritance, made quantitative: loss "
            "probability vs replication factor, chain vs quorum, hinted "
            "handoff, ring-scoped placement)",
            _run_durability,
        ),
        Experiment(
            "saturation",
            "Saturation — serving-layer capacity under open-loop load",
            "achieved throughput tracks offered load to the cost-model knee; "
            "batch coalescing moves the knee, admission control bounds the "
            "flash-crowd tail, HIERAS serves at lower p99 (DESIGN.md §12)",
            _run_saturation,
        ),
        Experiment(
            "scenarios",
            "Scenarios — adversarial & realistic failure campaigns",
            "named churn campaigns (whole-ring regional failure, graceful vs "
            "abrupt departure, flash joins, Weibull churn, landmark outages) "
            "replay identically on both stacks with availability, stretch, "
            "recovery-time and durability measurements",
            _run_scenarios,
        ),
    ]
}


def get_experiment(experiment_id: str) -> Experiment:
    """Look up a registered experiment (ValueError with the id list)."""
    if experiment_id not in EXPERIMENTS:
        raise ValueError(
            f"unknown experiment {experiment_id!r}; available: {sorted(EXPERIMENTS)}"
        )
    return EXPERIMENTS[experiment_id]


def run_experiment(experiment_id: str, *, full: bool | None = None, seed: int = 42) -> ExperimentResult:
    """Run one experiment end to end."""
    return get_experiment(experiment_id).run(is_full_scale(full), seed)
