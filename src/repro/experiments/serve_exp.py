"""The saturation experiment: serving-layer capacity under open-loop load.

PR 7 turns the routing library into a service (DESIGN.md §12); this
experiment asks the operator questions: **how much load can one front
door take, where is the knee, and what moves it?**  Each cell wires a
:class:`~repro.serve.service.DHTService` over one trace-driven stack
(writes through a quorum :class:`~repro.replication.store
.ReplicatedStore`), drives it with a deterministic open-loop schedule
from :mod:`repro.loadgen`, and condenses the run into an
:class:`~repro.loadgen.slo.SLOReport`.

Four sections:

1. **sweep** — offered load vs achieved throughput vs p99 at a ladder
   of constant rates on both stacks (3:1 read:write Zipf mix).  The
   **knee** is where achieved throughput stops tracking offered load;
   the cost model predicts it at ``workers / mean_dispatch_cost``.
2. **flash** — a flash-crowd spike (8× base for 2 s) through an
   unbounded queue vs a bounded one: admission control trades a slice
   of goodput for a bounded queue-wait tail.
3. **coalescing** — the same overload cell dispatched per-request
   (``max_batch=1``) vs batch-coalesced: amortizing the dispatch
   overhead across a batch-route call moves the knee.
4. **churn** — the steady mix with a leave wave mid-run and a rejoin
   later, store attached to the network so departures drop disks; the
   service keeps serving through the membership churn.

Output follows the ``BENCH_*`` convention: one JSON document whose
``phases`` section holds nondeterministic wall times and whose
``metrics`` section is byte-reproducible for a fixed seed.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any

import numpy as np

from repro.experiments.config import SimConfig
from repro.experiments.runner import SimulationBundle, build_bundle
from repro.loadgen import (
    SLOReport,
    WorkloadMix,
    catalog_names,
    constant_rate,
    flash_crowd,
    generate,
)
from repro.replication import ReplicatedStore, ReplicationPolicy
from repro.serve import DHTService, Request, ServiceConfig
from repro.util.proc import peak_rss_mb

__all__ = [
    "SCHEMA",
    "mixed_capacity_per_s",
    "run_serve_cell",
    "run_bench_serve",
    "write_bench_serve",
]

SCHEMA = "repro.bench_serve/1"

#: Offered-load ladder for the saturation sweep (requests/second).
SWEEP_RATES = (200.0, 400.0, 800.0, 1200.0, 1600.0, 2400.0)
#: The overload rate where the coalescing comparison runs — past the
#: scalar knee (~681/s at default costs) but under the batched one.
COALESCE_RATE = 1600.0
#: Flash-crowd shape: base rate, spiked 8x for a fifth of the window.
FLASH_BASE = 400.0
FLASH_FACTOR = 8.0
#: Bounded-queue depth for the admission-control cell.
FLASH_QUEUE_LIMIT = 256
#: Fraction of peers churned in the membership cell.
CHURN_FRACTION = 0.1


def mixed_capacity_per_s(
    cfg: ServiceConfig, read_fraction: float, *, coalesced: bool = True
) -> float:
    """Cost-model capacity for a read/write mix (requests/second).

    Mean worker cost per request is the read/write-weighted dispatch
    cost; coalesced reads amortize the dispatch overhead across a full
    batch, scalar reads pay it whole.  This is the predicted knee the
    sweep should plateau at.
    """
    overhead = cfg.dispatch_overhead_ms / cfg.max_batch if coalesced else cfg.dispatch_overhead_ms
    per_read = overhead + cfg.per_lookup_ms
    per_write = cfg.dispatch_overhead_ms + cfg.per_write_ms
    mean_cost = read_fraction * per_read + (1.0 - read_fraction) * per_write
    if mean_cost <= 0.0:
        return float("inf")
    return 1000.0 * cfg.workers / mean_cost


def run_serve_cell(
    bundle: SimulationBundle,
    *,
    stack: str,
    rate_per_s: float,
    duration_ms: float,
    mix: WorkloadMix,
    service: ServiceConfig,
    seed: int,
    schedule_kind: str = "constant",
    membership: bool = False,
) -> dict[str, Any]:
    """One load scenario through one serving stack; returns the SLO dict.

    A cell is a pure function of its arguments: the schedule, workload,
    and store are all seeded, and the service clock is simulated.  The
    store is fresh per cell (catalogue pre-seeded onto replica groups),
    so cells don't leak state into each other.  ``membership=True``
    mixes a leave wave at 30% of the window and a rejoin of the same
    peers at 70% into the request stream — the wave peers are disjoint
    from the client source pool, and the network ends the cell fully
    revived.
    """
    net = bundle.chord if stack == "chord" else bundle.hieras
    n_peers = int(net.n_peers)
    store = ReplicatedStore(
        net, ReplicationPolicy(replicas=2, consistency="quorum", placement="successor")
    )
    for name in catalog_names(mix):
        store.seed_key(name, "v0")

    if schedule_kind == "flash":
        sched = flash_crowd(
            rate_per_s,
            duration_ms,
            spike_at_ms=0.3 * duration_ms,
            spike_duration_ms=0.2 * duration_ms,
            spike_factor=FLASH_FACTOR,
        )
    else:
        sched = constant_rate(rate_per_s, duration_ms)

    # Clients issue from the low half of the id range; churn waves take
    # peers from the high half so a departed client never "fails" a get.
    pool_size = n_peers // 2 if membership else n_peers
    pool = np.arange(pool_size, dtype=np.int64)
    requests = generate(mix, sched.arrival_times(seed), pool, seed=seed + 1)

    if membership:
        from repro.util.rng import make_rng

        wave_rng = make_rng(seed + 2)
        n_wave = max(1, int(round(CHURN_FRACTION * n_peers)))
        wave = tuple(
            sorted(
                int(p)
                for p in wave_rng.choice(
                    np.arange(pool_size, n_peers), size=n_wave, replace=False
                )
            )
        )
        requests = sorted(
            requests
            + [
                Request(op="leave", at_ms=0.3 * duration_ms, peers=wave),
                Request(op="join", at_ms=0.7 * duration_ms, peers=wave),
            ],
            key=lambda r: r.at_ms,
        )
        net.attach_store(store)

    try:
        result = DHTService(net, config=service, store=store).run(requests)
    finally:
        if membership:
            net.detach_store(store)

    report = SLOReport.from_result(
        result, offered_per_s=rate_per_s, duration_ms=duration_ms
    )
    cell = report.as_dict()
    if membership:
        reg = result.registry
        cell["leave_peers"] = reg.counters["serve.leave.peers"].value
        cell["join_peers"] = reg.counters["serve.join.peers"].value
    return cell


def run_bench_serve(
    *,
    full: bool = False,
    seed: int = 42,
    n_peers: int | None = None,
    duration_ms: float | None = None,
    rates: tuple[float, ...] = SWEEP_RATES,
) -> dict[str, object]:
    """Run the saturation study once; returns the BENCH document.

    Per stack: the offered-load sweep (batched dispatch), the derived
    knee, the flash-crowd admission pair, the coalescing pair at the
    overload rate, and the churn cell.  Membership cells run last so
    the shared bundle's networks are never mid-churn for another cell.
    """
    if n_peers is None:
        n_peers = 2000 if full else 400
    if duration_ms is None:
        duration_ms = 10_000.0 if full else 5_000.0
    mix = WorkloadMix(catalog_size=512 if full else 128)
    batched = ServiceConfig()
    scalar = ServiceConfig(max_batch=1)

    phases: dict[str, dict[str, float]] = {}

    def timed(name: str):
        class _Phase:
            def __enter__(self_inner):
                self_inner.t0 = time.perf_counter()  # lint: allow-wallclock -- phase timing; lands in the nondeterministic "phases" key
                return self_inner

            def __exit__(self_inner, *exc):
                phases[name] = {
                    "wall_ms": (time.perf_counter() - self_inner.t0) * 1000.0  # lint: allow-wallclock -- phase timing; lands in the nondeterministic "phases" key
                }
                return False

        return _Phase()

    with timed("build"):
        bundle = build_bundle(
            SimConfig(model="ts", n_peers=n_peers, n_landmarks=4, depth=2, seed=seed)
        )

    sweep: list[dict[str, Any]] = []
    knee: dict[str, dict[str, float]] = {}
    for stack in ("chord", "hieras"):
        with timed(f"{stack}_sweep"):
            for rate in rates:
                cell = run_serve_cell(
                    bundle,
                    stack=stack,
                    rate_per_s=rate,
                    duration_ms=duration_ms,
                    mix=mix,
                    service=batched,
                    seed=seed,
                )
                sweep.append({"stack": stack, **cell})
        rows = [c for c in sweep if c["stack"] == stack]
        saturated = [
            c["offered_per_s"]
            for c in rows
            if c["achieved_per_s"] < 0.95 * c["offered_per_s"]
        ]
        knee[stack] = {
            "achieved_max_per_s": max(c["achieved_per_s"] for c in rows),
            "first_saturated_rate_per_s": min(saturated) if saturated else float("inf"),
            "model_capacity_per_s": mixed_capacity_per_s(batched, mix.read_fraction),
            "model_scalar_capacity_per_s": mixed_capacity_per_s(
                batched, mix.read_fraction, coalesced=False
            ),
        }

    flash: dict[str, dict[str, Any]] = {}
    with timed("flash_pairs"):
        for stack in ("chord", "hieras"):
            pair: dict[str, Any] = {}
            for label, limit in (("unbounded", None), ("bounded", FLASH_QUEUE_LIMIT)):
                pair[label] = run_serve_cell(
                    bundle,
                    stack=stack,
                    rate_per_s=FLASH_BASE,
                    duration_ms=duration_ms,
                    mix=mix,
                    service=ServiceConfig(queue_limit=limit),
                    seed=seed,
                    schedule_kind="flash",
                )
            flash[stack] = pair

    coalescing: dict[str, dict[str, Any]] = {}
    with timed("coalescing_pairs"):
        for stack in ("chord", "hieras"):
            batched_cell = next(
                c
                for c in sweep
                if c["stack"] == stack and c["offered_per_s"] == COALESCE_RATE
            )
            coalescing[stack] = {
                "batched": {k: v for k, v in batched_cell.items() if k != "stack"},
                "scalar": run_serve_cell(
                    bundle,
                    stack=stack,
                    rate_per_s=COALESCE_RATE,
                    duration_ms=duration_ms,
                    mix=mix,
                    service=scalar,
                    seed=seed,
                ),
            }

    churn: dict[str, Any] = {}
    with timed("churn_cells"):
        for stack in ("chord", "hieras"):
            churn[stack] = run_serve_cell(
                bundle,
                stack=stack,
                rate_per_s=FLASH_BASE,
                duration_ms=duration_ms,
                mix=mix,
                service=batched,
                seed=seed,
                membership=True,
            )

    headline: dict[str, object] = {
        "knee_shift": {
            stack: {
                "scalar_achieved_per_s": coalescing[stack]["scalar"]["achieved_per_s"],
                "batched_achieved_per_s": coalescing[stack]["batched"]["achieved_per_s"],
                "offered_per_s": COALESCE_RATE,
            }
            for stack in ("chord", "hieras")
        },
        "admission": {
            stack: {
                "unbounded_queue_p99_ms": flash[stack]["unbounded"]["phases"]["queue_wait"]["p99"],
                "bounded_queue_p99_ms": flash[stack]["bounded"]["phases"]["queue_wait"]["p99"],
                "unbounded_total_p99_ms": flash[stack]["unbounded"]["phases"]["total"]["p99"],
                "bounded_total_p99_ms": flash[stack]["bounded"]["phases"]["total"]["p99"],
                "rejected": flash[stack]["bounded"]["rejected"],
                "bounded_goodput": flash[stack]["bounded"]["goodput_fraction"],
            }
            for stack in ("chord", "hieras")
        },
        "knee": knee,
    }

    phases["peak_rss"] = {"peak_rss_mb": peak_rss_mb()}
    return {
        "schema": SCHEMA,
        "config": {
            "full": full,
            "seed": seed,
            "n_peers": n_peers,
            "duration_ms": duration_ms,
            "rates": list(rates),
            "coalesce_rate": COALESCE_RATE,
            "flash_base_per_s": FLASH_BASE,
            "flash_factor": FLASH_FACTOR,
            "flash_queue_limit": FLASH_QUEUE_LIMIT,
            "churn_fraction": CHURN_FRACTION,
            "mix": {
                "read_fraction": mix.read_fraction,
                "catalog_size": mix.catalog_size,
                "zipf_exponent": mix.zipf_exponent,
            },
            "service": {
                "workers": batched.workers,
                "max_batch": batched.max_batch,
                "dispatch_overhead_ms": batched.dispatch_overhead_ms,
                "per_lookup_ms": batched.per_lookup_ms,
                "per_write_ms": batched.per_write_ms,
                "per_membership_ms": batched.per_membership_ms,
            },
        },
        "phases": phases,
        "metrics": {
            "sweep": sweep,
            "flash": flash,
            "coalescing": coalescing,
            "churn": churn,
            "headline": headline,
        },
    }


def write_bench_serve(doc: dict[str, object], out: str | Path) -> Path:
    """Write one BENCH_serve document as stable, indented JSON."""
    path = Path(out)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path
