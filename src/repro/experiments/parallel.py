"""Parallel sweep execution across processes.

Sweeps are embarrassingly parallel — every grid cell builds its own
simulation — so on multi-core machines they should use
:class:`multiprocessing.Pool`.  Each worker process evaluates whole
cells (build + route + measure) and returns only the tidy result row,
so nothing large crosses the process boundary and the substrate caches
stay worker-local.

Determinism is preserved: a cell's result depends only on its config,
never on which worker ran it or in which order, so parallel and serial
sweeps produce identical rows (a test asserts this).
"""

from __future__ import annotations

import multiprocessing as mp
from collections.abc import Callable

from repro.experiments.sweep import SweepSpec, _evaluate
from repro.util.validation import require

__all__ = ["run_sweep_parallel"]


def _evaluate_cell(args: tuple) -> dict[str, object] | None:
    """Worker entry point (module-level for picklability)."""
    config, n_requests = args
    try:
        return _evaluate(config, n_requests)
    except ValueError:
        return None  # invalid cell (e.g. Inet size floor): skip


def run_sweep_parallel(
    spec: SweepSpec,
    *,
    workers: int | None = None,
    progress: Callable[[str], None] | None = None,
) -> list[dict[str, object]]:
    """Evaluate the sweep grid across ``workers`` processes.

    ``workers=None`` uses ``min(cpu_count, n_cells)``; ``workers=1``
    degenerates to an in-process loop (no pool spawned), which keeps
    debugging and coverage simple.
    """
    cells = [(config, spec.n_requests) for config in spec.configs()]
    if workers is None:
        workers = min(mp.cpu_count(), len(cells))
    require(workers >= 1, "workers must be >= 1")

    if workers == 1:
        results = [_evaluate_cell(cell) for cell in cells]
    else:
        # 'spawn' keeps workers free of inherited state (fork would copy
        # the parent's substrate caches — wasted memory, and unsafe if
        # the parent ever holds non-fork-safe resources).
        ctx = mp.get_context("spawn")
        with ctx.Pool(processes=workers) as pool:
            results = pool.map(_evaluate_cell, cells)

    rows: list[dict[str, object]] = []
    for (config, _), row in zip(cells, results):
        if row is None:
            if progress:
                progress(f"skip {config.model}/{config.n_peers}")
            continue
        rows.append(row)
        if progress:
            progress(
                f"{config.model} n={config.n_peers} L={config.n_landmarks} "
                f"d={config.depth} seed={config.seed}: "
                f"ratio={row['latency_ratio_pct']}%"
            )
    return rows
