"""Perf-baseline pipeline: wall-time per phase + deterministic metrics.

One run builds a deployment, routes a seeded trace through both
trace-driven stacks with span collection on, and drives a small
protocol-stack smoke on the discrete-event engine with a registry
attached — producing a single JSON document (``BENCH_baseline.json``)
with two clearly separated sections:

* ``phases`` — wall-clock milliseconds per pipeline phase, measured
  with :func:`time.perf_counter`.  **Nondeterministic** (machine- and
  load-dependent); useful for spotting order-of-magnitude regressions.
* ``metrics`` — hop/latency aggregates and simulator/protocol counters.
  **Deterministic**: re-running the same seed reproduces this section
  bit-for-bit, which is what the regression check in
  ``tests/test_perf_baseline.py`` pins.

The CLI front-end is ``python -m repro.experiments perf-baseline``;
the pytest benchmark (``benchmarks/bench_baseline.py``) dispatches
through the registered ``perf_baseline`` experiment.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.experiments.config import SimConfig
from repro.experiments.runner import build_bundle, make_trace
from repro.metrics.registry import MetricsRegistry
from repro.metrics.sinks import SummarySink
from repro.metrics.spans import SpanRecorder
from repro.util.proc import peak_rss_mb

__all__ = ["run_perf_baseline", "write_baseline", "SCHEMA"]

SCHEMA = "repro.perf_baseline/1"


def _traced_routes(network, trace, *, engine: str = "batch") -> dict[str, object]:
    """Route the whole trace with spans on; returns the aggregate block.

    With ``engine="batch"`` the trace is routed untraced through the
    vectorized engine (with materialized paths), then every lane's span
    is replayed through the network's own ``record_route`` — the spans,
    and therefore this summary block, are byte-identical to the scalar
    per-request loop (pinned by ``tests/test_engine.py``).
    """
    from repro.engine import batch_route, replay_spans, supports_batch

    sink = SummarySink()
    recorder = SpanRecorder(registry=MetricsRegistry(), sinks=[sink])
    label = "chord" if type(network).__name__.startswith("Chord") else "hieras"
    if engine == "batch" and supports_batch(network):
        result = batch_route(network, trace.sources, trace.keys, paths=True)
        network.enable_tracing(recorder)
        try:
            replay_spans(network, result, label=label)
        finally:
            network.disable_tracing()
        return sink.summary(label)
    network.enable_tracing(recorder)
    try:
        for source, key in trace:
            network.route(int(source), int(key))
    finally:
        network.disable_tracing()
    return sink.summary(label)


def _protocol_smoke(seed: int, *, universe: int = 16, n_rings: int = 2,
                    n_lookups: int = 24) -> dict[str, object]:
    """Bootstrap a small §3.3 system and run lookups with metrics attached.

    Returns the registry snapshot (sim.* and protocol.* counters) plus
    a completion count — all deterministic given ``seed`` because the
    event engine is single-threaded and tie-stable.
    """
    from repro.core.hieras_protocol import HierasProtocolNode
    from repro.dht.base import ZeroLatency
    from repro.sim.engine import Simulator
    from repro.sim.network import SimNetwork
    from repro.util.ids import IdSpace
    from repro.util.rng import make_rng

    space = IdSpace(16)
    rng = make_rng(seed)
    ids = space.sample_unique_ids(universe, rng)
    names = [[str(p % n_rings)] for p in range(universe)]
    registry = MetricsRegistry()
    sim = Simulator()
    sim.attach_metrics(registry)
    net = SimNetwork(sim, ZeroLatency(), loss_seed=seed)
    net.attach_metrics(registry)
    nodes = [
        HierasProtocolNode(p, int(ids[p]), space, sim, net) for p in range(universe)
    ]
    nodes[0].found_system(names[0], landmark_table=[1, 2])
    t = 0.0
    for p in range(1, universe):
        t += 300.0
        sim.schedule_at(t, nodes[p].join_system, 0, names[p])
    sim.run(until=t + 30_000, max_events=10_000_000)

    completed = []
    for i in range(n_lookups):
        origin = nodes[int(rng.integers(0, universe))]
        key = int(rng.integers(0, space.size))
        sim.schedule(
            float(i), origin.hieras_lookup, key, lambda o: completed.append(o)
        )
    sim.run(until=sim.now + 30_000, max_events=10_000_000)

    snapshot = registry.snapshot()
    return {
        "lookups_issued": n_lookups,
        "lookups_completed": len(completed),
        "counters": snapshot["counters"],
        "gauges": {k: v for k, v in snapshot["gauges"].items() if k != "sim.queue_depth"},
        "histograms": {
            name: registry.histogram(name).summary()
            for name in sorted(snapshot["histograms"])
        },
    }


def run_perf_baseline(
    *,
    full: bool = False,
    seed: int = 42,
    n_peers: int | None = None,
    n_requests: int | None = None,
    engine: str = "batch",
) -> dict[str, object]:
    """Run every phase once; returns the BENCH_baseline document.

    ``engine`` selects the routing engine for the traced-route phases;
    the ``metrics`` section is byte-identical between ``"batch"`` and
    ``"scalar"`` (the batch engine replays identical spans), so only
    the nondeterministic ``phases`` wall times differ.
    """
    if n_peers is None:
        n_peers = 3000 if full else 1000
    if n_requests is None:
        n_requests = 12_000 if full else 3_000

    phases: dict[str, dict[str, float]] = {}

    def timed(name: str):
        class _Phase:
            def __enter__(self_inner):
                self_inner.t0 = time.perf_counter()  # lint: allow-wallclock -- phase timing; lands in the nondeterministic "phases" key
                return self_inner

            def __exit__(self_inner, *exc):
                phases[name] = {
                    "wall_ms": (time.perf_counter() - self_inner.t0) * 1000.0  # lint: allow-wallclock -- phase timing; lands in the nondeterministic "phases" key
                }
                return False

        return _Phase()

    with timed("build"):
        bundle = build_bundle(SimConfig(n_peers=n_peers, seed=seed))
    with timed("trace"):
        trace = make_trace(bundle, n_requests)
    with timed("chord_routes"):
        chord_metrics = _traced_routes(bundle.chord, trace, engine=engine)
    with timed("hieras_routes"):
        hieras_metrics = _traced_routes(bundle.hieras, trace, engine=engine)
    with timed("protocol_smoke"):
        protocol_metrics = _protocol_smoke(seed)

    phases["peak_rss"] = {"peak_rss_mb": peak_rss_mb()}
    return {
        "schema": SCHEMA,
        "config": {
            "full": full,
            "seed": seed,
            "n_peers": n_peers,
            "n_requests": n_requests,
            "depth": bundle.config.depth,
            "model": bundle.config.model,
            "engine": engine,
        },
        "phases": phases,
        "metrics": {
            "chord": chord_metrics,
            "hieras": hieras_metrics,
            "protocol": protocol_metrics,
        },
    }


def write_baseline(doc: dict[str, object], out: str | Path) -> Path:
    """Write one baseline document as stable, indented JSON."""
    path = Path(out)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path
