"""Experiment harness: one registered experiment per paper artifact.

Every table and figure of the paper's evaluation (§4) has a runnable
experiment here, plus the ablations DESIGN.md calls out:

========  ===========================================================
id        paper artifact
========  ===========================================================
table1    Table 1 — landmark orders of the 6 sample nodes
table2    Table 2 — two-layer finger tables of one node
fig2      Figure 2 — average routing hops vs network size
fig3      Figure 3 — average routing latency vs size (TS/Inet/BRITE)
fig4      Figure 4 — PDF of routing hops at 10000 nodes
fig5      Figure 5 — CDF of routing latency at 10000 nodes
fig6      Figure 6 — hops vs number of landmarks
fig7      Figure 7 — latency vs number of landmarks
fig8      Figure 8 — hops vs hierarchy depth
fig9      Figure 9 — latency vs hierarchy depth
========  ===========================================================

Run them with ``python -m repro.experiments run <id>`` (add ``--full``
or set ``REPRO_FULL=1`` for paper-scale parameters) or through the
pytest benchmarks in ``benchmarks/``.
"""

from repro.experiments.config import SimConfig, is_full_scale
from repro.experiments.figures import EXPERIMENTS, ExperimentResult, get_experiment
from repro.experiments.runner import SimulationBundle, build_bundle, clear_cache, run_pair

__all__ = [
    "SimConfig",
    "is_full_scale",
    "SimulationBundle",
    "build_bundle",
    "run_pair",
    "clear_cache",
    "EXPERIMENTS",
    "ExperimentResult",
    "get_experiment",
]
