"""The resilience experiment: quantifying the paper's §3.3 argument.

The paper argues qualitatively that HIERAS tolerates failures as cheaply
as flat Chord because every node keeps a successor list per layer.  This
experiment makes the claim quantitative on both execution stacks:

* **Static sweep** — one :class:`~repro.faults.plan.FaultPlan` per cell
  crashes a fraction of peers mid-trace (and optionally runs a
  message-loss burst) while `route_lossy` lookups continue over the now
  *stale* ring snapshots, paying timeout penalties for every dead finger
  they trip over.  Reported per cell and per network: lookup success
  rate, mean hops, timeout count, and latency including retry penalties.
* **Protocol scenario** — the *same* plan drives the discrete-event
  stack: crashes call ``SimNode.fail`` mid-run, loss bursts raise the
  network's drop probability, and failure-aware lookups (originator
  watchdog + re-issue) must still resolve to correct live owners once
  stabilization routes around the damage.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.runner import SimulationBundle, make_trace
from repro.faults import FaultInjector, FaultPlan, RetryPolicy
from repro.util.rng import make_rng

__all__ = ["run_static_resilience_cell", "run_protocol_resilience"]


def run_static_resilience_cell(
    bundle: SimulationBundle,
    *,
    fail_fraction: float,
    loss_rate: float,
    n_requests: int,
    seed: int,
    policy: RetryPolicy | None = None,
) -> dict[str, dict[str, float]]:
    """One sweep cell: HIERAS vs Chord under one fault plan.

    The plan crashes ``fail_fraction`` of peers halfway through the
    request trace (each request advances the fault clock by 1 ms) and,
    when ``loss_rate > 0``, keeps an ambient loss burst active for the
    whole run.  Both networks replay the identical trace under
    identical fault schedules — same dead set, same loss conditions —
    so the comparison isolates the routing structure.

    Returns ``{"chord": {...}, "hieras": {...}}`` metric dicts.
    """
    n_peers = bundle.hieras.n_peers
    trace = make_trace(bundle, n_requests)
    plan = FaultPlan(seed=seed)
    if fail_fraction > 0.0:
        plan.crash_fraction(at_ms=n_requests / 2.0, fraction=fail_fraction)
    if loss_rate > 0.0:
        plan.loss_burst(at_ms=0.0, rate=loss_rate, duration_ms=float(n_requests + 1))
    policy = policy if policy is not None else RetryPolicy()

    out: dict[str, dict[str, float]] = {}
    for name, net in (("chord", bundle.chord), ("hieras", bundle.hieras)):
        injector = FaultInjector(plan, n_peers, policy=policy)
        attempted = succeeded = timeouts = 0
        skipped_dead_source = 0
        total_ms = 0.0
        hops_ok: list[int] = []
        for i, (src, key) in enumerate(trace):
            injector.advance_to(float(i))
            src, key = int(src), int(key)
            if injector.state.is_dead(src):
                skipped_dead_source += 1  # a dead peer originates nothing
                continue
            result = net.route_lossy(src, key, injector=injector)
            attempted += 1
            timeouts += result.timeouts
            total_ms += result.total_latency_ms
            if result.success:
                succeeded += 1
                hops_ok.append(result.hops)
        out[name] = {
            "attempted": float(attempted),
            "skipped_dead_source": float(skipped_dead_source),
            "success_rate": succeeded / attempted if attempted else 0.0,
            "mean_hops": float(np.mean(hops_ok)) if hops_ok else 0.0,
            "timeouts_per_lookup": timeouts / attempted if attempted else 0.0,
            "mean_total_latency_ms": total_ms / attempted if attempted else 0.0,
        }
    return out


def run_protocol_resilience(
    *,
    universe: int = 24,
    n_rings: int = 3,
    fail_fraction: float = 0.2,
    loss_rate: float = 0.05,
    loss_duration_ms: float = 10_000.0,
    n_lookups: int = 80,
    retries: int = 2,
    seed: int = 7,
) -> dict[str, float]:
    """Drive the protocol stack through a :class:`FaultPlan`.

    Bootstraps a full HIERAS system, installs a plan that crashes
    ``fail_fraction`` of the population 5 s in (plus a loss burst from
    t=0), lets stabilization react, then issues failure-aware lookups
    (``retries`` re-issues under an originator watchdog) and checks
    them against the surviving membership.

    Returns counters: ``completed``/``correct``/``failed`` lookups,
    ``retries_used``, ``crashed``, ``live``, plus the network's message
    stats.
    """
    from repro.core.hieras_protocol import HierasProtocolNode
    from repro.dht.base import ZeroLatency
    from repro.sim.engine import Simulator
    from repro.sim.network import SimNetwork
    from repro.util.ids import IdSpace

    space = IdSpace(16)
    rng = make_rng(seed)
    ids = space.sample_unique_ids(universe, rng)
    names = [[str(p % n_rings)] for p in range(universe)]
    sim = Simulator()
    net = SimNetwork(sim, ZeroLatency(), loss_seed=seed)
    nodes = [
        HierasProtocolNode(p, int(ids[p]), space, sim, net) for p in range(universe)
    ]

    nodes[0].found_system(names[0], landmark_table=[1, 2])
    t = 0.0
    for p in range(1, universe):
        t += 300.0
        sim.schedule_at(t, nodes[p].join_system, 0, names[p])
    sim.run(until=t + 30_000, max_events=10_000_000)

    plan = (
        FaultPlan(seed=seed + 1)
        .loss_burst(at_ms=0.0, rate=loss_rate, duration_ms=loss_duration_ms)
        .crash_fraction(at_ms=5_000.0, fraction=fail_fraction)
    )
    injector = FaultInjector(plan, universe)
    injector.install_sim(sim, net)
    # Let the crashes land and stabilization route around them.
    sim.run(until=sim.now + 35_000, max_events=40_000_000)

    live = sorted(
        p
        for p in range(universe)
        if nodes[p].alive and not injector.state.is_dead(p) and "global" in nodes[p].rings
    )
    live_ids = np.sort([int(ids[p]) for p in live])
    results = []
    failures: list[int] = []
    for _ in range(n_lookups):
        nodes[int(rng.choice(live))].hieras_lookup(
            int(rng.integers(0, space.size)),
            results.append,
            retries=retries,
            on_fail=failures.append,
        )
    sim.run(until=sim.now + 120_000, max_events=50_000_000)

    correct = sum(
        1
        for out in results
        if out.owner_id == int(live_ids[np.searchsorted(live_ids, out.key) % len(live)])
    )
    return {
        "completed": float(len(results)),
        "correct": float(correct),
        "failed": float(len(failures)),
        "retries_used": float(sum(n.lookup_retry_count for n in nodes)),
        "crashed": float(int(injector.state.dead.sum())),
        "live": float(len(live)),
        "messages": float(net.messages_sent),
        "messages_lost": float(net.messages_lost),
    }
