"""The cache-effect experiment: Zipf workloads against ``repro.cache``.

File-sharing traffic — the workload the paper's introduction motivates
HIERAS with — is heavily skewed: a few hot files draw most requests.
This module quantifies what CFS-style path caching (DESIGN.md §9) buys
on such a workload, over both trace-driven stacks:

* **hop/latency reduction** — mean hops and mean total latency of a
  cached run vs the *same trace* through a ``capacity=0`` pass-through
  (identical accounting, no cache), swept over Zipf exponent × cache
  capacity;
* **hotspot mitigation** — the owner-load-concentration metric
  (max/mean requests served per node): without caching the hot keys'
  owners serve almost everything, with caching the load spreads across
  path-cache holders;
* **staleness under churn** — cells with a mid-trace crash fraction run
  ``route_cached_lossy`` under a :class:`~repro.faults.FaultInjector`,
  so cached-but-crashed owners must be detected, evicted and routed
  around.

The pipeline mirrors ``repro.experiments.baseline``: one JSON document
(``BENCH_cache.json``) with a nondeterministic ``phases`` section (wall
times) and a deterministic ``metrics`` section — re-running the same
seed reproduces ``metrics`` byte-for-byte.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.cache import CachedNetwork, CachePolicy
from repro.engine import batch_route, supports_batch
from repro.experiments.config import SimConfig
from repro.experiments.runner import SimulationBundle, build_bundle
from repro.faults import FaultInjector, FaultPlan
from repro.util.rng import RngFactory
from repro.workloads.requests import RequestTrace, generate_requests
from repro.util.proc import peak_rss_mb

__all__ = [
    "SCHEMA",
    "make_zipf_trace",
    "run_cache_cell",
    "run_bench_cache",
    "write_bench_cache",
]

SCHEMA = "repro.bench_cache/1"

#: The "realistic capacity" headline cell (acceptance gate): CFS uses
#: caches orders of magnitude smaller than the catalogue.
HEADLINE_EXPONENT = 0.95
HEADLINE_CAPACITY = 64


def make_zipf_trace(
    bundle: SimulationBundle,
    n_requests: int,
    *,
    catalog_size: int,
    zipf_exponent: float,
) -> RequestTrace:
    """A skewed request trace over a hashed file catalogue.

    Seeded from the bundle's master seed (stream ``cache-requests``),
    so every cell that shares (seed, n_requests, catalogue, exponent)
    replays the identical trace.
    """
    rngs = RngFactory(bundle.config.seed)
    return generate_requests(
        n_requests,
        bundle.config.n_peers,
        bundle.space,
        seed=rngs.get("cache-requests"),
        key_dist="zipf",
        catalog_size=catalog_size,
        zipf_exponent=zipf_exponent,
    )


def run_cache_cell(
    bundle: SimulationBundle,
    trace: RequestTrace,
    *,
    stack: str,
    policy: CachePolicy,
    churn_fraction: float = 0.0,
    seed: int = 0,
    engine: str = "batch",
) -> dict[str, float]:
    """Replay one trace through one cached stack; returns cell metrics.

    ``stack`` selects the inner network (``"chord"`` / ``"hieras"``).
    A fresh :class:`CachedNetwork` is built per cell, so cells are
    independent; each request advances the cache clock (and, under
    churn, the fault clock) by 1 ms.  ``churn_fraction > 0`` crashes
    that fraction of peers halfway through the trace and switches the
    loop to ``route_cached_lossy`` — cached entries pointing at crashed
    owners are then evicted on failed contact and lookups fall back to
    failure-aware routing.

    ``engine="batch"`` accelerates only the uncached baselines
    (``capacity=0``, no churn): with no cache state every lookup is an
    independent miss, so the cell reduces to one vectorized
    :func:`~repro.engine.batch_route` call plus the same accounting.
    Cells with an actual cache (or churn) stay on the scalar loop —
    their per-request cache/fault state is inherently sequential.
    """
    inner = bundle.chord if stack == "chord" else bundle.hieras
    net = CachedNetwork(inner, policy)
    if (
        engine == "batch"
        and policy.capacity == 0
        and churn_fraction == 0.0
        and supports_batch(inner)
    ):
        return _run_uncached_cell_batch(net, trace)
    n_requests = len(trace)
    injector: FaultInjector | None = None
    if churn_fraction > 0.0:
        plan = FaultPlan(seed=seed).crash_fraction(
            at_ms=n_requests / 2.0, fraction=churn_fraction
        )
        injector = FaultInjector(plan, inner.n_peers)
    attempted = succeeded = 0
    skipped_dead_source = 0
    total_hops = 0
    total_ms = total_link_ms = 0.0
    timeouts = 0
    for i, (src, key) in enumerate(trace):
        t = float(i)
        net.advance_to(t)
        src, key = int(src), int(key)
        if injector is None:
            result = net.route_cached(src, key)
        else:
            injector.advance_to(t)
            if injector.state.is_dead(src):
                skipped_dead_source += 1  # a dead peer originates nothing
                continue
            result = net.route_cached_lossy(src, key, injector=injector)
        attempted += 1
        timeouts += result.timeouts
        total_ms += result.total_latency_ms
        if result.success:
            succeeded += 1
            total_hops += result.hops
            total_link_ms += result.latency_ms
    load = net.load_summary()
    return {
        "attempted": float(attempted),
        "skipped_dead_source": float(skipped_dead_source),
        "success_rate": succeeded / attempted if attempted else 0.0,
        "mean_hops": total_hops / succeeded if succeeded else 0.0,
        "mean_link_latency_ms": total_link_ms / succeeded if succeeded else 0.0,
        "mean_total_latency_ms": total_ms / attempted if attempted else 0.0,
        "timeouts_per_lookup": timeouts / attempted if attempted else 0.0,
        **{f"cache_{k}": v for k, v in net.stats.as_dict().items()},
        **{f"load_{k}": v for k, v in load.items()},
    }


def _run_uncached_cell_batch(
    net: CachedNetwork, trace: RequestTrace
) -> dict[str, float]:
    """The ``capacity=0`` fault-free cell through the batch engine.

    With capacity 0 every ``route_cached`` call is a miss over the inner
    network and nothing is ever inserted, so the scalar loop's per-cell
    metrics collapse to pure functions of the batch result.  The float
    accumulations replay the scalar loop's left-to-right ``+=`` order so
    the returned dict is bit-identical (pinned by ``tests/test_engine.py``).
    """
    result = batch_route(net.inner, trace.sources, trace.keys)
    n = len(trace)
    total_hops = int(result.hops.sum())
    total_link_ms = 0.0
    for lat in result.latency_ms.tolist():
        total_link_ms += lat
    # total_latency_ms adds a zero retry term per request; x + 0.0 == x
    # for the non-negative link latencies, so the sum is the same value.
    net.stats.lookups = n
    net.stats.misses = n
    served = np.bincount(result.owner)
    for peer in np.flatnonzero(served).tolist():
        net._served[int(peer)] = int(served[peer])
    load = net.load_summary()
    return {
        "attempted": float(n),
        "skipped_dead_source": 0.0,
        "success_rate": n / n if n else 0.0,
        "mean_hops": total_hops / n if n else 0.0,
        "mean_link_latency_ms": total_link_ms / n if n else 0.0,
        "mean_total_latency_ms": total_link_ms / n if n else 0.0,
        "timeouts_per_lookup": 0 / n if n else 0.0,
        **{f"cache_{k}": v for k, v in net.stats.as_dict().items()},
        **{f"load_{k}": v for k, v in load.items()},
    }


def _reduction(base: dict[str, float], cell: dict[str, float], key: str) -> float:
    """Percent reduction of ``key`` vs the uncached baseline cell."""
    if not base[key]:
        return 0.0
    return 100.0 * (base[key] - cell[key]) / base[key]


def run_bench_cache(
    *,
    full: bool = False,
    seed: int = 42,
    n_peers: int | None = None,
    n_requests: int | None = None,
    catalog_size: int | None = None,
    capacities: tuple[int, ...] = (4, 16, 64),
    exponents: tuple[float, ...] = (0.7, 0.95, 1.2),
    churn_fraction: float = 0.15,
    engine: str = "batch",
) -> dict[str, object]:
    """Run the full sweep once; returns the BENCH_cache document.

    Sweep shape (per stack): every exponent × capacity fault-free, plus
    — at the headline exponent — the churn cells and one TTL+LRU cell.
    Each (exponent, stack) group carries its own ``capacity=0`` baseline
    replaying the identical trace, so reductions are paired.  ``engine``
    selects the routing engine for the uncached baselines (see
    :func:`run_cache_cell`); the ``metrics`` section is bit-identical
    either way.
    """
    if n_peers is None:
        n_peers = 4000 if full else 1000
    if n_requests is None:
        n_requests = 20_000 if full else 6_000
    if catalog_size is None:
        catalog_size = 10_000 if full else 2_000

    phases: dict[str, dict[str, float]] = {}

    def timed(name: str):
        class _Phase:
            def __enter__(self_inner):
                self_inner.t0 = time.perf_counter()  # lint: allow-wallclock -- phase timing; lands in the nondeterministic "phases" key
                return self_inner

            def __exit__(self_inner, *exc):
                phases[name] = {
                    "wall_ms": (time.perf_counter() - self_inner.t0) * 1000.0  # lint: allow-wallclock -- phase timing; lands in the nondeterministic "phases" key
                }
                return False

        return _Phase()

    with timed("build"):
        bundle = build_bundle(
            SimConfig(model="ts", n_peers=n_peers, n_landmarks=4, depth=2, seed=seed)
        )

    cells: list[dict[str, object]] = []
    headline: dict[str, dict[str, float]] = {}

    def cell_row(
        stack: str,
        exponent: float,
        policy: CachePolicy,
        metrics: dict[str, float],
        *,
        churn: float = 0.0,
    ) -> dict[str, object]:
        return {
            "stack": stack,
            "zipf_exponent": exponent,
            "capacity": policy.capacity,
            "eviction": policy.eviction,
            "cache_values": policy.cache_values,
            "churn_fraction": churn,
            **metrics,
        }

    for stack in ("chord", "hieras"):
        with timed(f"{stack}_sweep"):
            for exponent in exponents:
                trace = make_zipf_trace(
                    bundle, n_requests,
                    catalog_size=catalog_size, zipf_exponent=exponent,
                )
                off = CachePolicy(capacity=0)
                base = run_cache_cell(
                    bundle, trace, stack=stack, policy=off, engine=engine
                )
                cells.append(cell_row(stack, exponent, off, base))
                for capacity in capacities:
                    policy = CachePolicy(capacity=capacity)
                    cell = run_cache_cell(bundle, trace, stack=stack, policy=policy)
                    row = cell_row(stack, exponent, policy, cell)
                    row["hop_reduction_percent"] = _reduction(base, cell, "mean_hops")
                    row["latency_reduction_percent"] = _reduction(
                        base, cell, "mean_total_latency_ms"
                    )
                    cells.append(row)
                    if (
                        exponent == HEADLINE_EXPONENT
                        and capacity == HEADLINE_CAPACITY
                    ):
                        headline[stack] = {
                            "hop_reduction_percent": float(
                                row["hop_reduction_percent"]
                            ),
                            "latency_reduction_percent": float(
                                row["latency_reduction_percent"]
                            ),
                            "hit_rate": cell["cache_hit_rate"],
                            "uncached_concentration": base["load_concentration"],
                            "cached_concentration": cell["load_concentration"],
                            "uncached_max_served": base["load_max_served"],
                            "cached_max_served": cell["load_max_served"],
                        }
        with timed(f"{stack}_churn"):
            # Shortcut-only caching (cache_values=False): every hit must
            # *contact* the cached owner, so crashed owners are detected,
            # evicted and routed around — the staleness story, measured.
            trace = make_zipf_trace(
                bundle, n_requests,
                catalog_size=catalog_size, zipf_exponent=HEADLINE_EXPONENT,
            )
            for capacity in (0, HEADLINE_CAPACITY):
                policy = CachePolicy(capacity=capacity, cache_values=False)
                cell = run_cache_cell(
                    bundle, trace, stack=stack, policy=policy,
                    churn_fraction=churn_fraction, seed=seed,
                )
                cells.append(
                    cell_row(
                        stack, HEADLINE_EXPONENT, policy, cell, churn=churn_fraction
                    )
                )
            # One TTL+LRU cell: entries age out, bounding staleness.
            ttl_policy = CachePolicy(
                capacity=HEADLINE_CAPACITY, eviction="ttl-lru",
                ttl_ms=n_requests / 8.0, cache_values=False,
            )
            cell = run_cache_cell(
                bundle, trace, stack=stack, policy=ttl_policy,
                churn_fraction=churn_fraction, seed=seed,
            )
            cells.append(
                cell_row(
                    stack, HEADLINE_EXPONENT, ttl_policy, cell, churn=churn_fraction
                )
            )

    phases["peak_rss"] = {"peak_rss_mb": peak_rss_mb()}
    return {
        "schema": SCHEMA,
        "config": {
            "full": full,
            "seed": seed,
            "n_peers": n_peers,
            "n_requests": n_requests,
            "catalog_size": catalog_size,
            "capacities": list(capacities),
            "exponents": list(exponents),
            "churn_fraction": churn_fraction,
            "headline_exponent": HEADLINE_EXPONENT,
            "headline_capacity": HEADLINE_CAPACITY,
            "engine": engine,
        },
        "phases": phases,
        "metrics": {"cells": cells, "headline": headline},
    }


def write_bench_cache(doc: dict[str, object], out: str | Path) -> Path:
    """Write one BENCH_cache document as stable, indented JSON."""
    path = Path(out)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path
