"""The scenario-suite benchmark: named failure campaigns, both stacks.

Runs every campaign in :mod:`repro.scenarios.library` against flat
Chord and HIERAS on the same deployment config and collects the four
scenario-level measurements — availability over time, route stretch
versus a fault-free twin, sustained recovery time, and data
durability — into one ``BENCH_scenarios.json`` document.

The document follows the repo-wide ``BENCH_*`` convention: ``phases``
holds wall-clock timings (nondeterministic), ``metrics`` is a pure
function of ``(config, seed)`` and byte-reproducible — CI re-runs the
reduced sweep twice and compares the serialized ``metrics`` sections.

:data:`GATES` pins regression thresholds for the adversarial headline
(the correlated regional failure): if HIERAS availability collapses
further than observed at pin time, recovery slows past the ceiling, or
data loss appears where none was, :func:`check_gates` reports the
violations and the CI job fails.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.experiments.config import SimConfig
from repro.scenarios.runner import run_scenario_cell
from repro.scenarios.spec import ScenarioParams
from repro.scenarios.library import scenario_names
from repro.util.proc import peak_rss_mb

__all__ = [
    "SCHEMA",
    "GATES",
    "run_bench_scenarios",
    "check_gates",
    "write_bench_scenarios",
]

SCHEMA = "repro.bench_scenarios/1"

#: Regression thresholds for the reduced (CI) sweep at the default
#: seed, pinned from the run committed as ``BENCH_scenarios.json``.
#: Keys are ``(scenario, stack)``; each gate names a metric, a bound
#: direction, and the pinned limit (with headroom over the observed
#: value so only a real regression trips it).
#:
#: Pinned observations (reduced sweep, seed 42): HIERAS rides out the
#: whole-ring crash at availability_min 0.583 and recovers in 650 ms,
#: but ring-scoped placement loses 20.3% of keys to the correlated
#: failure; Chord bottoms at 0.708, recovers in 650 ms, loses nothing.
GATES: dict[tuple[str, str], dict[str, tuple[str, float]]] = {
    ("regional_failure", "hieras"): {
        "availability_min": ("min", 0.40),
        "recovery_ms": ("max", 1400.0),
        "loss_probability": ("max", 0.35),
        "availability_final": ("min", 0.95),
    },
    ("regional_failure", "chord"): {
        "availability_min": ("min", 0.50),
        "recovery_ms": ("max", 1400.0),
        "loss_probability": ("max", 0.05),
    },
}


def run_bench_scenarios(
    *,
    full: bool = False,
    seed: int = 42,
    scenarios: tuple[str, ...] | None = None,
) -> dict[str, object]:
    """Run the scenario sweep once; returns the BENCH document.

    Every named campaign replays against both stacks on the same
    deployment config — the campaigns themselves are compiled from the
    pristine HIERAS overlay, so e.g. the regional failure kills the
    identical peer set under flat Chord.  ``full`` scales peers,
    duration and probe density up; the reduced shape is the CI smoke
    sweep.
    """
    names = list(scenarios) if scenarios is not None else scenario_names()
    config = SimConfig(
        model="ts",
        n_peers=1200 if full else 360,
        n_landmarks=4,
        depth=2,
        seed=seed,
    )
    params = ScenarioParams(
        seed=seed,
        duration_ms=8000.0 if full else 3000.0,
        probe_interval_ms=200.0 if full else 150.0,
        n_probes=32 if full else 24,
        rate_per_s=60.0 if full else 40.0,
        fault_at_ms=2000.0 if full else 1000.0,
        stabilize_delay_ms=600.0,
        catalog_size=128 if full else 64,
    )

    phases: dict[str, dict[str, float]] = {}

    def timed(name: str):
        class _Phase:
            def __enter__(self_inner):
                self_inner.t0 = time.perf_counter()  # lint: allow-wallclock -- phase timing; lands in the nondeterministic "phases" key
                return self_inner

            def __exit__(self_inner, *exc):
                phases[name] = {
                    "wall_ms": (time.perf_counter() - self_inner.t0) * 1000.0  # lint: allow-wallclock -- phase timing; lands in the nondeterministic "phases" key
                }
                return False

        return _Phase()

    results: dict[str, dict[str, dict[str, object]]] = {}
    for name in names:
        with timed(name):
            results[name] = {
                stack: run_scenario_cell(config, name, stack, params)
                for stack in ("chord", "hieras")
            }

    headline = _headline(results, params)
    phases["peak_rss"] = {"peak_rss_mb": peak_rss_mb()}
    return {
        "schema": SCHEMA,
        "config": {
            "full": full,
            "seed": seed,
            "n_peers": config.n_peers,
            "n_landmarks": config.n_landmarks,
            "depth": config.depth,
            "duration_ms": params.duration_ms,
            "probe_interval_ms": params.probe_interval_ms,
            "n_probes": params.n_probes,
            "rate_per_s": params.rate_per_s,
            "scenarios": names,
        },
        "phases": phases,
        "metrics": {"scenarios": results, "headline": headline},
    }


def _headline(
    results: dict[str, dict[str, dict[str, object]]], params: ScenarioParams
) -> dict[str, object]:
    """Condense the cross-scenario comparisons the suite exists for."""
    headline: dict[str, object] = {}
    if "regional_failure" in results:
        headline["regional_failure"] = {
            stack: {
                "availability_min": cell["availability_min"],
                "availability_final": cell["availability_final"],
                "recovery_ms": cell["recovery_ms"],
                "recovered": cell["recovered"],
                "loss_probability": cell["loss_probability"],
                "ring_size": cell["notes"]["ring_size"],  # type: ignore[index]
            }
            for stack, cell in results["regional_failure"].items()
        }
    if "graceful_leave" in results and "abrupt_crash" in results:
        headline["graceful_vs_abrupt"] = {
            stack: {
                "graceful_loss": results["graceful_leave"][stack]["loss_probability"],
                "abrupt_loss": results["abrupt_crash"][stack]["loss_probability"],
                "graceful_availability_min": results["graceful_leave"][stack][
                    "availability_min"
                ],
                "abrupt_availability_min": results["abrupt_crash"][stack][
                    "availability_min"
                ],
                "graceful_stretch": results["graceful_leave"][stack]["stretch_mean"],
                "abrupt_stretch": results["abrupt_crash"][stack]["stretch_mean"],
            }
            for stack in ("chord", "hieras")
        }
    if "flash_join" in results:
        flash: dict[str, object] = {}
        for stack, cell in results["flash_join"].items():
            rebalance_at = float(cell["notes"]["rebalance_at_ms"])  # type: ignore[index]
            totals = cell["gets_total_timeline"]
            oks = cell["gets_ok_timeline"]
            pre_total = pre_ok = post_total = post_ok = 0.0
            for i in range(len(totals)):  # type: ignore[arg-type]
                t = (i + 1) * params.probe_interval_ms
                if t <= params.fault_at_ms:
                    continue
                if t <= rebalance_at:
                    pre_total += totals[i]  # type: ignore[index]
                    pre_ok += oks[i]  # type: ignore[index]
                else:
                    post_total += totals[i]  # type: ignore[index]
                    post_ok += oks[i]  # type: ignore[index]
            flash[stack] = {
                "rebalanced": cell["rebalanced"],
                "pre_rebalance_get_failure": (
                    1.0 - pre_ok / pre_total if pre_total else 0.0
                ),
                "post_rebalance_get_failure": (
                    1.0 - post_ok / post_total if post_total else 0.0
                ),
            }
        headline["flash_join"] = flash
    if "landmark_outage_rolling" in results:
        headline["landmark_outage"] = {
            stack: {
                "stretch_mean": cell["stretch_mean"],
                "stretch_max": cell["stretch_max"],
                "availability_min": cell["availability_min"],
            }
            for stack, cell in results["landmark_outage_rolling"].items()
        }
    if "weibull_churn" in results:
        headline["weibull_churn"] = {
            stack: {
                "availability_mean": cell["availability_mean"],
                "availability_min": cell["availability_min"],
                "loss_probability": cell["loss_probability"],
                "graceful_handoffs": cell["graceful_handoffs"],
            }
            for stack, cell in results["weibull_churn"].items()
        }
    return headline


def check_gates(doc: dict[str, object]) -> list[str]:
    """Evaluate :data:`GATES` against a BENCH document; list violations.

    Gates are pinned for the reduced default-seed sweep; a ``full`` or
    reseeded document is checked against the same limits (they carry
    headroom, and a wildly different shape should be looked at anyway).
    Returns human-readable violation strings; empty means all gates
    hold.
    """
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        return ["document has no metrics section"]
    scenarios = metrics.get("scenarios")
    if not isinstance(scenarios, dict):
        return ["metrics has no scenarios section"]
    violations: list[str] = []
    for (scenario, stack), rules in sorted(GATES.items()):
        cell = scenarios.get(scenario, {}).get(stack)
        if cell is None:
            violations.append(f"{scenario}/{stack}: cell missing from document")
            continue
        for metric, (direction, limit) in sorted(rules.items()):
            value = cell.get(metric)
            if not isinstance(value, (int, float)):
                violations.append(f"{scenario}/{stack}: metric {metric!r} missing")
                continue
            if metric == "recovery_ms" and value < 0.0:
                # -1.0 is the censored sentinel: never recovered.
                violations.append(
                    f"{scenario}/{stack}: never re-crossed the recovery threshold"
                )
            elif direction == "min" and value < limit:
                violations.append(
                    f"{scenario}/{stack}: {metric}={value:.4f} below floor {limit}"
                )
            elif direction == "max" and value > limit:
                violations.append(
                    f"{scenario}/{stack}: {metric}={value:.4f} above ceiling {limit}"
                )
    return violations


def write_bench_scenarios(doc: dict[str, object], out: str | Path) -> Path:
    """Write one BENCH_scenarios document as stable, indented JSON."""
    path = Path(out)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path
