"""Command-line interface: ``python -m repro.experiments`` / ``hieras-experiments``.

Subcommands
-----------
``list``
    Show every registered experiment with its paper claim.
``run <id> [<id> ...]`` (or ``run all``)
    Run experiments and print their reports.  ``--full`` (or
    ``REPRO_FULL=1``) selects paper-scale parameters; ``--seed`` changes
    the master seed.
``sweep``
    Evaluate a custom parameter grid (models × sizes × landmarks ×
    depths × seeds) and print/write tidy per-cell rows.
``report``
    Run every experiment and write a single markdown report (the
    machinery behind refreshing EXPERIMENTS.md's recorded numbers).
``perf-baseline``
    Run the perf-baseline pipeline (``repro.experiments.baseline``) and
    write ``BENCH_baseline.json``: wall time per phase plus
    seed-deterministic hop/latency metrics for both stacks.
``cache-bench``
    Run the cache-effect sweep (``repro.experiments.cache_exp``) and
    write ``BENCH_cache.json``: Zipf exponent × cache capacity × churn
    cells with hop/latency reductions and owner-load concentration.
``batch-bench``
    Benchmark the vectorized batch routing engine against the scalar
    loop (``repro.experiments.batchbench``) and write
    ``BENCH_batchroute.json``: lookups/sec and speedup per (stack, N)
    plus deterministic engines-agree equality bits.
``durability-bench``
    Run the durability-under-churn sweep (``repro.experiments.durability``)
    and write ``BENCH_durability.json``: replication factor × churn ×
    {chain, quorum} × {successor, ring_scoped} cells on both stacks with
    data-loss probability, read staleness, and hinted-handoff traffic.
``scenario-bench``
    Run the failure-campaign scenario suite (``repro.experiments.scenarios_exp``)
    and write ``BENCH_scenarios.json``: six named campaigns × both
    stacks with availability, route stretch, recovery time and data
    durability per cell; ``--check`` enforces the pinned regression
    gates on the correlated regional failure.
``serve-bench``
    Run the serving-layer saturation study (``repro.experiments.serve_exp``)
    and write ``BENCH_serve.json``: offered load vs achieved throughput
    vs p99 on both stacks, the flash-crowd admission-control pair, the
    coalescing pair at the knee, and the churn cell.
``scale-bench``
    Run the million-peer scale benchmark (``repro.experiments.scale_exp``)
    and write ``BENCH_scale.json``: build time, membership-wave time,
    streamed lookups/sec and peak RSS per network size on both stacks,
    plus the deterministic contracts — zero full rebuilds during waves,
    incremental state bit-identical to a rebuild, and cross-stack
    owner-checksum agreement; exit 1 if any contract bit is false.

``run`` additionally drops one ``metrics_<id>.json`` artifact per
experiment (structured result data; directory overridable via
``REPRO_ARTIFACT_DIR``) so CI can collect machine-readable outputs
alongside the printed reports.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.config import is_full_scale
from repro.experiments.figures import EXPERIMENTS, get_experiment

__all__ = ["main"]


def _cmd_list(_args: argparse.Namespace) -> int:
    width = max(len(e) for e in EXPERIMENTS)
    for exp in EXPERIMENTS.values():
        print(f"{exp.id.ljust(width)}  {exp.title}")
        print(f"{' ' * width}  paper: {exp.paper_claim}")
    return 0


def _json_default(obj: object) -> object:
    """JSON fallback for numpy scalars/arrays inside result data."""
    tolist = getattr(obj, "tolist", None)
    if callable(tolist):
        return tolist()
    return str(obj)


def _write_metrics_artifact(result, *, full: bool, seed: int, wall_s: float) -> None:
    """Drop one machine-readable artifact per finished experiment.

    Written to ``REPRO_ARTIFACT_DIR`` (default: cwd, gitignored) so CI
    can upload the structured numbers behind each printed report.
    """
    import json
    import os
    from pathlib import Path

    doc = {
        "experiment": result.experiment_id,
        "title": result.title,
        "seed": seed,
        "full": full,
        "wall_s": wall_s,
        "diverged": "[DIVERGES]" in result.text,
        "data": result.data,
    }
    path = Path(os.environ.get("REPRO_ARTIFACT_DIR", "."))
    try:
        target = path / f"metrics_{result.experiment_id}.json"
        target.write_text(
            json.dumps(doc, indent=2, default=_json_default), encoding="utf-8"
        )
        print(f"(wrote {target})")
    except OSError:  # pragma: no cover - unwritable artifact dir
        pass


def _cmd_run(args: argparse.Namespace) -> int:
    ids = list(EXPERIMENTS) if "all" in args.ids else args.ids
    full = is_full_scale(True if args.full else None)
    failures = 0
    for experiment_id in ids:
        exp = get_experiment(experiment_id)
        print("=" * 72)
        print(f"{exp.id}: {exp.title}  [{'full' if full else 'reduced'} scale, seed {args.seed}]")
        print(f"paper claim: {exp.paper_claim}")
        print("-" * 72)
        start = time.perf_counter()  # lint: allow-wallclock -- phase timing; reported as nondeterministic wall_s
        result = exp.run(full, args.seed)
        wall_s = time.perf_counter() - start  # lint: allow-wallclock -- phase timing; reported as nondeterministic wall_s
        print(result.text)
        print(f"({wall_s:.1f}s)")
        if "[DIVERGES]" in result.text:
            failures += 1
        _write_metrics_artifact(result, full=full, seed=args.seed, wall_s=wall_s)
        print()
    if failures:
        print(f"{failures} experiment(s) diverged from the paper's claims")
    return 1 if failures else 0


def _parse_ints(text: str) -> tuple[int, ...]:
    return tuple(int(v) for v in text.split(","))


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.analysis.tables import format_table
    from repro.experiments.sweep import SweepSpec, run_sweep, write_csv

    spec = SweepSpec(
        models=tuple(args.models.split(",")),
        sizes=_parse_ints(args.sizes),
        landmarks=_parse_ints(args.landmarks),
        depths=_parse_ints(args.depths),
        seeds=_parse_ints(args.seeds),
        n_requests=args.requests,
        engine=args.engine,
    )
    print(f"sweeping {spec.n_cells} cells...")
    rows = run_sweep(spec, progress=print)
    if not rows:
        print("no valid cells")
        return 1
    print()
    print(format_table(rows))
    if args.out:
        n = write_csv(rows, args.out)
        print(f"\nwrote {n} rows to {args.out}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from pathlib import Path

    full = is_full_scale(True if args.full else None)
    scale = "full (paper)" if full else "reduced"
    lines = [
        "# HIERAS reproduction report",
        "",
        f"Scale: {scale}.  Master seed: {args.seed}.",
        "",
    ]
    failures = 0
    for exp in EXPERIMENTS.values():
        print(f"running {exp.id}...", flush=True)
        start = time.perf_counter()  # lint: allow-wallclock -- phase timing; reported as nondeterministic wall_s
        result = exp.run(full, args.seed)
        elapsed = time.perf_counter() - start  # lint: allow-wallclock -- phase timing; reported as nondeterministic wall_s
        if "[DIVERGES]" in result.text:
            failures += 1
        lines += [
            f"## {exp.id}: {exp.title}",
            "",
            f"Paper claim: {exp.paper_claim}",
            "",
            "```",
            result.text,
            "```",
            "",
            f"_({elapsed:.1f}s)_",
            "",
        ]
    out = Path(args.out)
    out.write_text("\n".join(lines), encoding="utf-8")
    print(f"wrote {out} ({len(lines)} lines, {failures} divergence(s))")
    return 1 if failures else 0


def _cmd_perf_baseline(args: argparse.Namespace) -> int:
    from repro.experiments.baseline import run_perf_baseline, write_baseline

    full = is_full_scale(True if args.full else None)
    doc = run_perf_baseline(full=full, seed=args.seed)
    path = write_baseline(doc, args.out)
    for name, phase in doc["phases"].items():
        if "wall_ms" in phase:
            print(f"  {name:<16} {phase['wall_ms']:10.1f} ms")
    for net in ("chord", "hieras"):
        m = doc["metrics"][net]
        print(
            f"  {net:<8} hops mean {m['hops']['mean']:.2f} p99 {m['hops']['p99']:.2f}  "
            f"latency mean {m['latency_ms']['mean']:.0f}ms "
            f"low-layer {100 * m['low_layer_hop_share']:.1f}%"
        )
    print(f"wrote {path}")
    return 0


def _cmd_batch_bench(args: argparse.Namespace) -> int:
    from repro.experiments.batchbench import run_bench_batchroute, write_bench_batchroute

    full = is_full_scale(True if args.full else None)
    doc = run_bench_batchroute(full=full, seed=args.seed)
    path = write_bench_batchroute(doc, args.out)
    for name, cell in doc["metrics"]["cells"].items():
        phase = doc["phases"][name]
        agree = "ok" if cell["engines_agree"] else "MISMATCH"
        print(
            f"  {name:<14} scalar {phase['scalar_lookups_per_s']:>9.0f}/s  "
            f"batch {phase['batch_lookups_per_s']:>10.0f}/s  "
            f"speedup {phase['speedup']:5.1f}x  engines {agree}"
        )
    print(f"wrote {path}")
    return 0 if all(c["engines_agree"] for c in doc["metrics"]["cells"].values()) else 1


def _cmd_cache_bench(args: argparse.Namespace) -> int:
    from repro.experiments.cache_exp import run_bench_cache, write_bench_cache

    full = is_full_scale(True if args.full else None)
    doc = run_bench_cache(full=full, seed=args.seed)
    path = write_bench_cache(doc, args.out)
    for name, phase in doc["phases"].items():
        if "wall_ms" in phase:
            print(f"  {name:<16} {phase['wall_ms']:10.1f} ms")
    for stack, h in doc["metrics"]["headline"].items():
        print(
            f"  {stack:<8} latency -{h['latency_reduction_percent']:.1f}%  "
            f"hops -{h['hop_reduction_percent']:.1f}%  "
            f"hit rate {100 * h['hit_rate']:.1f}%  "
            f"load concentration {h['uncached_concentration']:.1f} -> "
            f"{h['cached_concentration']:.1f}"
        )
    print(f"wrote {path}")
    return 0


def _cmd_durability_bench(args: argparse.Namespace) -> int:
    from repro.experiments.durability import run_bench_durability, write_bench_durability

    full = is_full_scale(True if args.full else None)
    doc = run_bench_durability(full=full, seed=args.seed)
    path = write_bench_durability(doc, args.out)
    for name, phase in doc["phases"].items():
        if "wall_ms" in phase:
            print(f"  {name:<16} {phase['wall_ms']:10.1f} ms")
    headline = doc["metrics"]["headline"]
    for stack, pair in headline["handoff_loss"].items():
        divergence = headline["chain_vs_quorum"][stack]
        print(
            f"  {stack:<8} put success chain {divergence['chain_put_success']:.3f} "
            f"vs quorum {divergence['quorum_put_success']:.3f}  "
            f"loss handoff-on {pair['on']:.3f} vs off {pair['off']:.3f}"
        )
    locality = headline["ring_locality"]["hieras"]
    print(
        f"  hieras ring-scoped put latency {locality['ring_scoped_put_latency_ms']:.0f} ms "
        f"vs successor {locality['successor_put_latency_ms']:.0f} ms "
        f"(loss {locality['ring_scoped_loss']:.3f} vs {locality['successor_loss']:.3f})"
    )
    print(f"wrote {path}")
    return 0


def _cmd_scenario_bench(args: argparse.Namespace) -> int:
    from repro.experiments.scenarios_exp import (
        check_gates,
        run_bench_scenarios,
        write_bench_scenarios,
    )

    full = is_full_scale(True if args.full else None)
    doc = run_bench_scenarios(full=full, seed=args.seed)
    path = write_bench_scenarios(doc, args.out)
    for name, phase in doc["phases"].items():
        if "wall_ms" in phase:
            print(f"  {name:<24} {phase['wall_ms']:10.1f} ms")
    for name, cells in doc["metrics"]["scenarios"].items():
        for stack, cell in cells.items():
            print(
                f"  {name:<24} {stack:<8} "
                f"avail min {cell['availability_min']:.3f} "
                f"recovery {cell['recovery_ms']:6.0f} ms  "
                f"stretch {cell['stretch_mean']:.2f}  "
                f"loss {cell['loss_probability']:.3f}"
            )
    print(f"wrote {path}")
    if args.check:
        violations = check_gates(doc)
        for violation in violations:
            print(f"GATE VIOLATION: {violation}")
        if violations:
            return 1
        print("all scenario gates hold")
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    from repro.experiments.serve_exp import run_bench_serve, write_bench_serve

    full = is_full_scale(True if args.full else None)
    doc = run_bench_serve(full=full, seed=args.seed)
    path = write_bench_serve(doc, args.out)
    for name, phase in doc["phases"].items():
        if "wall_ms" in phase:
            print(f"  {name:<16} {phase['wall_ms']:10.1f} ms")
    headline = doc["metrics"]["headline"]
    for stack, shift in headline["knee_shift"].items():
        admission = headline["admission"][stack]
        knee = headline["knee"][stack]
        print(
            f"  {stack:<8} knee {knee['achieved_max_per_s']:.0f}/s "
            f"(model {knee['model_capacity_per_s']:.0f})  "
            f"scalar {shift['scalar_achieved_per_s']:.0f}/s vs "
            f"batched {shift['batched_achieved_per_s']:.0f}/s  "
            f"flash q_p99 {admission['unbounded_queue_p99_ms']:.0f} -> "
            f"{admission['bounded_queue_p99_ms']:.0f} ms bounded"
        )
    print(f"wrote {path}")
    return 0


def _cmd_scale_bench(args: argparse.Namespace) -> int:
    from repro.experiments.scale_exp import run_bench_scale, write_bench_scale

    full = is_full_scale(True if args.full else None)
    doc = run_bench_scale(full=full, seed=args.seed)
    path = write_bench_scale(doc, args.out)
    ok = True
    for name, cell in doc["metrics"]["cells"].items():
        n = cell["n_peers"]
        mem = cell["membership"]
        contracts = (
            mem["full_rebuilds_during_waves_chord"] == 0
            and mem["full_rebuilds_during_waves_hieras"] == 0
            and mem["incremental_matches_rebuild"]
            and cell["stacks_agree_owners"]
            and cell["engines_agree"] is not False
        )
        ok = ok and contracts
        build = doc["phases"][f"build_n{n}"]
        print(
            f"  {name:<10} build {build['wall_ms'] / 1000.0:7.2f} s  "
            f"chord {doc['phases'][f'chord_lookup_n{n}']['lookups_per_s']:>9.0f}/s  "
            f"hieras {doc['phases'][f'hieras_lookup_n{n}']['lookups_per_s']:>9.0f}/s  "
            f"rss {doc['phases'][f'hieras_lookup_n{n}']['peak_rss_mb']:>7.0f} MB  "
            f"contracts {'ok' if contracts else 'VIOLATED'}"
        )
    print(f"wrote {path}")
    return 0 if ok else 1


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="hieras-experiments",
        description="Reproduce the HIERAS paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list registered experiments").set_defaults(func=_cmd_list)
    run = sub.add_parser("run", help="run experiments by id (or 'all')")
    run.add_argument("ids", nargs="+", help="experiment ids, or 'all'")
    run.add_argument("--full", action="store_true", help="paper-scale parameters")
    run.add_argument("--seed", type=int, default=42, help="master seed (default 42)")
    run.set_defaults(func=_cmd_run)
    sweep = sub.add_parser("sweep", help="evaluate a custom parameter grid")
    sweep.add_argument("--models", default="ts", help="comma list: ts,inet,brite")
    sweep.add_argument("--sizes", default="1000", help="comma list of peer counts")
    sweep.add_argument("--landmarks", default="4", help="comma list of landmark counts")
    sweep.add_argument("--depths", default="2", help="comma list of depths (2-4)")
    sweep.add_argument("--seeds", default="42", help="comma list of seeds")
    sweep.add_argument("--requests", type=int, default=10_000, help="requests per cell")
    sweep.add_argument(
        "--engine", default="batch", choices=("batch", "scalar"),
        help="routing engine per cell (results are bit-identical; default batch)",
    )
    sweep.add_argument("--out", default=None, help="write rows to this CSV path")
    sweep.set_defaults(func=_cmd_sweep)
    report = sub.add_parser("report", help="run everything, write a markdown report")
    report.add_argument("--out", default="report.md", help="output path (default report.md)")
    report.add_argument("--full", action="store_true", help="paper-scale parameters")
    report.add_argument("--seed", type=int, default=42, help="master seed (default 42)")
    report.set_defaults(func=_cmd_report)
    baseline = sub.add_parser(
        "perf-baseline", help="run the perf-baseline pipeline, write BENCH_baseline.json"
    )
    baseline.add_argument(
        "--out", default="BENCH_baseline.json",
        help="output path (default BENCH_baseline.json)",
    )
    baseline.add_argument("--full", action="store_true", help="paper-scale parameters")
    baseline.add_argument("--seed", type=int, default=42, help="master seed (default 42)")
    baseline.set_defaults(func=_cmd_perf_baseline)
    cache = sub.add_parser(
        "cache-bench", help="run the cache-effect sweep, write BENCH_cache.json"
    )
    cache.add_argument(
        "--out", default="BENCH_cache.json",
        help="output path (default BENCH_cache.json)",
    )
    cache.add_argument("--full", action="store_true", help="paper-scale parameters")
    cache.add_argument("--seed", type=int, default=42, help="master seed (default 42)")
    cache.set_defaults(func=_cmd_cache_bench)
    batch = sub.add_parser(
        "batch-bench",
        help="benchmark batch vs scalar routing, write BENCH_batchroute.json",
    )
    batch.add_argument(
        "--out", default="BENCH_batchroute.json",
        help="output path (default BENCH_batchroute.json)",
    )
    batch.add_argument("--full", action="store_true", help="paper-scale parameters")
    batch.add_argument("--seed", type=int, default=42, help="master seed (default 42)")
    batch.set_defaults(func=_cmd_batch_bench)
    durability = sub.add_parser(
        "durability-bench",
        help="run the durability-under-churn sweep, write BENCH_durability.json",
    )
    durability.add_argument(
        "--out", default="BENCH_durability.json",
        help="output path (default BENCH_durability.json)",
    )
    durability.add_argument("--full", action="store_true", help="paper-scale parameters")
    durability.add_argument("--seed", type=int, default=42, help="master seed (default 42)")
    durability.set_defaults(func=_cmd_durability_bench)
    scenario = sub.add_parser(
        "scenario-bench",
        help="run the failure-campaign scenario suite, write BENCH_scenarios.json",
    )
    scenario.add_argument(
        "--out", default="BENCH_scenarios.json",
        help="output path (default BENCH_scenarios.json)",
    )
    scenario.add_argument("--full", action="store_true", help="paper-scale parameters")
    scenario.add_argument("--seed", type=int, default=42, help="master seed (default 42)")
    scenario.add_argument(
        "--check", action="store_true",
        help="evaluate the pinned regression gates; exit 1 on any violation",
    )
    scenario.set_defaults(func=_cmd_scenario_bench)
    serve = sub.add_parser(
        "serve-bench",
        help="run the serving-layer saturation study, write BENCH_serve.json",
    )
    serve.add_argument(
        "--out", default="BENCH_serve.json",
        help="output path (default BENCH_serve.json)",
    )
    serve.add_argument("--full", action="store_true", help="paper-scale parameters")
    serve.add_argument("--seed", type=int, default=42, help="master seed (default 42)")
    serve.set_defaults(func=_cmd_serve_bench)
    scale = sub.add_parser(
        "scale-bench",
        help="run the million-peer scale benchmark, write BENCH_scale.json",
    )
    scale.add_argument(
        "--out", default="BENCH_scale.json",
        help="output path (default BENCH_scale.json)",
    )
    scale.add_argument(
        "--full", action="store_true",
        help="paper-scale parameters (N up to 1,000,000 peers, 10^7 lookups)",
    )
    scale.add_argument("--seed", type=int, default=42, help="master seed (default 42)")
    scale.set_defaults(func=_cmd_scale_bench)
    args = parser.parse_args(argv)
    return int(args.func(args))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
