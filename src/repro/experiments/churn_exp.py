"""The churn experiment: the §3.3 protocol under Poisson membership churn.

Bootstraps a HIERAS system on the event-driven protocol stack, replays
a Poisson churn schedule (joins, graceful leaves, crashes), then checks
that hierarchical lookups still resolve to the correct live owners and
reports the protocol's maintenance traffic — the §3.3–§3.4 behaviour
the trace-driven stack cannot exercise.
"""

from __future__ import annotations

import numpy as np

from repro.core.hieras_protocol import HierasProtocolNode
from repro.dht.base import ZeroLatency
from repro.sim.engine import Simulator
from repro.sim.network import SimNetwork
from repro.util.ids import IdSpace
from repro.util.rng import make_rng
from repro.workloads.churn import generate_churn

__all__ = ["run_churn_simulation"]


def run_churn_simulation(
    *,
    universe: int = 40,
    initial: int = 24,
    n_rings: int = 3,
    churn_duration_ms: float = 40_000,
    mean_session_ms: float = 60_000,
    mean_offline_ms: float = 30_000,
    fail_fraction: float = 0.5,
    n_lookups: int = 120,
    seed: int = 5,
    loss_rate: float = 0.0,
) -> dict[str, float]:
    """Run the churn scenario end to end; returns summary counters.

    Keys: ``completed``/``correct`` lookups, ``messages`` (total),
    ``maintenance_msgs`` (stabilize/notify/ring-table upkeep),
    ``live`` nodes at measurement time, ``messages_lost`` when
    ``loss_rate`` injects loss.
    """
    space = IdSpace(16)
    rng = make_rng(seed)
    ids = space.sample_unique_ids(universe, rng)
    names = [[str(p % n_rings)] for p in range(universe)]
    sim = Simulator()
    net = SimNetwork(sim, ZeroLatency(), loss_rate=loss_rate, loss_seed=seed)
    nodes = [
        HierasProtocolNode(p, int(ids[p]), space, sim, net) for p in range(universe)
    ]

    nodes[0].found_system(names[0], landmark_table=[1, 2])
    t = 0.0
    for p in range(1, initial):
        t += 300.0
        sim.schedule_at(t, nodes[p].join_system, 0, names[p])
    sim.run(until=t + 30_000, max_events=10_000_000)

    schedule = generate_churn(
        universe=universe,
        initial=initial,
        duration_ms=churn_duration_ms,
        mean_session_ms=mean_session_ms,
        mean_offline_ms=mean_offline_ms,
        fail_fraction=fail_fraction,
        seed=seed + 1,
    )
    online = set(range(initial))
    base_t = sim.now

    def rejoin(peer: int, bootstrap: int) -> None:
        if peer not in net:
            net.register(nodes[peer])
        nodes[peer].recover()
        nodes[peer].join_system(bootstrap, names[peer])

    def depart(peer: int) -> None:
        nodes[peer].fail()
        net.unregister(peer)

    for event in schedule.events:
        when = base_t + event.time_ms
        peer = event.peer
        if event.action == "join" and peer not in online:
            bootstrap = min(online - {peer})
            online.add(peer)
            sim.schedule_at(when, rejoin, peer, bootstrap)
        elif event.action in ("leave", "fail") and peer in online and len(online) > 4:
            online.discard(peer)
            sim.schedule_at(when, depart, peer)
    sim.run(until=base_t + churn_duration_ms + 60_000, max_events=40_000_000)

    live = sorted(
        p for p in online if nodes[p].alive and "global" in nodes[p].rings
    )
    live_ids = np.sort([int(ids[p]) for p in live])
    results = []
    for _ in range(n_lookups):
        nodes[int(rng.choice(live))].hieras_lookup(
            int(rng.integers(0, space.size)), results.append
        )
    sim.run(until=sim.now + 60_000, max_events=50_000_000)
    correct = sum(
        1
        for out in results
        if out.owner_id == int(live_ids[np.searchsorted(live_ids, out.key) % len(live)])
    )
    return {
        "completed": float(len(results)),
        "correct": float(correct),
        "messages": float(net.messages_sent),
        "messages_lost": float(net.messages_lost),
        "maintenance_msgs": float(
            sum(
                count
                for kind, count in net.sent_by_kind.items()
                if kind in ("get_state", "state", "notify", "ring_table_update")
            )
        ),
        "live": float(len(live)),
    }
