"""The durability experiment: data survival under churn (DESIGN.md §11).

PR 1's resilience experiment showed *lookups* survive faults; this one
asks whether *data* does.  Each cell builds a fresh
:class:`~repro.replication.store.ReplicatedStore` over one trace-driven
stack and replays a deterministic churn scenario against it:

1. **publish** — a catalogue of base keys is written fault-free;
2. **wave 1** — a churn fraction of peers crashes silently;
3. **write-under-faults** — half the base keys are updated and a batch
   of *new* keys is published while the damage is live: chain writes
   abort on broken links, quorum writes collect what acks they can, and
   hinted handoff queues the copies crashed replicas missed;
4. **wave 2 + rejoin** — a second churn wave lands, then wave 1's
   survivors revive (hint queues replay on rejoin);
5. **read + audit** — every key is read twice through the policy's
   consistency discipline (quorum reads detect and repair staleness),
   then a ground-truth :meth:`loss_audit` walks the catalogue.

Reported per cell: put/read success, chain aborts, detected and
returned staleness, read repairs, hinted-handoff traffic, and the
headline **probability of data loss**.  The sweep crosses
{replication factor} × {churn rate} × {chain, quorum} ×
{successor, ring_scoped} on both stacks; paired hinted-handoff cells
(same scenario, handoff on vs off) and a ring-locality headline
(successor vs ring-scoped placement on HIERAS) answer the ROADMAP's
open question directly.

Output follows the ``BENCH_*`` convention: one JSON document with a
nondeterministic ``phases`` section (wall times) and a deterministic
``metrics`` section — re-running the same seed reproduces ``metrics``
byte-for-byte.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.experiments.config import SimConfig
from repro.experiments.runner import SimulationBundle, build_bundle
from repro.faults import FaultInjector, FaultPlan
from repro.replication import ReplicatedStore, ReplicationPolicy
from repro.util.rng import RngFactory
from repro.util.proc import peak_rss_mb

__all__ = [
    "SCHEMA",
    "run_durability_cell",
    "run_bench_durability",
    "write_bench_durability",
]

SCHEMA = "repro.bench_durability/1"

#: The paired-handoff / ring-locality scenario (the headline cells).
HEADLINE_REPLICAS = 2
HEADLINE_CHURN = 0.3


def run_durability_cell(
    bundle: SimulationBundle,
    *,
    stack: str,
    policy: ReplicationPolicy,
    churn_fraction: float,
    n_keys: int,
    seed: int,
) -> dict[str, float]:
    """One churn scenario through one replicated stack; returns metrics.

    ``stack`` selects the inner network (``"chord"`` / ``"hieras"``).
    The scenario's randomness (crash waves, write/read sources) comes
    from :class:`~repro.util.rng.RngFactory` streams keyed by ``seed``,
    so a cell is a pure function of (bundle, stack, policy, churn,
    n_keys, seed).  Each operation advances the fault clock by 1 ms.
    """
    net = bundle.chord if stack == "chord" else bundle.hieras
    n_peers = net.n_peers
    rngs = RngFactory(seed)
    wave_rng = rngs.get("durability-waves")
    n_crash = int(round(churn_fraction * n_peers))
    wave1 = sorted(int(p) for p in wave_rng.choice(n_peers, size=n_crash, replace=False))
    wave2 = sorted(int(p) for p in wave_rng.choice(n_peers, size=n_crash, replace=False))
    rejoin = [p for p in wave1 if p not in set(wave2)]

    n_updates = n_keys // 2
    n_new = n_keys // 2
    t_wave1 = float(n_keys)
    t_wave2 = t_wave1 + n_updates + n_new + 1.0
    t_rejoin = t_wave2 + 1.0
    plan = FaultPlan(seed=seed)
    if wave1:
        plan.crash_peers(at_ms=t_wave1, peers=wave1)
    if wave2:
        plan.crash_peers(at_ms=t_wave2, peers=wave2)
    if rejoin:
        plan.revive_peers(at_ms=t_rejoin, peers=rejoin)
    injector = FaultInjector(plan, len(net._alive))
    store = ReplicatedStore(net, policy, injector=injector)

    source_rng = rngs.get("durability-sources")
    sources = source_rng.integers(0, n_peers, size=n_keys + n_updates + n_new + 2 * (n_keys + n_new))
    op = 0

    def next_source() -> int:
        nonlocal op
        s = int(sources[op])
        op += 1
        while injector.state.is_dead(s):
            s = (s + 1) % n_peers
        return s

    t = 0.0

    def tick() -> float:
        nonlocal t
        t += 1.0
        store.advance_to(t)
        return t

    put_latency = 0.0
    put_hops = 0
    # Phase 1: publish the base catalogue fault-free.
    for i in range(n_keys):
        result = store.put(next_source(), f"base-{i}", f"v1-{i}")
        put_latency += result.total_latency_ms
        put_hops += result.hops
        tick()
    # Phase 3 (wave 1 lands on the first tick past t_wave1): updates
    # and fresh publishes while the damage is live.
    for i in range(n_updates):
        result = store.put(next_source(), f"base-{i}", f"v2-{i}")
        put_latency += result.total_latency_ms
        put_hops += result.hops
        tick()
    for i in range(n_new):
        result = store.put(next_source(), f"new-{i}", f"v1-{i}")
        put_latency += result.total_latency_ms
        put_hops += result.hops
        tick()
    # Phase 4: wave 2, then wave 1's survivors rejoin (hints replay).
    tick()
    tick()
    # Phase 5: read every key twice through the consistency discipline.
    names = [f"base-{i}" for i in range(n_keys)] + [f"new-{i}" for i in range(n_new)]
    reads = stale_values = read_latency = 0.0
    for _ in range(2):
        for name in names:
            result = store.get(next_source(), name)
            reads += 1.0
            read_latency += result.total_latency_ms
            if (
                result.success
                and result.value is not None
                and result.version < store.version_of(name)
            ):
                stale_values += 1.0
            tick()
    audit = store.loss_audit()
    stats = store.stats
    get_ok = stats.get_successes
    return {
        "n_peers": float(n_peers),
        "crashed_final": float(int(injector.state.dead.sum())),
        "puts": float(stats.puts),
        "put_success_rate": stats.put_successes / stats.puts if stats.puts else 0.0,
        "chain_aborts": float(stats.chain_aborts),
        "put_mean_hops": put_hops / stats.puts if stats.puts else 0.0,
        "put_mean_latency_ms": put_latency / stats.puts if stats.puts else 0.0,
        "reads": reads,
        "read_success_rate": get_ok / reads if reads else 0.0,
        "read_mean_latency_ms": read_latency / reads if reads else 0.0,
        "stale_read_rate": stats.stale_reads / get_ok if get_ok else 0.0,
        "stale_value_rate": stale_values / get_ok if get_ok else 0.0,
        "read_repairs": float(stats.read_repairs),
        "lost_read_rate": stats.lost_reads / get_ok if get_ok else 0.0,
        "hints_queued": float(stats.hints_queued),
        "hints_replayed": float(stats.hints_replayed),
        "replica_contacts": float(stats.replica_contacts),
        "contact_failures": float(stats.contact_failures),
        "loss_probability": audit["loss_probability"],
        "stale_probability": audit["stale_probability"],
        "keys": audit["keys"],
        "lost": audit["lost"],
    }


def run_bench_durability(
    *,
    full: bool = False,
    seed: int = 42,
    n_peers: int | None = None,
    n_keys: int | None = None,
    replication_factors: tuple[int, ...] = (0, 2, 4),
    churn_fractions: tuple[float, ...] = (0.1, 0.3),
) -> dict[str, object]:
    """Run the durability sweep once; returns the BENCH document.

    Sweep shape (per stack): replication factor × churn fraction ×
    consistency mode × placement, every cell replaying the same
    scenario shape under its own seeded waves.  Two extra sections ride
    along: ``handoff`` pairs the headline scenario with hinted handoff
    on vs off, and ``headline`` condenses the ring-locality comparison
    (HIERAS ``ring_scoped`` vs ``successor`` placement) plus the
    chain-vs-quorum divergence.
    """
    if n_peers is None:
        n_peers = 2000 if full else 400
    if n_keys is None:
        n_keys = 200 if full else 80

    phases: dict[str, dict[str, float]] = {}

    def timed(name: str):
        class _Phase:
            def __enter__(self_inner):
                self_inner.t0 = time.perf_counter()  # lint: allow-wallclock -- phase timing; lands in the nondeterministic "phases" key
                return self_inner

            def __exit__(self_inner, *exc):
                phases[name] = {
                    "wall_ms": (time.perf_counter() - self_inner.t0) * 1000.0  # lint: allow-wallclock -- phase timing; lands in the nondeterministic "phases" key
                }
                return False

        return _Phase()

    with timed("build"):
        bundle = build_bundle(
            SimConfig(model="ts", n_peers=n_peers, n_landmarks=4, depth=2, seed=seed)
        )

    cells: list[dict[str, object]] = []
    for stack in ("chord", "hieras"):
        with timed(f"{stack}_sweep"):
            for replicas in replication_factors:
                for churn in churn_fractions:
                    for consistency in ("chain", "quorum"):
                        for placement in ("successor", "ring_scoped"):
                            policy = ReplicationPolicy(
                                replicas=replicas,
                                consistency=consistency,
                                placement=placement,
                            )
                            metrics = run_durability_cell(
                                bundle,
                                stack=stack,
                                policy=policy,
                                churn_fraction=churn,
                                n_keys=n_keys,
                                seed=seed,
                            )
                            cells.append(
                                {
                                    "stack": stack,
                                    "replicas": replicas,
                                    "churn_fraction": churn,
                                    "consistency": consistency,
                                    "placement": placement,
                                    "hinted_handoff": True,
                                    **metrics,
                                }
                            )

    # Paired hinted-handoff cells: identical scenario, handoff toggled.
    handoff: dict[str, dict[str, dict[str, float]]] = {}
    with timed("handoff_pairs"):
        for stack in ("chord", "hieras"):
            pair: dict[str, dict[str, float]] = {}
            for label, enabled in (("on", True), ("off", False)):
                policy = ReplicationPolicy(
                    replicas=HEADLINE_REPLICAS,
                    consistency="quorum",
                    placement="successor",
                    hinted_handoff=enabled,
                )
                pair[label] = run_durability_cell(
                    bundle,
                    stack=stack,
                    policy=policy,
                    churn_fraction=HEADLINE_CHURN,
                    n_keys=n_keys,
                    seed=seed,
                )
            handoff[stack] = pair

    def _cell(stack: str, consistency: str, placement: str) -> dict[str, object]:
        for c in cells:
            if (
                c["stack"] == stack
                and c["replicas"] == HEADLINE_REPLICAS
                and c["churn_fraction"] == HEADLINE_CHURN
                and c["consistency"] == consistency
                and c["placement"] == placement
            ):
                return c
        raise KeyError((stack, consistency, placement))

    headline: dict[str, object] = {
        "ring_locality": {
            stack: {
                "successor_loss": _cell(stack, "quorum", "successor")["loss_probability"],
                "ring_scoped_loss": _cell(stack, "quorum", "ring_scoped")["loss_probability"],
                "successor_put_latency_ms": _cell(stack, "quorum", "successor")["put_mean_latency_ms"],
                "ring_scoped_put_latency_ms": _cell(stack, "quorum", "ring_scoped")["put_mean_latency_ms"],
            }
            for stack in ("chord", "hieras")
        },
        "chain_vs_quorum": {
            stack: {
                "chain_put_success": _cell(stack, "chain", "successor")["put_success_rate"],
                "quorum_put_success": _cell(stack, "quorum", "successor")["put_success_rate"],
                "chain_read_success": _cell(stack, "chain", "successor")["read_success_rate"],
                "quorum_read_success": _cell(stack, "quorum", "successor")["read_success_rate"],
            }
            for stack in ("chord", "hieras")
        },
        "handoff_loss": {
            stack: {
                "on": handoff[stack]["on"]["loss_probability"],
                "off": handoff[stack]["off"]["loss_probability"],
            }
            for stack in ("chord", "hieras")
        },
    }

    phases["peak_rss"] = {"peak_rss_mb": peak_rss_mb()}
    return {
        "schema": SCHEMA,
        "config": {
            "full": full,
            "seed": seed,
            "n_peers": n_peers,
            "n_keys": n_keys,
            "replication_factors": list(replication_factors),
            "churn_fractions": list(churn_fractions),
            "headline_replicas": HEADLINE_REPLICAS,
            "headline_churn": HEADLINE_CHURN,
        },
        "phases": phases,
        "metrics": {"cells": cells, "handoff": handoff, "headline": headline},
    }


def write_bench_durability(doc: dict[str, object], out: str | Path) -> Path:
    """Write one BENCH_durability document as stable, indented JSON."""
    path = Path(out)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path
