"""Churn schedules: timed join/leave/fail events.

Used by the protocol-stack experiments: sessions are exponential (the
standard Poisson-churn model) or Weibull (the heavy-tailed model
measurement studies report for real peer session times), producing an
event list the simulator replays.  Peers are drawn from a fixed
universe so the same schedule can drive both the protocol stack and
the static stack's offline join/leave equivalents.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.util.rng import make_rng
from repro.util.validation import require

__all__ = ["ChurnEvent", "ChurnSchedule", "generate_churn"]


@dataclass(frozen=True)
class ChurnEvent:
    """One membership change."""

    time_ms: float
    action: str  # "join" | "leave" | "fail"
    peer: int


@dataclass(frozen=True)
class ChurnSchedule:
    """A time-ordered list of churn events over a peer universe."""

    events: tuple[ChurnEvent, ...]
    initial_peers: tuple[int, ...]
    universe: int

    def __len__(self) -> int:
        return len(self.events)

    def joins(self) -> list[ChurnEvent]:
        """All join events, in time order."""
        return [e for e in self.events if e.action == "join"]

    def departures(self) -> list[ChurnEvent]:
        """All leave/fail events, in time order."""
        return [e for e in self.events if e.action != "join"]


def generate_churn(
    *,
    universe: int,
    initial: int,
    duration_ms: float,
    mean_session_ms: float,
    mean_offline_ms: float,
    fail_fraction: float = 0.5,
    seed: int | np.random.Generator = 0,
    session_model: str = "exponential",
    weibull_shape: float = 0.5,
) -> ChurnSchedule:
    """Generate seeded churn over a fixed peer universe.

    Peers alternate online sessions (``mean_session_ms``) and offline
    periods (``mean_offline_ms``).  A departing peer crashes ("fail")
    with probability ``fail_fraction`` and leaves gracefully otherwise.
    The first ``initial`` peers start online at time 0.

    ``session_model`` picks the *online*-session distribution:
    ``"exponential"`` (memoryless Poisson churn, the default) or
    ``"weibull"`` with shape ``weibull_shape`` — shapes below 1 give
    the heavy-tailed mix measurement studies observe (many short-lived
    peers, a few very long-lived ones).  The Weibull scale is derived
    from the mean (``scale = mean / Γ(1 + 1/shape)``), so both models
    share the same mean session time and are directly comparable.
    Offline periods stay exponential in both models.
    """
    require(universe >= 2, "universe must be >= 2")
    require(1 <= initial <= universe, "initial must be in [1, universe]")
    require(duration_ms > 0, "duration must be positive")
    require(mean_session_ms > 0 and mean_offline_ms > 0, "means must be positive")
    require(0.0 <= fail_fraction <= 1.0, "fail_fraction in [0, 1]")
    require(
        session_model in ("exponential", "weibull"),
        f"unknown session_model {session_model!r}",
    )
    require(weibull_shape > 0.0, "weibull_shape must be > 0")
    rng = make_rng(seed)
    weibull_scale = mean_session_ms / math.gamma(1.0 + 1.0 / weibull_shape)

    def session_length() -> float:
        if session_model == "weibull":
            return float(rng.weibull(weibull_shape)) * weibull_scale
        return float(rng.exponential(mean_session_ms))

    events: list[ChurnEvent] = []
    for peer in range(universe):
        online = peer < initial
        t = 0.0
        while True:
            t += session_length() if online else float(rng.exponential(mean_offline_ms))
            if t >= duration_ms:
                break
            if online:
                action = "fail" if rng.random() < fail_fraction else "leave"
                events.append(ChurnEvent(time_ms=t, action=action, peer=peer))
            else:
                events.append(ChurnEvent(time_ms=t, action="join", peer=peer))
            online = not online

    events.sort(key=lambda e: (e.time_ms, e.peer))
    return ChurnSchedule(
        events=tuple(events),
        initial_peers=tuple(range(initial)),
        universe=universe,
    )
