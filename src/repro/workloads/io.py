"""Persistence for traces and measurement samples.

Reproduction workflows often split generation from measurement (e.g.
generating the paper's 100 000-request trace once and replaying it
against several configurations).  This module saves/loads
:class:`~repro.workloads.requests.RequestTrace` and
:class:`~repro.analysis.stats.RouteSample` in NumPy's ``.npz`` format
(compact, exact) and exports per-request results as JSON-lines for
external analysis tools.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.analysis.stats import RouteSample
from repro.util.validation import require
from repro.workloads.requests import RequestTrace

__all__ = [
    "save_trace",
    "load_trace",
    "save_sample",
    "load_sample",
    "export_sample_jsonl",
]


def save_trace(trace: RequestTrace, path: str | Path) -> None:
    """Write a request trace to ``path`` (``.npz``)."""
    np.savez_compressed(Path(path), sources=trace.sources, keys=trace.keys)


def load_trace(path: str | Path) -> RequestTrace:
    """Read a request trace written by :func:`save_trace`."""
    with np.load(Path(path)) as data:
        require(
            "sources" in data and "keys" in data,
            f"{path} is not a saved request trace",
        )
        return RequestTrace(sources=data["sources"], keys=data["keys"])


_SAMPLE_FIELDS = (
    "hops",
    "latency_ms",
    "low_layer_hops",
    "top_layer_hops",
    "low_layer_latency_ms",
)


def save_sample(sample: RouteSample, path: str | Path) -> None:
    """Write a measurement sample to ``path`` (``.npz``)."""
    np.savez_compressed(
        Path(path), **{name: getattr(sample, name) for name in _SAMPLE_FIELDS}
    )


def load_sample(path: str | Path) -> RouteSample:
    """Read a sample written by :func:`save_sample`."""
    with np.load(Path(path)) as data:
        require(
            all(name in data for name in _SAMPLE_FIELDS),
            f"{path} is not a saved route sample",
        )
        return RouteSample(**{name: data[name] for name in _SAMPLE_FIELDS})


def export_sample_jsonl(
    sample: RouteSample, trace: RequestTrace, path: str | Path
) -> int:
    """Write one JSON object per request: inputs and measured outputs.

    Returns the number of lines written.  Handy for loading results
    into pandas/duckdb without importing this package.
    """
    require(len(sample) == len(trace), "sample and trace must align")
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        for i, (source, key) in enumerate(trace):
            fh.write(
                json.dumps(
                    {
                        "source": source,
                        "key": key,
                        "hops": int(sample.hops[i]),
                        "latency_ms": float(sample.latency_ms[i]),
                        "low_layer_hops": int(sample.low_layer_hops[i]),
                        "top_layer_hops": int(sample.top_layer_hops[i]),
                    }
                )
                + "\n"
            )
    return len(sample)
