"""Lookup request traces.

A :class:`RequestTrace` is a pair of aligned arrays (source peer, key).
The paper uses uniformly random sources and keys; the Zipf mode draws
keys from a finite catalogue with Zipf popularity — the file-sharing
workload the paper's introduction motivates (Napster/Gnutella/KaZaA)
and the one the example applications use.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.ids import IdSpace
from repro.util.rng import make_rng
from repro.util.validation import require

__all__ = ["RequestTrace", "generate_requests", "zipf_weights"]


@dataclass(frozen=True)
class RequestTrace:
    """An ordered batch of lookup requests."""

    sources: np.ndarray
    keys: np.ndarray

    def __post_init__(self) -> None:
        require(len(self.sources) == len(self.keys), "sources and keys must align")

    def __len__(self) -> int:
        return len(self.sources)

    def __iter__(self):
        return zip(self.sources.tolist(), self.keys.tolist())

    def split(self, parts: int) -> list["RequestTrace"]:
        """Split into ``parts`` roughly equal consecutive traces."""
        require(parts >= 1, "parts must be >= 1")
        bounds = np.linspace(0, len(self), parts + 1).astype(int)
        return [
            RequestTrace(self.sources[a:b], self.keys[a:b])
            for a, b in zip(bounds[:-1], bounds[1:])
            if b > a
        ]


def zipf_weights(catalog_size: int, exponent: float = 0.95) -> np.ndarray:
    """Normalised Zipf popularity weights for a key catalogue."""
    require(catalog_size >= 1, "catalog_size must be >= 1")
    require(exponent > 0, "exponent must be positive")
    ranks = np.arange(1, catalog_size + 1, dtype=np.float64)
    w = ranks ** (-exponent)
    return w / w.sum()


def generate_requests(
    n_requests: int,
    n_peers: int,
    space: IdSpace,
    *,
    seed: int | np.random.Generator = 0,
    key_dist: str = "uniform",
    catalog_size: int = 10_000,
    zipf_exponent: float = 0.95,
) -> RequestTrace:
    """Generate a lookup trace.

    ``key_dist="uniform"`` reproduces the paper's workload: source peers
    and keys both uniform.  ``key_dist="zipf"`` hashes a catalogue of
    ``catalog_size`` synthetic file names and draws keys with Zipf
    popularity (hot files dominate), as in file-sharing deployments.
    """
    require(n_requests >= 1, "n_requests must be >= 1")
    require(n_peers >= 1, "n_peers must be >= 1")
    require(key_dist in ("uniform", "zipf"), f"unknown key_dist {key_dist!r}")
    rng = make_rng(seed)
    sources = rng.integers(0, n_peers, size=n_requests, dtype=np.int64)
    if key_dist == "uniform":
        keys = rng.integers(0, space.size, size=n_requests, dtype=np.uint64)
    else:
        catalog = np.asarray(
            [space.hash_key(f"file-{i}") for i in range(catalog_size)], dtype=np.uint64
        )
        picks = rng.choice(catalog_size, size=n_requests, p=zipf_weights(catalog_size, zipf_exponent))
        keys = catalog[picks]
    return RequestTrace(sources=sources, keys=keys)
