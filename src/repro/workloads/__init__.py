"""Workload generation: lookup traces and churn schedules.

The paper's evaluation drives every experiment with "100000 randomly
generated routing requests" (§4.2); :mod:`repro.workloads.requests`
generates those traces (plus Zipf-popularity variants for the example
applications).  :mod:`repro.workloads.churn` builds join/leave schedules
for the protocol-stack experiments the paper's §3.3–3.4 cost discussion
motivates.
"""

from repro.workloads.churn import ChurnEvent, ChurnSchedule, generate_churn
from repro.workloads.requests import RequestTrace, generate_requests, zipf_weights

__all__ = [
    "RequestTrace",
    "generate_requests",
    "zipf_weights",
    "ChurnEvent",
    "ChurnSchedule",
    "generate_churn",
]
