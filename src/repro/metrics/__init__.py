"""Unified observability: registries, lookup spans, sinks (DESIGN.md §7).

Everything the repo measures flows through this package:

* :mod:`repro.metrics.registry` — named counters, gauges, timers and
  deterministic log-bucketed streaming histograms, plus the
  :data:`NULL_REGISTRY` off switch;
* :mod:`repro.metrics.spans` — per-lookup tracing with per-hop ring
  layers, recorded by the routing stacks when a
  :class:`~repro.metrics.spans.SpanRecorder` is attached;
* :mod:`repro.metrics.sinks` — in-memory, JSONL and summary sinks;
* :mod:`repro.metrics.messages` — protocol-message tracing on the same
  registry.

Collection is off by default everywhere: networks and simulators carry
a ``metrics`` attribute that is ``None`` until explicitly attached, so
the uninstrumented hot path pays a single attribute check.
"""

from repro.metrics.messages import MessageTracer, TracedMessage
from repro.metrics.registry import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    Timer,
)
from repro.metrics.sinks import JsonlSink, MemorySink, SpanSink, SummarySink, read_jsonl
from repro.metrics.spans import HopRecord, LookupSpan, SpanRecorder

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "HopRecord",
    "LookupSpan",
    "SpanRecorder",
    "SpanSink",
    "MemorySink",
    "JsonlSink",
    "SummarySink",
    "read_jsonl",
    "MessageTracer",
    "TracedMessage",
]
