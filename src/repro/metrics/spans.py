"""Per-lookup tracing: one :class:`LookupSpan` per routed request.

A span records the whole life of one lookup — every hop with its ring
layer, endpoints and link delay, plus the outcome — which makes the
paper's core claim (*most hops resolve inside low-latency lower rings*,
§4.3) directly observable on a single request instead of only in
aggregate.  Spans serialize to flat JSON dicts and round-trip through
the JSONL sink (:mod:`repro.metrics.sinks`).

The :class:`SpanRecorder` is the glue the routing stacks talk to: it
folds each span into a :class:`~repro.metrics.registry.MetricsRegistry`
(hop/latency histograms, per-layer counters) and fans it out to sinks.
Collection is **off by default** — networks carry ``metrics = None``
and ``route()`` only builds span inputs after a not-None check, so the
uninstrumented hot path pays one attribute load.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence
from typing import TYPE_CHECKING, Any, cast

from repro.metrics.registry import NULL_REGISTRY, MetricsRegistry
from repro.util.validation import require

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a runtime cycle)
    from repro.metrics.sinks import SpanSink

__all__ = ["HopRecord", "LookupSpan", "SpanRecorder"]


@dataclass(frozen=True)
class HopRecord:
    """One message forward inside a lookup.

    ``layer`` is the ring layer the hop ran in (1 = the global ring,
    2..m the lower HIERAS rings; flat DHTs report 1 everywhere), and
    ``ring`` the ring's name (``"global"`` for layer 1).  ``cache``
    annotates hops the caching subsystem (DESIGN.md §9) produced:
    ``"value-hit"`` / ``"shortcut"`` on the terminal hop of a cached
    lookup, ``""`` for ordinary routed hops.
    """

    index: int
    src: int
    dst: int
    layer: int
    ring: str
    latency_ms: float
    timeout: bool = False
    cache: str = ""

    def to_dict(self) -> dict[str, object]:
        return {
            "index": self.index,
            "src": self.src,
            "dst": self.dst,
            "layer": self.layer,
            "ring": self.ring,
            "latency_ms": self.latency_ms,
            "timeout": self.timeout,
            "cache": self.cache,
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "HopRecord":
        d = cast("dict[str, Any]", data)
        return cls(
            index=int(d["index"]),
            src=int(d["src"]),
            dst=int(d["dst"]),
            layer=int(d["layer"]),
            ring=str(d["ring"]),
            latency_ms=float(d["latency_ms"]),
            timeout=bool(d["timeout"]),
            cache=str(d.get("cache", "")),
        )


@dataclass
class LookupSpan:
    """The trace of one routed request across all its hops.

    ``network`` labels the stack ("chord", "hieras", ...); ``owner`` is
    -1 when a failure-aware lookup died mid-route (``success`` False).
    """

    network: str
    source: int
    key: int
    owner: int
    success: bool = True
    hops: list[HopRecord] = field(default_factory=list)
    timeouts: int = 0
    retry_latency_ms: float = 0.0

    # ------------------------------------------------------------------
    @property
    def n_hops(self) -> int:
        return len(self.hops)

    @property
    def latency_ms(self) -> float:
        """Sum of per-hop link delays (excludes retry penalties)."""
        return sum(h.latency_ms for h in self.hops)

    @property
    def total_latency_ms(self) -> float:
        return self.latency_ms + self.retry_latency_ms

    @property
    def layers(self) -> list[int]:
        """Ring layer of every hop, in hop order."""
        return [h.layer for h in self.hops]

    @property
    def low_layer_hops(self) -> int:
        """Hops taken below the global ring (layer >= 2)."""
        return sum(1 for h in self.hops if h.layer >= 2)

    @property
    def low_layer_hop_share(self) -> float:
        """Fraction of this lookup's hops inside lower rings (§4.3)."""
        return self.low_layer_hops / len(self.hops) if self.hops else 0.0

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, object]:
        """Flat JSON-safe form; inverse of :meth:`from_dict`."""
        return {
            "network": self.network,
            "source": self.source,
            "key": self.key,
            "owner": self.owner,
            "success": self.success,
            "timeouts": self.timeouts,
            "retry_latency_ms": self.retry_latency_ms,
            "hops": [h.to_dict() for h in self.hops],
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "LookupSpan":
        d = cast("dict[str, Any]", data)
        return cls(
            network=str(d["network"]),
            source=int(d["source"]),
            key=int(d["key"]),
            owner=int(d["owner"]),
            success=bool(d["success"]),
            timeouts=int(d["timeouts"]),
            retry_latency_ms=float(d["retry_latency_ms"]),
            hops=[HopRecord.from_dict(h) for h in d["hops"]],
        )


class SpanRecorder:
    """Folds spans into a registry and fans them out to sinks.

    Registry names are scoped by the span's network label, so one
    recorder can serve several stacks at once::

        chord.lookups, chord.hops, chord.latency_ms, ...
        hieras.lookups, hieras.hops, hieras.hops.layer2, ...
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        sinks: "Sequence[SpanSink]" = (),
    ) -> None:
        self.registry = registry if registry is not None else NULL_REGISTRY
        self.sinks: "list[SpanSink]" = list(sinks)

    def record(self, span: LookupSpan) -> None:
        """Account one finished lookup."""
        reg = self.registry
        if reg.enabled:
            label = span.network
            reg.inc(f"{label}.lookups")
            if not span.success:
                reg.inc(f"{label}.lookups_failed")
            if span.timeouts:
                reg.inc(f"{label}.timeouts", span.timeouts)
            reg.observe(f"{label}.hops", span.n_hops)
            reg.observe(f"{label}.latency_ms", span.latency_ms)
            reg.inc(f"{label}.total_hops", span.n_hops)
            for hop in span.hops:
                reg.inc(f"{label}.hops.layer{hop.layer}")
                if hop.layer >= 2:
                    reg.inc(f"{label}.low_layer_hops")
                if hop.cache:
                    reg.inc(f"{label}.cache.{hop.cache}")
        for sink in self.sinks:
            sink.emit(span)

    def close(self) -> None:
        """Close every attached sink (flushes file-backed ones)."""
        for sink in self.sinks:
            sink.close()

    # ------------------------------------------------------------------
    def low_layer_hop_share(self, label: str) -> float:
        """Aggregate lower-ring hop share for one network label."""
        total = self.registry.counter(f"{label}.total_hops").value
        low = self.registry.counter(f"{label}.low_layer_hops").value
        require(self.registry.enabled, "recorder has no live registry")
        return low / total if total else 0.0
