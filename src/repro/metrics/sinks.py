"""Span sinks: where finished :class:`~repro.metrics.spans.LookupSpan`
records go.

Three shapes cover every consumer in the repo:

* :class:`MemorySink` — keep the spans (tests, interactive debugging);
* :class:`JsonlSink` — one JSON object per line on disk (experiment
  artifacts; read back with :func:`read_jsonl`);
* :class:`SummarySink` — aggregate-only (a private registry of hop and
  latency histograms plus per-layer counters), for workloads too large
  to retain individual spans.
"""

from __future__ import annotations

import json
from abc import ABC, abstractmethod
from pathlib import Path
from typing import IO

from repro.metrics.registry import MetricsRegistry
from repro.metrics.spans import LookupSpan, SpanRecorder

__all__ = ["SpanSink", "MemorySink", "JsonlSink", "SummarySink", "read_jsonl"]


class SpanSink(ABC):
    """Receiver of finished lookup spans."""

    @abstractmethod
    def emit(self, span: LookupSpan) -> None:
        """Accept one span."""

    def close(self) -> None:
        """Flush and release resources (default: nothing to do)."""
        return


class MemorySink(SpanSink):
    """Keeps every span in a list."""

    def __init__(self) -> None:
        self.spans: list[LookupSpan] = []

    def emit(self, span: LookupSpan) -> None:
        self.spans.append(span)

    def __len__(self) -> int:
        return len(self.spans)

    def clear(self) -> None:
        self.spans.clear()


class JsonlSink(SpanSink):
    """Appends one sorted-key JSON object per span to a file.

    The file opens lazily on the first span, so constructing the sink
    (e.g. inside config plumbing) never touches the filesystem.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._fh: IO[str] | None = None
        self.emitted = 0

    def emit(self, span: LookupSpan) -> None:
        if self._fh is None:
            self._fh = self.path.open("w", encoding="utf-8")
        self._fh.write(json.dumps(span.to_dict(), sort_keys=True))
        self._fh.write("\n")
        self.emitted += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


def read_jsonl(path: str | Path) -> list[LookupSpan]:
    """Load spans written by :class:`JsonlSink` (inverse operation)."""
    spans: list[LookupSpan] = []
    with Path(path).open(encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                spans.append(LookupSpan.from_dict(json.loads(line)))
    return spans


class SummarySink(SpanSink):
    """Aggregates spans without retaining them.

    Internally just a :class:`SpanRecorder` over a private registry —
    the summary dict is the registry's view of the span stream, which
    keeps the aggregate path and the streaming path numerically
    identical.
    """

    def __init__(self) -> None:
        self.registry = MetricsRegistry()
        self._recorder = SpanRecorder(self.registry)

    def emit(self, span: LookupSpan) -> None:
        self._recorder.record(span)

    def _count(self, name: str) -> int:
        counter = self.registry.counters.get(name)
        return counter.value if counter is not None else 0

    def summary(self, label: str) -> dict[str, object]:
        """Aggregate view of one network label's spans."""
        reg = self.registry
        total = self._count(f"{label}.total_hops")
        low = self._count(f"{label}.low_layer_hops")
        hops_by_layer = {
            name.rsplit("layer", 1)[1]: c.value
            for name, c in sorted(reg.counters.items())
            if name.startswith(f"{label}.hops.layer")
        }
        return {
            "lookups": self._count(f"{label}.lookups"),
            "lookups_failed": self._count(f"{label}.lookups_failed"),
            "timeouts": self._count(f"{label}.timeouts"),
            "hops": reg.histogram(f"{label}.hops").summary(),
            "latency_ms": reg.histogram(f"{label}.latency_ms").summary(),
            "hops_by_layer": hops_by_layer,
            "low_layer_hop_share": low / total if total else 0.0,
        }
