"""Protocol-message tracing on the unified metrics registry.

:class:`MessageTracer` records every
:class:`~repro.sim.network.SimNetwork` send as a structured event, with
filtering and aggregation helpers.  It now also feeds an optional
:class:`~repro.metrics.registry.MetricsRegistry`, so per-phase traffic
attribution (join cost, steady-state upkeep) lands in the same place as
routing spans and simulator counters.  (The tracer's former home,
``repro.sim.trace``, went through a deprecation-stub release and is now
deleted.)
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable
from typing import TYPE_CHECKING

from repro.metrics.registry import MetricsRegistry
from repro.util.validation import require

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.network import Message, SimNetwork

__all__ = ["TracedMessage", "MessageTracer"]


@dataclass(frozen=True)
class TracedMessage:
    """One recorded message send."""

    time_ms: float
    src: int
    dst: int
    kind: str
    delay_ms: float


class MessageTracer:
    """Records message sends on a network.

    Wraps ``network.send`` (composition, not inheritance, so any
    already-constructed network can be traced).  Tracing can be paused
    and resumed to bracket a phase of interest::

        tracer = MessageTracer(network)
        tracer.start()
        ...  # run joins
        join_cost = tracer.count()
        tracer.reset(); ...  # run lookups

    With a ``registry``, every traced send also increments
    ``trace.messages`` / ``trace.sent.<kind>`` counters and records the
    link delay in the ``trace.delay_ms`` histogram.
    """

    def __init__(
        self,
        network: "SimNetwork",
        *,
        max_events: int = 1_000_000,
        registry: MetricsRegistry | None = None,
    ) -> None:
        require(max_events >= 1, "max_events must be >= 1")
        self.network = network
        self.max_events = max_events
        self.registry = registry
        self.events: list[TracedMessage] = []
        self._active = False
        self._original_send: Callable[[int, int, "Message"], None] = network.send

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin recording (idempotent)."""
        if self._active:
            return
        self._active = True

        def traced_send(src: int, dst: int, message: "Message") -> None:
            if len(self.events) < self.max_events:
                delay = (
                    0.0 if src == dst else float(self.network.latency.pair(src, dst))
                )
                self.events.append(
                    TracedMessage(
                        time_ms=self.network.sim.now,
                        src=src,
                        dst=dst,
                        kind=message.kind,
                        delay_ms=delay,
                    )
                )
                if self.registry is not None:
                    self.registry.inc("trace.messages")
                    self.registry.inc(f"trace.sent.{message.kind}")
                    self.registry.observe("trace.delay_ms", delay)
            self._original_send(src, dst, message)

        self.network.send = traced_send  # type: ignore[method-assign]

    def stop(self) -> None:
        """Stop recording and restore the network's send."""
        if not self._active:
            return
        self.network.send = self._original_send  # type: ignore[method-assign]
        self._active = False

    def reset(self) -> None:
        """Clear recorded events (keeps recording if active)."""
        self.events.clear()

    def __enter__(self) -> "MessageTracer":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def count(self, *, kind: str | None = None) -> int:
        """Number of recorded sends (optionally of one kind)."""
        if kind is None:
            return len(self.events)
        return sum(1 for e in self.events if e.kind == kind)

    def by_kind(self) -> dict[str, int]:
        """Message counts per kind."""
        out: dict[str, int] = {}
        for e in self.events:
            out[e.kind] = out.get(e.kind, 0) + 1
        return out

    def by_peer(self) -> dict[int, int]:
        """Messages *sent* per peer."""
        out: dict[int, int] = {}
        for e in self.events:
            out[e.src] = out.get(e.src, 0) + 1
        return out

    def total_delay_ms(self, *, kind: str | None = None) -> float:
        """Sum of link delays of recorded sends."""
        return sum(e.delay_ms for e in self.events if kind is None or e.kind == kind)

    def between(self, t0: float, t1: float) -> list[TracedMessage]:
        """Events with ``t0 <= time < t1``."""
        return [e for e in self.events if t0 <= e.time_ms < t1]
