"""Streaming metric primitives: counters, gauges, timers, histograms.

The registry is the single accumulation point of the observability
subsystem (DESIGN.md §7): routing spans, protocol counters, simulator
event accounting and benchmark phase timers all land here.  Everything
is pure Python — no numpy — so the hot paths that carry a registry
(``SimNetwork.send``, ``route`` instrumentation) pay only dict lookups
and integer adds, and an *unattached* path pays a single ``is None``
check.

Histograms are **deterministic log-bucketed streaming** estimators:
values are counted in geometric buckets ``[base**i, base**(i+1))``, so
state is O(log(max/min)) regardless of sample count, merging two
histograms is exact bucket-count addition (associative and commutative
— safe to combine per-shard registries in any order), and quantiles are
reproducible functions of the bucket counts alone.  Serialization is
stable: :meth:`Histogram.to_dict` sorts bucket keys, so identical
streams produce byte-identical JSON.
"""

from __future__ import annotations

import math
import time
from contextlib import contextmanager
from collections.abc import Iterable, Iterator
from typing import Any, cast

from repro.util.validation import require

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
]

#: Default geometric bucket growth factor: ~5% relative quantile error,
#: ~160 buckets covering 1e-3 .. 1e7 — plenty for hop counts (units)
#: and latencies (ms) alike.
DEFAULT_BASE = 1.1


class Counter:
    """A monotonically increasing named count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (must be >= 0) to the count."""
        require(n >= 0, f"counter increment must be >= 0, got {n}")
        self.value += n


class Gauge:
    """A named last-value-wins measurement (queue depth, clock, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Deterministic log-bucketed streaming histogram.

    Records non-negative values; zeros are counted apart (a log bucket
    cannot hold them), negatives are rejected.  Exact ``count``,
    ``total``, ``min`` and ``max`` are kept alongside the buckets, so
    the mean is exact and quantiles are clamped to the observed range.
    """

    __slots__ = ("name", "base", "_log_base", "count", "total", "zero_count",
                 "min", "max", "buckets")

    def __init__(self, name: str = "", *, base: float = DEFAULT_BASE) -> None:
        require(base > 1.0, f"histogram base must be > 1, got {base}")
        self.name = name
        self.base = float(base)
        self._log_base = math.log(self.base)
        self.count = 0
        self.total = 0.0
        self.zero_count = 0
        self.min = math.inf
        self.max = -math.inf
        #: bucket index -> count; bucket ``i`` covers [base**i, base**(i+1)).
        self.buckets: dict[int, int] = {}

    # ------------------------------------------------------------------
    def _index(self, value: float) -> int:
        return math.floor(math.log(value) / self._log_base)

    def record(self, value: float) -> None:
        """Record one observation (``value >= 0``)."""
        value = float(value)
        require(value >= 0.0, f"histogram values must be >= 0, got {value}")
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value == 0.0:
            self.zero_count += 1
            return
        idx = self._index(value)
        self.buckets[idx] = self.buckets.get(idx, 0) + 1

    def record_many(self, values: Iterable[float]) -> None:
        """Record an iterable of observations."""
        for v in values:
            self.record(v)

    # ------------------------------------------------------------------
    @property
    def mean(self) -> float:
        """Exact mean of all recorded values (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Deterministic quantile estimate (nearest-rank over buckets).

        The representative value of a bucket is its geometric midpoint
        ``base**(i + 0.5)``, clamped to the exact observed ``[min, max]``
        so the tails never overshoot reality.  Returns 0 when empty.
        """
        require(0.0 <= q <= 1.0, f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        target = max(1, math.ceil(q * self.count))
        cum = self.zero_count
        if target <= cum:
            return 0.0
        for idx in sorted(self.buckets):
            cum += self.buckets[idx]
            if target <= cum:
                rep = self.base ** (idx + 0.5)
                return min(max(rep, self.min), self.max)
        return self.max  # pragma: no cover - unreachable (counts are consistent)

    def summary(self) -> dict[str, float]:
        """Compact quantile summary (the per-metric report row)."""
        return {
            "count": float(self.count),
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
        }

    # ------------------------------------------------------------------
    def merge(self, other: "Histogram") -> "Histogram":
        """Pure merge: a new histogram holding both streams.

        Bucket-count addition is exact, so merging is associative and
        commutative — shard-local histograms combine in any order.
        """
        require(
            abs(self.base - other.base) < 1e-12,
            f"cannot merge histograms with bases {self.base} and {other.base}",
        )
        out = Histogram(self.name or other.name, base=self.base)
        out.count = self.count + other.count
        out.total = self.total + other.total
        out.zero_count = self.zero_count + other.zero_count
        out.min = min(self.min, other.min)
        out.max = max(self.max, other.max)
        out.buckets = dict(self.buckets)
        for idx, c in other.buckets.items():
            out.buckets[idx] = out.buckets.get(idx, 0) + c
        return out

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, object]:
        """Stable serialization (sorted bucket keys; JSON-safe)."""
        return {
            "base": self.base,
            "count": self.count,
            "total": self.total,
            "zero_count": self.zero_count,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "buckets": {str(i): self.buckets[i] for i in sorted(self.buckets)},
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "Histogram":
        """Inverse of :meth:`to_dict`."""
        d = cast("dict[str, Any]", data)
        h = cls(base=float(d["base"]))
        h.count = int(d["count"])
        h.total = float(d["total"])
        h.zero_count = int(d["zero_count"])
        h.min = math.inf if d["min"] is None else float(d["min"])
        h.max = -math.inf if d["max"] is None else float(d["max"])
        h.buckets = {int(i): int(c) for i, c in d["buckets"].items()}
        return h


class Timer:
    """Wall-clock phase timer backed by a histogram of durations (ms).

    Wall times are *not* deterministic; keep them out of any artifact
    section that reproducibility tests compare (the perf-baseline
    pipeline reports them under a separate ``phases`` key).
    """

    __slots__ = ("name", "histogram")

    def __init__(self, name: str) -> None:
        self.name = name
        self.histogram = Histogram(name, base=1.3)

    def observe_ms(self, ms: float) -> None:
        """Record one measured duration."""
        self.histogram.record(ms)

    @contextmanager
    def time(self) -> Iterator[None]:
        """Time a ``with`` block via ``time.perf_counter``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe_ms((time.perf_counter() - start) * 1000.0)

    @property
    def total_ms(self) -> float:
        """Sum of all recorded durations."""
        return self.histogram.total


class MetricsRegistry:
    """Named metrics, created on first use.

    One registry per measurement scope (an experiment run, a benchmark
    phase, a simulation).  All accessors are create-on-first-use so
    instrumentation sites never need set-up calls.
    """

    #: Fast-path flag: hot code may skip building inputs for a disabled
    #: registry (`NullRegistry` flips it off).
    enabled: bool = True

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}
        self.timers: dict[str, Timer] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str, *, base: float = DEFAULT_BASE) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram(name, base=base)
        return h

    def timer(self, name: str) -> Timer:
        t = self.timers.get(name)
        if t is None:
            t = self.timers[name] = Timer(name)
        return t

    # convenience forms used by instrumentation sites ------------------
    def inc(self, name: str, n: int = 1) -> None:
        self.counter(name).inc(n)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).record(value)

    # ------------------------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other`` into this registry (counters add, gauges take
        the other's value, histograms bucket-merge)."""
        for name, c in other.counters.items():
            self.counter(name).inc(c.value)
        for name, g in other.gauges.items():
            self.gauge(name).set(g.value)
        for name, h in other.histograms.items():
            mine = self.histograms.get(name)
            self.histograms[name] = h.merge(mine) if mine is not None else h.merge(
                Histogram(name, base=h.base)
            )
        for name, t in other.timers.items():
            mine_t = self.timers.get(name)
            if mine_t is None:
                mine_t = self.timers[name] = Timer(name)
            mine_t.histogram = mine_t.histogram.merge(t.histogram)

    def snapshot(self) -> dict[str, object]:
        """Full, stable, JSON-safe dump of every metric."""
        return {
            "counters": {n: self.counters[n].value for n in sorted(self.counters)},
            "gauges": {n: self.gauges[n].value for n in sorted(self.gauges)},
            "histograms": {n: self.histograms[n].to_dict() for n in sorted(self.histograms)},
            "timers": {n: self.timers[n].histogram.to_dict() for n in sorted(self.timers)},
        }

    def summary(self) -> dict[str, object]:
        """Human-scale dump: counters, gauges, histogram quantiles."""
        return {
            "counters": {n: self.counters[n].value for n in sorted(self.counters)},
            "gauges": {n: self.gauges[n].value for n in sorted(self.gauges)},
            "histograms": {n: self.histograms[n].summary() for n in sorted(self.histograms)},
            "timers": {
                n: {"total_ms": self.timers[n].total_ms,
                    "count": self.timers[n].histogram.count}
                for n in sorted(self.timers)
            },
        }


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, n: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def record(self, value: float) -> None:
        pass


class _NullTimer(Timer):
    __slots__ = ()

    def __init__(self, name: str = "null") -> None:
        super().__init__(name)
        self.histogram = _NullHistogram(name)


class NullRegistry(MetricsRegistry):
    """The off switch: every operation is a no-op.

    Instrumented code may hold :data:`NULL_REGISTRY` instead of ``None``
    and call it unconditionally; the accessors hand back shared inert
    instruments and record nothing.  ``enabled`` is False so hot paths
    can skip even *building* metric inputs.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        self._counter = _NullCounter("null")
        self._gauge = _NullGauge("null")
        self._histogram = _NullHistogram("null")
        self._timer = _NullTimer()

    def counter(self, name: str) -> Counter:
        return self._counter

    def gauge(self, name: str) -> Gauge:
        return self._gauge

    def histogram(self, name: str, *, base: float = DEFAULT_BASE) -> Histogram:
        return self._histogram

    def timer(self, name: str) -> Timer:
        return self._timer

    def inc(self, name: str, n: int = 1) -> None:
        pass

    def set_gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def merge(self, other: MetricsRegistry) -> None:
        pass

    def snapshot(self) -> dict[str, object]:
        return {"counters": {}, "gauges": {}, "histograms": {}, "timers": {}}

    def summary(self) -> dict[str, object]:
        return {"counters": {}, "gauges": {}, "histograms": {}, "timers": {}}


#: Shared inert registry — attach this to disable collection without
#: branching at every call site.
NULL_REGISTRY = NullRegistry()
