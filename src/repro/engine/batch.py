"""Batch routers for the trace-driven stacks, plus the dispatch knob.

``batch_route_chord`` runs one greedy frontier over the flat ring;
``batch_route_hieras`` runs the §3.2 bottom-up procedure layer by
layer — grouping active lanes by their current ring, advancing each
ring's cohort with the shared predecessor-stop kernel, then handing
survivors to the next layer — and takes the final explicit owner hop
on the global ring, exactly like the scalar ``HierasNetwork.route``.

``batch_route`` is the experiment-facing entry point: it dispatches to
the vectorized kernels when the network supports them and no span
tracing is attached, and otherwise falls back to per-request scalar
``route()`` calls (which record spans normally), so callers get the
identical :class:`~repro.engine.result.BatchRouteResult` either way.
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

from repro.core.hieras import HierasNetwork
from repro.dht.base import DHTNetwork
from repro.dht.chord import ChordNetwork
from repro.engine.kernel import route_cohort
from repro.engine.result import BatchRouteResult, row_prefix_sums
from repro.topology.base import LatencyModel
from repro.util.validation import require

__all__ = [
    "batch_route",
    "batch_route_chord",
    "batch_route_hieras",
    "replay_spans",
    "scalar_batch_route",
    "supports_batch",
]


class _HopLog:
    """Growing per-lane hop buffers: latency values and optional paths.

    One ``record`` call per frontier step appends, for the lanes that
    moved, their hop's link delay (one bulk ``LatencyModel.pairs``
    call) and optionally the peer reached.  Buffers are C-ordered so a
    lane's hop latencies form a contiguous row — the property the
    exact-float total relies on (see ``row_prefix_sums``).
    """

    def __init__(
        self,
        sources: npt.NDArray[np.int64],
        latency: LatencyModel,
        *,
        want_paths: bool,
    ) -> None:
        n_lanes = len(sources)
        self._latency = latency
        self._cap = 8
        self.hop_count = np.zeros(n_lanes, dtype=np.int64)
        self.cur_peer = sources.copy()
        self.hop_latency = np.zeros((n_lanes, self._cap), dtype=np.float64)
        self.paths: npt.NDArray[np.int64] | None = None
        if want_paths:
            self.paths = np.full((n_lanes, self._cap + 1), -1, dtype=np.int64)
            self.paths[:, 0] = sources

    def _grow(self, need: int) -> None:
        old = self._cap
        while self._cap < need:
            self._cap *= 2
        lat = np.zeros((len(self.hop_count), self._cap), dtype=np.float64)
        lat[:, :old] = self.hop_latency
        self.hop_latency = lat
        if self.paths is not None:
            paths = np.full((len(self.hop_count), self._cap + 1), -1, dtype=np.int64)
            paths[:, : old + 1] = self.paths
            self.paths = paths

    def record(self, lanes: npt.NDArray[np.int64], next_peers: npt.NDArray[np.int64]) -> None:
        """Append one hop for ``lanes``, each arriving at ``next_peers``."""
        hc = self.hop_count[lanes]
        top = int(hc.max()) if hc.size else 0
        if top >= self._cap:
            self._grow(top + 1)
        self.hop_latency[lanes, hc] = self._latency.pairs(self.cur_peer[lanes], next_peers)
        if self.paths is not None:
            self.paths[lanes, hc + 1] = next_peers
        self.hop_count[lanes] = hc + 1
        self.cur_peer[lanes] = next_peers


def supports_batch(network: DHTNetwork) -> bool:
    """Whether ``batch_route`` may use the vectorized kernels.

    True only for the exact trace-driven classes (subclasses may
    override ``route`` semantics) with **no span recorder attached**:
    the batch kernels bypass per-lookup span recording, so an attached
    ``metrics`` slot triggers the automatic scalar fallback instead.
    """
    return type(network) in (ChordNetwork, HierasNetwork) and network.metrics is None


def _request_arrays(
    network: DHTNetwork, sources: object, keys: object
) -> tuple[npt.NDArray[np.int64], npt.NDArray[np.uint64]]:
    src = np.ascontiguousarray(np.asarray(sources, dtype=np.int64))
    wrapped = np.ascontiguousarray(np.asarray(keys, dtype=np.uint64))
    wrapped = wrapped & np.uint64(network.space.size - 1)  # type: ignore[attr-defined]
    require(len(src) == len(wrapped), "sources and keys must align")
    return src, wrapped


def batch_route_chord(
    net: ChordNetwork,
    sources: object,
    keys: object,
    *,
    paths: bool = False,
) -> BatchRouteResult:
    """Vectorized equivalent of ``ChordNetwork.route`` per lane.

    Bypasses span recording (see :func:`batch_route` for the tracing
    fallback); all result fields are bit-identical to the scalar path.
    """
    src, keys_w = _request_arrays(net, sources, keys)
    if len(src):
        require(bool(net._alive[src].all()), "every source peer must be alive")
    ring = net.ring
    log = _HopLog(src, net.latency, want_paths=paths)
    peers = ring.peers

    def sink(
        lanes: npt.NDArray[np.int64],
        prev_pos: npt.NDArray[np.int64],
        next_pos: npt.NDArray[np.int64],
    ) -> None:
        log.record(lanes, peers[next_pos])

    route_cohort(
        ring,
        net._pos_of_peer[src],
        keys_w,
        to_owner=True,
        succ_list_r=net.successor_list_r,
        sink=sink,
    )
    return BatchRouteResult(
        sources=src,
        keys=keys_w,
        owner=log.cur_peer.copy(),
        hops=log.hop_count,
        latency_ms=row_prefix_sums(log.hop_latency, log.hop_count),
        hops_per_layer=log.hop_count[:, None].copy(),
        hop_latency_ms=log.hop_latency,
        paths=log.paths,
    )


def _succ_list_r(net: HierasNetwork, layer: int) -> int:
    """Per-layer shortcut width, mirroring ``HierasNetwork.route``."""
    if net.successor_list_policy == "off":
        return 0
    if net.successor_list_policy == "transitions" and layer == net.depth:
        return 0  # cold lowest loop: fingers only, like flat Chord
    return net.successor_list_r


def batch_route_hieras(
    net: HierasNetwork,
    sources: object,
    keys: object,
    *,
    paths: bool = False,
) -> BatchRouteResult:
    """Vectorized equivalent of ``HierasNetwork.route`` per lane.

    One frontier per layer, lowest ring first: active lanes are grouped
    by the ring their current peer belongs to at that layer, each ring's
    cohort advances with the shared predecessor-stop kernel, and the
    global layer finishes with the explicit owner hop — identical hop
    sequences and per-layer counts to the scalar route.
    """
    src, keys_w = _request_arrays(net, sources, keys)
    n_lanes = len(src)
    if n_lanes:
        require(bool(net._alive[src].all()), "every source peer must be alive")
    log = _HopLog(src, net.latency, want_paths=paths)
    hops_per_layer = np.zeros((n_lanes, net.depth), dtype=np.int64)

    for layer in range(net.depth, 1, -1):
        col = net.depth - layer
        r = _succ_list_r(net, layer)
        k = layer - 2
        codes = net._ring_of_peer[k, log.cur_peer]
        for code in np.unique(codes):
            lanes = np.flatnonzero(codes == code)
            ring = net._rings[k][int(code)]
            ring_peers = ring.peers

            def sink(
                sub: npt.NDArray[np.int64],
                prev_pos: npt.NDArray[np.int64],
                next_pos: npt.NDArray[np.int64],
                lanes: npt.NDArray[np.int64] = lanes,
                ring_peers: npt.NDArray[np.int64] = ring_peers,
                col: int = col,
            ) -> None:
                moved = lanes[sub]
                log.record(moved, ring_peers[next_pos])
                hops_per_layer[moved, col] += 1

            route_cohort(
                ring,
                net._pos_in_ring[k, log.cur_peer[lanes]],
                keys_w[lanes],
                to_owner=False,
                succ_list_r=r,
                sink=sink,
            )

    # Global layer: predecessor loop over everyone, then the §3.2
    # terminating step — the global predecessor hands the request to
    # the key's owner, just like flat Chord's final hop.
    ring = net.global_ring
    ring_peers = ring.peers
    col = net.depth - 1

    def global_sink(
        lanes: npt.NDArray[np.int64],
        prev_pos: npt.NDArray[np.int64],
        next_pos: npt.NDArray[np.int64],
    ) -> None:
        log.record(lanes, ring_peers[next_pos])
        hops_per_layer[lanes, col] += 1

    route_cohort(
        ring,
        net._pos_global[log.cur_peer],
        keys_w,
        to_owner=False,
        succ_list_r=_succ_list_r(net, 1),
        sink=global_sink,
    )
    owner_pos = np.searchsorted(ring.ids, keys_w, side="left").astype(np.int64)
    owner_pos[owner_pos == len(ring)] = 0
    owner_peer = ring_peers[owner_pos]
    final = np.flatnonzero(log.cur_peer != owner_peer)
    if final.size:
        log.record(final, owner_peer[final])
        hops_per_layer[final, col] += 1

    return BatchRouteResult(
        sources=src,
        keys=keys_w,
        owner=log.cur_peer.copy(),
        hops=log.hop_count,
        latency_ms=row_prefix_sums(log.hop_latency, log.hop_count),
        hops_per_layer=hops_per_layer,
        hop_latency_ms=log.hop_latency,
        paths=log.paths,
    )


def scalar_batch_route(
    network: DHTNetwork,
    sources: object,
    keys: object,
    *,
    paths: bool = False,
) -> BatchRouteResult:
    """Per-request ``route()`` calls packed into a ``BatchRouteResult``.

    The fallback engine: works for every stack (and records spans
    normally when tracing is attached).  Per-hop latency rows are
    recomputed from each path with one bulk ``pairs`` call, which
    yields the same elementwise values the scalar route summed.
    """
    src = np.ascontiguousarray(np.asarray(sources, dtype=np.int64))
    keys_in = np.asarray(keys, dtype=np.uint64)
    require(len(src) == len(keys_in), "sources and keys must align")
    results = [
        network.route(int(s), int(k)) for s, k in zip(src.tolist(), keys_in.tolist())
    ]
    n_lanes = len(results)
    n_layers = max((len(r.hops_per_layer) for r in results), default=1) or 1
    cap = max((r.hops for r in results), default=0)
    cap = max(cap, 1)
    keys_w = np.array([r.key for r in results], dtype=np.uint64)
    owner = np.array([r.owner for r in results], dtype=np.int64)
    hops = np.array([r.hops for r in results], dtype=np.int64)
    latency_ms = np.array([r.latency_ms for r in results], dtype=np.float64)
    hops_per_layer = np.zeros((n_lanes, n_layers), dtype=np.int64)
    hop_latency = np.zeros((n_lanes, cap), dtype=np.float64)
    path_buf: npt.NDArray[np.int64] | None = None
    if paths:
        path_buf = np.full((n_lanes, cap + 1), -1, dtype=np.int64)
        if n_lanes:
            path_buf[:, 0] = src
    latency_model: LatencyModel | None = getattr(network, "latency", None)
    for i, r in enumerate(results):
        # Right-align into the last columns so column -1 is always the
        # global ring, preserving the low/top split for flat results.
        row = r.hops_per_layer if r.hops_per_layer else [r.hops]
        hops_per_layer[i, n_layers - len(row):] = row
        if r.hops:
            arr = np.asarray(r.path, dtype=np.int64)
            if latency_model is not None:
                hop_latency[i, : r.hops] = latency_model.pairs(arr[:-1], arr[1:])
            if path_buf is not None:
                path_buf[i, 1 : r.hops + 1] = arr[1:]
    return BatchRouteResult(
        sources=src,
        keys=keys_w,
        owner=owner,
        hops=hops,
        latency_ms=latency_ms,
        hops_per_layer=hops_per_layer,
        hop_latency_ms=hop_latency,
        paths=path_buf,
    )


def batch_route(
    network: DHTNetwork,
    sources: object,
    keys: object,
    *,
    paths: bool = False,
    engine: str = "batch",
) -> BatchRouteResult:
    """Route a batch of lookups through ``network``.

    ``engine="batch"`` (default) uses the vectorized kernels whenever
    :func:`supports_batch` allows — i.e. on the exact trace-driven
    classes with no span recorder attached — and silently falls back to
    per-request scalar routing otherwise (so attached tracing keeps
    recording every span).  ``engine="scalar"`` forces the fallback.
    Results are bit-identical either way.
    """
    require(engine in ("batch", "scalar"), f"unknown engine {engine!r}")
    if engine == "batch" and supports_batch(network):
        if isinstance(network, HierasNetwork):
            return batch_route_hieras(network, sources, keys, paths=paths)
        assert isinstance(network, ChordNetwork)
        return batch_route_chord(network, sources, keys, paths=paths)
    return scalar_batch_route(network, sources, keys, paths=paths)


def replay_spans(network: DHTNetwork, result: BatchRouteResult, *, label: str) -> None:
    """Record one span per lane through the network's attached recorder.

    Bridges batch routing and the metrics layer: each lane is rebuilt
    as its scalar ``RouteResult`` (requires materialized paths) and fed
    through the network's own ``record_route``/``hop_layer_info``, so
    the emitted spans — and every downstream sink/registry aggregate —
    are identical to what per-request scalar routing would have
    produced.
    """
    require(network.metrics is not None, "no span recorder attached")
    require(result.paths is not None, "replaying spans requires paths=True")
    for lane in range(len(result)):
        rr = result.to_route_result(lane)
        layers, rings = network.hop_layer_info(rr)
        network.record_route(label, rr, layers=layers, rings=rings)
