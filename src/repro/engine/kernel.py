"""The vectorized ring-frontier kernel shared by both batch routers.

One :class:`~repro.dht.ring_array.SortedRing` holds a sorted ``uint64``
id array; the scalar routing rule (``next_hop`` / ``greedy_route`` /
``predecessor_route``) walks it one lookup at a time.  This module runs
the *same* rule over a whole cohort of lookups at once: every frontier
step computes, for all still-active lanes, the final-hop test and the
closest-preceding-finger choice with masked ``np.searchsorted`` calls —
iterating finger bit levels high→low across the batch and settling
lanes as their finger is found, exactly mirroring the scalar loop
``for i in range((d - 1).bit_length() - 1, -1, -1)``.

Equivalence is structural, not approximate: each vector operation is
the batched transcription of one line of the scalar rule, so the hop
sequences are identical position-for-position (pinned by
``tests/test_engine.py``).
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np
import numpy.typing as npt

from repro.dht.ring_array import SortedRing
from repro.util.validation import require

__all__ = ["HopSink", "closest_preceding_fingers", "route_cohort"]

#: Per-step callback: ``sink(lanes, prev_pos, next_pos)`` receives the
#: cohort-relative indices of the lanes that moved this frontier step
#: and their old/new ring positions.  Called once per step, so hop
#: accounting (latency, paths, per-layer counters) stays bulk.
HopSink = Callable[
    [npt.NDArray[np.int64], npt.NDArray[np.int64], npt.NDArray[np.int64]], None
]


def closest_preceding_fingers(
    ids: npt.NDArray[np.uint64],
    size_mask: np.uint64,
    cur_id: npt.NDArray[np.uint64],
    d: npt.NDArray[np.uint64],
    fallback: npt.NDArray[np.int64],
) -> npt.NDArray[np.int64]:
    """Vectorized closest-preceding-finger choice for one frontier step.

    For every lane: the highest finger level ``i`` whose start
    ``cur + 2**i`` has a ring successor strictly inside ``(cur, key)``
    wins — the batched transcription of ``SortedRing.next_hop``'s
    finger loop.  Lanes participate at level ``i`` iff ``d > 2**i``
    (equivalent to the scalar start level ``(d - 1).bit_length() - 1``);
    lanes with no winning finger fall back to ``fallback`` (their ring
    successor), matching the scalar loop's unreachable tail.

    All distances are clockwise id distances mod ``2**bits``; because
    the id space is a power of two, ``uint64`` wraparound followed by
    ``& size_mask`` computes them exactly.
    """
    n = len(ids)
    nxt = fallback.copy()
    unsettled = np.ones(len(d), dtype=bool)
    zero = np.uint64(0)
    top = (int(d.max()) - 1).bit_length() - 1 if len(d) else -1
    for i in range(top, -1, -1):
        step = np.uint64(1 << i)
        lvl = np.flatnonzero(unsettled & (d > step))
        if lvl.size == 0:
            continue
        start = (cur_id[lvl] + step) & size_mask
        j = np.searchsorted(ids, start, side="left").astype(np.int64)
        j[j == n] = 0
        fd = (ids[j] - cur_id[lvl]) & size_mask
        ok = (fd > zero) & (fd < d[lvl])
        if ok.any():
            sel = lvl[ok]
            nxt[sel] = j[ok]
            unsettled[sel] = False
            if not unsettled.any():
                break
    return nxt


def route_cohort(
    ring: SortedRing,
    start_pos: npt.NDArray[np.int64],
    keys: npt.NDArray[np.uint64],
    *,
    to_owner: bool,
    succ_list_r: int = 0,
    sink: HopSink | None = None,
) -> npt.NDArray[np.int64]:
    """Advance a cohort of lookups through one ring to completion.

    ``to_owner=True`` runs Chord's greedy rule to the key's ring
    successor (``SortedRing.greedy_route``); ``to_owner=False`` stops at
    the key's ring *predecessor* without taking the final hop
    (``SortedRing.predecessor_route`` — each HIERAS lower-layer loop).
    ``succ_list_r`` enables the §3.2 successor-list shortcut with the
    same semantics as the scalar methods.

    Returns the final ring position per lane.  ``sink`` is invoked once
    per frontier step with the lanes that moved; lanes settle out of the
    frontier as they reach their stop condition, so the loop runs
    ``max(per-lane hops)`` — not ``sum`` — steps.
    """
    cur = np.ascontiguousarray(start_pos, dtype=np.int64).copy()
    n_lanes = len(cur)
    if n_lanes == 0:
        return cur
    require(len(keys) == n_lanes, "start_pos and keys must align")
    ids = ring.ids
    n = len(ring)
    size_mask = np.uint64(ring.space.size - 1)
    zero = np.uint64(0)

    owner = np.searchsorted(ids, keys, side="left").astype(np.int64)
    owner[owner == n] = 0
    if not to_owner and n == 1:
        # A single-member ring owns every key; the scalar loop returns
        # the start immediately.
        return cur
    active = cur != owner
    pred = (owner - 1) % n  # predecessor-stop target (pred mode only)

    # Safety bound: greedy Chord takes at most ~bits finger hops plus a
    # successor walk; anything past n + bits steps is a kernel bug.
    max_steps = n + ring.space.bits + 2
    for _ in range(max_steps):
        idx = np.flatnonzero(active)
        if idx.size == 0:
            return cur
        cp = cur[idx]
        cur_id = ids[cp]
        d = (keys[idx] - cur_id) & size_mask
        succ = cp + 1
        succ[succ == n] = 0
        dsucc = (ids[succ] - cur_id) & size_mask
        if not to_owner:
            # Predecessor-stop checks, taken before any hop: sitting on
            # the key, or key in (cur, successor] — cur is the ring
            # predecessor and this layer's loop ends.
            stop = (d == zero) | (d <= dsucc)
            if stop.any():
                active[idx[stop]] = False
                go = ~stop
                idx = idx[go]
                if idx.size == 0:
                    continue
                cp = cp[go]
                cur_id = cur_id[go]
                d = d[go]
                succ = succ[go]
                dsucc = dsucc[go]
            target = pred[idx]
        else:
            target = owner[idx]

        m = idx.size
        nxt = np.empty(m, dtype=np.int64)
        rest = np.ones(m, dtype=bool)
        if succ_list_r > 0:
            # §3.2 successor-list shortcut: jump straight to the target
            # (owner / predecessor) when it is within r clockwise slots.
            gap = (target - cp) % n
            short = (gap > 0) & (gap <= succ_list_r)
            nxt[short] = target[short]
            rest &= ~short
        else:
            short = np.zeros(m, dtype=bool)
        if to_owner:
            # Final-hop rule: key in (cur, successor] → successor.
            fh = rest & (d <= dsucc)
            nxt[fh] = succ[fh]
            rest &= ~fh
        if rest.any():
            ri = np.flatnonzero(rest)
            nxt[ri] = closest_preceding_fingers(
                ids, size_mask, cur_id[ri], d[ri], succ[ri]
            )
        if sink is not None:
            sink(idx, cp, nxt)
        cur[idx] = nxt
        if to_owner:
            active[idx] = nxt != owner[idx]
        elif succ_list_r > 0:
            # Shortcut lanes landed exactly on the predecessor: done.
            # Finger lanes are re-examined by next step's stop checks.
            active[idx[short]] = False
    raise RuntimeError(
        f"frontier did not settle within {max_steps} steps (kernel bug)"
    )
