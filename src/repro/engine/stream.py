"""Memory-bounded streaming lookups over the batch router.

At a million peers, 10⁷ lookups routed in one :func:`~repro.engine.batch.
batch_route` call would materialize O(requests × max-hops) hop buffers —
gigabytes of per-lane state that exists only to be summed.  The
streaming front-end routes the trace in bounded chunks and folds each
chunk's :class:`~repro.engine.result.BatchRouteResult` into a compact
:class:`StreamStats` accumulator, so peak memory is O(chunk) regardless
of trace length.

Determinism contract: all *integer* statistics (hop counts, histogram,
per-layer sums, the owner checksum) are chunk-size invariant — the
checksum weights each lane by its global trace index, so any chunking
of the same trace produces the same value.  ``latency_sum_ms`` is a
float sum and therefore association-sensitive: it is reproducible for a
*fixed* ``chunk_size`` (benchmarks pin one) but may differ in the last
ulps across different chunkings.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import numpy.typing as npt

from repro.dht.base import DHTNetwork
from repro.engine.batch import batch_route
from repro.engine.result import BatchRouteResult
from repro.util.validation import require

__all__ = ["StreamStats", "stream_batch_route"]

#: Weight multiplier for the order-sensitive owner checksum
#: (the 64-bit golden-ratio constant; arithmetic wraps mod 2⁶⁴).
_CHECKSUM_PRIME = np.uint64(0x9E3779B97F4A7C15)


def _zero_histogram() -> npt.NDArray[np.int64]:
    return np.zeros(1, dtype=np.int64)


@dataclass
class StreamStats:
    """Running aggregates over a streamed batch-route trace."""

    lookups: int = 0
    chunks: int = 0
    hop_sum: int = 0
    hop_max: int = 0
    latency_sum_ms: float = 0.0
    owner_checksum: int = 0
    hop_histogram: npt.NDArray[np.int64] = field(default_factory=_zero_histogram)
    per_layer_hop_sum: npt.NDArray[np.int64] | None = None

    def absorb(self, result: BatchRouteResult, *, offset: int) -> None:
        """Fold one chunk's results in; ``offset`` is its global start.

        The lane weights of ``owner_checksum`` come from the *global*
        trace position ``offset + lane``, which is what makes the
        checksum invariant under re-chunking.
        """
        n = len(result)
        if n == 0:
            return
        self.chunks += 1
        self.lookups += n
        hops = result.hops
        self.hop_sum += int(hops.sum())
        self.hop_max = max(self.hop_max, int(hops.max()))
        counts = np.bincount(hops).astype(np.int64)
        if len(counts) > len(self.hop_histogram):
            grown = np.zeros(len(counts), dtype=np.int64)
            grown[: len(self.hop_histogram)] = self.hop_histogram
            self.hop_histogram = grown
        self.hop_histogram[: len(counts)] += counts
        layer_sums = result.hops_per_layer.sum(axis=0, dtype=np.int64)
        if self.per_layer_hop_sum is None:
            self.per_layer_hop_sum = layer_sums
        else:
            require(
                len(layer_sums) == len(self.per_layer_hop_sum),
                "chunk layer count changed mid-stream",
            )
            self.per_layer_hop_sum += layer_sums
        self.latency_sum_ms += float(result.latency_ms.sum())
        lanes = np.arange(offset + 1, offset + n + 1, dtype=np.uint64)
        contrib = (result.owner.astype(np.uint64) + np.uint64(1)) * (
            lanes * _CHECKSUM_PRIME
        )
        acc = np.zeros(1, dtype=np.uint64)
        acc[0] = np.uint64(self.owner_checksum)
        acc += contrib.sum(dtype=np.uint64)
        self.owner_checksum = int(acc[0])

    def as_dict(self) -> dict[str, object]:
        """JSON-ready summary (integer stats chunk-size invariant)."""
        per_layer = self.per_layer_hop_sum
        return {
            "lookups": self.lookups,
            "chunks": self.chunks,
            "hop_sum": self.hop_sum,
            "hop_max": self.hop_max,
            "mean_hops": self.hop_sum / self.lookups if self.lookups else 0.0,
            "hop_histogram": [int(c) for c in self.hop_histogram],
            "per_layer_hop_sum": (
                [] if per_layer is None else [int(c) for c in per_layer]
            ),
            "latency_sum_ms": self.latency_sum_ms,
            "mean_latency_ms": (
                self.latency_sum_ms / self.lookups if self.lookups else 0.0
            ),
            "owner_checksum": self.owner_checksum,
        }


def stream_batch_route(
    network: DHTNetwork,
    sources: npt.NDArray[np.int64],
    keys: npt.NDArray[np.uint64],
    *,
    chunk_size: int = 65536,
    engine: str = "batch",
) -> StreamStats:
    """Route ``(sources, keys)`` in bounded chunks, returning aggregates.

    Each chunk goes through :func:`~repro.engine.batch.batch_route`
    (``paths`` stays off — streaming exists to avoid per-lane state),
    so owners, hop counts, and latencies per lane are exactly what one
    monolithic batch call would produce; only the float latency *sum*
    depends on the chunking (see module docstring).
    """
    require(chunk_size >= 1, "chunk_size must be >= 1")
    src = np.asarray(sources, dtype=np.int64)
    key_arr = np.asarray(keys, dtype=np.uint64)
    require(len(src) == len(key_arr), "sources and keys must have equal length")
    stats = StreamStats()
    for start in range(0, len(src), chunk_size):
        stop = min(start + chunk_size, len(src))
        result = batch_route(
            network, src[start:stop], key_arr[start:stop], paths=False, engine=engine
        )
        stats.absorb(result, offset=start)
    return stats
