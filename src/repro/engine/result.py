"""Batched route results: array-of-structs counterpart of ``RouteResult``.

A :class:`BatchRouteResult` stores one lane per lookup: owners, hop
counts, per-layer hop counts, total latencies, the per-hop latency
values (needed for the exact low-layer latency split) and — optionally
— materialized paths for tracing parity.  Per-lane
:class:`~repro.dht.base.RouteResult` records can be reconstructed when
paths were materialized, which is how the perf-baseline pipeline
replays identical spans through the metrics layer.

Float contract: ``latency_ms[i]`` is produced by summing lane ``i``'s
contiguous per-hop row with ``np.sum`` — the same pairwise summation,
over the same values in the same order, as the scalar
``route_latency``'s ``pairs(...).sum()`` — so equality with the scalar
engine is exact, not approximate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import numpy.typing as npt

from repro.dht.base import RouteResult
from repro.util.validation import require

__all__ = ["BatchRouteResult", "row_prefix_sums"]


def row_prefix_sums(
    values: npt.NDArray[np.float64], lengths: npt.NDArray[np.int64]
) -> npt.NDArray[np.float64]:
    """Per-row sums of the first ``lengths[i]`` entries of row ``i``.

    Rows are grouped by prefix length so each group reduces with one
    ``np.sum(..., axis=1)`` call over a C-contiguous block — numpy's
    pairwise summation over a contiguous row is a pure function of the
    row's values and length, so each lane's sum is bit-identical to
    ``values[i, :h].sum()`` and therefore to the scalar engine's
    ``pairs(...).sum()`` over the same hops.
    """
    out = np.zeros(len(lengths), dtype=np.float64)
    for h in np.unique(lengths):
        hops = int(h)
        if hops <= 0:
            continue
        lanes = np.flatnonzero(lengths == h)
        out[lanes] = np.sum(values[lanes, :hops], axis=1)
    return out


@dataclass
class BatchRouteResult:
    """Vectorised outcome of routing a batch of lookups.

    Attributes
    ----------
    sources / keys:
        The request lanes (keys already wrapped into the id space).
    owner:
        Peer index owning each key — identical to the scalar engine's
        ``RouteResult.owner``.
    hops:
        Message forwards per lane (``len(path) - 1`` in scalar terms).
    latency_ms:
        Total link delay per lane, exact-float-equal to the scalar
        ``RouteResult.latency_ms``.
    hops_per_layer:
        ``(lanes, n_layers)`` hop counts ordered lowest layer first,
        matching ``RouteResult.hops_per_layer``; flat stacks have one
        column.
    hop_latency_ms:
        ``(lanes, capacity)`` per-hop link delays in hop order (rows
        zero-padded past ``hops[i]``); the raw material for the exact
        low-layer latency split.
    paths:
        ``(lanes, capacity + 1)`` visited peers (``-1``-padded), only
        when the batch was routed with ``paths=True``.
    """

    sources: npt.NDArray[np.int64]
    keys: npt.NDArray[np.uint64]
    owner: npt.NDArray[np.int64]
    hops: npt.NDArray[np.int64]
    latency_ms: npt.NDArray[np.float64]
    hops_per_layer: npt.NDArray[np.int64]
    hop_latency_ms: npt.NDArray[np.float64]
    paths: npt.NDArray[np.int64] | None = None

    def __len__(self) -> int:
        return len(self.sources)

    @property
    def n_layers(self) -> int:
        """Number of routing layers (1 for flat stacks)."""
        return int(self.hops_per_layer.shape[1])

    @property
    def low_layer_hops(self) -> npt.NDArray[np.int64]:
        """Hops taken below the global ring (zeros for flat stacks)."""
        return self.hops_per_layer[:, :-1].sum(axis=1)

    @property
    def top_layer_hops(self) -> npt.NDArray[np.int64]:
        """Hops taken in the global (highest) ring."""
        return np.ascontiguousarray(self.hops_per_layer[:, -1])

    def low_layer_latency_ms(self) -> npt.NDArray[np.float64]:
        """Latency accumulated on hops below the global ring (exact).

        Lower-layer hops always precede global-ring hops in the path,
        so this is a per-lane prefix sum of the per-hop latency rows —
        the same values, order and summation as the scalar split in
        ``repro.analysis.stats.collect_routes``.
        """
        return row_prefix_sums(self.hop_latency_ms, self.low_layer_hops)

    def path(self, lane: int) -> list[int]:
        """The peers visited by one lane (requires materialized paths)."""
        require(self.paths is not None, "batch was routed without paths=True")
        assert self.paths is not None
        row = self.paths[lane]
        return [int(p) for p in row[: int(self.hops[lane]) + 1]]

    def to_route_result(self, lane: int) -> RouteResult:
        """Rebuild the scalar ``RouteResult`` of one lane.

        Bit-identical to what ``network.route()`` returns for the same
        request (same path, same floats) — the bridge used to replay
        spans through the metrics layer after batch routing.
        """
        return RouteResult(
            source=int(self.sources[lane]),
            key=int(self.keys[lane]),
            owner=int(self.owner[lane]),
            path=self.path(lane),
            latency_ms=float(self.latency_ms[lane]),
            hops_per_layer=[int(v) for v in self.hops_per_layer[lane]],
        )
