"""Vectorized batch routing engine: frontier-stepped lookups over numpy.

The scalar routing stacks (``repro.dht.chord``, ``repro.core.hieras``)
route one lookup at a time with per-hop ``bisect`` calls and Python int
arithmetic.  This package advances *all in-flight lookups
simultaneously*, one numpy step per routing hop — the level-synchronous
frontier trick of vectorized graph engines applied to Chord's greedy
rule.  Chord's O(log N) hop bound means the frontier loop terminates in
~log₂N steps regardless of batch size, so per-request interpreter
overhead disappears from sweep and benchmark wall-clock.

The contract is **bit-identical semantics**: :func:`batch_route`
produces the same owners, paths, hop counts and latencies (exact float
equality) as calling ``network.route()`` per request — enforced by the
property tests in ``tests/test_engine.py`` and relied on by the
experiment layer, which defaults to the batch engine whenever no span
tracing is attached (see :func:`supports_batch`).
"""

from repro.engine.batch import (
    batch_route,
    batch_route_chord,
    batch_route_hieras,
    replay_spans,
    scalar_batch_route,
    supports_batch,
)
from repro.engine.kernel import closest_preceding_fingers, route_cohort
from repro.engine.result import BatchRouteResult
from repro.engine.stream import StreamStats, stream_batch_route

__all__ = [
    "BatchRouteResult",
    "StreamStats",
    "batch_route",
    "batch_route_chord",
    "batch_route_hieras",
    "closest_preceding_fingers",
    "replay_spans",
    "route_cohort",
    "scalar_batch_route",
    "stream_batch_route",
    "supports_batch",
]
