"""HIERAS reproduction: a DHT-based hierarchical P2P routing algorithm.

This package is a full, from-scratch reproduction of

    Zhiyong Xu, Rui Min, Yiming Hu,
    "HIERAS: A DHT Based Hierarchical P2P Routing Algorithm",
    ICPP 2003.

Layout
------
* :mod:`repro.util` — id spaces, circular-interval math, RNG plumbing.
* :mod:`repro.topology` — GT-ITM Transit-Stub / Inet / BRITE topology
  generators, latency models, overlay attachment.
* :mod:`repro.sim` — discrete-event simulation engine and message-level
  network used by the protocol stack.
* :mod:`repro.dht` — flat DHT substrates: Chord (the paper's underlying
  algorithm), CAN and a Pastry baseline.
* :mod:`repro.core` — the paper's contribution: distributed binning,
  hierarchical P2P rings, ring tables, multi-layer finger tables and the
  bottom-up HIERAS routing procedure.
* :mod:`repro.workloads` — request and churn workload generators.
* :mod:`repro.analysis` — PDF/CDF/statistics helpers and table printers.
* :mod:`repro.experiments` — one registered experiment per paper table
  and figure plus ablations; CLI at ``python -m repro.experiments``.

Quickstart
----------
>>> from repro import quick_network
>>> net = quick_network(n_peers=200, n_landmarks=4, seed=1)
>>> result = net.route(source=0, key=123456)
>>> result.hops >= 1
True
"""

from repro._facade import NetworkBundle, quick_network
from repro.version import __version__

__all__ = ["__version__", "quick_network", "NetworkBundle"]
