"""Router-level topology representation and the latency-model interface.

A :class:`Topology` is an undirected router graph with integer link
delays in milliseconds.  Everything downstream of topology generation
(binning, routing-latency accounting, landmark placement) only ever
talks to a :class:`LatencyModel`, so the expensive representation choice
(full APSP matrix vs. exact hierarchical decomposition vs. coordinates)
is swappable per topology family.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any

import numpy as np
import scipy.sparse as sp
from scipy.sparse.csgraph import connected_components, dijkstra

from repro.util.validation import require

__all__ = ["Topology", "LatencyModel", "ROUTER_STUB", "ROUTER_TRANSIT"]

#: Router kind flags stored in :attr:`Topology.kind`.
ROUTER_STUB = 0
ROUTER_TRANSIT = 1


@dataclass
class Topology:
    """An undirected router graph with millisecond link delays.

    Attributes
    ----------
    n_routers:
        Number of routers (vertices), ids ``0..n_routers-1``.
    edges:
        ``(E, 2)`` integer array of undirected edges (each listed once).
    delays:
        ``(E,)`` float array of link delays in milliseconds (positive).
    kind:
        ``(n_routers,)`` uint8 array of router kinds
        (:data:`ROUTER_STUB` / :data:`ROUTER_TRANSIT`).  Generators
        without a transit/stub distinction mark every router as stub.
    coords:
        Optional ``(n_routers, 2)`` plane coordinates (BRITE/Inet place
        routers in a plane; Transit-Stub leaves this ``None``).
    name:
        Human-readable generator tag (``"transit-stub"`` etc.).
    meta:
        Free-form generator-specific metadata.
    """

    n_routers: int
    edges: np.ndarray
    delays: np.ndarray
    kind: np.ndarray
    coords: np.ndarray | None = None
    name: str = "topology"
    meta: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.edges = np.asarray(self.edges, dtype=np.int64).reshape(-1, 2)
        self.delays = np.asarray(self.delays, dtype=np.float64).reshape(-1)
        self.kind = np.asarray(self.kind, dtype=np.uint8).reshape(-1)
        require(self.n_routers >= 1, "topology needs at least one router")
        require(
            len(self.delays) == len(self.edges),
            f"edges ({len(self.edges)}) and delays ({len(self.delays)}) length mismatch",
        )
        require(len(self.kind) == self.n_routers, "kind array length mismatch")
        if len(self.edges):
            require(int(self.edges.max()) < self.n_routers, "edge endpoint out of range")
            require(int(self.edges.min()) >= 0, "edge endpoint out of range")
            require(float(self.delays.min()) > 0, "link delays must be positive")
        self._csr: sp.csr_matrix | None = None

    # ------------------------------------------------------------------
    @property
    def n_edges(self) -> int:
        """Number of undirected links."""
        return len(self.edges)

    @property
    def stub_routers(self) -> np.ndarray:
        """Ids of stub routers (overlay peers attach only to these)."""
        return np.flatnonzero(self.kind == ROUTER_STUB)

    @property
    def transit_routers(self) -> np.ndarray:
        """Ids of transit (core) routers."""
        return np.flatnonzero(self.kind == ROUTER_TRANSIT)

    def csr(self) -> sp.csr_matrix:
        """Symmetric CSR adjacency with delay weights (cached)."""
        if self._csr is None:
            u, v = self.edges[:, 0], self.edges[:, 1]
            data = np.concatenate([self.delays, self.delays])
            rows = np.concatenate([u, v])
            cols = np.concatenate([v, u])
            self._csr = sp.csr_matrix(
                (data, (rows, cols)), shape=(self.n_routers, self.n_routers)
            )
        return self._csr

    def is_connected(self) -> bool:
        """True iff the router graph is a single connected component."""
        n_comp, _ = connected_components(self.csr(), directed=False)
        return n_comp == 1

    def shortest_delays(self, sources: np.ndarray | list[int]) -> np.ndarray:
        """Shortest-path delays (ms) from ``sources`` to every router.

        Returns a ``(len(sources), n_routers)`` float64 matrix.  Used by
        latency models and by tests cross-checking the exact
        transit-stub decomposition against Dijkstra ground truth.
        """
        indices = np.asarray(sources, dtype=np.int64)
        return dijkstra(self.csr(), directed=False, indices=indices)

    def degree(self) -> np.ndarray:
        """Per-router degree vector."""
        deg = np.zeros(self.n_routers, dtype=np.int64)
        np.add.at(deg, self.edges[:, 0], 1)
        np.add.at(deg, self.edges[:, 1], 1)
        return deg

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Topology(name={self.name!r}, routers={self.n_routers}, "
            f"links={self.n_edges})"
        )


class LatencyModel(ABC):
    """Answers pairwise delay queries between routers.

    Latencies are *end-to-end shortest-path* delays in milliseconds.
    Implementations must be symmetric (``pair(u, v) == pair(v, u)``) and
    satisfy ``pair(u, u) == 0``.
    """

    @abstractmethod
    def pair(self, u: int, v: int) -> float:
        """Delay in ms between routers ``u`` and ``v``."""

    @abstractmethod
    def pairs(self, us: np.ndarray, vs: np.ndarray) -> np.ndarray:
        """Element-wise delays for equal-length index vectors."""

    def to_targets(self, source: int, targets: np.ndarray) -> np.ndarray:
        """Delays from one source router to a vector of targets.

        Default implementation delegates to :meth:`pairs`; matrix-backed
        models override with a row slice.
        """
        targets = np.asarray(targets, dtype=np.int64)
        return self.pairs(np.full(len(targets), source, dtype=np.int64), targets)
