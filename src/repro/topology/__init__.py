"""Network topology substrates.

The paper evaluates HIERAS on emulated internetworks produced by three
generators (§4.1):

* **GT-ITM Transit-Stub** (primary model) — :mod:`repro.topology.transit_stub`,
  with the paper's link delays: 100 ms intra-transit, 20 ms stub–transit,
  5 ms intra-stub.
* **Inet** — :mod:`repro.topology.inet`, a power-law AS-level graph
  (minimum 3000 nodes, as in the paper).
* **BRITE** — :mod:`repro.topology.brite`, Barabási–Albert incremental
  growth with Waxman-weighted preferential connectivity.

Because the original generator binaries are not redistributable, each is
re-implemented from its published description; DESIGN.md §3 documents
the substitutions.  All generators produce a :class:`~repro.topology.base.Topology`
(router-level graph with integer millisecond link delays) from which a
:class:`~repro.topology.base.LatencyModel` answers pairwise delay queries,
and :mod:`repro.topology.attach` maps overlay peers and landmark nodes
onto routers.
"""

from repro.topology.attach import OverlayAttachment, attach_overlay, place_landmarks
from repro.topology.base import LatencyModel, Topology
from repro.topology.brite import BriteParams, generate_brite
from repro.topology.export import rings_to_dot, topology_to_dot
from repro.topology.inet import InetParams, generate_inet
from repro.topology.latency import (
    APSPLatencyModel,
    CoordinateLatencyModel,
    NoisyLatencyModel,
    TransitStubLatencyModel,
    latency_model_for,
)
from repro.topology.transit_stub import (
    TransitStubParams,
    TransitStubTopology,
    generate_transit_stub,
)

__all__ = [
    "Topology",
    "LatencyModel",
    "TransitStubParams",
    "TransitStubTopology",
    "generate_transit_stub",
    "InetParams",
    "generate_inet",
    "BriteParams",
    "generate_brite",
    "APSPLatencyModel",
    "TransitStubLatencyModel",
    "CoordinateLatencyModel",
    "NoisyLatencyModel",
    "latency_model_for",
    "OverlayAttachment",
    "attach_overlay",
    "place_landmarks",
    "topology_to_dot",
    "rings_to_dot",
]
