"""BRITE-style topology generator (re-implementation).

BRITE (Medina, Lakhina, Matta & Byers — paper reference [19]) is a
"universal" topology generator; its router-level models place nodes on a
plane and add edges either Waxman-style (distance-decaying probability)
or by Barabási–Albert incremental growth with preferential connectivity.
This module implements BRITE's **BA with incremental growth** flavour —
the configuration most commonly used in DHT studies — with the option of
Waxman-weighting the preferential choice (BRITE's ``BA-2`` hybrid):

* nodes arrive one at a time and connect ``m`` links to existing nodes;
* the probability of picking target ``t`` is proportional to
  ``degree(t)`` (preferential connectivity), optionally multiplied by
  the Waxman factor ``exp(-d(u,t) / (beta * L))``;
* link delays are proportional to Euclidean distance (BRITE derives
  delays from distance at signal propagation speed).

Node placement is uniform over the plane by default; ``skewed_placement``
concentrates nodes in randomly-chosen hotspots, mimicking BRITE's
heavy-tailed grid assignment, which strengthens the latency clustering
HIERAS exploits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.topology.base import ROUTER_STUB, Topology
from repro.topology.placement import place_nodes
from repro.util.rng import make_rng
from repro.util.validation import require

__all__ = ["BriteParams", "generate_brite"]


@dataclass(frozen=True)
class BriteParams:
    """Parameters of the BRITE-style generator."""

    n_nodes: int = 1000
    #: Links added per arriving node (BRITE's ``m``).
    links_per_node: int = 2
    #: Side of the placement plane, in milliseconds of propagation delay.
    plane_size: float = 1000.0
    #: Waxman ``beta`` controlling distance decay when weighting the
    #: preferential choice; ``None`` disables the Waxman factor (pure BA).
    #: The default keeps most links short so end-to-end delay correlates
    #: with distance (BRITE's router-level intent); large values drift
    #: toward pure BA where every pair is a few long hops apart and
    #: latency has no geography for the binning scheme to exploit.
    waxman_beta: float | None = 0.05
    #: Place nodes around hotspots instead of uniformly.
    skewed_placement: bool = True
    n_hotspots: int = 12
    hotspot_sigma_fraction: float = 0.008
    min_link_delay: float = 1.0

    def __post_init__(self) -> None:
        require(self.n_nodes >= 8, "BRITE graphs need >= 8 nodes")
        require(self.links_per_node >= 1, "links_per_node must be >= 1")
        require(self.plane_size > 0, "plane_size must be positive")
        if self.waxman_beta is not None:
            require(self.waxman_beta > 0, "waxman_beta must be positive")
        require(self.n_hotspots >= 1, "n_hotspots must be >= 1")


def _place_nodes(params: BriteParams, rng: np.random.Generator) -> np.ndarray:
    """Node coordinates, uniform or hotspot-clustered."""
    return place_nodes(
        params.n_nodes,
        params.plane_size,
        rng,
        n_hotspots=params.n_hotspots if params.skewed_placement else None,
        hotspot_sigma_fraction=params.hotspot_sigma_fraction,
    )


def generate_brite(
    params: BriteParams | None = None,
    *,
    seed: int | np.random.Generator = 0,
) -> Topology:
    """Generate a BRITE-style BA/Waxman topology.

    Examples
    --------
    >>> topo = generate_brite(BriteParams(n_nodes=200), seed=3)
    >>> topo.is_connected()
    True
    """
    params = params or BriteParams()
    rng = make_rng(seed)
    n, m = params.n_nodes, params.links_per_node

    coords = _place_nodes(params, rng)

    degree = np.zeros(n, dtype=np.float64)
    edge_set: set[tuple[int, int]] = set()
    edges: list[tuple[int, int]] = []

    def add_edge(a: int, b: int) -> bool:
        pair = (min(a, b), max(a, b))
        if a == b or pair in edge_set:
            return False
        edge_set.add(pair)
        edges.append(pair)
        degree[a] += 1
        degree[b] += 1
        return True

    # Seed core: a small connected backbone among the first m+1 nodes.
    core = m + 1
    for i in range(1, core):
        add_edge(i, int(rng.integers(0, i)))

    beta = params.waxman_beta
    scale = params.plane_size
    for u in range(core, n):
        existing = np.arange(u)
        weights = degree[:u] + 1e-3  # preferential connectivity
        if beta is not None:
            d = np.hypot(coords[:u, 0] - coords[u, 0], coords[:u, 1] - coords[u, 1])
            weights = weights * np.exp(-d / (beta * scale))
        links = 0
        attempts = 0
        while links < min(m, u) and attempts < 50 * m:
            probs = weights / weights.sum()
            target = int(rng.choice(existing, p=probs))
            if add_edge(u, target):
                links += 1
            attempts += 1

    edges_arr = np.asarray(edges, dtype=np.int64)
    diffs = coords[edges_arr[:, 0]] - coords[edges_arr[:, 1]]
    delays = np.maximum(np.hypot(diffs[:, 0], diffs[:, 1]), params.min_link_delay)

    return Topology(
        n_routers=n,
        edges=edges_arr,
        delays=np.round(delays),
        kind=np.full(n, ROUTER_STUB, dtype=np.uint8),
        coords=coords,
        name="brite",
        meta={
            "links_per_node": m,
            "waxman_beta": beta,
            "skewed_placement": params.skewed_placement,
        },
    )
