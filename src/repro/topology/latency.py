"""Latency models: pairwise shortest-path delay queries.

Three strategies, all implementing :class:`repro.topology.base.LatencyModel`:

* :class:`TransitStubLatencyModel` — **exact, O(1)-per-query,
  memory-light** model for transit-stub topologies.  Because every stub
  domain hangs off the core through a single border link, a shortest
  path decomposes as ``stub → border → core → border → stub`` and the
  model only stores per-stub APSP blocks plus the (tiny) transit-core
  APSP.  This is what makes paper-scale simulation (10 000 routers,
  100 000 requests × ~13 hops) cheap.
* :class:`APSPLatencyModel` — full all-pairs matrix for general graphs
  (Inet, BRITE).  Computed with chunked Dijkstra sweeps and stored as
  ``uint16`` milliseconds (link delays are integral, so the rounding is
  exact): 10 000 routers cost 200 MB.
* :class:`CoordinateLatencyModel` — Euclidean delays from plane
  coordinates; used by synthetic tests and micro-examples.

Million-router topologies don't fit either eager representation, so
each strategy has a **streaming** twin that answers bit-identical
queries from an LRU block cache filled by on-demand Dijkstra:
:class:`StreamingTransitStubLatencyModel` (per-stub blocks on demand;
border distances from one virtual-source Dijkstra) and
:class:`StreamingAPSPLatencyModel` (uint16 row blocks on demand).
:func:`latency_model_for` picks eager vs streaming from the projected
matrix footprint, so existing small configs keep byte-identical models.

:class:`NoisyLatencyModel` wraps any model with multiplicative
measurement noise, emulating the paper's observation (§2.2) that *ping*
is "not very accurate" yet adequate for the binning scheme.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra

from repro.topology.base import LatencyModel, Topology
from repro.topology.transit_stub import TransitStubTopology
from repro.util.rng import make_rng
from repro.util.validation import require

__all__ = [
    "APSPLatencyModel",
    "StreamingAPSPLatencyModel",
    "TransitStubLatencyModel",
    "StreamingTransitStubLatencyModel",
    "CoordinateLatencyModel",
    "NoisyLatencyModel",
    "latency_model_for",
]


class APSPLatencyModel(LatencyModel):
    """All-pairs shortest-path delays stored as a ``uint16`` matrix.

    Parameters
    ----------
    topology:
        Source graph; link delays must be integral milliseconds (they
        are, for every generator in :mod:`repro.topology`) so that the
        ``uint16`` quantisation is exact.
    chunk:
        Number of Dijkstra source rows computed per sweep; bounds peak
        ``float64`` scratch memory at ``chunk * n_routers * 8`` bytes.
    """

    def __init__(self, topology: Topology, *, chunk: int = 1024) -> None:
        require(chunk >= 1, "chunk must be >= 1")
        n = topology.n_routers
        matrix = np.empty((n, n), dtype=np.uint16)
        csr = topology.csr()
        for start in range(0, n, chunk):
            stop = min(start + chunk, n)
            block = dijkstra(csr, directed=False, indices=np.arange(start, stop))
            if np.isinf(block).any():
                raise ValueError("topology is disconnected; latency undefined")
            require(float(block.max()) < 65535, "path delay overflows uint16 ms")
            matrix[start:stop] = np.round(block).astype(np.uint16)
        self._matrix = matrix
        self.n_routers = n

    @property
    def matrix(self) -> np.ndarray:
        """The full ``(n, n)`` delay matrix in ms (read-only view)."""
        view = self._matrix.view()
        view.flags.writeable = False
        return view

    def pair(self, u: int, v: int) -> float:
        return float(self._matrix[u, v])

    def pairs(self, us: np.ndarray, vs: np.ndarray) -> np.ndarray:
        return self._matrix[np.asarray(us, dtype=np.int64), np.asarray(vs, dtype=np.int64)].astype(
            np.float64
        )

    def to_targets(self, source: int, targets: np.ndarray) -> np.ndarray:
        return self._matrix[source, np.asarray(targets, dtype=np.int64)].astype(np.float64)


class StreamingAPSPLatencyModel(LatencyModel):
    """APSP delays computed on demand in ``uint16`` row blocks.

    Query-compatible (bit-identical answers) with
    :class:`APSPLatencyModel` — the same chunked Dijkstra sweeps, the
    same overflow/disconnection checks, the same rounding — but only
    ``cache_blocks`` row blocks of ``chunk`` sources each are resident
    at a time, so general graphs far past the dense matrix's O(n²)
    memory wall stay queryable.  Peak memory is
    ``cache_blocks * chunk * n * 2`` bytes of cached rows plus one
    ``chunk × n`` float64 Dijkstra scratch.
    """

    def __init__(
        self, topology: Topology, *, chunk: int = 1024, cache_blocks: int = 64
    ) -> None:
        require(chunk >= 1, "chunk must be >= 1")
        require(cache_blocks >= 1, "cache_blocks must be >= 1")
        self.n_routers = topology.n_routers
        self.chunk = int(chunk)
        self.cache_blocks = int(cache_blocks)
        self.cache_hits = 0
        self.cache_misses = 0
        self._csr = topology.csr()
        self._cache: OrderedDict[int, np.ndarray] = OrderedDict()

    def _rows(self, block: int) -> np.ndarray:
        cached = self._cache.get(block)
        if cached is not None:
            self._cache.move_to_end(block)
            self.cache_hits += 1
            return cached
        self.cache_misses += 1
        start = block * self.chunk
        stop = min(start + self.chunk, self.n_routers)
        rows = dijkstra(self._csr, directed=False, indices=np.arange(start, stop))
        if np.isinf(rows).any():
            raise ValueError("topology is disconnected; latency undefined")
        require(float(rows.max()) < 65535, "path delay overflows uint16 ms")
        quantised = np.round(rows).astype(np.uint16)
        self._cache[block] = quantised
        if len(self._cache) > self.cache_blocks:
            self._cache.popitem(last=False)
        return quantised

    def pair(self, u: int, v: int) -> float:
        return float(self._rows(u // self.chunk)[u % self.chunk, v])

    def pairs(self, us: np.ndarray, vs: np.ndarray) -> np.ndarray:
        us = np.asarray(us, dtype=np.int64)
        vs = np.asarray(vs, dtype=np.int64)
        out = np.empty(len(us), dtype=np.float64)
        blocks = us // self.chunk
        for block in np.unique(blocks):
            m = blocks == block
            rows = self._rows(int(block))
            out[m] = rows[us[m] % self.chunk, vs[m]]
        return out

    def to_targets(self, source: int, targets: np.ndarray) -> np.ndarray:
        rows = self._rows(source // self.chunk)
        return rows[source % self.chunk, np.asarray(targets, dtype=np.int64)].astype(
            np.float64
        )


class TransitStubLatencyModel(LatencyModel):
    """Exact hierarchical latency model for transit-stub topologies.

    Correctness rests on two structural facts of
    :func:`repro.topology.transit_stub.generate_transit_stub` output:

    1. every stub domain has exactly one border uplink, so no shortest
       path between routers outside a stub ever crosses it (it would
       have to enter and leave through the same link);
    2. within a stub, the internal shortest path never benefits from a
       detour through the core (the detour re-crosses the 20 ms uplink
       twice and, by the triangle inequality on the stub's own metric,
       cannot beat the internal path).

    ``tests/test_latency.py`` cross-checks this model against plain
    Dijkstra on every generated instance.
    """

    def __init__(self, topology: TransitStubTopology) -> None:
        require(
            isinstance(topology, TransitStubTopology),
            "TransitStubLatencyModel requires a TransitStubTopology",
        )
        self.topology = topology
        n = topology.n_routers
        n_transit = len(topology.transit_routers)
        params = topology.params

        # Core APSP on the transit-only subgraph (transit routers are
        # laid out first, so the submatrix slice is contiguous).
        core_csr = topology.csr()[:n_transit, :n_transit]
        core = dijkstra(core_csr, directed=False)
        if np.isinf(core).any():
            raise ValueError("transit core is disconnected")
        self._core = core

        # Per-stub APSP blocks over intra-stub links only.
        stub_size = params.stub_domain_size
        n_stubs = topology.n_stub_domains
        blocks = np.zeros((n_stubs, stub_size, stub_size), dtype=np.float32)
        full_csr = topology.csr()
        for dom in range(n_stubs):
            members = topology.routers_of_domain(dom)
            sub = full_csr[np.ix_(members, members)]
            block = dijkstra(sub, directed=False)
            if np.isinf(block).any():
                raise ValueError(f"stub domain {dom} is internally disconnected")
            blocks[dom] = block
        self._stub_blocks = blocks

        # Per-router precomputation for vectorised queries.
        dom_of = topology.stub_domain_of
        is_stub = dom_of >= 0
        border_local = topology.local_index[topology.border_router_of_domain]
        self._border_dist = np.zeros(n, dtype=np.float64)
        stub_ids = np.flatnonzero(is_stub)
        self._border_dist[stub_ids] = blocks[
            dom_of[stub_ids], topology.local_index[stub_ids], border_local[dom_of[stub_ids]]
        ]
        self._uplink = np.where(is_stub, params.stub_transit_delay, 0.0)
        self._gateway = np.arange(n, dtype=np.int64)
        self._gateway[stub_ids] = topology.gateway_of_domain[dom_of[stub_ids]]
        self._dom_of = dom_of
        self._local = topology.local_index

    def pair(self, u: int, v: int) -> float:
        return float(self.pairs(np.asarray([u]), np.asarray([v]))[0])

    def pairs(self, us: np.ndarray, vs: np.ndarray) -> np.ndarray:
        us = np.asarray(us, dtype=np.int64)
        vs = np.asarray(vs, dtype=np.int64)
        out = (
            self._border_dist[us]
            + self._border_dist[vs]
            + self._uplink[us]
            + self._uplink[vs]
            + self._core[self._gateway[us], self._gateway[vs]]
        )
        same = (self._dom_of[us] == self._dom_of[vs]) & (self._dom_of[us] >= 0)
        if same.any():
            su, sv = us[same], vs[same]
            out[same] = self._stub_blocks[self._dom_of[su], self._local[su], self._local[sv]]
        return out


class StreamingTransitStubLatencyModel(LatencyModel):
    """Transit-stub latency with per-stub APSP blocks computed on demand.

    Query-compatible (bit-identical answers) with
    :class:`TransitStubLatencyModel`; the difference is purely where
    the per-stub blocks live.  The eager model precomputes all
    ``n_stubs × stub_size²`` float32 entries — at a million stub
    routers that's tens of GB — while this model keeps:

    * the tiny transit-core APSP (eager, same as before),
    * every router's distance to its stub's border router, obtained
      from **one** Dijkstra over the intra-stub edges with a virtual
      source wired to all border routers (O(E log V) total instead of
      one Dijkstra per stub), and
    * an LRU of at most ``cache_blocks`` stub blocks, each computed by
      exactly the Dijkstra the eager model would have run (so cached
      answers match bit for bit).

    Cross-stub queries never touch a block — the border distances and
    core matrix fully determine them — so only same-domain queries pay
    cache traffic.
    """

    def __init__(self, topology: TransitStubTopology, *, cache_blocks: int = 64) -> None:
        require(
            isinstance(topology, TransitStubTopology),
            "StreamingTransitStubLatencyModel requires a TransitStubTopology",
        )
        require(cache_blocks >= 1, "cache_blocks must be >= 1")
        self.topology = topology
        self.cache_blocks = int(cache_blocks)
        self.cache_hits = 0
        self.cache_misses = 0
        n = topology.n_routers
        n_transit = len(topology.transit_routers)
        params = topology.params

        full_csr = topology.csr()
        core = dijkstra(full_csr[:n_transit, :n_transit], directed=False)
        if np.isinf(core).any():
            raise ValueError("transit core is disconnected")
        self._core = core

        dom_of = topology.stub_domain_of
        is_stub = dom_of >= 0
        stub_ids = np.flatnonzero(is_stub)

        # Border distances from ONE virtual-source Dijkstra: keep only
        # intra-stub edges (distinct stubs stay disconnected), add a
        # virtual node joined to every border router by a weight-1
        # edge, and subtract the 1 afterwards (delays are integral ms,
        # so the +1/−1 round trip is exact in float64; a weight-0 edge
        # would risk being dropped as an implicit sparse zero).
        coo = full_csr.tocoo()
        keep = (
            (dom_of[coo.row] >= 0)
            & (dom_of[coo.row] == dom_of[coo.col])
        )
        borders = topology.border_router_of_domain
        rows = np.concatenate([coo.row[keep], np.full(len(borders), n, dtype=np.int64)])
        cols = np.concatenate([coo.col[keep], borders.astype(np.int64)])
        data = np.concatenate([coo.data[keep], np.ones(len(borders))])
        virt = csr_matrix((data, (rows, cols)), shape=(n + 1, n + 1))
        from_virtual = dijkstra(virt, directed=False, indices=n)
        if np.isinf(from_virtual[stub_ids]).any():
            bad = int(stub_ids[np.isinf(from_virtual[stub_ids])][0])
            raise ValueError(
                f"stub domain {int(dom_of[bad])} is internally disconnected"
            )
        self._border_dist = np.zeros(n, dtype=np.float64)
        # Route through float32 to mirror the eager model's block dtype.
        self._border_dist[stub_ids] = (
            (from_virtual[stub_ids] - 1.0).astype(np.float32).astype(np.float64)
        )
        self._uplink = np.where(is_stub, params.stub_transit_delay, 0.0)
        self._gateway = np.arange(n, dtype=np.int64)
        self._gateway[stub_ids] = topology.gateway_of_domain[dom_of[stub_ids]]
        self._dom_of = dom_of
        self._local = topology.local_index
        self._full_csr = full_csr
        # Per-domain member slices, precomputed once: ``stub_ids`` is
        # ascending, so a stable sort by domain keeps each domain's
        # members in ascending router id — the same order
        # ``routers_of_domain`` (and hence ``local_index``) uses.
        order = np.argsort(dom_of[stub_ids], kind="stable")
        self._members_sorted = stub_ids[order]
        self._dom_starts = np.searchsorted(
            dom_of[stub_ids][order], np.arange(topology.n_stub_domains + 1)
        )
        self._cache: OrderedDict[int, np.ndarray] = OrderedDict()

    def _block(self, dom: int) -> np.ndarray:
        cached = self._cache.get(dom)
        if cached is not None:
            self._cache.move_to_end(dom)
            self.cache_hits += 1
            return cached
        self.cache_misses += 1
        members = self._members_sorted[self._dom_starts[dom] : self._dom_starts[dom + 1]]
        sub = self._full_csr[np.ix_(members, members)]
        block = dijkstra(sub, directed=False)
        if np.isinf(block).any():
            raise ValueError(f"stub domain {dom} is internally disconnected")
        quantised = block.astype(np.float32)
        self._cache[dom] = quantised
        if len(self._cache) > self.cache_blocks:
            self._cache.popitem(last=False)
        return quantised

    def pair(self, u: int, v: int) -> float:
        return float(self.pairs(np.asarray([u]), np.asarray([v]))[0])

    def pairs(self, us: np.ndarray, vs: np.ndarray) -> np.ndarray:
        us = np.asarray(us, dtype=np.int64)
        vs = np.asarray(vs, dtype=np.int64)
        out = (
            self._border_dist[us]
            + self._border_dist[vs]
            + self._uplink[us]
            + self._uplink[vs]
            + self._core[self._gateway[us], self._gateway[vs]]
        )
        same = np.flatnonzero(
            (self._dom_of[us] == self._dom_of[vs]) & (self._dom_of[us] >= 0)
        )
        if same.size:
            doms = self._dom_of[us[same]]
            for dom in np.unique(doms):
                m = same[doms == dom]
                block = self._block(int(dom))
                out[m] = block[self._local[us[m]], self._local[vs[m]]]
        return out


class CoordinateLatencyModel(LatencyModel):
    """Euclidean delays from plane coordinates.

    A synthetic stand-in used by unit tests and micro-examples where no
    router graph exists; delay between two points is their Euclidean
    distance times ``scale`` milliseconds.
    """

    def __init__(self, coords: np.ndarray, *, scale: float = 1.0) -> None:
        coords = np.asarray(coords, dtype=np.float64)
        require(coords.ndim == 2 and coords.shape[1] == 2, "coords must be (n, 2)")
        require(scale > 0, "scale must be positive")
        self.coords = coords
        self.scale = float(scale)

    def pair(self, u: int, v: int) -> float:
        return float(self.pairs(np.asarray([u]), np.asarray([v]))[0])

    def pairs(self, us: np.ndarray, vs: np.ndarray) -> np.ndarray:
        a = self.coords[np.asarray(us, dtype=np.int64)]
        b = self.coords[np.asarray(vs, dtype=np.int64)]
        return np.hypot(a[:, 0] - b[:, 0], a[:, 1] - b[:, 1]) * self.scale


class NoisyLatencyModel(LatencyModel):
    """Wraps a latency model with multiplicative *ping* noise.

    Each query is perturbed by an independent lognormal factor with the
    given ``sigma``; used by the binning-noise ablation to emulate
    imprecise latency measurement (paper §2.2).  Because noise is drawn
    per query, this wrapper is intended for *measurement* paths (the
    binning scheme), not for routing-latency accounting.
    """

    def __init__(
        self,
        inner: LatencyModel,
        *,
        sigma: float = 0.2,
        seed: int | np.random.Generator = 0,
    ) -> None:
        require(sigma >= 0, "sigma must be >= 0")
        self.inner = inner
        self.sigma = float(sigma)
        self._rng = make_rng(seed)

    def pair(self, u: int, v: int) -> float:
        return float(self.pairs(np.asarray([u]), np.asarray([v]))[0])

    def pairs(self, us: np.ndarray, vs: np.ndarray) -> np.ndarray:
        clean = self.inner.pairs(us, vs)
        if self.sigma == 0:
            return clean
        noise = self._rng.lognormal(mean=0.0, sigma=self.sigma, size=np.shape(clean))
        return clean * noise

    def to_targets(self, source: int, targets: np.ndarray) -> np.ndarray:
        clean = self.inner.to_targets(source, targets)
        if self.sigma == 0:
            return clean
        noise = self._rng.lognormal(mean=0.0, sigma=self.sigma, size=np.shape(clean))
        return clean * noise


def latency_model_for(
    topology: Topology,
    *,
    streaming_threshold_bytes: int = 1 << 30,
    streaming_cache_bytes: int = 4 << 30,
    **kwargs: object,
) -> LatencyModel:
    """Pick the best latency model for a topology.

    Transit-stub instances get the exact hierarchical model — unless the
    generator added redundancy edges (extra uplinks / stub-stub links),
    which break its single-uplink precondition; those, and every general
    graph, get the APSP matrix.  When the eager model's precomputed
    state would exceed ``streaming_threshold_bytes``, the bit-identical
    streaming twin is returned instead; every config in the repo's
    standard sweeps stays under the default 1 GiB threshold, so their
    models are byte-for-byte what they always were.

    A streaming model's LRU is sized so resident blocks stay under
    ``streaming_cache_bytes`` (default 4 GiB) — blocks are built on
    demand, only touched blocks are ever paid for, and the budget is
    the hard ceiling.  Workloads whose working set fits the budget
    (e.g. a million-router transit-stub instance: ~2.4 k blocks of
    ~1 MB) converge to each block computed exactly once; sizing the
    cache at a fixed small block count instead thrashes — a single
    65 536-lane routing chunk touches nearly every stub domain every
    hop, re-running the same Dijkstra thousands of times.
    """
    if isinstance(topology, TransitStubTopology) and not topology.params.has_shortcuts:
        params = topology.params
        block_bytes = params.stub_domain_size**2 * 4
        blocks_bytes = topology.n_stub_domains * block_bytes
        if blocks_bytes > streaming_threshold_bytes:
            cache_blocks = max(64, streaming_cache_bytes // max(block_bytes, 1))
            return StreamingTransitStubLatencyModel(
                topology, cache_blocks=cache_blocks
            )
        return TransitStubLatencyModel(topology)
    if topology.n_routers**2 * 2 > streaming_threshold_bytes:
        chunk = int(kwargs.pop("chunk", 1024))  # type: ignore[call-overload]
        row_block_bytes = chunk * topology.n_routers * 2
        cache_blocks = max(4, streaming_cache_bytes // max(row_block_bytes, 1))
        return StreamingAPSPLatencyModel(
            topology, chunk=chunk, cache_blocks=cache_blocks, **kwargs  # type: ignore[arg-type]
        )
    return APSPLatencyModel(topology, **kwargs)  # type: ignore[arg-type]
