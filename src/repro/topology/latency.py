"""Latency models: pairwise shortest-path delay queries.

Three strategies, all implementing :class:`repro.topology.base.LatencyModel`:

* :class:`TransitStubLatencyModel` — **exact, O(1)-per-query,
  memory-light** model for transit-stub topologies.  Because every stub
  domain hangs off the core through a single border link, a shortest
  path decomposes as ``stub → border → core → border → stub`` and the
  model only stores per-stub APSP blocks plus the (tiny) transit-core
  APSP.  This is what makes paper-scale simulation (10 000 routers,
  100 000 requests × ~13 hops) cheap.
* :class:`APSPLatencyModel` — full all-pairs matrix for general graphs
  (Inet, BRITE).  Computed with chunked Dijkstra sweeps and stored as
  ``uint16`` milliseconds (link delays are integral, so the rounding is
  exact): 10 000 routers cost 200 MB.
* :class:`CoordinateLatencyModel` — Euclidean delays from plane
  coordinates; used by synthetic tests and micro-examples.

:class:`NoisyLatencyModel` wraps any model with multiplicative
measurement noise, emulating the paper's observation (§2.2) that *ping*
is "not very accurate" yet adequate for the binning scheme.
"""

from __future__ import annotations

import numpy as np
from scipy.sparse.csgraph import dijkstra

from repro.topology.base import LatencyModel, Topology
from repro.topology.transit_stub import TransitStubTopology
from repro.util.rng import make_rng
from repro.util.validation import require

__all__ = [
    "APSPLatencyModel",
    "TransitStubLatencyModel",
    "CoordinateLatencyModel",
    "NoisyLatencyModel",
    "latency_model_for",
]


class APSPLatencyModel(LatencyModel):
    """All-pairs shortest-path delays stored as a ``uint16`` matrix.

    Parameters
    ----------
    topology:
        Source graph; link delays must be integral milliseconds (they
        are, for every generator in :mod:`repro.topology`) so that the
        ``uint16`` quantisation is exact.
    chunk:
        Number of Dijkstra source rows computed per sweep; bounds peak
        ``float64`` scratch memory at ``chunk * n_routers * 8`` bytes.
    """

    def __init__(self, topology: Topology, *, chunk: int = 1024) -> None:
        require(chunk >= 1, "chunk must be >= 1")
        n = topology.n_routers
        matrix = np.empty((n, n), dtype=np.uint16)
        csr = topology.csr()
        for start in range(0, n, chunk):
            stop = min(start + chunk, n)
            block = dijkstra(csr, directed=False, indices=np.arange(start, stop))
            if np.isinf(block).any():
                raise ValueError("topology is disconnected; latency undefined")
            require(float(block.max()) < 65535, "path delay overflows uint16 ms")
            matrix[start:stop] = np.round(block).astype(np.uint16)
        self._matrix = matrix
        self.n_routers = n

    @property
    def matrix(self) -> np.ndarray:
        """The full ``(n, n)`` delay matrix in ms (read-only view)."""
        view = self._matrix.view()
        view.flags.writeable = False
        return view

    def pair(self, u: int, v: int) -> float:
        return float(self._matrix[u, v])

    def pairs(self, us: np.ndarray, vs: np.ndarray) -> np.ndarray:
        return self._matrix[np.asarray(us, dtype=np.int64), np.asarray(vs, dtype=np.int64)].astype(
            np.float64
        )

    def to_targets(self, source: int, targets: np.ndarray) -> np.ndarray:
        return self._matrix[source, np.asarray(targets, dtype=np.int64)].astype(np.float64)


class TransitStubLatencyModel(LatencyModel):
    """Exact hierarchical latency model for transit-stub topologies.

    Correctness rests on two structural facts of
    :func:`repro.topology.transit_stub.generate_transit_stub` output:

    1. every stub domain has exactly one border uplink, so no shortest
       path between routers outside a stub ever crosses it (it would
       have to enter and leave through the same link);
    2. within a stub, the internal shortest path never benefits from a
       detour through the core (the detour re-crosses the 20 ms uplink
       twice and, by the triangle inequality on the stub's own metric,
       cannot beat the internal path).

    ``tests/test_latency.py`` cross-checks this model against plain
    Dijkstra on every generated instance.
    """

    def __init__(self, topology: TransitStubTopology) -> None:
        require(
            isinstance(topology, TransitStubTopology),
            "TransitStubLatencyModel requires a TransitStubTopology",
        )
        self.topology = topology
        n = topology.n_routers
        n_transit = len(topology.transit_routers)
        params = topology.params

        # Core APSP on the transit-only subgraph (transit routers are
        # laid out first, so the submatrix slice is contiguous).
        core_csr = topology.csr()[:n_transit, :n_transit]
        core = dijkstra(core_csr, directed=False)
        if np.isinf(core).any():
            raise ValueError("transit core is disconnected")
        self._core = core

        # Per-stub APSP blocks over intra-stub links only.
        stub_size = params.stub_domain_size
        n_stubs = topology.n_stub_domains
        blocks = np.zeros((n_stubs, stub_size, stub_size), dtype=np.float32)
        full_csr = topology.csr()
        for dom in range(n_stubs):
            members = topology.routers_of_domain(dom)
            sub = full_csr[np.ix_(members, members)]
            block = dijkstra(sub, directed=False)
            if np.isinf(block).any():
                raise ValueError(f"stub domain {dom} is internally disconnected")
            blocks[dom] = block
        self._stub_blocks = blocks

        # Per-router precomputation for vectorised queries.
        dom_of = topology.stub_domain_of
        is_stub = dom_of >= 0
        border_local = topology.local_index[topology.border_router_of_domain]
        self._border_dist = np.zeros(n, dtype=np.float64)
        stub_ids = np.flatnonzero(is_stub)
        self._border_dist[stub_ids] = blocks[
            dom_of[stub_ids], topology.local_index[stub_ids], border_local[dom_of[stub_ids]]
        ]
        self._uplink = np.where(is_stub, params.stub_transit_delay, 0.0)
        self._gateway = np.arange(n, dtype=np.int64)
        self._gateway[stub_ids] = topology.gateway_of_domain[dom_of[stub_ids]]
        self._dom_of = dom_of
        self._local = topology.local_index

    def pair(self, u: int, v: int) -> float:
        return float(self.pairs(np.asarray([u]), np.asarray([v]))[0])

    def pairs(self, us: np.ndarray, vs: np.ndarray) -> np.ndarray:
        us = np.asarray(us, dtype=np.int64)
        vs = np.asarray(vs, dtype=np.int64)
        out = (
            self._border_dist[us]
            + self._border_dist[vs]
            + self._uplink[us]
            + self._uplink[vs]
            + self._core[self._gateway[us], self._gateway[vs]]
        )
        same = (self._dom_of[us] == self._dom_of[vs]) & (self._dom_of[us] >= 0)
        if same.any():
            su, sv = us[same], vs[same]
            out[same] = self._stub_blocks[self._dom_of[su], self._local[su], self._local[sv]]
        return out


class CoordinateLatencyModel(LatencyModel):
    """Euclidean delays from plane coordinates.

    A synthetic stand-in used by unit tests and micro-examples where no
    router graph exists; delay between two points is their Euclidean
    distance times ``scale`` milliseconds.
    """

    def __init__(self, coords: np.ndarray, *, scale: float = 1.0) -> None:
        coords = np.asarray(coords, dtype=np.float64)
        require(coords.ndim == 2 and coords.shape[1] == 2, "coords must be (n, 2)")
        require(scale > 0, "scale must be positive")
        self.coords = coords
        self.scale = float(scale)

    def pair(self, u: int, v: int) -> float:
        return float(self.pairs(np.asarray([u]), np.asarray([v]))[0])

    def pairs(self, us: np.ndarray, vs: np.ndarray) -> np.ndarray:
        a = self.coords[np.asarray(us, dtype=np.int64)]
        b = self.coords[np.asarray(vs, dtype=np.int64)]
        return np.hypot(a[:, 0] - b[:, 0], a[:, 1] - b[:, 1]) * self.scale


class NoisyLatencyModel(LatencyModel):
    """Wraps a latency model with multiplicative *ping* noise.

    Each query is perturbed by an independent lognormal factor with the
    given ``sigma``; used by the binning-noise ablation to emulate
    imprecise latency measurement (paper §2.2).  Because noise is drawn
    per query, this wrapper is intended for *measurement* paths (the
    binning scheme), not for routing-latency accounting.
    """

    def __init__(
        self,
        inner: LatencyModel,
        *,
        sigma: float = 0.2,
        seed: int | np.random.Generator = 0,
    ) -> None:
        require(sigma >= 0, "sigma must be >= 0")
        self.inner = inner
        self.sigma = float(sigma)
        self._rng = make_rng(seed)

    def pair(self, u: int, v: int) -> float:
        return float(self.pairs(np.asarray([u]), np.asarray([v]))[0])

    def pairs(self, us: np.ndarray, vs: np.ndarray) -> np.ndarray:
        clean = self.inner.pairs(us, vs)
        if self.sigma == 0:
            return clean
        noise = self._rng.lognormal(mean=0.0, sigma=self.sigma, size=len(clean))
        return clean * noise


def latency_model_for(topology: Topology, **kwargs: object) -> LatencyModel:
    """Pick the best latency model for a topology.

    Transit-stub instances get the exact hierarchical model — unless the
    generator added redundancy edges (extra uplinks / stub-stub links),
    which break its single-uplink precondition; those, and every general
    graph, get the APSP matrix.
    """
    if isinstance(topology, TransitStubTopology) and not topology.params.has_shortcuts:
        return TransitStubLatencyModel(topology)
    return APSPLatencyModel(topology, **kwargs)  # type: ignore[arg-type]
