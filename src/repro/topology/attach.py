"""Overlay attachment: mapping peers and landmarks onto routers.

The DHT layers work in terms of *peers* ``0..n_peers-1``; this module
decides which router each peer (and each landmark) sits on and exposes a
peer-indexed latency view so everything above the topology never handles
router ids.

Paper correspondence: §2.3 wants landmarks "spread across the Internet"
— :func:`place_landmarks` implements a greedy max–min dispersion over
the latency metric (with a plain random strategy for ablations), and
peers attach to stub routers only (end hosts do not sit on the transit
backbone).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.topology.base import LatencyModel, Topology
from repro.util.rng import make_rng
from repro.util.validation import require

__all__ = ["OverlayAttachment", "PeerLatencyView", "attach_overlay", "place_landmarks"]


class PeerLatencyView(LatencyModel):
    """Latency model re-indexed from router ids to peer ids."""

    def __init__(self, model: LatencyModel, router_of_peer: np.ndarray) -> None:
        self.model = model
        self.router_of_peer = np.asarray(router_of_peer, dtype=np.int64)

    def pair(self, u: int, v: int) -> float:
        return self.model.pair(int(self.router_of_peer[u]), int(self.router_of_peer[v]))

    def pairs(self, us: np.ndarray, vs: np.ndarray) -> np.ndarray:
        return self.model.pairs(
            self.router_of_peer[np.asarray(us, dtype=np.int64)],
            self.router_of_peer[np.asarray(vs, dtype=np.int64)],
        )

    def to_targets(self, source: int, targets: np.ndarray) -> np.ndarray:
        return self.model.to_targets(
            int(self.router_of_peer[source]),
            self.router_of_peer[np.asarray(targets, dtype=np.int64)],
        )


@dataclass
class OverlayAttachment:
    """Placement of an overlay (peers + landmarks) on a topology.

    Attributes
    ----------
    router_of_peer:
        ``(n_peers,)`` router id hosting each peer.
    landmark_routers:
        ``(n_landmarks,)`` router ids of the landmark machines.
    """

    topology: Topology
    router_of_peer: np.ndarray
    landmark_routers: np.ndarray

    def __post_init__(self) -> None:
        self.router_of_peer = np.asarray(self.router_of_peer, dtype=np.int64)
        self.landmark_routers = np.asarray(self.landmark_routers, dtype=np.int64)

    @property
    def n_peers(self) -> int:
        """Number of overlay peers."""
        return len(self.router_of_peer)

    @property
    def n_landmarks(self) -> int:
        """Number of landmark machines."""
        return len(self.landmark_routers)

    def peer_latency(self, model: LatencyModel) -> PeerLatencyView:
        """Peer-indexed view of a router latency model."""
        return PeerLatencyView(model, self.router_of_peer)

    def landmark_distances(self, model: LatencyModel) -> np.ndarray:
        """``(n_peers, n_landmarks)`` matrix of peer→landmark delays.

        This is the measurement matrix the distributed binning scheme
        consumes (each peer *pings* every landmark).
        """
        out = np.empty((self.n_peers, self.n_landmarks), dtype=np.float64)
        for j, lm in enumerate(self.landmark_routers):
            out[:, j] = model.pairs(
                self.router_of_peer, np.full(self.n_peers, lm, dtype=np.int64)
            )
        return out


def attach_overlay(
    topology: Topology,
    n_peers: int,
    *,
    seed: int | np.random.Generator = 0,
    distinct: bool = True,
) -> np.ndarray:
    """Choose an attachment router for each of ``n_peers`` peers.

    Peers attach uniformly at random to **stub** routers.  With
    ``distinct=True`` (default) peers occupy distinct routers, matching
    the paper's one-overlay-node-per-emulated-host setup; if there are
    fewer stub routers than peers, attachment falls back to sampling
    with replacement (co-located peers then see zero mutual latency).

    The result is in random order (not sorted): router ids encode stub
    domains, so a sorted result would correlate peer index with
    topology and — combined with any other sorted per-peer attribute —
    contaminate experiments.
    """
    require(n_peers >= 1, "need at least one peer")
    rng = make_rng(seed)
    candidates = topology.stub_routers
    if len(candidates) == 0:
        candidates = np.arange(topology.n_routers)
    if distinct and n_peers <= len(candidates):
        return rng.choice(candidates, size=n_peers, replace=False)
    return rng.choice(candidates, size=n_peers, replace=True)


def place_landmarks(
    topology: Topology,
    model: LatencyModel,
    n_landmarks: int,
    *,
    seed: int | np.random.Generator = 0,
    strategy: str = "spread",
    candidate_pool: int = 256,
) -> np.ndarray:
    """Choose ``n_landmarks`` landmark routers.

    ``strategy="spread"`` (default) runs greedy max–min dispersion: the
    first landmark is random; each subsequent one maximises its minimum
    delay to the landmarks chosen so far, over a random candidate pool.
    This mimics the paper's "well-known set of machines spread across
    the Internet" (§2.3).  ``strategy="random"`` picks uniformly and is
    used by ablations to show placement sensitivity.
    """
    require(n_landmarks >= 1, "need at least one landmark")
    require(strategy in ("spread", "random"), f"unknown strategy {strategy!r}")
    rng = make_rng(seed)
    candidates = topology.stub_routers
    if len(candidates) == 0:
        candidates = np.arange(topology.n_routers)
    require(
        n_landmarks <= len(candidates),
        f"cannot place {n_landmarks} landmarks on {len(candidates)} stub routers",
    )

    if strategy == "random":
        return np.sort(rng.choice(candidates, size=n_landmarks, replace=False))

    pool_size = min(candidate_pool, len(candidates))
    pool = rng.choice(candidates, size=pool_size, replace=False)
    chosen = [int(pool[int(rng.integers(0, pool_size))])]
    min_delay = model.pairs(pool, np.full(pool_size, chosen[0], dtype=np.int64))
    while len(chosen) < n_landmarks:
        idx = int(np.argmax(min_delay))
        nxt = int(pool[idx])
        if nxt in chosen:
            # Pool exhausted of distinct far-apart routers; fall back to
            # any unused candidate.
            unused = np.setdiff1d(pool, np.asarray(chosen))
            nxt = int(rng.choice(unused))
        chosen.append(nxt)
        delays = model.pairs(pool, np.full(pool_size, nxt, dtype=np.int64))
        min_delay = np.minimum(min_delay, delays)
        min_delay[np.isin(pool, np.asarray(chosen))] = -1.0
    return np.sort(np.asarray(chosen, dtype=np.int64))
