"""Inet-style power-law internetwork generator (re-implementation).

Inet (Jin, Chen & Jamin — paper reference [18]) generates AS-level
Internet topologies whose degree sequence follows the empirically
observed power laws.  The original tool's exact empirical fits are not
redistributable, so this module reproduces the *mechanics* that matter
to HIERAS:

1. Node degrees drawn from a discrete power law ``P(d) ∝ d^-alpha``.
2. A spanning tree built by degree-preferential attachment guarantees
   connectivity (Inet likewise wires its spanning tree among
   high-degree nodes first).
3. Remaining degree stubs matched preferentially, rejecting self loops
   and parallel edges.
4. Routers are placed in a plane and link delays derive from Euclidean
   distance, giving geographically correlated latencies — the property
   the distributed binning scheme exploits.

As in the paper (§4.1), Inet networks are only generated with at least
3000 nodes (the original tool refuses smaller ones because the power-law
fit breaks down).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.topology.base import ROUTER_STUB, Topology
from repro.topology.placement import place_nodes
from repro.util.rng import make_rng
from repro.util.validation import require

__all__ = ["InetParams", "generate_inet", "INET_MIN_NODES"]

#: The original Inet generator requires >= 3037 nodes; the paper rounds
#: this to "the minimal number of nodes is 3000" (§4.1).  We enforce the
#: paper's bound.
INET_MIN_NODES = 3000


@dataclass(frozen=True)
class InetParams:
    """Parameters of the Inet-style generator."""

    n_nodes: int = 3000
    #: Power-law exponent of the degree distribution.  Inet's fits of
    #: 2000-era BGP tables give exponents a little over 2.
    degree_exponent: float = 2.1
    #: Hard cap on a single node's degree, as a fraction of ``n_nodes``.
    max_degree_fraction: float = 0.05
    #: Side length (ms of propagation at unit speed) of the placement
    #: plane; link delay = Euclidean distance, floored at
    #: ``min_link_delay``.
    plane_size: float = 250.0
    min_link_delay: float = 1.0
    #: Geographic locality of link formation: attachment weights are
    #: multiplied by ``exp(-d / (locality_beta * plane_size))``, so
    #: links are mostly short and end-to-end delays correlate with
    #: distance — the structure real AS paths exhibit and the
    #: distributed binning scheme requires.  ``None`` disables locality
    #: (pure preferential attachment; every pair then looks equally far
    #: and binning degenerates to a single ring).
    locality_beta: float | None = 0.05
    #: Candidate partners sampled per leftover degree stub when
    #: locality is enabled.
    match_candidates: int = 24
    #: Cluster routers around this many hotspots (None = uniform).
    #: AS geography is strongly clustered; clustering is what makes
    #: intra-region delays small relative to the backbone.
    n_hotspots: int | None = 8
    hotspot_sigma_fraction: float = 0.02
    #: Enforce the original tool's minimum size when True.
    enforce_min_nodes: bool = True

    def __post_init__(self) -> None:
        require(self.n_nodes >= 16, "Inet graphs need >= 16 nodes")
        if self.enforce_min_nodes:
            require(
                self.n_nodes >= INET_MIN_NODES,
                f"Inet requires >= {INET_MIN_NODES} nodes (got {self.n_nodes}); "
                "pass enforce_min_nodes=False to override in tests",
            )
        require(self.degree_exponent > 1.0, "degree_exponent must exceed 1")
        require(0 < self.max_degree_fraction <= 1.0, "max_degree_fraction in (0,1]")


def _power_law_degrees(params: InetParams, rng: np.random.Generator) -> np.ndarray:
    """Sample a graphical power-law degree sequence."""
    n = params.n_nodes
    dmax = max(3, int(params.max_degree_fraction * n))
    support = np.arange(1, dmax + 1, dtype=np.float64)
    pmf = support ** (-params.degree_exponent)
    pmf /= pmf.sum()
    degrees = rng.choice(np.arange(1, dmax + 1), size=n, p=pmf)
    # The handshake lemma needs an even stub count; also make sure a few
    # hubs exist so the preferential tree has somewhere to attach.
    if degrees.sum() % 2 == 1:
        degrees[int(np.argmin(degrees))] += 1
    return degrees.astype(np.int64)


def generate_inet(
    params: InetParams | None = None,
    *,
    seed: int | np.random.Generator = 0,
) -> Topology:
    """Generate an Inet-style power-law topology.

    Examples
    --------
    >>> topo = generate_inet(InetParams(n_nodes=3000), seed=7)
    >>> topo.is_connected()
    True
    """
    params = params or InetParams()
    rng = make_rng(seed)
    n = params.n_nodes

    degrees = _power_law_degrees(params, rng)
    order = np.argsort(-degrees)  # highest degree first, like Inet's core

    coords = place_nodes(
        n,
        params.plane_size,
        rng,
        n_hotspots=params.n_hotspots,
        hotspot_sigma_fraction=params.hotspot_sigma_fraction,
    )

    beta_ms = (
        params.locality_beta * params.plane_size
        if params.locality_beta is not None
        else None
    )

    # Spanning tree by (locality-weighted) preferential attachment over
    # already-placed nodes.
    edge_set: set[tuple[int, int]] = set()
    edges: list[tuple[int, int]] = []
    residual = degrees.astype(np.float64).copy()

    placed: list[int] = [int(order[0])]
    attach_weight = np.zeros(n, dtype=np.float64)
    attach_weight[order[0]] = residual[order[0]]
    for idx in order[1:]:
        idx = int(idx)
        placed_arr = np.asarray(placed)
        weights = attach_weight[placed_arr]
        if beta_ms is not None:
            d = np.hypot(
                coords[placed_arr, 0] - coords[idx, 0],
                coords[placed_arr, 1] - coords[idx, 1],
            )
            weights = weights * np.exp(-d / beta_ms)
        total = weights.sum()
        probs = weights / total if total > 0 else None
        parent = int(placed_arr[int(rng.choice(len(placed_arr), p=probs))])
        pair = (min(idx, parent), max(idx, parent))
        edge_set.add(pair)
        edges.append(pair)
        residual[idx] -= 1
        residual[parent] -= 1
        placed.append(idx)
        attach_weight[idx] = max(residual[idx], 0.25)
        attach_weight[parent] = max(residual[parent], 0.25)

    # Match remaining stubs: configuration model with rejection, with
    # Waxman-weighted partner choice when locality is enabled.
    stubs = np.repeat(np.arange(n), np.maximum(residual, 0).astype(np.int64))
    rng.shuffle(stubs)
    misses = 0
    if beta_ms is None:
        for i in range(0, len(stubs) - 1, 2):
            a, b = int(stubs[i]), int(stubs[i + 1])
            pair = (min(a, b), max(a, b))
            if a == b or pair in edge_set:
                misses += 1
                continue
            edge_set.add(pair)
            edges.append(pair)
    else:
        remaining = list(stubs)
        while len(remaining) >= 2:
            a = int(remaining.pop())
            k = min(params.match_candidates, len(remaining))
            cand_idx = rng.choice(len(remaining), size=k, replace=False)
            cand = np.asarray([remaining[int(i)] for i in cand_idx])
            d = np.hypot(coords[cand, 0] - coords[a, 0], coords[cand, 1] - coords[a, 1])
            w = np.exp(-d / beta_ms)
            valid = cand != a
            if not valid.any() or w[valid].sum() <= 0:
                misses += 1
                continue
            pick = int(rng.choice(np.flatnonzero(valid), p=w[valid] / w[valid].sum()))
            b = int(cand[pick])
            pair = (min(a, b), max(a, b))
            if pair in edge_set:
                misses += 1
                continue
            del remaining[int(cand_idx[pick])]
            edge_set.add(pair)
            edges.append(pair)

    edges_arr = np.asarray(edges, dtype=np.int64)
    diffs = coords[edges_arr[:, 0]] - coords[edges_arr[:, 1]]
    delays = np.maximum(np.hypot(diffs[:, 0], diffs[:, 1]), params.min_link_delay)

    return Topology(
        n_routers=n,
        edges=edges_arr,
        delays=np.round(delays),
        kind=np.full(n, ROUTER_STUB, dtype=np.uint8),
        coords=coords,
        name="inet",
        meta={
            "degree_exponent": params.degree_exponent,
            "rejected_stub_pairs": misses,
        },
    )
