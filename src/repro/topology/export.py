"""Graphviz DOT export for topologies and overlay structure.

Dependency-free visual debugging: render the router graph (colour-coded
by tier) or a HIERAS overlay's ring structure to DOT text, then feed it
to ``dot -Tsvg`` wherever Graphviz is available.  Small inputs only —
these are inspection tools, not plotting pipelines.
"""

from __future__ import annotations

from repro.topology.base import ROUTER_TRANSIT, Topology
from repro.util.validation import require

__all__ = ["topology_to_dot", "rings_to_dot"]

_RING_COLORS = [
    "lightblue", "lightgreen", "lightsalmon", "plum", "khaki",
    "lightcyan", "mistyrose", "palegreen", "lavender", "wheat",
]


def topology_to_dot(topology: Topology, *, max_routers: int = 400) -> str:
    """Render a router graph as DOT (transit routers highlighted).

    Refuses graphs above ``max_routers`` — beyond that the drawing is
    unreadable and the string is megabytes.
    """
    require(
        topology.n_routers <= max_routers,
        f"topology has {topology.n_routers} routers; raise max_routers "
        "explicitly if you really want this",
    )
    lines = [
        "graph topology {",
        "  layout=sfdp; overlap=false; node [shape=point, width=0.08];",
    ]
    for r in range(topology.n_routers):
        if topology.kind[r] == ROUTER_TRANSIT:
            lines.append(
                f'  n{r} [shape=circle, width=0.2, style=filled, '
                f'fillcolor=red, label=""];'
            )
    for (u, v), delay in zip(topology.edges, topology.delays):
        lines.append(f"  n{int(u)} -- n{int(v)} [len={float(delay) / 20:.2f}];")
    lines.append("}")
    return "\n".join(lines)


def rings_to_dot(hieras, *, layer: int = 2, max_peers: int = 300) -> str:
    """Render a HIERAS layer's ring partition as DOT clusters.

    Each lower-layer ring becomes a coloured cluster containing its
    member peers (labelled with node ids), with the ring's name as the
    cluster label — a picture of what the binning scheme produced.
    """
    require(
        hieras.n_peers <= max_peers,
        f"network has {hieras.n_peers} peers; raise max_peers explicitly",
    )
    rings = hieras.rings_at_layer(layer)
    lines = ["graph rings {", "  layout=fdp; node [shape=ellipse, fontsize=8];"]
    for idx, (name, ring) in enumerate(sorted(rings.items())):
        color = _RING_COLORS[idx % len(_RING_COLORS)]
        lines.append(f"  subgraph cluster_{idx} {{")
        lines.append(f'    label="ring {name} ({len(ring)} peers)";')
        lines.append(f"    style=filled; fillcolor={color};")
        for pos in range(len(ring)):
            peer = int(ring.peers[pos])
            lines.append(f'    p{peer} [label="{int(ring.ids[pos])}"];')
        lines.append("  }")
    # Draw each ring's successor cycle so the Chord structure is visible.
    for name, ring in sorted(rings.items()):
        n = len(ring)
        if n < 2:
            continue
        for pos in range(n):
            a = int(ring.peers[pos])
            b = int(ring.peers[(pos + 1) % n])
            lines.append(f"  p{a} -- p{b};")
    lines.append("}")
    return "\n".join(lines)
