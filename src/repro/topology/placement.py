"""Node placement on the delay plane.

Both plane-based generators (Inet-style and BRITE-style) place routers
on a square whose coordinates are measured in milliseconds of
propagation delay.  :func:`place_nodes` supports uniform placement and
heavy-tailed hotspot clustering — the geography that makes intra-region
paths cheap, inter-region paths expensive, and therefore gives the
distributed binning scheme something to discover.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import require

__all__ = ["place_nodes"]


def place_nodes(
    n: int,
    plane_size: float,
    rng: np.random.Generator,
    *,
    n_hotspots: int | None = None,
    hotspot_sigma_fraction: float = 0.03,
) -> np.ndarray:
    """Coordinates for ``n`` routers on a ``plane_size``-sided square.

    With ``n_hotspots`` set, routers cluster around that many centres
    with Pareto-weighted popularity and Gaussian spread
    ``hotspot_sigma_fraction * plane_size`` (clipped to the plane);
    otherwise placement is uniform.
    """
    require(n >= 1, "need at least one node")
    require(plane_size > 0, "plane_size must be positive")
    if n_hotspots is None:
        return rng.random((n, 2)) * plane_size
    require(n_hotspots >= 1, "n_hotspots must be >= 1")
    centers = rng.random((n_hotspots, 2)) * plane_size
    weights = rng.pareto(1.2, size=n_hotspots) + 1.0
    weights /= weights.sum()
    assignment = rng.choice(n_hotspots, size=n, p=weights)
    sigma = hotspot_sigma_fraction * plane_size
    coords = centers[assignment] + rng.normal(0.0, sigma, size=(n, 2))
    return np.clip(coords, 0.0, plane_size)
